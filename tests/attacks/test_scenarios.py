"""The non-Table-4 scenarios: traversal, squats, TOCTTOU variants,
signal invariants — each attacked and benign."""

import pytest

from repro.attacks.search_path import ShellPathHijack
from repro.attacks.squat import FileSquatReport, SocketSquat
from repro.attacks.symlink import HardlinkClobber, SetuidTempfileLinkFollow
from repro.attacks.sigrace import SigreturnResetsState
from repro.attacks.toctou import AccessOpenRace, CryogenicSleepRace, LstatOpenSymlinkSwap
from repro.attacks.traversal import ApacheDirectoryTraversal, ApacheTraversalFilteredStillLeaks

ALL_SCENARIOS = [
    ApacheDirectoryTraversal,
    ApacheTraversalFilteredStillLeaks,
    FileSquatReport,
    SocketSquat,
    SetuidTempfileLinkFollow,
    HardlinkClobber,
    ShellPathHijack,
    AccessOpenRace,
    LstatOpenSymlinkSwap,
    CryogenicSleepRace,
]


@pytest.mark.parametrize("scenario_cls", ALL_SCENARIOS, ids=lambda c: c.__name__)
class TestScenarioMatrix:
    def test_succeeds_without_firewall(self, scenario_cls):
        result = scenario_cls().run(with_firewall=False)
        assert result.succeeded, result.detail

    def test_blocked_with_firewall(self, scenario_cls):
        result = scenario_cls().run(with_firewall=True)
        assert not result.succeeded
        assert result.blocked, result.detail

    def test_benign_preserved(self, scenario_cls):
        assert scenario_cls().run_benign(with_firewall=True)


class TestSignalInvariants:
    def test_sigkill_never_blocked(self):
        scenario = SigreturnResetsState()
        result = scenario.run(with_firewall=True)
        assert not result.succeeded  # victim died despite the rules

    def test_delivery_works_after_sigreturn(self):
        assert SigreturnResetsState().run_benign(with_firewall=True)


class TestTwoContextStory:
    """The introduction's web-server example: the serving entrypoint is
    confined while authentication keeps privileged access — in one
    process, something access control alone cannot express."""

    def test_serve_blocked_auth_allowed(self):
        scenario = ApacheDirectoryTraversal()
        scenario.build(with_firewall=True)
        response = scenario.server.serve("/../../../../etc/shadow")
        assert response.status == 403
        assert scenario.server.authenticate("root", "secret")


class TestCryogenicSubtleties:
    def test_program_check_passes_but_object_differs(self):
        """The unprotected run must show the (dev,ino) check *passing*
        while the object is the adversary's — the attack's essence."""
        scenario = CryogenicSleepRace()
        result = scenario.run(with_firewall=False)
        assert result.succeeded
        assert scenario.check_passed
        assert scenario.opened_generation != scenario.checked_generation
