"""The attack taxonomy (Tables 1-2) and scenario coverage."""

import pytest

from repro.attacks.taxonomy import ATTACK_CLASSES, CVE_SHARE, table1_rows


class TestTable1Data:
    def test_eight_classes(self):
        assert len(ATTACK_CLASSES) == 8
        assert len(table1_rows()) == 8

    def test_print_order(self):
        names = [c.name for c in table1_rows()]
        assert names[0] == "Untrusted Search Path"
        assert names[-1] == "Signal Races"

    def test_cve_counts_match_paper(self):
        traversal = ATTACK_CLASSES["directory_traversal"]
        assert (traversal.cve_pre2007, traversal.cve_2007_2012) == (1057, 1514)
        races = ATTACK_CLASSES["toctou_race"]
        assert (races.cve_pre2007, races.cve_2007_2012) == (17, 14)

    def test_share_footer(self):
        assert CVE_SHARE["<2007"] == pytest.approx(0.1240)
        assert CVE_SHARE["2007-12"] == pytest.approx(0.0941)

    def test_cwe_ids(self):
        assert ATTACK_CLASSES["php_file_inclusion"].cwe == "CWE-98"
        assert ATTACK_CLASSES["link_following"].cwe == "CWE-59"


class TestTable2Semantics:
    def test_search_path_family_unsafe_is_adversary_accessible(self):
        cls = ATTACK_CLASSES["untrusted_search_path"]
        assert "accessible" in cls.unsafe_resource
        assert "inaccessible" in cls.safe_resource

    def test_traversal_family_is_inverted(self):
        """Rows 2: for traversal/link-following the *unsafe* resource is
        the adversary-inaccessible (high-value) one."""
        cls = ATTACK_CLASSES["directory_traversal"]
        assert "inaccessible" in cls.unsafe_resource

    def test_temporal_classes_need_trace_context(self):
        assert "syscall_trace" in ATTACK_CLASSES["toctou_race"].process_context
        assert "in_signal_handler" in ATTACK_CLASSES["signal_race"].process_context

    def test_spatial_classes_need_entrypoint_only(self):
        assert ATTACK_CLASSES["php_file_inclusion"].process_context == ("entrypoint",)


class TestScenarioCoverage:
    def test_every_class_has_a_runnable_scenario(self):
        """No taxonomy row is paper-ware: each has at least one scenario
        exercising it end to end."""
        from repro.attacks.exploits import EXPLOITS
        from tests.attacks.test_scenarios import ALL_SCENARIOS

        covered = {cls().attack_class if callable(cls) else cls.attack_class for cls in ALL_SCENARIOS}
        covered |= {scenario_cls.attack_class for scenario_cls in EXPLOITS.values()}
        assert set(ATTACK_CLASSES) <= covered

    def test_scenarios_reference_valid_classes(self):
        from repro.attacks.exploits import EXPLOITS

        for scenario_cls in EXPLOITS.values():
            assert scenario_cls.attack_class in ATTACK_CLASSES
