"""Property-based tests on filesystem invariants.

Random namespace-mutation sequences must preserve:

- every live inode is reachable from the root (no leaks);
- every directory entry points at a live inode (no dangling entries);
- inode numbers are unique among live inodes;
- nlink equals the number of directory entries referencing the inode.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import errors
from repro.vfs.filesystem import FileSystem
from repro.vfs.inode import FileType

NAMES = ["a", "b", "c", "d"]


@st.composite
def operation(draw):
    kind = draw(st.sampled_from(["create", "mkdir", "symlink", "link", "unlink", "rmdir", "rename"]))
    return (
        kind,
        draw(st.sampled_from(NAMES)),  # primary name
        draw(st.sampled_from(NAMES)),  # secondary name (link/rename)
        draw(st.integers(min_value=0, max_value=3)),  # directory selector
    )


def _directories(fs):
    """All live directory inodes, by tree walk from the root."""
    out = []
    stack = [fs.root]
    while stack:
        node = stack.pop()
        out.append(node)
        for ino in node.children.values():
            child = fs.inodes.get(ino)
            if child.is_dir:
                stack.append(child)
    return out


def _apply(fs, op):
    kind, name, other, dir_sel = op
    dirs = _directories(fs)
    parent = dirs[dir_sel % len(dirs)]
    try:
        if kind == "create":
            fs.create(parent, name, FileType.REG)
        elif kind == "mkdir":
            fs.create(parent, name, FileType.DIR)
        elif kind == "symlink":
            fs.symlink(parent, name, "/" + other)
        elif kind == "link":
            target = fs.lookup(parent, other)
            fs.hardlink(parent, name, target)
        elif kind == "unlink":
            fs.unlink(parent, name)
        elif kind == "rmdir":
            fs.rmdir(parent, name)
        elif kind == "rename":
            dirs2 = _directories(fs)
            dest = dirs2[(dir_sel + 1) % len(dirs2)]
            fs.rename(parent, name, dest, other)
    except errors.KernelError:
        pass  # invalid mutations must fail cleanly, never corrupt


def _check_invariants(fs):
    # Reachability + entry liveness + nlink accounting.
    entry_counts = {}
    seen_inos = set()
    stack = [(fs.root, ["/"])]
    visited = set()
    while stack:
        node, path = stack.pop()
        if node.ino in visited:
            continue
        visited.add(node.ino)
        seen_inos.add(node.ino)
        for name, ino in node.children.items():
            assert fs.inodes.is_live(ino), "dangling entry {} -> {}".format(name, ino)
            entry_counts[ino] = entry_counts.get(ino, 0) + 1
            child = fs.inodes.get(ino)
            seen_inos.add(ino)
            if child.is_dir:
                stack.append((child, path + [name]))

    live = {ino for ino in fs.inodes._live}
    assert live == seen_inos | {fs.root.ino}, "unreachable live inodes: {}".format(live - seen_inos)

    for ino, count in entry_counts.items():
        inode = fs.inodes.get(ino)
        assert inode.nlink == count, "inode {} nlink {} but {} entries".format(ino, inode.nlink, count)

    # Uniqueness among live numbers is structural (dict keys), but the
    # free list must never contain a live number.
    assert not (set(fs.inodes._free) & live)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(operation(), max_size=30))
def test_mutation_sequences_preserve_invariants(ops):
    fs = FileSystem(device=8)
    for op in ops:
        _apply(fs, op)
        _check_invariants(fs)


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(operation(), max_size=25), data=st.data())
def test_recycled_numbers_bump_generation(ops, data):
    fs = FileSystem(device=8)
    generations = {}  # ino -> highest generation seen
    for op in ops:
        _apply(fs, op)
        for ino, inode in fs.inodes._live.items():
            if ino in generations and inode.generation != generations[ino]:
                assert inode.generation > generations[ino]
            generations[ino] = inode.generation
