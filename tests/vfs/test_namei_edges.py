"""PathWalker edge semantics the walk-replay cache must reproduce.

Each edge case is pinned twice: once cold (dcache disabled) and once
through the cache (second resolution of the same key), asserting the
two produce identical ResolvedPath fields, step streams, and
exceptions.  A hypothesis differential drives random trees and random
paths through both walkers and requires byte-identical observables.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import errors
from repro.kernel import Kernel
from repro.vfs.namei import PathWalker, WalkEvent


def _build(dcache_on=True):
    k = Kernel()
    k.dcache.enabled = dcache_on
    k.mkdirs("/a/b/c")
    k.add_file("/a/b/c/leaf", b"leaf")
    k.add_file("/a/top", b"top")
    k.add_symlink("/a/link", "/a/b/c/leaf")
    k.add_symlink("/a/rel", "b/c")
    return k


def _observe_resolution(kernel, path, **kw):
    """Resolve and capture every observable: result fields, the step
    stream (as plain tuples), and any exception type+message."""
    seen = []
    try:
        r = kernel.walker.resolve(path, observer=seen.append, **kw)
    except errors.KernelError as exc:
        return {
            "error": (type(exc).__name__, exc.message),
            "steps": [(s.event.value, s.inode.ino if s.inode else None,
                       s.name, s.prefix, s.depth) for s in seen],
        }
    return {
        "inode": r.inode.ino if r.inode is not None else None,
        "parent": r.parent.ino if r.parent is not None else None,
        "name": r.name,
        "path": r.path,
        "symlinks_followed": r.symlinks_followed,
        "steps": [(s.event.value, s.inode.ino if s.inode else None,
                   s.name, s.prefix, s.depth) for s in r.steps],
        "observed": [(s.event.value, s.inode.ino if s.inode else None,
                      s.name, s.prefix, s.depth) for s in seen],
    }


def _pin_cached_vs_cold(path, **kw):
    """The core differential: cold walk == first cached walk == replay."""
    cold = _observe_resolution(_build(dcache_on=False), path, **kw)
    warm_kernel = _build(dcache_on=True)
    first = _observe_resolution(warm_kernel, path, **kw)
    replay = _observe_resolution(warm_kernel, path, **kw)
    assert first == cold
    assert replay == cold
    return cold


class TestEdgeSemantics:
    def test_dotdot_at_root_stays_root(self):
        r = _pin_cached_vs_cold("/../../a/top")
        assert r["path"] == "/a/top"

    def test_dotdot_at_start_of_relative_walk_stays_at_cwd(self):
        """Quirk pinned on purpose: a relative walk starts with empty
        ancestry, so a leading ".." stays at the cwd (like ".." at
        root), it does not ascend."""
        k = _build()
        cwd = k.lookup("/a/b")
        r1 = k.walker.resolve("../top", cwd=cwd, want_parent=True)
        r2 = k.walker.resolve("../top", cwd=cwd, want_parent=True)
        assert r1.parent is cwd and r2.parent is cwd
        assert r1.inode is None and r2.inode is None  # no /a/b/top

    def test_want_parent_with_trailing_dotdot_returns_dir_itself(self):
        """".." is consumed by the ancestry logic, so the FINAL branch
        returns the directory itself rather than a (parent, name) pair."""
        r = _pin_cached_vs_cold("/a/b/..", want_parent=True)
        assert r["steps"][-1][0] == WalkEvent.FINAL.value
        k = _build()
        resolved = k.walker.resolve("/a/b/..", want_parent=True)
        assert resolved.inode is k.lookup("/a")

    def test_terminal_symlink_nofollow_returns_link(self):
        r = _pin_cached_vs_cold("/a/link", follow_final=False)
        assert r["path"] == "/a/link"
        assert r["symlinks_followed"] == 0
        k = _build()
        assert k.walker.resolve("/a/link", follow_final=False).inode.is_symlink

    def test_terminal_symlink_followed(self):
        r = _pin_cached_vs_cold("/a/link", follow_final=True)
        assert r["path"] == "/a/b/c/leaf"
        assert r["symlinks_followed"] == 1
        events = [s[0] for s in r["steps"]]
        assert WalkEvent.SYMLINK_FOLLOW.value in events

    def test_relative_symlink_body_spliced(self):
        r = _pin_cached_vs_cold("/a/rel/leaf")
        assert r["path"] == "/a/b/c/leaf"

    def test_eloop_at_exactly_max_symlinks(self):
        """A chain of exactly max_symlinks resolves; one more is ELOOP —
        and the boundary is identical cold and cached."""
        for on in (False, True):
            k = Kernel()
            k.dcache.enabled = on
            k.add_file("/target", b"t")
            k.walker.max_symlinks = 5
            k.add_symlink("/l0", "/target")
            for i in range(1, 7):
                k.add_symlink("/l{}".format(i), "/l{}".format(i - 1))
            # l4 -> ... -> target: exactly 5 expansions, allowed.
            assert k.walker.resolve("/l4").inode is k.lookup("/target")
            assert k.walker.resolve("/l4").symlinks_followed == 5
            # l5 needs 6: ELOOP, both cold and on a would-be-warm rerun.
            with pytest.raises(errors.ELOOP):
                k.walker.resolve("/l5")
            with pytest.raises(errors.ELOOP):
                k.walker.resolve("/l5")

    def test_relative_path_cwd_prefix(self):
        k = _build()
        cwd = k.lookup("/a/b")
        r1 = k.walker.resolve("c/leaf", cwd=cwd)
        r2 = k.walker.resolve("c/leaf", cwd=cwd)
        for r in (r1, r2):
            assert r.path == "/<cwd>/c/leaf"
            assert r.steps[0].prefix == "/<cwd>"
        assert r1.inode is r2.inode is k.lookup("/a/b/c/leaf")

    def test_root_resolution(self):
        r = _pin_cached_vs_cold("/")
        assert r["name"] == ""
        assert r["path"] == "/"

    def test_empty_and_nonstring_paths_raise_einval(self):
        k = _build()
        for bad in ("", None, 42):
            with pytest.raises(errors.EINVAL):
                k.walker.resolve(bad)

    def test_relative_with_no_cwd_raises_einval(self):
        k = _build()
        with pytest.raises(errors.EINVAL):
            k.walker.resolve("a/top")

    def test_enotdir_through_file_component(self):
        r = _pin_cached_vs_cold("/a/top/below")
        assert r["error"][0] == "ENOTDIR"

    def test_step_pool_never_leaks_into_results(self):
        """Pooled steps are recycled only from observer-less error
        walks; successful resolutions keep their own live objects."""
        k = _build()
        for _ in range(3):
            with pytest.raises(errors.ENOENT):
                k.walker.resolve("/a/b/missing")
        assert len(k.walker._step_pool) > 0
        r = k.walker.resolve("/a/b/c/leaf")
        held = [(s.event, s.name, s.prefix) for s in r.steps]
        for _ in range(3):
            with pytest.raises(errors.ENOENT):
                k.walker.resolve("/a/b/missing")
        assert [(s.event, s.name, s.prefix) for s in r.steps] == held


# ---------------------------------------------------------------------------
# hypothesis differential: random trees, cached vs cold
# ---------------------------------------------------------------------------

_NAMES = ["a", "b", "c", "d", "ln"]


@st.composite
def tree_and_paths(draw):
    """A random small tree (dirs, files, symlinks) plus probe paths."""
    ops = draw(st.lists(st.tuples(
        st.sampled_from(["dir", "file", "link"]),
        st.lists(st.sampled_from(_NAMES), min_size=1, max_size=3),
        st.lists(st.sampled_from(_NAMES + ["..", "."]), min_size=1, max_size=3),
    ), min_size=1, max_size=8))
    probes = draw(st.lists(st.tuples(
        st.lists(st.sampled_from(_NAMES + ["..", "."]), min_size=1, max_size=4),
        st.booleans(),  # absolute?
        st.booleans(),  # follow_final
        st.booleans(),  # want_parent
    ), min_size=1, max_size=6))
    return ops, probes


def _populate(kernel, ops):
    for kind, where, target in ops:
        path = "/" + "/".join(where)
        try:
            if kind == "dir":
                kernel.mkdirs(path)
            elif kind == "file":
                kernel.mkdirs("/".join(["/" + where[0]] + where[1:-1]) if len(where) > 1 else "/")
                kernel.add_file(path, b"x")
            else:
                kernel.add_symlink(path, "/" + "/".join(target))
        except errors.KernelError:
            pass  # collisions/conflicts are fine; both sides get the same tree


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(tree_and_paths())
def test_random_trees_cached_equals_cold(spec):
    ops, probes = spec
    cold_kernel = Kernel()
    cold_kernel.dcache.enabled = False
    warm_kernel = Kernel()
    _populate(cold_kernel, ops)
    _populate(warm_kernel, ops)
    for parts, absolute, follow_final, want_parent in probes:
        path = ("/" if absolute else "") + "/".join(parts)
        kw = dict(follow_final=follow_final, want_parent=want_parent,
                  cwd=None if absolute else warm_kernel.fs.root)
        cold_kw = dict(kw, cwd=None if absolute else cold_kernel.fs.root)
        cold = _observe_resolution(cold_kernel, path, **cold_kw)
        # Twice on the warm side: first primes, second replays.
        first = _observe_resolution(warm_kernel, path, **kw)
        replay = _observe_resolution(warm_kernel, path, **kw)
        assert first == cold, path
        assert replay == cold, path
