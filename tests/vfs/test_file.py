"""Open file descriptions."""

import pytest

from repro import errors
from repro.vfs.file import OpenFile, OpenFlags
from repro.vfs.filesystem import FileSystem
from repro.vfs.inode import FileType


@pytest.fixture
def fs():
    return FileSystem()


def make_file(fs, data=b"hello world", flags=OpenFlags.O_RDWR):
    inode = fs.create(fs.root, "f", FileType.REG, exclusive=False)
    inode.data = data
    return OpenFile(inode, flags, "/f", fs.inodes)


class TestFlags:
    def test_rdonly_reads(self):
        assert OpenFlags.O_RDONLY.wants_read
        assert not OpenFlags.O_RDONLY.wants_write

    def test_wronly(self):
        assert OpenFlags.O_WRONLY.wants_write
        assert not OpenFlags.O_WRONLY.wants_read

    def test_rdwr(self):
        flags = OpenFlags.O_RDWR
        assert flags.wants_read and flags.wants_write

    def test_combined_flags_preserved(self):
        flags = OpenFlags.O_CREAT | OpenFlags.O_WRONLY | OpenFlags.O_EXCL
        assert flags & OpenFlags.O_CREAT
        assert flags.wants_write


class TestReadWrite:
    def test_read_all(self, fs):
        assert make_file(fs).read() == b"hello world"

    def test_read_sized_advances_offset(self, fs):
        f = make_file(fs)
        assert f.read(5) == b"hello"
        assert f.read(6) == b" world"

    def test_write_at_offset(self, fs):
        f = make_file(fs)
        f.write(b"HELLO")
        assert f.inode.data == b"HELLO world"

    def test_write_str_encodes(self, fs):
        f = make_file(fs, data=b"")
        f.write("text")
        assert f.inode.data == b"text"

    def test_append_mode(self, fs):
        f = make_file(fs, flags=OpenFlags.O_WRONLY | OpenFlags.O_APPEND)
        f.write(b"!")
        assert f.inode.data == b"hello world!"

    def test_write_extends(self, fs):
        f = make_file(fs, data=b"ab")
        f.read(2)
        f.write(b"cd")
        assert f.inode.data == b"abcd"

    def test_read_on_wronly_raises(self, fs):
        f = make_file(fs, flags=OpenFlags.O_WRONLY)
        with pytest.raises(errors.EBADF):
            f.read()

    def test_write_on_rdonly_raises(self, fs):
        f = make_file(fs, flags=OpenFlags.O_RDONLY)
        with pytest.raises(errors.EBADF):
            f.write(b"x")

    def test_read_directory_raises(self, fs):
        d = fs.create(fs.root, "d", FileType.DIR)
        f = OpenFile(d, OpenFlags.O_RDONLY, "/d", fs.inodes)
        with pytest.raises(errors.EISDIR):
            f.read()


class TestLifecycle:
    def test_open_increments_opens(self, fs):
        f = make_file(fs)
        assert f.inode.opens == 1

    def test_close_decrements(self, fs):
        f = make_file(fs)
        f.close()
        assert f.inode.opens == 0

    def test_double_close_harmless(self, fs):
        f = make_file(fs)
        f.close()
        f.close()
        assert f.inode.opens == 0

    def test_io_after_close_raises(self, fs):
        f = make_file(fs)
        f.close()
        with pytest.raises(errors.EBADF):
            f.read()
        with pytest.raises(errors.EBADF):
            f.write(b"x")

    def test_dup_needs_two_closes(self, fs):
        """Fork-inherited descriptors share the description."""
        f = make_file(fs)
        f.dup()
        f.close()
        assert not f.closed
        f.close()
        assert f.closed
        assert f.inode.opens == 0
