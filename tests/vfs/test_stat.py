"""Stat snapshots."""

import pytest

from repro.vfs.filesystem import FileSystem
from repro.vfs.inode import FileType
from repro.vfs.stat import StatResult


@pytest.fixture
def fs():
    return FileSystem(device=8)


class TestSnapshot:
    def test_fields_copied(self, fs):
        inode = fs.create(fs.root, "f", FileType.REG, uid=3, gid=4, mode=0o640)
        inode.data = b"12345"
        st = StatResult(inode)
        assert (st.st_uid, st.st_gid, st.st_mode, st.st_size) == (3, 4, 0o640, 5)
        assert st.st_dev == 8
        assert st.st_ino == inode.ino

    def test_snapshot_does_not_track_changes(self, fs):
        inode = fs.create(fs.root, "f", FileType.REG, mode=0o600)
        st = StatResult(inode)
        inode.mode = 0o777
        assert st.st_mode == 0o600

    def test_type_predicates(self, fs):
        reg = StatResult(fs.create(fs.root, "r", FileType.REG))
        lnk = StatResult(fs.symlink(fs.root, "l", "x"))
        dirent = StatResult(fs.create(fs.root, "d", FileType.DIR))
        assert reg.is_regular() and not reg.is_symlink()
        assert lnk.is_symlink() and not lnk.is_regular()
        assert dirent.is_dir()

    def test_setuid_predicate(self, fs):
        inode = fs.create(fs.root, "s", FileType.REG, mode=0o4755)
        assert StatResult(inode).is_setuid()


class TestIdentityComparison:
    def test_same_file_true_for_same_inode(self, fs):
        inode = fs.create(fs.root, "f", FileType.REG)
        assert StatResult(inode).same_file(StatResult(inode))

    def test_same_file_false_for_different(self, fs):
        a = StatResult(fs.create(fs.root, "a", FileType.REG))
        b = StatResult(fs.create(fs.root, "b", FileType.REG))
        assert not a.same_file(b)

    def test_same_file_fooled_by_recycling(self, fs):
        """The cryogenic-sleep property: (dev, ino) equality survives
        recycling even though the object changed."""
        victim = fs.create(fs.root, "v", FileType.REG)
        before = StatResult(victim)
        fs.unlink(fs.root, "v")
        planted = fs.create(fs.root, "planted", FileType.REG)
        after = StatResult(planted)
        assert before.same_file(after)
        assert before.st_generation != after.st_generation
