"""Inode table: allocation, recycling, generations, reference counts."""

import pytest

from repro import errors
from repro.vfs.inode import FileType, Inode, InodeTable


@pytest.fixture
def table():
    return InodeTable(device=8)


class TestAllocation:
    def test_numbers_are_unique_among_live(self, table):
        inodes = [table.alloc(FileType.REG) for _ in range(10)]
        assert len({i.ino for i in inodes}) == 10

    def test_alloc_sets_attributes(self, table):
        inode = table.alloc(FileType.REG, uid=7, gid=8, mode=0o640, label="etc_t")
        assert (inode.uid, inode.gid, inode.mode, inode.label) == (7, 8, 0o640, "etc_t")

    def test_device_stamped(self, table):
        assert table.alloc(FileType.REG).device == 8

    def test_directory_gets_children_dict(self, table):
        assert table.alloc(FileType.DIR).children == {}

    def test_regular_file_has_no_children(self, table):
        assert table.alloc(FileType.REG).children is None

    def test_get_live(self, table):
        inode = table.alloc(FileType.REG)
        assert table.get(inode.ino) is inode

    def test_get_dead_raises(self, table):
        with pytest.raises(errors.ENOENT):
            table.get(424242)

    def test_len_counts_live(self, table):
        table.alloc(FileType.REG)
        table.alloc(FileType.REG)
        assert len(table) == 2


class TestRecycling:
    def _make_linked(self, table):
        inode = table.alloc(FileType.REG)
        table.link_added(inode)
        return inode

    def test_unlinked_unopened_is_released(self, table):
        inode = self._make_linked(table)
        table.link_removed(inode)
        assert not table.is_live(inode.ino)

    def test_released_number_is_reused(self, table):
        inode = self._make_linked(table)
        old = inode.ino
        table.link_removed(inode)
        replacement = table.alloc(FileType.REG)
        assert replacement.ino == old

    def test_generation_bumps_on_reuse(self, table):
        inode = self._make_linked(table)
        gen = inode.generation
        table.link_removed(inode)
        replacement = table.alloc(FileType.REG)
        assert replacement.generation == gen + 1

    def test_open_pins_number(self, table):
        """While open, the inode number must not recycle (the property
        open_race's held-fd re-lstat depends on)."""
        inode = self._make_linked(table)
        table.opened(inode)
        table.link_removed(inode)
        assert table.is_live(inode.ino)
        replacement = table.alloc(FileType.REG)
        assert replacement.ino != inode.ino

    def test_close_after_unlink_releases(self, table):
        inode = self._make_linked(table)
        table.opened(inode)
        table.link_removed(inode)
        table.closed(inode)
        assert not table.is_live(inode.ino)

    def test_lowest_freed_number_reused_first(self, table):
        inodes = [self._make_linked(table) for _ in range(3)]
        for inode in inodes:
            table.link_removed(inode)
        fresh = table.alloc(FileType.REG)
        assert fresh.ino == min(i.ino for i in inodes)

    def test_hardlink_keeps_alive(self, table):
        inode = self._make_linked(table)
        table.link_added(inode)  # second name
        table.link_removed(inode)
        assert table.is_live(inode.ino)

    def test_nlink_underflow_rejected(self, table):
        inode = table.alloc(FileType.REG)
        with pytest.raises(errors.EINVAL):
            table.link_removed(inode)

    def test_open_underflow_rejected(self, table):
        inode = table.alloc(FileType.REG)
        with pytest.raises(errors.EINVAL):
            table.closed(inode)


class TestIdentity:
    def test_identity_is_dev_ino(self, table):
        inode = table.alloc(FileType.REG)
        assert inode.identity() == (8, inode.ino)

    def test_identity_ignores_generation(self, table):
        """(dev, ino) equality is deliberately generation-blind: the
        cryogenic-sleep attack depends on it."""
        inode = table.alloc(FileType.REG)
        table.link_added(inode)
        old_identity = inode.identity()
        table.link_removed(inode)
        recycled = table.alloc(FileType.REG)
        assert recycled.identity() == old_identity
        assert recycled.generation != inode.generation


class TestModeBits:
    def test_setuid(self):
        assert Inode(1, FileType.REG, mode=0o4755).is_setuid
        assert not Inode(1, FileType.REG, mode=0o755).is_setuid

    def test_setgid(self):
        assert Inode(1, FileType.REG, mode=0o2755).is_setgid

    def test_sticky(self):
        assert Inode(1, FileType.DIR, mode=0o1777).is_sticky
        assert not Inode(1, FileType.DIR, mode=0o777).is_sticky

    def test_symlink_flag(self):
        assert Inode(1, FileType.LNK).is_symlink
        assert not Inode(1, FileType.REG).is_symlink
