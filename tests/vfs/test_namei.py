"""Pathname resolution: component walking, symlinks, observers."""

import pytest

from repro import errors
from repro.vfs.filesystem import FileSystem
from repro.vfs.inode import FileType
from repro.vfs.namei import PathWalker, WalkEvent, split_path


@pytest.fixture
def fs():
    fs = FileSystem(device=8)
    etc = fs.create(fs.root, "etc", FileType.DIR, label="etc_t")
    fs.create(etc, "passwd", FileType.REG, label="etc_t")
    tmp = fs.create(fs.root, "tmp", FileType.DIR, mode=0o1777, label="tmp_t")
    fs.symlink(tmp, "link-abs", "/etc/passwd")
    fs.symlink(tmp, "link-rel", "../etc/passwd")
    fs.symlink(tmp, "dangling", "/no/such/file")
    fs.symlink(tmp, "loop-a", "/tmp/loop-b")
    fs.symlink(tmp, "loop-b", "/tmp/loop-a")
    return fs


@pytest.fixture
def walker(fs):
    return PathWalker(fs)


class TestSplitPath:
    def test_basic(self):
        assert split_path("/a/b/c") == ["a", "b", "c"]

    def test_drops_empty_and_dot(self):
        assert split_path("/a//./b/") == ["a", "b"]

    def test_keeps_dotdot(self):
        assert split_path("/a/../b") == ["a", "..", "b"]

    def test_empty_raises(self):
        with pytest.raises(errors.EINVAL):
            split_path("")

    def test_overlong_raises(self):
        with pytest.raises(errors.ENAMETOOLONG):
            split_path("/" + "a/" * 3000)


class TestBasicResolution:
    def test_resolve_file(self, walker, fs):
        resolved = walker.resolve("/etc/passwd")
        assert resolved.inode is fs.lookup(fs.lookup(fs.root, "etc"), "passwd")
        assert resolved.path == "/etc/passwd"

    def test_resolve_root(self, walker, fs):
        assert walker.resolve("/").inode is fs.root

    def test_missing_component_raises(self, walker):
        with pytest.raises(errors.ENOENT):
            walker.resolve("/etc/shadow")

    def test_nondir_intermediate_raises(self, walker):
        with pytest.raises(errors.ENOTDIR):
            walker.resolve("/etc/passwd/sub")

    def test_dotdot_walks_up(self, walker):
        resolved = walker.resolve("/etc/../etc/passwd")
        assert resolved.path == "/etc/passwd"

    def test_dotdot_at_root_stays(self, walker):
        resolved = walker.resolve("/../../etc/passwd")
        assert resolved.path == "/etc/passwd"

    def test_relative_needs_cwd(self, walker):
        with pytest.raises(errors.EINVAL):
            walker.resolve("etc/passwd")

    def test_relative_with_cwd(self, walker, fs):
        etc = fs.lookup(fs.root, "etc")
        resolved = walker.resolve("passwd", cwd=etc)
        assert resolved.inode.itype is FileType.REG


class TestSymlinks:
    def test_absolute_link_followed(self, walker):
        resolved = walker.resolve("/tmp/link-abs")
        assert resolved.path == "/etc/passwd"

    def test_relative_link_followed(self, walker):
        resolved = walker.resolve("/tmp/link-rel")
        assert resolved.path == "/etc/passwd"

    def test_nofollow_returns_link(self, walker):
        resolved = walker.resolve("/tmp/link-abs", follow_final=False)
        assert resolved.inode.is_symlink

    def test_intermediate_link_always_followed(self, walker, fs):
        fs.symlink(fs.root, "e", "/etc")
        resolved = walker.resolve("/e/passwd", follow_final=False)
        assert resolved.path == "/etc/passwd"
        assert not resolved.inode.is_symlink

    def test_dangling_raises_enoent(self, walker):
        with pytest.raises(errors.ENOENT):
            walker.resolve("/tmp/dangling")

    def test_loop_detected(self, walker):
        with pytest.raises(errors.ELOOP):
            walker.resolve("/tmp/loop-a")

    def test_symlinks_followed_counted(self, walker):
        assert walker.resolve("/tmp/link-abs").symlinks_followed == 1

    def test_chained_links(self, walker, fs):
        tmp = fs.lookup(fs.root, "tmp")
        fs.symlink(tmp, "chain1", "/tmp/link-abs")
        resolved = walker.resolve("/tmp/chain1")
        assert resolved.path == "/etc/passwd"
        assert resolved.symlinks_followed == 2


class TestWantParent:
    def test_existing_child(self, walker, fs):
        resolved = walker.resolve("/etc/passwd", want_parent=True)
        assert resolved.name == "passwd"
        assert resolved.parent is fs.lookup(fs.root, "etc")
        assert resolved.inode is not None

    def test_missing_child(self, walker, fs):
        resolved = walker.resolve("/etc/newfile", want_parent=True)
        assert resolved.inode is None
        assert resolved.parent is fs.lookup(fs.root, "etc")
        assert resolved.name == "newfile"

    def test_final_symlink_not_followed(self, walker):
        resolved = walker.resolve("/tmp/link-abs", want_parent=True)
        assert resolved.inode.is_symlink

    def test_missing_parent_raises(self, walker):
        with pytest.raises(errors.ENOENT):
            walker.resolve("/no/such/dir/file", want_parent=True)


class TestObserver:
    def test_lookup_events_per_component(self, walker):
        events = []
        walker.resolve("/etc/passwd", observer=events.append)
        kinds = [e.event for e in events]
        assert kinds.count(WalkEvent.LOOKUP) == 2

    def test_symlink_event_emitted(self, walker):
        events = []
        walker.resolve("/tmp/link-abs", observer=events.append)
        assert any(e.event is WalkEvent.SYMLINK_FOLLOW for e in events)

    def test_observer_can_abort(self, walker):
        def deny(step):
            if step.event is WalkEvent.SYMLINK_FOLLOW:
                raise errors.EACCES("no links here")

        with pytest.raises(errors.EACCES):
            walker.resolve("/tmp/link-abs", observer=deny)

    def test_final_event_last(self, walker):
        events = []
        walker.resolve("/etc/passwd", observer=events.append)
        assert events[-1].event is WalkEvent.FINAL

    def test_steps_recorded_on_result(self, walker):
        resolved = walker.resolve("/etc/passwd")
        assert len(resolved.steps) == 3  # 2 lookups + final
