"""Filesystem tree operations."""

import pytest

from repro import errors
from repro.vfs.filesystem import FileSystem
from repro.vfs.inode import FileType


@pytest.fixture
def fs():
    return FileSystem(device=8)


class TestCreate:
    def test_create_file(self, fs):
        inode = fs.create(fs.root, "passwd", FileType.REG)
        assert fs.lookup(fs.root, "passwd") is inode

    def test_create_sets_nlink(self, fs):
        inode = fs.create(fs.root, "f", FileType.REG)
        assert inode.nlink == 1

    def test_create_duplicate_raises(self, fs):
        fs.create(fs.root, "f", FileType.REG)
        with pytest.raises(errors.EEXIST):
            fs.create(fs.root, "f", FileType.REG)

    def test_create_nonexclusive_returns_existing(self, fs):
        first = fs.create(fs.root, "f", FileType.REG)
        again = fs.create(fs.root, "f", FileType.REG, exclusive=False)
        assert again is first

    def test_label_inherits_from_parent(self, fs):
        tmp = fs.create(fs.root, "tmp", FileType.DIR, label="tmp_t")
        child = fs.create(tmp, "x", FileType.REG)
        assert child.label == "tmp_t"

    def test_explicit_label_wins(self, fs):
        child = fs.create(fs.root, "x", FileType.REG, label="etc_t")
        assert child.label == "etc_t"

    def test_create_in_file_raises(self, fs):
        f = fs.create(fs.root, "f", FileType.REG)
        with pytest.raises(errors.ENOTDIR):
            fs.create(f, "child", FileType.REG)

    @pytest.mark.parametrize("bad", ["", ".", "..", "a/b"])
    def test_invalid_names_rejected(self, fs, bad):
        with pytest.raises(errors.EINVAL):
            fs.create(fs.root, bad, FileType.REG)

    def test_overlong_name_rejected(self, fs):
        with pytest.raises(errors.ENAMETOOLONG):
            fs.create(fs.root, "x" * 256, FileType.REG)


class TestSymlinkAndHardlink:
    def test_symlink_records_target(self, fs):
        link = fs.symlink(fs.root, "l", "/etc/passwd")
        assert link.symlink_target == "/etc/passwd"
        assert link.itype is FileType.LNK

    def test_symlink_mode_is_0777(self, fs):
        assert fs.symlink(fs.root, "l", "x").mode == 0o777

    def test_hardlink_shares_inode(self, fs):
        f = fs.create(fs.root, "a", FileType.REG)
        fs.hardlink(fs.root, "b", f)
        assert fs.lookup(fs.root, "b") is f
        assert f.nlink == 2

    def test_hardlink_to_directory_rejected(self, fs):
        d = fs.create(fs.root, "d", FileType.DIR)
        with pytest.raises(errors.EPERM):
            fs.hardlink(fs.root, "d2", d)

    def test_hardlink_existing_name_rejected(self, fs):
        f = fs.create(fs.root, "a", FileType.REG)
        fs.create(fs.root, "b", FileType.REG)
        with pytest.raises(errors.EEXIST):
            fs.hardlink(fs.root, "b", f)


class TestRemove:
    def test_unlink_removes_entry(self, fs):
        fs.create(fs.root, "f", FileType.REG)
        fs.unlink(fs.root, "f")
        assert not fs.exists(fs.root, "f")

    def test_unlink_missing_raises(self, fs):
        with pytest.raises(errors.ENOENT):
            fs.unlink(fs.root, "nope")

    def test_unlink_directory_raises(self, fs):
        fs.create(fs.root, "d", FileType.DIR)
        with pytest.raises(errors.EISDIR):
            fs.unlink(fs.root, "d")

    def test_rmdir_empty(self, fs):
        fs.create(fs.root, "d", FileType.DIR)
        fs.rmdir(fs.root, "d")
        assert not fs.exists(fs.root, "d")

    def test_rmdir_nonempty_raises(self, fs):
        d = fs.create(fs.root, "d", FileType.DIR)
        fs.create(d, "f", FileType.REG)
        with pytest.raises(errors.ENOTEMPTY):
            fs.rmdir(fs.root, "d")

    def test_rmdir_on_file_raises(self, fs):
        fs.create(fs.root, "f", FileType.REG)
        with pytest.raises(errors.ENOTDIR):
            fs.rmdir(fs.root, "f")

    def test_unlink_last_link_releases_inode(self, fs):
        f = fs.create(fs.root, "f", FileType.REG)
        fs.unlink(fs.root, "f")
        assert not fs.inodes.is_live(f.ino)


class TestRename:
    def test_rename_moves_entry(self, fs):
        f = fs.create(fs.root, "a", FileType.REG)
        d = fs.create(fs.root, "d", FileType.DIR)
        fs.rename(fs.root, "a", d, "b")
        assert fs.lookup(d, "b") is f
        assert not fs.exists(fs.root, "a")

    def test_rename_replaces_target_atomically(self, fs):
        """Replacement is one step — the adversary's symlink swap."""
        old = fs.create(fs.root, "target", FileType.REG)
        fs.symlink(fs.root, "swap", "/etc/shadow")
        fs.rename(fs.root, "swap", fs.root, "target")
        replaced = fs.lookup(fs.root, "target")
        assert replaced.is_symlink
        assert not fs.inodes.is_live(old.ino)

    def test_rename_missing_source_raises(self, fs):
        with pytest.raises(errors.ENOENT):
            fs.rename(fs.root, "nope", fs.root, "x")

    def test_rename_over_nonempty_dir_raises(self, fs):
        fs.create(fs.root, "src", FileType.REG)
        d = fs.create(fs.root, "dst", FileType.DIR)
        fs.create(d, "kid", FileType.REG)
        with pytest.raises(errors.ENOTEMPTY):
            fs.rename(fs.root, "src", fs.root, "dst")


class TestListing:
    def test_list_dir_sorted(self, fs):
        for name in ["zeta", "alpha", "mid"]:
            fs.create(fs.root, name, FileType.REG)
        assert fs.list_dir(fs.root) == ["alpha", "mid", "zeta"]

    def test_list_nondir_raises(self, fs):
        f = fs.create(fs.root, "f", FileType.REG)
        with pytest.raises(errors.ENOTDIR):
            fs.list_dir(f)

    def test_lookup_dot_is_self(self, fs):
        assert fs.lookup(fs.root, ".") is fs.root


class TestRenameCornerCases:
    """Regression tests for bugs found by the property suite."""

    def test_rename_onto_itself_is_noop(self, fs):
        f = fs.create(fs.root, "a", FileType.REG)
        fs.rename(fs.root, "a", fs.root, "a")
        assert fs.lookup(fs.root, "a") is f
        assert f.nlink == 1

    def test_rename_onto_own_hardlink_is_noop(self, fs):
        f = fs.create(fs.root, "a", FileType.REG)
        fs.hardlink(fs.root, "b", f)
        fs.rename(fs.root, "a", fs.root, "b")
        assert fs.exists(fs.root, "a") and fs.exists(fs.root, "b")
        assert f.nlink == 2

    def test_rename_directory_into_own_subtree_rejected(self, fs):
        d = fs.create(fs.root, "d", FileType.DIR)
        sub = fs.create(d, "sub", FileType.DIR)
        with pytest.raises(errors.EINVAL):
            fs.rename(fs.root, "d", sub, "inside")
        with pytest.raises(errors.EINVAL):
            fs.rename(fs.root, "d", d, "inside")

    def test_rename_directory_to_sibling_ok(self, fs):
        d = fs.create(fs.root, "d", FileType.DIR)
        e = fs.create(fs.root, "e", FileType.DIR)
        fs.rename(fs.root, "d", e, "moved")
        assert fs.lookup(e, "moved") is d
