"""Unit tests for the name-resolution fast path (repro.vfs.dcache).

The load-bearing section is the invalidation matrix: every mutation
the module docstring promises to catch (create / unlink / rename /
symlink / relabel / remount / adversary-epoch) must flip a cached
answer — either an observable resolution change or, where behaviour is
identical by construction, a counted invalidation proving the cached
entry was dropped rather than served.
"""

import pytest

from repro import errors
from repro.kernel import Kernel
from repro.vfs.dcache import Dcache, DentryCache, GenerationSources, WalkCache
from repro.vfs.inode import FileType


@pytest.fixture
def kernel():
    k = Kernel()
    k.mkdirs("/etc")
    k.add_file("/etc/passwd", b"root:x:0:0\n")
    k.mkdirs("/var/www")
    return k


def _resolve(kernel, path, **kw):
    return kernel.walker.resolve(path, **kw)


# ---------------------------------------------------------------------------
# dentry cache basics
# ---------------------------------------------------------------------------


class TestDentryCache:
    def test_positive_hit_serves_same_inode(self, kernel):
        first = _resolve(kernel, "/etc/passwd").inode
        second = _resolve(kernel, "/etc/passwd").inode
        assert second is first

    def test_shared_prefix_hits_dentry_layer(self, kernel):
        """Distinct paths share dentry entries even when their walk
        keys differ — the second walk misses the walk cache but finds
        (root, "etc") already cached."""
        kernel.add_file("/etc/other", b"y")
        _resolve(kernel, "/etc/passwd")
        hits_before = kernel.dcache.dentries.hits
        _resolve(kernel, "/etc/other")
        assert kernel.dcache.dentries.hits > hits_before

    def test_negative_entry_served_with_identical_error(self, kernel):
        with pytest.raises(errors.ENOENT) as cold:
            _resolve(kernel, "/etc/nope")
        neg_before = kernel.dcache.dentries.neg_hits
        with pytest.raises(errors.ENOENT) as warm:
            _resolve(kernel, "/etc/nope")
        assert kernel.dcache.dentries.neg_hits == neg_before + 1
        assert warm.value.message == cold.value.message

    def test_lookup_semantics_match_fs(self, kernel):
        etc = kernel.lookup("/etc")
        passwd = kernel.lookup("/etc/passwd")
        dc = kernel.dcache
        assert dc.lookup(kernel.fs, etc, ".") is etc
        with pytest.raises(errors.ENOTDIR):
            dc.lookup(kernel.fs, passwd, "x")

    def test_capacity_wholesale_clear(self, kernel):
        small = DentryCache(capacity=2)
        etc = kernel.lookup("/etc")
        root = kernel.fs.root
        small.lookup(kernel.fs, root, "etc")
        small.lookup(kernel.fs, etc, "passwd")
        assert len(small) == 2
        small.lookup(kernel.fs, root, "var")  # over capacity: clears first
        assert len(small) == 1


# ---------------------------------------------------------------------------
# walk cache basics
# ---------------------------------------------------------------------------


class TestWalkCache:
    def test_hit_after_identical_resolve(self, kernel):
        _resolve(kernel, "/etc/passwd")
        hits = kernel.dcache.walks.hits
        r = _resolve(kernel, "/etc/passwd")
        assert kernel.dcache.walks.hits == hits + 1
        assert r.path == "/etc/passwd"

    def test_replay_returns_fresh_equal_resolution(self, kernel):
        cold = _resolve(kernel, "/etc/passwd")
        warm = _resolve(kernel, "/etc/passwd")
        assert warm.inode is cold.inode
        assert warm.parent is cold.parent
        assert (warm.name, warm.path, warm.symlinks_followed) == (
            cold.name, cold.path, cold.symlinks_followed)
        assert [(s.event, s.inode, s.name, s.prefix, s.depth) for s in warm.steps] == [
            (s.event, s.inode, s.name, s.prefix, s.depth) for s in cold.steps]
        # Fresh list container: mutating one caller's view cannot leak.
        assert warm.steps is not cold.steps
        warm.steps.append(None)
        assert _resolve(kernel, "/etc/passwd").steps[-1] is not None

    def test_replay_invokes_observer_identically(self, kernel):
        cold_seen = []
        _resolve(kernel, "/etc/passwd", observer=cold_seen.append)
        warm_seen = []
        _resolve(kernel, "/etc/passwd", observer=warm_seen.append)
        assert [(s.event, s.name, s.prefix, s.depth) for s in warm_seen] == [
            (s.event, s.name, s.prefix, s.depth) for s in cold_seen]

    def test_observer_exception_aborts_mid_replay(self, kernel):
        _resolve(kernel, "/etc/passwd")  # prime

        seen = []

        def deny_second(step):
            seen.append(step)
            if len(seen) == 2:
                raise errors.PFDenied("stop here")

        with pytest.raises(errors.PFDenied):
            _resolve(kernel, "/etc/passwd", observer=deny_second)
        assert len(seen) == 2  # aborted exactly at the denied step

    def test_key_discriminates_flags(self, kernel):
        kernel.add_symlink("/etc/link", "/etc/passwd")
        followed = _resolve(kernel, "/etc/link", follow_final=True)
        nofollow = _resolve(kernel, "/etc/link", follow_final=False)
        assert followed.inode is not nofollow.inode
        assert nofollow.inode.is_symlink
        parent = _resolve(kernel, "/etc/link", want_parent=True)
        assert parent.parent is kernel.lookup("/etc")

    def test_relative_key_includes_cwd_identity(self, kernel):
        etc = kernel.lookup("/etc")
        var = kernel.lookup("/var")
        kernel.add_file("/var/passwd", b"decoy")
        proc_a = kernel.spawn("a", cwd="/etc")
        proc_b = kernel.spawn("b", cwd="/var")
        ra = _resolve(kernel, "passwd", cwd=proc_a.cwd)
        rb = _resolve(kernel, "passwd", cwd=proc_b.cwd)
        assert ra.inode is not rb.inode
        assert ra.parent is etc and rb.parent is var

    def test_error_walks_never_memoized(self, kernel):
        with pytest.raises(errors.ENOENT):
            _resolve(kernel, "/etc/missing/deep")
        assert len(kernel.dcache.walks) == 0 or all(
            k[0] != "/etc/missing/deep" for k in kernel.dcache.walks._entries)

    def test_disabled_goes_cold(self, kernel):
        _resolve(kernel, "/etc/passwd")
        kernel.dcache.enabled = False
        hits = kernel.dcache.walks.hits
        dhits = kernel.dcache.dentries.hits
        _resolve(kernel, "/etc/passwd")
        assert kernel.dcache.walks.hits == hits
        assert kernel.dcache.dentries.hits == dhits


# ---------------------------------------------------------------------------
# the invalidation matrix — every source flips a cached answer
# ---------------------------------------------------------------------------


class TestInvalidationMatrix:
    def test_create_flips_negative_dentry(self, kernel):
        with pytest.raises(errors.ENOENT):
            _resolve(kernel, "/etc/newfile")
        with pytest.raises(errors.ENOENT):
            _resolve(kernel, "/etc/newfile")  # negative entry is live
        inode = kernel.add_file("/etc/newfile", b"now exists")
        assert _resolve(kernel, "/etc/newfile").inode is inode

    def test_unlink_flips_positive_walk_and_dentry(self, kernel):
        inode = _resolve(kernel, "/etc/passwd").inode
        assert _resolve(kernel, "/etc/passwd").inode is inode
        kernel.fs.unlink(kernel.lookup("/etc"), "passwd")
        with pytest.raises(errors.ENOENT):
            _resolve(kernel, "/etc/passwd")

    def test_unlinked_then_recycled_ino_never_served(self, kernel):
        etc = kernel.lookup("/etc")
        victim = kernel.add_file("/etc/victim", b"old tenant")
        old_ino = victim.ino
        _resolve(kernel, "/etc/victim")
        kernel.fs.unlink(etc, "victim")
        # The inode table recycles the lowest freed number.
        tenant = kernel.fs.create(etc, "tenant", FileType.REG)
        assert tenant.ino == old_ino  # same number, new object
        with pytest.raises(errors.ENOENT):
            _resolve(kernel, "/etc/victim")
        assert _resolve(kernel, "/etc/tenant").inode is tenant

    def test_rename_flips_both_names(self, kernel):
        inode = _resolve(kernel, "/etc/passwd").inode
        with pytest.raises(errors.ENOENT):
            _resolve(kernel, "/etc/passwd.bak")
        etc = kernel.lookup("/etc")
        kernel.fs.rename(etc, "passwd", etc, "passwd.bak")
        with pytest.raises(errors.ENOENT):
            _resolve(kernel, "/etc/passwd")
        assert _resolve(kernel, "/etc/passwd.bak").inode is inode

    def test_symlink_swap_changes_cached_resolution(self, kernel):
        """The E3/E5 pattern: replacing a link retargets the next walk."""
        kernel.add_file("/var/www/good", b"good")
        kernel.add_file("/etc/shadow", b"secret", mode=0o600, label="shadow_t")
        kernel.add_symlink("/var/www/upload", "/var/www/good")
        good = _resolve(kernel, "/var/www/upload").inode
        assert good is kernel.lookup("/var/www/good")
        www = kernel.lookup("/var/www")
        kernel.fs.unlink(www, "upload")
        kernel.fs.symlink(www, "upload", "/etc/shadow")
        swapped = _resolve(kernel, "/var/www/upload").inode
        assert swapped is kernel.lookup("/etc/shadow")

    def test_relabel_drops_cached_walks(self, kernel):
        passwd = _resolve(kernel, "/etc/passwd").inode
        hits = kernel.dcache.walks.hits
        inval = kernel.dcache.walks.invalidations
        kernel.fs.relabel(passwd, "shadow_t")
        _resolve(kernel, "/etc/passwd")  # must re-walk cold
        assert kernel.dcache.walks.hits == hits
        assert kernel.dcache.walks.invalidations == inval + 1

    def test_remount_clears_both_caches(self, kernel):
        _resolve(kernel, "/etc/passwd")
        assert len(kernel.dcache.dentries) > 0
        assert len(kernel.dcache.walks) > 0
        kernel.fs.remount()
        assert len(kernel.dcache.dentries) == 0
        assert len(kernel.dcache.walks) == 0
        hits = kernel.dcache.walks.hits
        _resolve(kernel, "/etc/passwd")
        assert kernel.dcache.walks.hits == hits  # cold again

    def test_adversary_epoch_drops_cached_walks(self, kernel):
        _resolve(kernel, "/etc/passwd")
        hits = kernel.dcache.walks.hits
        inval = kernel.dcache.walks.invalidations
        kernel.adversaries.register_uid(4242)  # population grows: new epoch
        _resolve(kernel, "/etc/passwd")
        assert kernel.dcache.walks.hits == hits
        assert kernel.dcache.walks.invalidations == inval + 1

    def test_hardlink_and_rmdir_flip_entries(self, kernel):
        etc = kernel.lookup("/etc")
        with pytest.raises(errors.ENOENT):
            _resolve(kernel, "/etc/alias")
        kernel.fs.hardlink(etc, "alias", kernel.lookup("/etc/passwd"))
        assert _resolve(kernel, "/etc/alias").inode is kernel.lookup("/etc/passwd")
        kernel.mkdirs("/etc/empty")
        assert _resolve(kernel, "/etc/empty").inode.is_dir
        kernel.fs.rmdir(etc, "empty")
        with pytest.raises(errors.ENOENT):
            _resolve(kernel, "/etc/empty")

    def test_chmod_does_not_invalidate(self, kernel):
        """Verdicts re-run live on replay, so chmod needs no stamp bump."""
        _resolve(kernel, "/etc/passwd")
        inval = kernel.dcache.walks.invalidations
        gen = kernel.fs.ns_gen
        kernel.fs.chmod(kernel.lookup("/etc/passwd"), 0o600)
        hits = kernel.dcache.walks.hits
        _resolve(kernel, "/etc/passwd")
        assert kernel.fs.ns_gen == gen
        assert kernel.dcache.walks.invalidations == inval
        assert kernel.dcache.walks.hits == hits + 1


# ---------------------------------------------------------------------------
# stamps, counters, publish
# ---------------------------------------------------------------------------


class TestStampsAndCounters:
    def test_generation_sources_shared_with_rescache(self, kernel):
        assert kernel.generations.fs is kernel.fs
        assert kernel.generations.adversaries is kernel.adversaries
        epoch, mount = kernel.generations.shared_stamp()
        assert epoch == kernel.adversaries.epoch
        assert mount == kernel.fs.mount_generation
        ns, mnt, ep = kernel.generations.walk_stamp()
        assert (ns, mnt, ep) == (kernel.fs.ns_gen, kernel.fs.mount_generation,
                                 kernel.adversaries.epoch)

    def test_walk_stamp_without_adversaries(self, kernel):
        gens = GenerationSources(kernel.fs, None)
        assert gens.walk_stamp()[2] == 0
        assert gens.shared_stamp()[0] == 0

    def test_counters_shape(self, kernel):
        _resolve(kernel, "/etc/passwd")
        _resolve(kernel, "/etc/passwd")
        rows = kernel.dcache.counters()
        assert rows[("walk", "hit")] >= 1
        assert rows[("dentry", "miss")] >= 1
        assert set(cache for cache, _ in rows) == {"dentry", "walk"}

    def test_publish_exports_family(self, kernel):
        from repro.obs.metrics import MetricsRegistry

        _resolve(kernel, "/etc/passwd")
        _resolve(kernel, "/etc/passwd")
        registry = MetricsRegistry()
        registry.enable()
        kernel.dcache.publish(registry)
        assert registry.value("pf_dcache_total",
                              {"cache": "walk", "result": "hit"}) >= 1
        assert registry.value("pf_dcache_entries", {"cache": "dentry"}) >= 1

    def test_walk_cache_capacity_clears(self):
        wc = WalkCache(capacity=1)
        stamp = (0, 0, 0)
        from repro.vfs.namei import ResolvedPath
        r = ResolvedPath(None, None, "x", "/x", [], 0)
        wc.store(("a",), stamp, r)
        wc.store(("b",), stamp, r)  # over capacity: wholesale clear
        assert wc.fetch(("a",), stamp) is None
