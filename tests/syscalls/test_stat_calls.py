"""stat / lstat / fstat / readlink / access."""

import pytest

from repro import errors
from repro.vfs.file import OpenFlags


@pytest.fixture
def sys(world):
    return world.sys


@pytest.fixture
def linked(world, adversary):
    world.sys.symlink(adversary, "/etc/passwd", "/tmp/link")
    return "/tmp/link"


class TestStatFamily:
    def test_stat_follows(self, world, root, sys, linked):
        st = sys.stat(root, linked)
        assert st.is_regular()

    def test_lstat_does_not_follow(self, world, root, sys, linked):
        st = sys.lstat(root, linked)
        assert st.is_symlink()

    def test_fstat_matches_open_file(self, world, root, sys):
        fd = sys.open(root, "/etc/passwd")
        st = sys.fstat(root, fd)
        assert st.identity() == world.lookup("/etc/passwd").identity()

    def test_stat_missing_raises(self, root, sys):
        with pytest.raises(errors.ENOENT):
            sys.stat(root, "/etc/missing")

    def test_fstat_bad_fd(self, root, sys):
        with pytest.raises(errors.EBADF):
            sys.fstat(root, 77)


class TestReadlink:
    def test_returns_target(self, root, sys, linked):
        assert sys.readlink(root, linked) == "/etc/passwd"

    def test_on_regular_file_raises(self, root, sys):
        with pytest.raises(errors.EINVAL):
            sys.readlink(root, "/etc/passwd")

    def test_missing_raises(self, root, sys):
        with pytest.raises(errors.ENOENT):
            sys.readlink(root, "/tmp/none")


class TestAccess:
    def test_access_checks_real_uid(self, world, sys):
        """The setuid trap: access() answers for the REAL uid."""
        setuid = world.spawn("tool", uid=1000, label="unconfined_t", binary_path="/bin/sh")
        setuid.creds.euid = 0
        world.add_file("/tmp/rootonly", b"x", uid=0, mode=0o600)
        # euid 0 could open it, but access says no for uid 1000:
        with pytest.raises(errors.EACCES):
            sys.access(setuid, "/tmp/rootonly", "r")
        fd = sys.open(setuid, "/tmp/rootonly")  # open succeeds
        assert fd >= 3

    def test_access_allows_real_owner(self, world, adversary, sys):
        world.add_file("/tmp/users", b"x", uid=1000, mode=0o600)
        assert sys.access(adversary, "/tmp/users", "w")

    def test_access_missing_raises(self, root, sys):
        with pytest.raises(errors.ENOENT):
            sys.access(root, "/tmp/none", "r")
