"""Regressions: firewall state and signals across fork/execve.

The two bugs this file pins:

- ``fork()`` used to drop ``proc.pf_state`` entirely, so a STATE
  invariant recorded by the parent (the TOCTTOU template's check
  identity) silently stopped protecting forked workers — the missing
  key never matches, which reads as an allow;
- ``execve()`` used to rebuild ``proc.signals`` keeping only the
  blocked set, discarding pending signals, while POSIX keeps pending
  signals across exec (only caught dispositions reset).
"""

import pytest

from repro import errors
from repro.firewall.engine import EngineConfig, ProcessFirewall
from repro.proc import signals as sig
from repro.world import build_world, spawn_root_shell

#: The dbus TOCTTOU template: record the socket inode at bind, drop a
#: setattr whose current inode no longer matches the recorded one.
STATE_RULES = (
    "pftables -A input -o SOCKET_BIND -j STATE --set --key 0xbeef --value C_INO",
    "pftables -A input -o SOCKET_SETATTR -m STATE --key 0xbeef --cmp C_INO --nequal -j DROP",
)


def _state_world(mode="cow"):
    kernel = build_world()
    firewall = ProcessFirewall(EngineConfig.compiled())
    kernel.attach_firewall(firewall)
    kernel.fork_state_mode = mode
    for text in STATE_RULES:
        firewall.install(text)
    return kernel, firewall


class TestForkStateInheritance:
    @pytest.mark.parametrize("mode", ["cow", "eager"])
    def test_state_rule_set_pre_fork_changes_child_verdict(self, mode):
        """The regression: a STATE invariant recorded before fork must
        flip the *child's* verdict on the protected operation."""
        kernel, _ = _state_world(mode)
        parent = kernel.sys.fork(spawn_root_shell(kernel))
        kernel.sys.bind(parent, "/tmp/decoy.sock")
        kernel.sys.bind(parent, "/tmp/real.sock")  # records real.sock's inode
        child = kernel.sys.fork(parent)
        # Without inheritance the key is absent, STATE never matches,
        # and this chmod of the wrong socket would be allowed.
        with pytest.raises(errors.PFDenied):
            kernel.sys.chmod(child, "/tmp/decoy.sock", 0o600)
        # The recorded socket itself still matches the invariant.
        kernel.sys.chmod(child, "/tmp/real.sock", 0o600)

    def test_child_write_does_not_leak_into_parent(self):
        kernel, _ = _state_world()
        parent = spawn_root_shell(kernel)
        kernel.sys.bind(parent, "/tmp/parent.sock")
        recorded = dict(parent.pf.state)
        child = kernel.sys.fork(parent)
        kernel.sys.bind(child, "/tmp/child.sock")  # child's STATE write
        assert dict(parent.pf.state) == recorded
        # And the parent's invariant still drops the now-mismatched
        # chmod in the *child*, while the parent remains consistent.
        with pytest.raises(errors.PFDenied):
            kernel.sys.chmod(child, "/tmp/parent.sock", 0o600)
        kernel.sys.chmod(parent, "/tmp/parent.sock", 0o600)

    def test_parent_write_after_fork_does_not_leak_into_child(self):
        kernel, _ = _state_world()
        parent = spawn_root_shell(kernel)
        kernel.sys.bind(parent, "/tmp/old.sock")
        child = kernel.sys.fork(parent)
        kernel.sys.bind(parent, "/tmp/new.sock")  # parent moves on
        # The child still holds the pre-fork snapshot: old.sock matches.
        kernel.sys.chmod(child, "/tmp/old.sock", 0o600)
        with pytest.raises(errors.PFDenied):
            kernel.sys.chmod(child, "/tmp/new.sock", 0o600)

    def test_execve_clears_inherited_state(self, world):
        root = spawn_root_shell(world)
        root.pf.state["k"] = 1
        child = world.sys.fork(root)
        world.sys.execve(child, "/bin/sh")
        assert dict(child.pf.state) == {}
        assert dict(root.pf.state) == {"k": 1}


class TestDecisionCacheDivergence:
    def _warm_world(self):
        kernel, firewall = _state_world()
        # An entrypoint rule so FILE_GETATTR memoizes head sets.
        firewall.install("pftables -A input -i 0x2d637 -p /bin/sh -o FILE_GETATTR -j DROP")
        proc = spawn_root_shell(kernel)
        for _ in range(2):
            kernel.sys.stat(proc, "/etc/passwd")
        assert proc.pf_decision_cache is not None
        return kernel, proc

    def test_parent_and_child_caches_diverge_independently(self):
        kernel, parent = self._warm_world()
        child = kernel.sys.fork(parent)
        assert child.pf_decision_cache[1] is parent.pf_decision_cache[1]
        # Child memoizes a new entrypoint head: its cache forks off.
        child.call(child.binary, 0x1)
        kernel.sys.stat(child, "/etc/passwd")
        child_entries = child.pf_decision_cache[1]
        parent_entries = parent.pf_decision_cache[1]
        assert child_entries is not parent_entries
        child_heads = next(v for v in child_entries.values() if v is not True)
        parent_heads = next(v for v in parent_entries.values() if v is not True)
        assert ("/bin/sh", 0x1) in child_heads
        assert ("/bin/sh", 0x1) not in parent_heads
        # Divergence is symmetric: the parent keeps memoizing into its
        # own (now private) entries without touching the child's.
        parent.call(parent.binary, 0x2)
        kernel.sys.stat(parent, "/etc/passwd")
        assert ("/bin/sh", 0x2) in parent_heads or ("/bin/sh", 0x2) in next(
            v for v in parent.pf_decision_cache[1].values() if v is not True
        )
        assert ("/bin/sh", 0x2) not in child_heads

    def test_state_target_in_child_invalidates_only_child(self):
        kernel, parent = self._warm_world()
        child = kernel.sys.fork(parent)
        kernel.sys.bind(child, "/tmp/c.sock")  # STATE target fires in child
        assert child.pf_decision_cache is None
        assert parent.pf_decision_cache is not None


class TestExecvePendingSignals:
    def test_pending_blocked_signal_survives_exec(self, world, root):
        """The regression: a blocked-then-raised signal must still be
        pending after execve, not silently discarded."""
        sys = world.sys
        other = world.sys.fork(root)
        sys.sigprocmask(root, block=[sig.SIGTERM])
        sys.kill(other, root.pid, sig.SIGTERM)
        assert (other.pid, sig.SIGTERM) in root.signals.pending
        sys.execve(root, "/bin/sh")
        assert (other.pid, sig.SIGTERM) in root.signals.pending
        assert root.signals.is_blocked(sig.SIGTERM)

    def test_caught_disposition_still_resets(self, world, root):
        sys = world.sys
        sys.sigaction(root, sig.SIGUSR1, handler_pc=0x100)
        sys.sigprocmask(root, block=[sig.SIGUSR1])
        sys.kill(root, root.pid, sig.SIGUSR1)
        sys.execve(root, "/bin/sh")
        # Pending survives, but the handler registration does not.
        assert any(signum == sig.SIGUSR1 for _, signum in root.signals.pending)
        assert not root.signals.disposition(sig.SIGUSR1).is_handled
