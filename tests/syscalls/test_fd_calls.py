"""dup / dup2 / lseek / ftruncate / umask / mkfifo."""

import pytest

from repro import errors
from repro.vfs.file import OpenFlags
from repro.vfs.inode import FileType


@pytest.fixture
def sys(world):
    return world.sys


class TestDup:
    def test_dup_shares_offset(self, world, root, sys):
        fd = sys.open(root, "/etc/passwd")
        fd2 = sys.dup(root, fd)
        sys.read(root, fd, 4)
        # Shared description: the duplicate sees the advanced offset.
        assert root.get_fd(fd2).offset == 4

    def test_dup_survives_one_close(self, world, root, sys):
        fd = sys.open(root, "/etc/passwd")
        fd2 = sys.dup(root, fd)
        sys.close(root, fd)
        assert sys.read(root, fd2, 4) == b"root"

    def test_dup_bad_fd(self, root, sys):
        with pytest.raises(errors.EBADF):
            sys.dup(root, 99)

    def test_dup2_replaces_target(self, world, root, sys):
        fd_a = sys.open(root, "/etc/passwd")
        fd_b = sys.open(root, "/etc/ld.so.conf")
        inode_b = root.get_fd(fd_b).inode
        sys.dup2(root, fd_a, fd_b)
        assert root.get_fd(fd_b).inode is root.get_fd(fd_a).inode
        assert inode_b.opens == 0  # old description fully closed

    def test_dup2_same_fd_noop(self, world, root, sys):
        fd = sys.open(root, "/etc/passwd")
        assert sys.dup2(root, fd, fd) == fd
        assert sys.read(root, fd, 4) == b"root"


class TestLseek:
    def test_set_and_read(self, world, root, sys):
        world.add_file("/tmp/f", b"0123456789")
        fd = sys.open(root, "/tmp/f")
        sys.lseek(root, fd, 5)
        assert sys.read(root, fd) == b"56789"

    def test_cur_and_end(self, world, root, sys):
        world.add_file("/tmp/f", b"0123456789")
        fd = sys.open(root, "/tmp/f")
        sys.lseek(root, fd, 2)
        assert sys.lseek(root, fd, 2, whence="cur") == 4
        assert sys.lseek(root, fd, -3, whence="end") == 7

    def test_negative_rejected(self, world, root, sys):
        fd = sys.open(root, "/etc/passwd")
        with pytest.raises(errors.EINVAL):
            sys.lseek(root, fd, -1)

    def test_bad_whence(self, world, root, sys):
        fd = sys.open(root, "/etc/passwd")
        with pytest.raises(errors.EINVAL):
            sys.lseek(root, fd, 0, whence="sideways")


class TestFtruncate:
    def test_shrink(self, world, root, sys):
        world.add_file("/tmp/f", b"0123456789")
        fd = sys.open(root, "/tmp/f", flags=OpenFlags.O_RDWR)
        sys.ftruncate(root, fd, 4)
        assert world.lookup("/tmp/f").data == b"0123"

    def test_grow_zero_fills(self, world, root, sys):
        world.add_file("/tmp/f", b"ab")
        fd = sys.open(root, "/tmp/f", flags=OpenFlags.O_RDWR)
        sys.ftruncate(root, fd, 5)
        assert world.lookup("/tmp/f").data == b"ab\x00\x00\x00"

    def test_readonly_rejected(self, world, root, sys):
        fd = sys.open(root, "/etc/passwd")
        with pytest.raises(errors.EBADF):
            sys.ftruncate(root, fd, 0)

    def test_mediated_as_setattr(self, world, root, sys, firewall):
        firewall.install("pftables -A input -o FILE_SETATTR -j LOG")
        world.add_file("/tmp/f", b"x")
        fd = sys.open(root, "/tmp/f", flags=OpenFlags.O_RDWR)
        sys.ftruncate(root, fd, 0)
        assert any(r["op"] == "FILE_SETATTR" for r in firewall.log_records)


class TestUmaskAndFifo:
    def test_umask_applied_to_creates(self, world, root, sys):
        assert sys.umask(root, 0o077) == 0o022
        sys.open(root, "/tmp/secretish", flags=OpenFlags.O_CREAT, mode=0o666)
        assert world.lookup("/tmp/secretish").mode & 0o777 == 0o600

    def test_mkfifo_creates_fifo(self, world, root, sys):
        inode = sys.mkfifo(root, "/tmp/pipe")
        assert inode.itype is FileType.FIFO

    def test_mkfifo_squat_eexist(self, world, root, adversary, sys):
        sys.mkfifo(adversary, "/tmp/pipe", mode=0o666)
        with pytest.raises(errors.EEXIST):
            sys.mkfifo(root, "/tmp/pipe")

    def test_fifo_squat_blocked_by_adversary_rule(self, world, root, adversary, sys, firewall):
        """A victim that opens an existing FIFO instead of failing can
        be protected by an adversary-accessibility rule."""
        firewall.install(
            "pftables -A input -o FILE_OPEN -m ADVERSARY --writable -j DROP"
        )
        sys.mkfifo(adversary, "/tmp/pipe", mode=0o666)
        with pytest.raises(errors.PFDenied):
            sys.open(root, "/tmp/pipe")
