"""fork / execve / exit / setuid / mmap."""

import pytest

from repro import errors
from repro.vfs.file import OpenFlags


@pytest.fixture
def sys(world):
    return world.sys


class TestFork:
    def test_child_gets_new_pid(self, world, root, sys):
        child = sys.fork(root)
        assert child.pid != root.pid
        assert child.ppid == root.pid

    def test_child_shares_open_files(self, world, root, sys):
        fd = sys.open(root, "/etc/passwd")
        child = sys.fork(root)
        assert sys.read(child, fd) == sys.read(root, fd) or True  # offset shared
        # Closing in the child must not kill the parent's descriptor.
        sys.close(child, fd)
        assert sys.read(root, fd) is not None

    def test_child_copies_credentials(self, world, adversary, sys):
        child = sys.fork(adversary)
        assert child.creds.uid == adversary.creds.uid
        child.creds.euid = 0
        assert adversary.creds.euid == 1000

    def test_child_copies_stack(self, world, root, sys):
        root.stack.push(0x1)
        child = sys.fork(root)
        assert child.stack.depth == 1
        child.stack.pop()
        assert root.stack.depth == 1

    def test_child_registered(self, world, root, sys):
        child = sys.fork(root)
        assert world.get_process(child.pid) is child


class TestExecve:
    def test_execve_replaces_image(self, world, root, sys):
        old_base = root.binary.base
        sys.execve(root, "/usr/bin/php5")
        assert root.binary.path == "/usr/bin/php5"
        assert root.comm == "php5"

    def test_execve_clears_stack_and_state(self, world, root, sys):
        root.stack.push(0x1)
        root.pf_state["key"] = 1
        sys.execve(root, "/bin/sh")
        assert root.stack.depth == 0
        assert root.pf_state == {}

    def test_execve_setuid_binary_raises_euid(self, world, adversary, sys):
        world.add_file("/usr/bin/sudo-like", b"\x7fELF", uid=0, mode=0o4755, label="bin_t")
        sys.execve(adversary, "/usr/bin/sudo-like")
        assert adversary.creds.euid == 0
        assert adversary.creds.uid == 1000

    def test_execve_requires_x(self, world, adversary, sys):
        world.add_file("/tmp/noexec", b"x", uid=0, mode=0o644)
        with pytest.raises(errors.EACCES):
            sys.execve(adversary, "/tmp/noexec")

    def test_execve_missing_raises(self, root, sys):
        with pytest.raises(errors.ENOENT):
            sys.execve(root, "/bin/none")


class TestExit:
    def test_exit_reaps(self, world, root, sys):
        child = sys.fork(root)
        sys.exit(child, 3)
        assert not child.alive
        assert child.exit_code == 3
        with pytest.raises(errors.ESRCH):
            world.get_process(child.pid)

    def test_exit_closes_fds(self, world, root, sys):
        fd = sys.open(root, "/etc/passwd")
        inode = root.get_fd(fd).inode
        sys.exit(root, 0)
        assert inode.opens == 0


class TestSetuid:
    def test_root_sets_any(self, world, root, sys):
        sys.setuid(root, 1000)
        assert (root.creds.uid, root.creds.euid) == (1000, 1000)

    def test_nonroot_cannot_escalate(self, world, adversary, sys):
        with pytest.raises(errors.EPERM):
            sys.setuid(adversary, 0)

    def test_seteuid_drop_and_regain_semantics(self, world, sys):
        setuid_proc = world.spawn("tool", uid=1000, label="unconfined_t", binary_path="/bin/sh")
        setuid_proc.creds.euid = 0
        sys.seteuid(setuid_proc, 1000)  # drop
        assert setuid_proc.creds.euid == 1000

    def test_seteuid_other_denied(self, world, adversary, sys):
        with pytest.raises(errors.EPERM):
            sys.seteuid(adversary, 1234)


class TestMmap:
    def test_mmap_returns_data(self, world, root, sys):
        fd = sys.open(root, "/etc/passwd")
        assert b"root:" in sys.mmap(root, fd)

    def test_mmap_as_image_maps(self, world, root, sys):
        fd = sys.open(root, "/lib/libc.so.6")
        image = sys.mmap(root, fd, as_image=True)
        assert image.path == "/lib/libc.so.6"
        assert image in root.images


class TestForkExecInheritance:
    """fork(2)/execve(2) signal and umask semantics."""

    def test_fork_inherits_umask(self, world, root, sys):
        sys.umask(root, 0o077)
        child = sys.fork(root)
        sys.open(child, "/tmp/kidfile", flags=OpenFlags.O_CREAT, mode=0o666)
        assert world.lookup("/tmp/kidfile").mode & 0o777 == 0o600

    def test_fork_inherits_handlers_independently(self, world, root, sys):
        from repro.proc import signals as sig

        sys.sigaction(root, sig.SIGUSR1, handler_pc=0x100)
        child = sys.fork(root)
        assert child.signals.disposition(sig.SIGUSR1).is_handled
        # Child changes are isolated from the parent.
        sys.sigaction(child, sig.SIGUSR2, handler_pc=0x200)
        assert not root.signals.disposition(sig.SIGUSR2).is_handled

    def test_fork_inherits_blocked_set(self, world, root, sys):
        from repro.proc import signals as sig

        sys.sigprocmask(root, block=[sig.SIGTERM])
        child = sys.fork(root)
        assert child.signals.is_blocked(sig.SIGTERM)

    def test_execve_resets_handlers_keeps_mask(self, world, root, sys):
        from repro.proc import signals as sig

        sys.sigaction(root, sig.SIGUSR1, handler_pc=0x100)
        sys.sigprocmask(root, block=[sig.SIGTERM])
        sys.execve(root, "/bin/sh")
        assert not root.signals.disposition(sig.SIGUSR1).is_handled
        assert root.signals.is_blocked(sig.SIGTERM)

    def test_execve_clears_script_stack(self, world, root, sys):
        from repro.proc.interp import InterpreterStack

        root.script_stack = InterpreterStack("php")
        root.script_stack.push("/x.php", 1)
        sys.execve(root, "/bin/sh")
        assert root.script_stack is None
