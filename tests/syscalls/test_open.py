"""The open syscall: flags, creation, symlink semantics."""

import pytest

from repro import errors
from repro.vfs.file import OpenFlags
from repro.world import spawn_adversary, spawn_root_shell


@pytest.fixture
def sys(world):
    return world.sys


class TestBasicOpen:
    def test_open_read(self, world, root, sys):
        fd = sys.open(root, "/etc/passwd")
        assert b"root:" in sys.read(root, fd)

    def test_open_missing_raises(self, root, sys):
        with pytest.raises(errors.ENOENT):
            sys.open(root, "/etc/nothing")

    def test_open_write_requires_flag(self, root, sys):
        fd = sys.open(root, "/etc/passwd")
        with pytest.raises(errors.EBADF):
            sys.write(root, fd, b"x")

    def test_open_directory_read_ok(self, root, sys):
        fd = sys.open(root, "/etc", flags=OpenFlags.O_RDONLY | OpenFlags.O_DIRECTORY)
        assert fd >= 3

    def test_o_directory_on_file_raises(self, root, sys):
        with pytest.raises(errors.ENOTDIR):
            sys.open(root, "/etc/passwd", flags=OpenFlags.O_DIRECTORY)

    def test_write_open_on_directory_raises(self, root, sys):
        with pytest.raises(errors.EISDIR):
            sys.open(root, "/etc", flags=OpenFlags.O_WRONLY)

    def test_dac_denies_unreadable(self, world, adversary, sys):
        with pytest.raises(errors.EACCES):
            sys.open(adversary, "/etc/shadow")

    def test_close_releases_fd(self, root, sys):
        fd = sys.open(root, "/etc/passwd")
        sys.close(root, fd)
        with pytest.raises(errors.EBADF):
            sys.read(root, fd)


class TestCreate:
    def test_o_creat_creates(self, world, root, sys):
        fd = sys.open(root, "/tmp/new", flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY, mode=0o644)
        sys.write(root, fd, b"data")
        assert world.lookup("/tmp/new").data == b"data"

    def test_umask_applied(self, world, root, sys):
        sys.open(root, "/tmp/masked", flags=OpenFlags.O_CREAT, mode=0o666)
        assert world.lookup("/tmp/masked").mode & 0o777 == 0o644

    def test_owner_is_effective_uid(self, world, adversary, sys):
        sys.open(adversary, "/tmp/mine", flags=OpenFlags.O_CREAT)
        assert world.lookup("/tmp/mine").uid == adversary.creds.euid

    def test_label_inherited_from_directory(self, world, root, sys):
        sys.open(root, "/tmp/labelled", flags=OpenFlags.O_CREAT)
        assert world.lookup("/tmp/labelled").label == "tmp_t"

    def test_o_excl_refuses_existing(self, world, root, sys):
        world.add_file("/tmp/exists")
        with pytest.raises(errors.EEXIST):
            sys.open(root, "/tmp/exists", flags=OpenFlags.O_CREAT | OpenFlags.O_EXCL)

    def test_o_creat_reuses_existing(self, world, root, sys):
        existing = world.add_file("/tmp/exists", b"old")
        fd = sys.open(root, "/tmp/exists", flags=OpenFlags.O_CREAT | OpenFlags.O_RDONLY)
        assert sys.read(root, fd) == b"old"

    def test_o_trunc_clears(self, world, root, sys):
        world.add_file("/tmp/full", b"old-data")
        sys.open(root, "/tmp/full", flags=OpenFlags.O_WRONLY | OpenFlags.O_TRUNC)
        assert world.lookup("/tmp/full").data == b""

    def test_create_requires_dir_write(self, world, adversary, sys):
        with pytest.raises(errors.EACCES):
            sys.open(adversary, "/etc/evil", flags=OpenFlags.O_CREAT)


class TestSymlinkSemantics:
    def test_final_symlink_followed(self, world, root, adversary, sys):
        sys.symlink(adversary, "/etc/passwd", "/tmp/link")
        fd = sys.open(root, "/tmp/link")
        assert b"root:" in sys.read(root, fd)

    def test_o_nofollow_refuses_final_link(self, world, root, adversary, sys):
        sys.symlink(adversary, "/etc/passwd", "/tmp/link")
        with pytest.raises(errors.ELOOP):
            sys.open(root, "/tmp/link", flags=OpenFlags.O_NOFOLLOW)

    def test_o_creat_through_existing_link_opens_target(self, world, root, adversary, sys):
        """The /tmp squat: O_CREAT follows a planted link."""
        sys.symlink(adversary, "/etc/passwd", "/tmp/victim")
        fd = sys.open(root, "/tmp/victim", flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        sys.write(root, fd, b"CLOBBERED")
        assert world.lookup("/etc/passwd").data.startswith(b"CLOBBERED")

    def test_o_creat_through_dangling_link_creates_target(self, world, root, adversary, sys):
        sys.symlink(adversary, "/tmp/target-spot", "/tmp/victim")
        sys.open(root, "/tmp/victim", flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        assert world.lookup("/tmp/target-spot", follow=False) is not None

    def test_symlink_loop_eloop(self, world, root, sys):
        world.add_symlink("/tmp/a", "/tmp/b")
        world.add_symlink("/tmp/b", "/tmp/a")
        with pytest.raises(errors.ELOOP):
            sys.open(root, "/tmp/a")

    def test_relative_final_link(self, world, root, adversary, sys):
        sys.symlink(adversary, "../etc/passwd", "/tmp/rel")
        fd = sys.open(root, "/tmp/rel")
        assert b"root:" in sys.read(root, fd)


class TestMediationCounts:
    def test_dir_search_per_component(self, world, root, sys):
        before = world.stats.mediations
        sys.open(root, "/etc/passwd")
        # 2 DIR_SEARCH (etc, passwd lookups) + FILE_OPEN = 3.
        assert world.stats.mediations - before == 3

    def test_syscall_accounted(self, world, root, sys):
        sys.open(root, "/etc/passwd")
        assert world.stats.syscalls.get("open") == 1
