"""Namespace mutation syscalls: mkdir/unlink/rename/link/chmod/chown."""

import pytest

from repro import errors
from repro.vfs.file import OpenFlags


@pytest.fixture
def sys(world):
    return world.sys


class TestMkdirRmdir:
    def test_mkdir(self, world, root, sys):
        sys.mkdir(root, "/tmp/newdir", mode=0o755)
        assert world.lookup("/tmp/newdir").is_dir

    def test_mkdir_existing_raises(self, root, sys):
        with pytest.raises(errors.EEXIST):
            sys.mkdir(root, "/tmp")

    def test_mkdir_permission(self, adversary, sys):
        with pytest.raises(errors.EACCES):
            sys.mkdir(adversary, "/etc/evil")

    def test_rmdir(self, world, root, sys):
        sys.mkdir(root, "/tmp/gone")
        sys.rmdir(root, "/tmp/gone")
        with pytest.raises(errors.ENOENT):
            world.walker.resolve("/tmp/gone")


class TestUnlink:
    def test_unlink_removes(self, world, root, sys):
        world.add_file("/tmp/f")
        sys.unlink(root, "/tmp/f")
        with pytest.raises(errors.ENOENT):
            world.walker.resolve("/tmp/f")

    def test_sticky_blocks_other_users(self, world, root, adversary, sys):
        """/tmp is sticky: only the owner (or root) may unlink."""
        world.add_file("/tmp/rootfile", uid=0)
        with pytest.raises(errors.EPERM):
            sys.unlink(adversary, "/tmp/rootfile")

    def test_sticky_allows_owner(self, world, adversary, sys):
        world.add_file("/tmp/userfile", uid=1000)
        sys.unlink(adversary, "/tmp/userfile")

    def test_sticky_allows_root(self, world, root, adversary, sys):
        world.add_file("/tmp/userfile", uid=1000)
        sys.unlink(root, "/tmp/userfile")

    def test_unlink_does_not_follow_final_link(self, world, root, adversary, sys):
        sys.symlink(adversary, "/etc/passwd", "/tmp/link")
        sys.unlink(root, "/tmp/link")
        assert world.lookup("/etc/passwd") is not None
        with pytest.raises(errors.ENOENT):
            world.walker.resolve("/tmp/link", follow_final=False)


class TestRename:
    def test_rename_moves(self, world, root, sys):
        world.add_file("/tmp/a", b"data")
        sys.rename(root, "/tmp/a", "/tmp/b")
        assert world.lookup("/tmp/b").data == b"data"

    def test_rename_replaces(self, world, adversary, sys):
        world.add_file("/tmp/src", b"new", uid=1000)
        world.add_file("/tmp/dst", b"old", uid=1000)
        sys.rename(adversary, "/tmp/src", "/tmp/dst")
        assert world.lookup("/tmp/dst").data == b"new"

    def test_rename_sticky_guard(self, world, adversary, sys):
        world.add_file("/tmp/rootfile", uid=0)
        world.add_file("/tmp/mine", uid=1000)
        with pytest.raises(errors.EPERM):
            sys.rename(adversary, "/tmp/rootfile", "/tmp/elsewhere")
        with pytest.raises(errors.EPERM):
            sys.rename(adversary, "/tmp/mine", "/tmp/rootfile")


class TestLink:
    def test_hardlink_shares_data(self, world, root, sys):
        world.add_file("/tmp/orig", b"shared")
        sys.link(root, "/tmp/orig", "/tmp/alias")
        assert world.lookup("/tmp/alias").data == b"shared"
        assert world.lookup("/tmp/alias").ino == world.lookup("/tmp/orig").ino

    def test_symlink_syscall(self, world, root, sys):
        sys.symlink(root, "/etc", "/tmp/etclink")
        assert world.lookup("/tmp/etclink", follow=False).symlink_target == "/etc"

    def test_symlink_existing_raises(self, world, root, sys):
        world.add_file("/tmp/busy")
        with pytest.raises(errors.EEXIST):
            sys.symlink(root, "/etc", "/tmp/busy")


class TestChmodChown:
    def test_chmod_by_owner(self, world, adversary, sys):
        world.add_file("/tmp/mine", uid=1000, mode=0o600)
        sys.chmod(adversary, "/tmp/mine", 0o644)
        assert world.lookup("/tmp/mine").mode & 0o777 == 0o644

    def test_chmod_by_other_raises(self, world, adversary, sys):
        world.add_file("/tmp/rootfile", uid=0)
        with pytest.raises(errors.EPERM):
            sys.chmod(adversary, "/tmp/rootfile", 0o777)

    def test_chmod_follows_symlink(self, world, root, adversary, sys):
        world.add_file("/tmp/target", uid=0, mode=0o600)
        sys.symlink(adversary, "/tmp/target", "/tmp/via")
        sys.chmod(root, "/tmp/via", 0o640)
        assert world.lookup("/tmp/target").mode & 0o777 == 0o640

    def test_chown_requires_root(self, world, adversary, sys):
        world.add_file("/tmp/mine", uid=1000)
        with pytest.raises(errors.EPERM):
            sys.chown(adversary, "/tmp/mine", 0)

    def test_chown_by_root(self, world, root, sys):
        world.add_file("/tmp/f", uid=0)
        sys.chown(root, "/tmp/f", 1000, 1000)
        inode = world.lookup("/tmp/f")
        assert (inode.uid, inode.gid) == (1000, 1000)


class TestDirCalls:
    def test_listdir(self, root, sys):
        assert "passwd" in sys.listdir(root, "/etc")

    def test_chdir_changes_cwd(self, world, root, sys):
        sys.chdir(root, "/etc")
        fd = sys.open(root, "passwd")
        assert b"root:" in sys.read(root, fd)

    def test_chdir_to_file_raises(self, root, sys):
        with pytest.raises(errors.ENOTDIR):
            sys.chdir(root, "/etc/passwd")
