"""Signal syscalls: sigaction, kill, masks, sigreturn."""

import pytest

from repro import errors
from repro.proc import signals as sig


@pytest.fixture
def sys(world):
    return world.sys


@pytest.fixture
def daemon(world):
    return world.spawn("daemon", uid=0, label="unconfined_t", binary_path="/bin/sh")


class TestSigaction:
    def test_install_handler(self, world, daemon, sys):
        sys.sigaction(daemon, sig.SIGUSR1, handler_pc=0x100)
        assert daemon.signals.disposition(sig.SIGUSR1).is_handled

    def test_cannot_catch_sigkill(self, world, daemon, sys):
        with pytest.raises(errors.EINVAL):
            sys.sigaction(daemon, sig.SIGKILL, handler_pc=0x100)

    def test_handler_pc_relative_to_binary(self, world, daemon, sys):
        sys.sigaction(daemon, sig.SIGUSR1, handler_pc=0x100)
        disposition = daemon.signals.disposition(sig.SIGUSR1)
        assert disposition.handler_pc == daemon.binary.abs(0x100)


class TestKill:
    def test_default_fatal(self, world, root, daemon, sys):
        sys.kill(root, daemon.pid, sig.SIGTERM)
        assert not daemon.alive
        assert daemon.exit_code == 128 + sig.SIGTERM

    def test_sigchld_default_ignored(self, world, root, daemon, sys):
        sys.kill(root, daemon.pid, sig.SIGCHLD)
        assert daemon.alive

    def test_handled_signal_enters_handler(self, world, root, daemon, sys):
        sys.sigaction(daemon, sig.SIGUSR1, handler_pc=0x100)
        sys.kill(root, daemon.pid, sig.SIGUSR1)
        assert daemon.signals.in_handler
        assert daemon.stack.top().function == "sig{}_handler".format(sig.SIGUSR1)

    def test_python_handler_runs_and_autoreturns(self, world, root, daemon, sys):
        ran = []
        sys.sigaction(daemon, sig.SIGUSR1, handler=lambda proc, signum: ran.append(signum))
        sys.kill(root, daemon.pid, sig.SIGUSR1)
        assert ran == [sig.SIGUSR1]
        assert not daemon.signals.in_handler

    def test_permission_check(self, world, adversary, daemon, sys):
        with pytest.raises(errors.EPERM):
            sys.kill(adversary, daemon.pid, sig.SIGTERM)

    def test_owner_may_signal_own(self, world, adversary, sys):
        other = world.spawn("mine", uid=1000, label="user_t", binary_path="/bin/sh")
        sys.kill(adversary, other.pid, sig.SIGTERM)
        assert not other.alive

    def test_missing_pid_esrch(self, world, root, sys):
        with pytest.raises(errors.ESRCH):
            sys.kill(root, 9999, sig.SIGTERM)


class TestBlocking:
    def test_blocked_signal_queued(self, world, root, daemon, sys):
        sys.sigaction(daemon, sig.SIGUSR1, handler_pc=0x100)
        sys.sigprocmask(daemon, block=[sig.SIGUSR1])
        sys.kill(root, daemon.pid, sig.SIGUSR1)
        assert not daemon.signals.in_handler
        assert daemon.signals.pending

    def test_unblock_delivers_pending(self, world, root, daemon, sys):
        sys.sigaction(daemon, sig.SIGUSR1, handler_pc=0x100)
        sys.sigprocmask(daemon, block=[sig.SIGUSR1])
        sys.kill(root, daemon.pid, sig.SIGUSR1)
        sys.sigprocmask(daemon, unblock=[sig.SIGUSR1])
        assert daemon.signals.in_handler

    def test_sigkill_cannot_be_blocked(self, world, root, daemon, sys):
        sys.sigprocmask(daemon, block=[sig.SIGKILL])
        sys.kill(root, daemon.pid, sig.SIGKILL)
        assert not daemon.alive


class TestSigreturn:
    def test_sigreturn_leaves_handler_and_pops_frame(self, world, root, daemon, sys):
        sys.sigaction(daemon, sig.SIGUSR1, handler_pc=0x100)
        sys.kill(root, daemon.pid, sig.SIGUSR1)
        depth = daemon.stack.depth
        sys.sigreturn(daemon)
        assert not daemon.signals.in_handler
        assert daemon.stack.depth == depth - 1

    def test_sigreturn_outside_handler_harmless(self, world, daemon, sys):
        sys.sigreturn(daemon)
        assert not daemon.signals.in_handler

    def test_nested_handlers_unwind_in_order(self, world, root, daemon, sys):
        sys.sigaction(daemon, sig.SIGUSR1, handler_pc=0x100)
        sys.sigaction(daemon, sig.SIGUSR2, handler_pc=0x200)
        sys.kill(root, daemon.pid, sig.SIGUSR1)
        sys.kill(root, daemon.pid, sig.SIGUSR2)
        assert daemon.signals.handler_depth == 2
        sys.sigreturn(daemon)
        assert daemon.signals.handler_depth == 1
        sys.sigreturn(daemon)
        assert daemon.signals.handler_depth == 0


class TestSaMaskInterplay:
    def test_sa_mask_defers_second_signal(self, world, root, daemon, sys):
        """A handler installed with sa_mask={TERM} makes the race window
        structurally impossible: TERM queues instead of delivering."""
        sys.sigaction(daemon, sig.SIGUSR1, handler_pc=0x100, sa_mask={sig.SIGTERM})
        sys.sigaction(daemon, sig.SIGTERM, handler_pc=0x200)
        sys.kill(root, daemon.pid, sig.SIGUSR1)
        sys.kill(root, daemon.pid, sig.SIGTERM)
        assert daemon.signals.handler_depth == 1  # TERM deferred
        assert daemon.signals.pending

    def test_deferred_signal_delivered_after_unblock(self, world, root, daemon, sys):
        sys.sigaction(daemon, sig.SIGUSR1, handler_pc=0x100, sa_mask={sig.SIGTERM})
        sys.sigaction(daemon, sig.SIGTERM, handler_pc=0x200)
        sys.kill(root, daemon.pid, sig.SIGUSR1)
        sys.kill(root, daemon.pid, sig.SIGTERM)
        sys.sigprocmask(daemon, unblock=[sig.SIGTERM])
        assert daemon.signals.handler_depth == 2  # now delivered

    def test_pf_rules_compose_with_sa_mask(self, world, root, daemon, sys):
        """With R9-R12 installed, a deferred-then-unblocked signal is
        dropped while still inside the first handler, and deliverable
        after sigreturn."""
        from repro.firewall.engine import ProcessFirewall
        from repro.rulesets.default import install_signal_rules

        pf = ProcessFirewall()
        world.attach_firewall(pf)
        install_signal_rules(pf)
        sys.sigaction(daemon, sig.SIGUSR1, handler_pc=0x100, sa_mask={sig.SIGTERM})
        sys.sigaction(daemon, sig.SIGTERM, handler_pc=0x200)
        sys.kill(root, daemon.pid, sig.SIGUSR1)
        sys.kill(root, daemon.pid, sig.SIGTERM)  # queued by sa_mask
        # Unblocking mid-handler: the PF drops the delivery (reentrancy).
        with pytest.raises(errors.PFDenied):
            sys.sigprocmask(daemon, unblock=[sig.SIGTERM])
        assert daemon.signals.handler_depth == 1
