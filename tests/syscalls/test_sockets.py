"""UNIX-domain socket syscalls."""

import pytest

from repro import errors
from repro.vfs.inode import FileType


@pytest.fixture
def sys(world):
    return world.sys


class TestBind:
    def test_bind_creates_socket_inode(self, world, root, sys):
        inode = sys.bind(root, "/tmp/sock")
        assert inode.itype is FileType.SOCK
        assert inode.bound_socket == root.pid

    def test_bind_existing_name_eaddrinuse(self, world, root, adversary, sys):
        """Squatting manifests as EADDRINUSE for the late binder."""
        sys.bind(adversary, "/tmp/sock", mode=0o777)
        with pytest.raises(errors.EADDRINUSE):
            sys.bind(root, "/tmp/sock")

    def test_bind_requires_dir_write(self, adversary, sys):
        with pytest.raises(errors.EACCES):
            sys.bind(adversary, "/etc/sock")


class TestConnect:
    def test_connect_returns_listener(self, world, root, adversary, sys):
        sys.bind(root, "/tmp/sock", mode=0o777)
        assert sys.connect(adversary, "/tmp/sock") == root.pid

    def test_connect_missing_refused(self, root, sys):
        with pytest.raises(errors.ECONNREFUSED):
            sys.connect(root, "/tmp/none")

    def test_connect_to_regular_file_refused(self, world, root, sys):
        world.add_file("/tmp/file")
        with pytest.raises(errors.ECONNREFUSED):
            sys.connect(root, "/tmp/file")

    def test_connect_through_symlink(self, world, root, adversary, sys):
        """Socket path resolution follows links — the E3 channel."""
        sys.bind(adversary, "/tmp/realsock", mode=0o777)
        sys.symlink(adversary, "/tmp/realsock", "/tmp/alias")
        assert sys.connect(root, "/tmp/alias") == adversary.pid


class TestSocketChmod:
    def test_chmod_socket_uses_socket_setattr(self, world, root, sys, firewall):
        sys.bind(root, "/tmp/sock")
        firewall.install("pftables -A input -o SOCKET_SETATTR -j LOG")
        sys.chmod(root, "/tmp/sock", 0o666)
        assert any(r["op"] == "SOCKET_SETATTR" for r in firewall.log_records)

    def test_chmod_file_uses_file_setattr(self, world, root, sys, firewall):
        world.add_file("/tmp/f", uid=0)
        firewall.install("pftables -A input -o FILE_SETATTR -j LOG")
        sys.chmod(root, "/tmp/f", 0o644)
        assert any(r["op"] == "FILE_SETATTR" for r in firewall.log_records)
