"""Signal state bookkeeping."""

import pytest

from repro.proc import signals as sig
from repro.proc.signals import SignalDisposition, SignalState


class TestDisposition:
    def test_default_unhandled(self):
        assert not SignalDisposition().is_handled

    def test_pc_handler(self):
        assert SignalDisposition(handler_pc=0x100).is_handled

    def test_callable_handler(self):
        assert SignalDisposition(handler=lambda p, s: None).is_handled


class TestBlocking:
    def test_block_unblock(self):
        state = SignalState()
        state.block({sig.SIGTERM})
        assert state.is_blocked(sig.SIGTERM)
        state.unblock({sig.SIGTERM})
        assert not state.is_blocked(sig.SIGTERM)

    def test_sigkill_never_blockable(self):
        state = SignalState()
        state.block({sig.SIGKILL})
        assert not state.is_blocked(sig.SIGKILL)

    def test_sigstop_never_blockable(self):
        state = SignalState()
        state.block({sig.SIGSTOP})
        assert not state.is_blocked(sig.SIGSTOP)


class TestHandlerDepth:
    def test_enter_leave(self):
        state = SignalState()
        state.enter_handler(sig.SIGALRM)
        assert state.in_handler
        assert state.current_signal == sig.SIGALRM
        state.leave_handler()
        assert not state.in_handler
        assert state.current_signal is None

    def test_nested_depth(self):
        state = SignalState()
        state.enter_handler(sig.SIGALRM)
        state.enter_handler(sig.SIGTERM)
        assert state.handler_depth == 2
        state.leave_handler()
        assert state.in_handler

    def test_sa_mask_applied_on_entry(self):
        state = SignalState()
        state.set_handler(sig.SIGALRM, handler_pc=0x1, sa_mask={sig.SIGTERM})
        state.enter_handler(sig.SIGALRM)
        assert state.is_blocked(sig.SIGTERM)

    def test_leave_below_zero_harmless(self):
        state = SignalState()
        state.leave_handler()
        assert state.handler_depth == 0
