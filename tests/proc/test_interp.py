"""Interpreter (script-level) stacks."""

import pytest

from repro import errors
from repro.proc.interp import InterpreterStack, ScriptFrame


class TestScriptFrame:
    def test_entrypoint(self):
        frame = ScriptFrame("/app/x.php", 17, function="render")
        assert frame.entrypoint() == ("/app/x.php", 17)

    def test_line_coerced_to_int(self):
        assert ScriptFrame("/x", "42").line == 42


class TestInterpreterStack:
    def test_push_pop(self):
        stack = InterpreterStack("php")
        stack.push("/a.php", 1)
        stack.push("/b.php", 2)
        assert stack.depth == 2
        assert stack.pop().path == "/b.php"
        assert stack.top().path == "/a.php"

    def test_pop_empty_raises(self):
        with pytest.raises(errors.EFAULT):
            InterpreterStack().pop()

    def test_unwind_innermost_first(self):
        stack = InterpreterStack()
        stack.push("/a.php", 1)
        stack.push("/b.php", 2)
        frames = stack.unwind()
        assert [f.path for f in frames] == ["/b.php", "/a.php"]

    def test_unwind_cap(self):
        stack = InterpreterStack()
        for i in range(100):
            stack.push("/x.php", i)
        assert len(stack.unwind(max_frames=8)) == 8

    def test_corruption_raises(self):
        stack = InterpreterStack()
        stack.push("/a.php", 1)
        stack.corrupt_below = 0
        with pytest.raises(errors.EFAULT):
            stack.unwind()

    def test_infinite_bounded(self):
        stack = InterpreterStack()
        stack.push("/a.php", 1)
        stack.infinite = True
        assert len(stack.unwind(max_frames=10)) == 10

    def test_infinite_empty_terminates(self):
        stack = InterpreterStack()
        stack.infinite = True
        assert stack.unwind() == []

    def test_language_recorded(self):
        assert InterpreterStack("bash").language == "bash"
