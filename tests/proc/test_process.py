"""Process model: credentials, descriptors, images."""

import pytest

from repro import errors
from repro.proc.process import Credentials, MAX_FDS, Process
from repro.proc.stack import BinaryImage


class TestCredentials:
    def test_defaults_effective_to_real(self):
        creds = Credentials(uid=5, gid=6)
        assert (creds.euid, creds.egid) == (5, 6)

    def test_setuid_detection(self):
        assert Credentials(uid=1000, euid=0).is_setuid
        assert not Credentials(uid=0).is_setuid

    def test_setgid_detection(self):
        assert Credentials(uid=1, gid=1000, egid=0).is_setuid

    def test_copy_is_independent(self):
        creds = Credentials(uid=5)
        clone = creds.copy()
        clone.euid = 0
        assert creds.euid == 5


class TestFdTable:
    def test_install_returns_increasing_fds(self):
        proc = Process(1, "t")
        assert proc.install_fd(object()) == 3
        assert proc.install_fd(object()) == 4

    def test_get_and_drop(self):
        proc = Process(1, "t")
        handle = object()
        fd = proc.install_fd(handle)
        assert proc.get_fd(fd) is handle
        assert proc.drop_fd(fd) is handle
        with pytest.raises(errors.EBADF):
            proc.get_fd(fd)

    def test_bad_fd_raises(self):
        with pytest.raises(errors.EBADF):
            Process(1, "t").get_fd(99)

    def test_table_limit(self):
        proc = Process(1, "t")
        proc._next_fd = 3
        for _ in range(MAX_FDS):
            proc.install_fd(object())
        with pytest.raises(errors.EMFILE):
            proc.install_fd(object())


class TestImages:
    def test_image_for_pc(self):
        proc = Process(1, "t", binary=BinaryImage("/bin/sh", base=0x400000, size=0x1000))
        lib = BinaryImage("/lib/libc.so.6", base=0x700000, size=0x1000)
        proc.map_image(lib)
        assert proc.image_for_pc(0x400010) is proc.binary
        assert proc.image_for_pc(0x700010) is lib
        assert proc.image_for_pc(0x1) is None

    def test_call_ret_discipline(self):
        image = BinaryImage("/bin/sh", base=0x400000, size=0x10000)
        proc = Process(1, "t", binary=image)
        proc.call(image, 0x100, function="f")
        assert proc.stack.depth == 1
        assert proc.stack.top().entrypoint() == ("/bin/sh", 0x100)
        proc.ret()
        assert proc.stack.depth == 0

    def test_pf_state_is_per_process(self):
        a = Process(1, "a")
        b = Process(2, "b")
        a.pf_state["k"] = 1
        assert "k" not in b.pf_state
