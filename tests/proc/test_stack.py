"""Binary images, frames, and defensive stack unwinding."""

import pytest

from repro import errors
from repro.proc.stack import BinaryImage, Frame, UserStack


class TestBinaryImage:
    def test_base_is_deterministic_per_path(self):
        a = BinaryImage("/bin/sh")
        b = BinaryImage("/bin/sh")
        assert a.base == b.base  # seeded by path hash

    def test_different_paths_differ(self):
        assert BinaryImage("/bin/sh").base != BinaryImage("/usr/bin/php5").base

    def test_contains(self):
        image = BinaryImage("/bin/sh", base=0x400000, size=0x1000)
        assert image.contains(0x400000)
        assert image.contains(0x400FFF)
        assert not image.contains(0x401000)
        assert not image.contains(0x3FFFFF)

    def test_rel_abs_roundtrip(self):
        image = BinaryImage("/bin/sh", base=0x400000, size=0x10000)
        assert image.rel(image.abs(0x596B)) == 0x596B

    def test_rel_outside_raises(self):
        image = BinaryImage("/bin/sh", base=0x400000, size=0x1000)
        with pytest.raises(errors.EFAULT):
            image.rel(0x900000)

    def test_abs_outside_raises(self):
        image = BinaryImage("/bin/sh", base=0x400000, size=0x1000)
        with pytest.raises(errors.EFAULT):
            image.abs(0x2000)

    def test_aslr_alignment(self):
        assert BinaryImage("/x").base % 0x1000 == 0


class TestFrame:
    def test_entrypoint_is_base_relative(self):
        image = BinaryImage("/bin/sh", base=0x500000, size=0x10000)
        frame = Frame(image.abs(0x123), image=image)
        assert frame.entrypoint() == ("/bin/sh", 0x123)

    def test_unmapped_frame_has_no_entrypoint(self):
        assert Frame(0xDEAD).entrypoint() is None

    def test_pc_outside_image_has_no_entrypoint(self):
        image = BinaryImage("/bin/sh", base=0x500000, size=0x1000)
        assert Frame(0x1, image=image).entrypoint() is None


class TestUserStack:
    def test_push_pop(self):
        stack = UserStack()
        stack.push(0x1)
        stack.push(0x2)
        assert stack.pop().pc == 0x2
        assert stack.depth == 1

    def test_pop_empty_raises(self):
        with pytest.raises(errors.EFAULT):
            UserStack().pop()

    def test_top(self):
        stack = UserStack()
        assert stack.top() is None
        stack.push(0x5)
        assert stack.top().pc == 0x5

    def test_unwind_innermost_first(self):
        stack = UserStack()
        stack.push(0x1)
        stack.push(0x2)
        frames = stack.unwind()
        assert [f.pc for f in frames] == [0x2, 0x1]

    def test_unwind_respects_cap(self):
        stack = UserStack()
        for i in range(100):
            stack.push(i)
        assert len(stack.unwind(max_frames=10)) == 10

    def test_default_cap(self):
        stack = UserStack()
        for i in range(100):
            stack.push(i)
        assert len(stack.unwind()) == UserStack.MAX_UNWIND_FRAMES

    def test_corrupted_stack_raises_efault(self):
        """Paper §4.4: invalid pointers must abort cleanly."""
        stack = UserStack()
        for i in range(5):
            stack.push(i)
        stack.corrupt_below = 2
        with pytest.raises(errors.EFAULT):
            stack.unwind()

    def test_infinite_stack_bounded_by_cap(self):
        """Paper §4.4: DoS via unwinding infinite call stacks."""
        stack = UserStack()
        stack.push(0x1)
        stack.infinite = True
        frames = stack.unwind(max_frames=16)
        assert len(frames) <= 16

    def test_infinite_empty_stack_terminates(self):
        stack = UserStack()
        stack.infinite = True
        assert stack.unwind(max_frames=8) == []
