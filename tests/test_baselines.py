"""System-only baseline defences: they block the attack but also break
legitimate workloads the context-aware firewall leaves alone."""

import pytest

from repro import errors
from repro.baselines.openwall import OpenwallSymlinkPolicy
from repro.baselines.raceguard import RaceGuard
from repro.firewall.engine import ProcessFirewall
from repro.rulesets.default import safe_open_pf_rules, toctou_rules
from repro.vfs.file import OpenFlags
from repro.world import build_world, spawn_adversary, spawn_root_shell


def attach_baseline(kernel, module):
    kernel.lsm.register(module)
    return module


class TestRaceGuardBlocksTheRace:
    def _race(self, kernel, victim, adversary):
        """lstat, adversary swap, open — the Figure 1a window."""
        sys = kernel.sys
        fd = sys.open(adversary, "/tmp/work", flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY, mode=0o666)
        sys.close(adversary, fd)
        sys.lstat(victim, "/tmp/work")
        pin = sys.open(adversary, "/tmp/work")  # pin ino across the swap
        sys.unlink(adversary, "/tmp/work")
        fd = sys.open(adversary, "/tmp/work", flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY, mode=0o666)
        sys.close(adversary, fd)
        sys.close(adversary, pin)
        return sys.open(victim, "/tmp/work")

    def test_stock_kernel_loses(self):
        kernel = build_world()
        victim, adversary = spawn_root_shell(kernel), spawn_adversary(kernel)
        assert self._race(kernel, victim, adversary) >= 3  # opened the swap

    def test_raceguard_wins(self):
        kernel = build_world()
        guard = attach_baseline(kernel, RaceGuard())
        victim, adversary = spawn_root_shell(kernel), spawn_adversary(kernel)
        with pytest.raises(errors.EACCES):
            self._race(kernel, victim, adversary)
        assert guard.denials == 1


class TestRaceGuardFalsePositive:
    def _log_rotation(self, kernel, reader, rotator):
        """A reader stats the log; a *trusted* rotator renames it and
        creates a fresh one; the reader opens the (new) log.  Entirely
        legitimate — the reader never relied on identity."""
        sys = kernel.sys
        kernel.add_file("/var/app.log", b"old entries", uid=0, mode=0o644)
        sys.stat(reader, "/var/app.log")
        sys.rename(rotator, "/var/app.log", "/var/app.log.1")
        fd = sys.open(rotator, "/var/app.log", flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY, mode=0o644)
        sys.close(rotator, fd)
        return sys.open(reader, "/var/app.log")

    def test_raceguard_denies_legitimate_rotation(self):
        """The Cai-et-al. prediction: no process context => false
        positives on benign identity changes."""
        kernel = build_world()
        attach_baseline(kernel, RaceGuard())
        reader, rotator = spawn_root_shell(kernel, "reader"), spawn_root_shell(kernel, "logrotate")
        with pytest.raises(errors.EACCES):
            self._log_rotation(kernel, reader, rotator)

    def test_firewall_t2_rules_do_not_fire(self):
        """The PF's T2 rules are scoped to a *specific* program's
        check/use entrypoints, so the unrelated reader is untouched."""
        kernel = build_world()
        firewall = kernel.attach_firewall(ProcessFirewall())
        firewall.install_all(
            toctou_rules("/usr/bin/mail-helper", 0x5510, "FILE_GETATTR", 0x5544, "FILE_OPEN")
        )
        reader, rotator = spawn_root_shell(kernel, "reader"), spawn_root_shell(kernel, "logrotate")
        fd = self._log_rotation(kernel, reader, rotator)
        assert fd >= 3  # allowed
        assert firewall.stats.drops == 0


class TestOpenwallPolicy:
    def test_blocks_the_e9_attack(self):
        kernel = build_world()
        policy = attach_baseline(kernel, OpenwallSymlinkPolicy())
        victim, adversary = spawn_root_shell(kernel), spawn_adversary(kernel)
        kernel.sys.symlink(adversary, "/etc/passwd", "/tmp/trap")
        with pytest.raises(errors.EACCES):
            kernel.sys.open(victim, "/tmp/trap")
        assert policy.denials == 1

    def test_false_positive_on_adversaryless_sharing(self):
        """user A's link to user A's own file, read by root: legitimate
        under Chari semantics (and allowed by the firewall's safe-open
        rules), but the owner-based sysctl denies it."""
        kernel = build_world()
        attach_baseline(kernel, OpenwallSymlinkPolicy())
        root = spawn_root_shell(kernel)
        user = spawn_adversary(kernel)
        kernel.add_file("/tmp/users-own", b"theirs", uid=1000, mode=0o644)
        kernel.sys.symlink(user, "/tmp/users-own", "/tmp/users-link")
        with pytest.raises(errors.EACCES):
            kernel.sys.open(root, "/tmp/users-link")

    def test_firewall_rules_allow_the_same_sharing(self):
        kernel = build_world()
        firewall = kernel.attach_firewall(ProcessFirewall())
        firewall.install_all(safe_open_pf_rules())
        root = spawn_root_shell(kernel)
        user = spawn_adversary(kernel)
        kernel.add_file("/tmp/users-own", b"theirs", uid=1000, mode=0o644)
        kernel.sys.symlink(user, "/tmp/users-own", "/tmp/users-link")
        fd = kernel.sys.open(root, "/tmp/users-link")
        assert kernel.sys.read(root, fd) == b"theirs"

    def test_policy_ignores_links_outside_sticky_dirs(self):
        kernel = build_world()
        attach_baseline(kernel, OpenwallSymlinkPolicy())
        root = spawn_root_shell(kernel)
        kernel.add_symlink("/lib/liblink.so", "/lib/libc.so.6", uid=1000)
        fd = kernel.sys.open(root, "/lib/liblink.so")
        assert fd >= 3

    def test_same_owner_links_in_tmp_allowed(self):
        kernel = build_world()
        attach_baseline(kernel, OpenwallSymlinkPolicy())
        user = spawn_adversary(kernel)
        kernel.add_file("/tmp/mine", b"x", uid=1000, mode=0o644)
        kernel.sys.symlink(user, "/tmp/mine", "/tmp/minelink")
        fd = kernel.sys.open(user, "/tmp/minelink")
        assert fd >= 3
