"""Wire codec unit + property tests: framing, interning, results.

The binary data plane's contract is *losslessness*: whatever spec the
driver submits, the worker must decode the identical dict; whatever
result the worker produces, the driver must reconstruct it exactly —
compact layouts for the generated shapes, escape hatches for everything
else.  These tests pin both halves, plus the frame format's loud
failure on malformed input and the WireCounters bookkeeping the
benchmark columns read.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry
from repro.obs.service import WireCounters
from repro.service import wire
from repro.workloads.generators import (
    generate_stream,
    service_rules_text,
    session_home,
    trap_path,
)


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------

def test_frame_round_trip_empty_and_multi():
    assert wire.unpack_frame(wire.pack_frame(wire.FRAME_FIN)) == (wire.FRAME_FIN, [])
    payloads = [b"", b"a", b"\x00" * 17, b"record"]
    kind, out = wire.unpack_frame(wire.pack_frame(wire.FRAME_RUN, payloads))
    assert kind == wire.FRAME_RUN
    assert out == payloads


@given(st.lists(st.binary(max_size=200), max_size=20),
       st.sampled_from([wire.FRAME_RUN, wire.FRAME_RESULT, wire.FRAME_SNAPSHOT]))
@settings(max_examples=50, deadline=None)
def test_frame_round_trip_property(payloads, kind):
    assert wire.unpack_frame(wire.pack_frame(kind, payloads)) == (kind, payloads)


def test_frame_rejects_bad_magic_version_and_truncation():
    good = wire.pack_frame(wire.FRAME_RUN, [b"xy"])
    with pytest.raises(wire.WireProtocolError, match="magic"):
        wire.unpack_frame(b"ZZ" + good[2:])
    with pytest.raises(wire.WireProtocolError, match="version"):
        wire.unpack_frame(good[:2] + bytes([wire.WIRE_VERSION + 1]) + good[3:])
    with pytest.raises(wire.WireProtocolError, match="truncated"):
        wire.unpack_frame(good[:-1])
    with pytest.raises(wire.WireProtocolError, match="trailing"):
        wire.unpack_frame(good + b"!")
    with pytest.raises(wire.WireProtocolError, match="header"):
        wire.unpack_frame(b"PW")


def test_frame_record_count_is_bounded():
    with pytest.raises(wire.WireProtocolError, match="u16"):
        wire.pack_frame(wire.FRAME_RUN, [b""] * 0x10000)


# ----------------------------------------------------------------------
# spec interning
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def stream():
    return generate_stream(60, seed=0xC0DE)


@pytest.fixture(scope="module")
def codec(stream):
    return wire.SpecCodec.from_specs(stream)


def test_spec_codec_is_lossless_and_compact(stream, codec):
    encoded = [codec.encode(spec) for spec in stream]
    assert [codec.decode(record) for record in encoded] == stream
    # The generated stream interns completely: no whole-spec escapes,
    # and far fewer bytes than the v0 pickles.
    assert not any(record[0] == 0xFF for record in encoded)
    pickled = sum(
        len(pickle.dumps(("run", spec), protocol=pickle.HIGHEST_PROTOCOL))
        for spec in stream)
    assert sum(len(record) for record in encoded) * 3 < pickled


def test_spec_codec_tables_are_deterministic(stream):
    first = wire.SpecCodec.from_specs(stream).templates
    second = wire.SpecCodec.from_specs(list(stream)).templates
    assert first == second


def test_spec_codec_escapes_foreign_specs(codec):
    foreign = {"sid": 1, "steps": [("open_read", "/no/such/template")],
               "model": "custom", "comm": "x", "binary": "/x",
               "label": "bin_t", "nfiles": 0, "extra": [1, 2]}
    assert codec.decode(codec.encode(foreign)) == foreign
    # Unknown steps inside a known skeleton take the per-step escape.
    spec = dict(codec.decode(codec.encode({
        "sid": 2, "model": "apache", "comm": "apache2",
        "binary": "/usr/bin/apache2", "label": "httpd_t", "nfiles": 2,
        "steps": [("stat", "/var/www"), ("weird", "/var/www", 3, None)],
    })))
    assert spec["steps"][1] == ("weird", "/var/www", 3, None)


def test_empty_codec_still_round_trips(stream):
    blank = wire.SpecCodec()
    for spec in stream[:5]:
        assert blank.decode(blank.encode(spec)) == spec


def test_spec_decode_rejects_unknown_template_and_code(stream, codec):
    record = codec.encode(stream[0])
    with pytest.raises(wire.WireProtocolError, match="template"):
        wire.SpecCodec().decode(record)
    bad = bytearray(record)
    # Overwrite the first step code with an out-of-table value.
    bad[wire._SPEC_HEAD.size:wire._SPEC_HEAD.size + 2] = (0xFFFE).to_bytes(2, "little")
    with pytest.raises(wire.WireProtocolError, match="codebook"):
        codec.decode(bytes(bad))


# ----------------------------------------------------------------------
# result records
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def strings():
    return wire.StringTable(wire.audit_strings(service_rules_text()))


def _result(sid, kinds, statuses=None, latencies=(), audit=(),
            mediations=7, drops=0):
    statuses = statuses or ["ok"] * len(kinds)
    return {
        "sid": sid,
        "verdicts": [(i, kinds[i], statuses[i]) for i in range(len(kinds))],
        "audit": list(audit),
        "latencies": list(latencies),
        "mediations": mediations,
        "drops": drops,
    }


#: A real rule text from the service rule base — present in the shared
#: string table, so rows carrying it must intern rather than inline.
_RULE_TEXT = next(
    entry for entry in wire.audit_strings(service_rules_text())
    if entry.startswith("pftables "))


def _audit_row(sid, sub, path, worker=3):
    return {
        "worker": worker, "lclock": sid, "sub": sub,
        "severity": "warning", "kind": "drop",
        "record": {"pid": 0, "comm": "apache2", "op": "LNK_FILE_READ",
                   "syscall": "open", "path": path,
                   "rule": _RULE_TEXT},
    }


def test_result_round_trip_plain(strings):
    kinds = ["open_read", "stat", "trap_open", "getpid"]
    result = _result(9, kinds, ["ok", "ok", "PFDenied", "ok"],
                     latencies=[0.001, 0.002, 0.5], drops=1)
    payload = wire.encode_result(result, strings)
    assert payload[0] == 1  # compact layout, not the pickle escape
    assert wire.decode_result(payload, {9: kinds}, strings) == result


def test_result_round_trip_with_audit(strings):
    sid = 4
    kinds = ["trap_open", "trap_open"]
    audit = [_audit_row(sid, 0, trap_path(sid)),
             _audit_row(sid, 1, session_home(sid) + "/f0")]
    result = _result(sid, kinds, ["PFDenied", "PFDenied"],
                     latencies=[0.1, 0.2], audit=audit, drops=2)
    payload = wire.encode_result(result, strings)
    assert payload[0] == 1
    decoded = wire.decode_result(payload, {sid: kinds}, strings)
    assert decoded == result
    # The matched-rule text crossed as a table index, not inline text.
    assert b"pftables" not in payload


def test_result_foreign_audit_rows_escape(strings):
    sid = 5
    kinds = ["stat"]
    # lclock disagreeing with the sid breaks the reconstruction
    # invariant, so the whole audit section must take the pickle path.
    audit = [dict(_audit_row(sid, 0, "/etc/passwd"), lclock=sid + 1)]
    result = _result(sid, kinds, audit=audit)
    decoded = wire.decode_result(
        wire.encode_result(result, strings), {sid: kinds}, strings)
    assert decoded == result


def test_result_irregular_shape_takes_whole_record_escape(strings):
    result = {"sid": "not-an-int", "verdicts": [], "audit": [],
              "latencies": [], "mediations": 0, "drops": 0}
    payload = wire.encode_result(result, strings)
    assert payload[0] == 0
    assert wire.decode_result(payload, {}, strings) == result


def test_result_verdict_count_mismatch_is_loud(strings):
    kinds = ["stat", "stat"]
    payload = wire.encode_result(_result(2, kinds), strings)
    with pytest.raises(wire.WireProtocolError, match="steps"):
        wire.decode_result(payload, {2: ["stat"]}, strings)


@given(
    sid=st.integers(min_value=0, max_value=2 ** 32 - 1),
    nsteps=st.integers(min_value=0, max_value=40),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_result_round_trip_property(sid, nsteps, data, strings):
    kinds = ["open_read", "stat", "append", "getpid"]
    step_kinds = [kinds[i % len(kinds)] for i in range(nsteps)]
    statuses = data.draw(st.lists(
        st.sampled_from(["ok", "PFDenied", "ENOENT", "EACCES"]),
        min_size=nsteps, max_size=nsteps))
    latencies = data.draw(st.lists(
        st.floats(min_value=0, max_value=10, allow_nan=False),
        max_size=10))
    result = _result(sid, step_kinds, statuses, latencies,
                     drops=statuses.count("PFDenied"))
    decoded = wire.decode_result(
        wire.encode_result(result, strings), {sid: step_kinds}, strings)
    assert decoded == result


# ----------------------------------------------------------------------
# the shared audit string table
# ----------------------------------------------------------------------

def test_audit_strings_is_deterministic_and_covers_rules():
    rules_text = service_rules_text()
    table = wire.audit_strings(rules_text)
    assert table == wire.audit_strings(rules_text)
    assert any(entry.startswith("pftables ") for entry in table)
    assert "warning" in table and "drop" in table and "open" in table
    # Without a rule base the fixed vocabulary still stands alone.
    fixed = wire.audit_strings(None)
    assert set(fixed) <= set(table)


def test_string_table_lookup_bounds():
    table = wire.StringTable(["a", "b"])
    assert table.index("b") == 1
    assert table.index("zzz") is None
    assert table.lookup(0) == "a"
    with pytest.raises(wire.WireProtocolError, match="outside"):
        table.lookup(7)


def test_result_without_table_still_round_trips():
    sid = 6
    kinds = ["trap_open"]
    audit = [_audit_row(sid, 0, trap_path(sid))]
    result = _result(sid, kinds, ["PFDenied"], audit=audit, drops=1)
    decoded = wire.decode_result(
        wire.encode_result(result), {sid: kinds})
    assert decoded == result


# ----------------------------------------------------------------------
# WireCounters
# ----------------------------------------------------------------------

def test_wire_counters_merge_and_metrics():
    driver = WireCounters()
    driver.observe_frame("tx", "run", 100, sessions=4)
    driver.observe_frame("rx", "result", 60, sessions=4)
    driver.observe_encode(0.25)
    worker = WireCounters()
    worker.observe_frame("rx", "run", 100, sessions=4)
    worker.observe_decode(0.5)
    merged = WireCounters().merge(driver).merge(worker.as_dict())
    assert merged.frames["tx"]["run"] == 1
    assert merged.frames["rx"] == {"result": 1, "run": 1}
    assert merged.bytes == {"tx": 100, "rx": 160}
    assert merged.sessions == {"tx": 4, "rx": 8}
    assert merged.encode_s == 0.25 and merged.decode_s == 0.5
    registry = MetricsRegistry(enabled=True)
    merged.to_metrics(registry, "driver")
    prom = registry.to_prometheus()
    assert 'pf_service_wire_frames_total{dir="tx",endpoint="driver",kind="run"} 1' in prom
    assert 'pf_service_wire_bytes_total{dir="rx",endpoint="driver"} 160' in prom
