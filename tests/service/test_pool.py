"""ServicePool edge behaviour: saturation, shutdown, dead workers."""

import pytest

from repro.service.pool import ServicePool
from repro.workloads.generators import generate_stream, service_rules_text


@pytest.fixture(scope="module")
def init():
    return {"engine": "JITTED", "rules_text": service_rules_text()}


def test_inline_pool_runs_synchronously_but_holds_window_slots(init):
    """Inline sessions execute inside submit, yet occupy window slots
    until poll drains them — the same accounting as process mode, so
    capacity tests are mode-agnostic."""
    pool = ServicePool(2, init, processes=False)
    specs = generate_stream(4, seed=5)
    for spec in specs:
        pool.submit(spec)
    assert pool.inflight == 4
    results = pool.poll(timeout=0)
    assert pool.inflight == 0
    assert sorted(r["sid"] for r in results) == [s["sid"] for s in specs]
    snapshots = pool.close()
    assert sum(s["sessions"] for s in snapshots) == 4


def test_capacity_accounting_at_the_window_boundary(init):
    """has_capacity()/capacity() flip exactly at workers x window, and
    recover exactly as poll drains completions."""
    workers, window = 2, 3
    pool = ServicePool(workers, init, processes=False, window=window)
    bound = workers * window
    assert pool.capacity() == bound
    specs = generate_stream(bound, seed=7)
    for admitted, spec in enumerate(specs, start=1):
        assert pool.has_capacity()
        pool.submit(spec)
        assert pool.inflight == admitted
        assert pool.capacity() == bound - admitted
    # Saturated: the bound+1'th submit must be refused, loudly.
    assert not pool.has_capacity()
    assert pool.capacity() == 0
    with pytest.raises(RuntimeError, match="saturated"):
        pool.submit(generate_stream(bound + 1, seed=7)[-1])
    # Draining restores the full window, and the pool accepts again.
    results = pool.poll(timeout=0)
    assert len(results) == bound
    assert pool.inflight == 0
    assert pool.capacity() == bound
    assert pool.has_capacity()
    # A fresh sid: session filesystems are per-sid and a pool's runners
    # live across sessions.
    pool.submit(generate_stream(bound + 1, seed=7)[bound])
    assert pool.inflight == 1
    pool.poll(timeout=0)
    pool.close()


def test_submit_many_spreads_least_outstanding(init):
    """A batch lands least-loaded-first: 5 sessions over 2 workers with
    window 3 splits 3/2, never 4/1."""
    pool = ServicePool(2, init, processes=False, window=3)
    pool.submit_many(generate_stream(5, seed=13))
    assert sorted(pool._outstanding) == [2, 3]
    pool.poll(timeout=0)
    pool.close()


def test_close_refuses_inflight_and_double_close(init):
    pool = ServicePool(1, init, processes=False)
    pool.close()
    with pytest.raises(RuntimeError):
        pool.close()


def test_dead_worker_surfaces_as_runtime_error(init):
    """A killed worker becomes a clear error, not a raw EOFError."""
    pool = ServicePool(1, init, processes=True)
    spec = generate_stream(1, seed=11)[0]
    pool.submit(spec)
    pool.poll(timeout=30)  # wait out runner construction + first session
    pool._procs[0].kill()
    pool._procs[0].join(timeout=10)
    with pytest.raises(RuntimeError, match="died without reporting"):
        # The closed pipe reads as ready-with-EOF; a late submit on the
        # dead pipe raises the same shape from the send side.
        pool.submit(generate_stream(2, seed=12)[1])
        pool.poll(timeout=30)
