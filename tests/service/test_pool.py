"""ServicePool edge behaviour: saturation, shutdown, dead workers."""

import pytest

from repro.service.pool import ServicePool
from repro.workloads.generators import generate_stream, service_rules_text


@pytest.fixture(scope="module")
def init():
    return {"engine": "JITTED", "rules_text": service_rules_text()}


def test_inline_pool_is_synchronous(init):
    pool = ServicePool(2, init, processes=False)
    specs = generate_stream(4, seed=5)
    for spec in specs:
        pool.submit(spec)
    assert pool.inflight == 0  # inline completions never count as inflight
    results = pool.poll(timeout=0)
    assert sorted(r["sid"] for r in results) == [s["sid"] for s in specs]
    snapshots = pool.close()
    assert sum(s["sessions"] for s in snapshots) == 4


def test_close_refuses_inflight_and_double_close(init):
    pool = ServicePool(1, init, processes=False)
    pool.close()
    with pytest.raises(RuntimeError):
        pool.close()


def test_dead_worker_surfaces_as_runtime_error(init):
    """A killed worker becomes a clear error, not a raw EOFError."""
    pool = ServicePool(1, init, processes=True)
    spec = generate_stream(1, seed=11)[0]
    pool.submit(spec)
    pool.poll(timeout=30)  # wait out runner construction + first session
    pool._procs[0].kill()
    pool._procs[0].join(timeout=10)
    with pytest.raises(RuntimeError, match="died without reporting"):
        # The closed pipe reads as ready-with-EOF; a late submit on the
        # dead pipe raises the same shape from the send side.
        pool.submit(generate_stream(2, seed=12)[1])
        pool.poll(timeout=30)
