"""Fixed-seed differential: service mode must equal serial mediation."""

import pytest

from repro.service import run_service
from repro.workloads.generators import (
    DEFAULT_MIX,
    SESSION_MODELS,
    generate_stream,
    poisson_offsets,
    service_rules_text,
)

SEED = 0xD1FF
N_SESSIONS = 24


@pytest.fixture(scope="module")
def rules_text():
    return service_rules_text()


@pytest.fixture(scope="module")
def specs():
    return generate_stream(N_SESSIONS, seed=SEED)


@pytest.fixture(scope="module")
def serial(specs, rules_text):
    """The serial reference: one inline worker, closed loop."""
    return run_service(specs, rules_text, workers=1, processes=False)


def _comparable_audit(result):
    """Audit rows minus the worker tag (placement is allowed to vary)."""
    return [
        {k: v for k, v in row.items() if k != "worker"}
        for row in result["audit"]
    ]


def test_generated_stream_is_deterministic():
    first = generate_stream(N_SESSIONS, seed=SEED)
    second = generate_stream(N_SESSIONS, seed=SEED)
    assert first == second
    assert {spec["model"] for spec in first} <= set(SESSION_MODELS)
    assert set(DEFAULT_MIX) == set(SESSION_MODELS)
    offsets = poisson_offsets(16, rate=100.0, seed=SEED)
    assert offsets == sorted(offsets) and len(offsets) == 16


def test_serial_reference_shape(serial):
    assert serial["counters"]["completed"] == N_SESSIONS
    assert serial["throughput"]["mediations"] > 0
    assert serial["drops"] > 0  # the trap steps fire under the rules
    sids = {sid for sid, _idx, _op, _status in serial["verdicts"]}
    assert len(sids) == N_SESSIONS


@pytest.mark.parametrize("workers", [2, 3])
def test_inline_multiworker_matches_serial(specs, rules_text, serial, workers):
    result = run_service(specs, rules_text, workers=workers, processes=False)
    assert result["verdicts"] == serial["verdicts"]
    assert _comparable_audit(result) == _comparable_audit(serial)
    assert result["drops"] == serial["drops"]
    assert result["stats"]["invocations"] == serial["stats"]["invocations"]
    assert result["stats"]["drops"] == serial["stats"]["drops"]


def test_spawn_workers_match_serial(specs, rules_text, serial):
    """Real OS worker processes produce the identical merged stream."""
    result = run_service(specs, rules_text, workers=2, processes=True)
    assert result["verdicts"] == serial["verdicts"]
    assert _comparable_audit(result) == _comparable_audit(serial)
    assert result["drops"] == serial["drops"]
    assert result["stats"]["invocations"] == serial["stats"]["invocations"]
    # Work actually landed on both workers.
    placements = {row["sessions"] for row in result["workers"]}
    assert all(row["sessions"] > 0 for row in result["workers"]), placements


def test_open_loop_backpressure_rejects_gracefully(specs, rules_text):
    """Past saturation: bounded queue, counted rejections, no collapse."""
    result = run_service(
        specs, rules_text, workers=1, processes=False,
        mode="open", offered_rate=50000.0, max_pending=4,
    )
    counters = result["counters"]
    assert counters["completed"] + counters["rejected"] == N_SESSIONS
    assert counters["rejected"] > 0
    assert counters["queue_depth_peak"] <= 4
    assert sorted(result["rejected"]) == result["rejected"]
    # Completed sessions are a verdict-faithful subset of serial.
    done = {sid for sid, _i, _o, _s in result["verdicts"]}
    assert done.isdisjoint(set(result["rejected"]))
