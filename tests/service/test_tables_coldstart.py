"""Service workers load the flat-table artifact instead of compiling.

The TABLED zero-warmup story: the driver compiles the rule base once,
ships the serialized artifact in every worker's init payload, and each
:class:`~repro.service.core.SessionRunner` starts with the tables
already attached — asserted here via the ``tables_loaded`` flag the
worker snapshot carries, for both inline runners and real
spawn-context processes.  A stale artifact must fail the worker
loudly, never silently degrade to compiling.
"""

import pytest

from repro import errors
from repro.api import Session
from repro.service.core import SessionRunner
from repro.service.driver import run_service
from repro.workloads.generators import generate_stream, service_rules_text

SEED = 0xAB1E
N_SESSIONS = 16


@pytest.fixture(scope="module")
def rules_text():
    return service_rules_text()


@pytest.fixture(scope="module")
def tables_text(rules_text):
    # Compile against a service-world session — the exact environment
    # (rules + MAC policy TCB) every worker validates the digest in.
    return Session(
        engine="TABLED", rules=rules_text, world="service"
    ).compile_tables()


@pytest.fixture(scope="module")
def specs():
    return generate_stream(N_SESSIONS, seed=SEED)


def _strip_worker(audit):
    """Worker attribution differs between dispatch disciplines."""
    return [{k: v for k, v in row.items() if k != "worker"} for row in audit]


def test_runner_init_loads_artifact(rules_text, tables_text):
    runner = SessionRunner({
        "engine": "TABLED",
        "rules_text": rules_text,
        "tables_text": tables_text,
    })
    assert runner.tables_loaded
    assert runner.session.firewall._tables is not None
    assert runner.session.firewall._tables.loaded
    assert runner.snapshot()["tables_loaded"] is True


def test_runner_without_artifact_reports_not_loaded(rules_text):
    runner = SessionRunner({"engine": "TABLED", "rules_text": rules_text})
    assert not runner.tables_loaded
    assert runner.snapshot()["tables_loaded"] is False


def test_stale_artifact_fails_runner_loudly(rules_text, tables_text):
    changed = rules_text.replace("-j DROP", "-j ACCEPT", 1)
    assert changed != rules_text
    with pytest.raises(errors.PFTablesStale):
        SessionRunner({
            "engine": "TABLED",
            "rules_text": changed,
            "tables_text": tables_text,
        })


def test_inline_pool_uses_artifact_and_matches_jitted(specs, rules_text, tables_text):
    reference = run_service(
        specs, rules_text, engine="JITTED", workers=2, processes=False)
    tabled = run_service(
        specs, rules_text, engine="TABLED", workers=2, processes=False,
        tables_text=tables_text)
    assert all(w["tables_loaded"] for w in tabled["workers"])
    assert not any(w["tables_loaded"] for w in reference["workers"])
    assert tabled["verdicts"] == reference["verdicts"]
    assert _strip_worker(tabled["audit"]) == _strip_worker(reference["audit"])
    assert tabled["drops"] == reference["drops"]


def test_spawned_workers_cold_start_from_artifact(specs, rules_text, tables_text):
    """The real thing: spawn-context OS workers adopt the artifact and
    still produce the serial verdict stream."""
    reference = run_service(
        specs, rules_text, engine="TABLED", workers=1, processes=False,
        tables_text=tables_text)
    spawned = run_service(
        specs, rules_text, engine="TABLED", workers=2, processes=True,
        tables_text=tables_text)
    assert all(w["tables_loaded"] for w in spawned["workers"])
    assert spawned["verdicts"] == reference["verdicts"]
    assert _strip_worker(spawned["audit"]) == _strip_worker(reference["audit"])
