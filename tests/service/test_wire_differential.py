"""Protocol differential: v0 and binary wire paths, one verdict stream.

The data-plane overhaul touches everything between the admission loop
and the runner — framing, codecs, dispatch batching, the step loop —
so its correctness statement is blunt: for the same generated stream,
the merged verdicts, audit, and engine stats must be **identical**
whichever protocol carried them, whichever step loop executed them,
inline or across real spawn-context worker processes.
"""

import pytest

from repro.service import run_service
from repro.workloads.generators import generate_stream, service_rules_text

SEED = 0xB1FF
N_SESSIONS = 24


@pytest.fixture(scope="module")
def rules_text():
    return service_rules_text()


@pytest.fixture(scope="module")
def specs():
    return generate_stream(N_SESSIONS, seed=SEED)


@pytest.fixture(scope="module")
def serial(specs, rules_text):
    """The serial reference: one inline worker, v0's per-call loop."""
    return run_service(specs, rules_text, workers=1, processes=False,
                       protocol="v0")


def _comparable_audit(result):
    """Audit rows minus the worker tag (placement is allowed to vary)."""
    return [
        {k: v for k, v in row.items() if k != "worker"}
        for row in result["audit"]
    ]


def _assert_observables_match(result, serial):
    assert result["verdicts"] == serial["verdicts"]
    assert _comparable_audit(result) == _comparable_audit(serial)
    assert result["drops"] == serial["drops"]
    assert result["stats"]["invocations"] == serial["stats"]["invocations"]
    assert result["stats"]["drops"] == serial["stats"]["drops"]


@pytest.mark.parametrize("protocol", ["v0", "binary"])
def test_inline_protocols_match_serial(specs, rules_text, serial, protocol):
    result = run_service(specs, rules_text, workers=2, processes=False,
                         protocol=protocol)
    _assert_observables_match(result, serial)


@pytest.mark.parametrize("protocol", ["v0", "binary"])
def test_spawn_protocols_match_serial(specs, rules_text, serial, protocol):
    """Real 2-worker spawn, both protocols, one merged stream."""
    result = run_service(specs, rules_text, workers=2, processes=True,
                         protocol=protocol)
    _assert_observables_match(result, serial)
    assert all(row["sessions"] > 0 for row in result["workers"])


def test_step_batch_toggle_is_observably_silent(specs, rules_text, serial):
    """The capture-and-replay step loop changes cost, never observables:
    forcing it on under v0 and off under binary must still match."""
    replay_v0 = run_service(specs, rules_text, workers=1, processes=False,
                            protocol="v0", step_batch=True)
    percall_binary = run_service(specs, rules_text, workers=2, processes=False,
                                 protocol="binary", step_batch=False)
    _assert_observables_match(replay_v0, serial)
    _assert_observables_match(percall_binary, serial)


def test_binary_actually_batches_and_saves_bytes(specs, rules_text):
    """The point of the protocol: multi-session frames, fewer bytes."""
    v0 = run_service(specs, rules_text, workers=2, processes=True,
                     protocol="v0")
    binary = run_service(specs, rules_text, workers=2, processes=True,
                         protocol="binary")
    assert v0["wire"]["protocol"] == "v0"
    assert binary["wire"]["protocol"] == "binary"
    assert v0["wire"]["sessions_per_frame"] == 1.0
    assert binary["wire"]["sessions_per_frame"] > 1.0
    assert binary["wire"]["bytes_per_session"] * 2 < v0["wire"]["bytes_per_session"]
    # Both endpoints kept consistent tallies: every driver tx session
    # arrived at some worker rx, and vice versa.
    for run in (v0, binary):
        summary = run["wire"]
        assert summary["driver"]["sessions"]["tx"] == N_SESSIONS
        assert summary["workers"]["sessions"]["rx"] == N_SESSIONS
        assert summary["driver"]["sessions"]["rx"] == N_SESSIONS
        assert summary["workers"]["sessions"]["tx"] == N_SESSIONS
