"""Session-reap churn: a long-lived runner must not accumulate state."""

import pytest

from repro.firewall.procstate import reset_substrate_stats, substrate_stats
from repro.service.core import SessionRunner
from repro.workloads.generators import generate_stream, service_rules_text


@pytest.fixture(scope="module")
def rules_text():
    return service_rules_text()


def _runner(rules_text):
    return SessionRunner({
        "engine": "JITTED",
        "rules_text": rules_text,
        "worker_id": 0,
    })


def test_census_returns_to_baseline_after_each_session(rules_text):
    runner = _runner(rules_text)
    baseline = sorted(runner.session.kernel.processes)
    assert len(baseline) == runner.baseline_pids
    for spec in generate_stream(12, seed=7):
        runner.run_session(spec)
        assert sorted(runner.session.kernel.processes) == baseline
    assert runner.sessions_run == 12


def test_reap_releases_procstate_bundles(rules_text):
    """Every spawned process (roots and fork children) is released."""
    runner = _runner(rules_text)
    reset_substrate_stats()
    specs = generate_stream(10, seed=21)
    spawned = 0
    for spec in specs:
        spawned += 1  # the root
        spawned += sum(1 for step in spec["steps"] if step[0] == "fork_exec")
        runner.run_session(spec)
    stats = substrate_stats()
    assert stats["releases"] == spawned
    # Released state pins nothing: the runner's world holds only the
    # baseline processes, each with empty per-process firewall state.
    for proc in runner.session.kernel.processes.values():
        assert len(proc.pf.state) == 0


def test_churn_does_not_grow_observable_state(rules_text):
    """Audit sequence advances but no per-process residue accumulates."""
    runner = _runner(rules_text)
    specs = list(generate_stream(30, seed=3))
    runner.run_session(specs[0])
    snap_early = runner.session.snapshot()
    for spec in specs[1:]:
        runner.run_session(spec)
    snap_late = runner.session.snapshot()
    assert snap_late["live_pids"] == snap_early["live_pids"]
    assert runner.busy_cpu > 0.0
    # The audit ring is bounded: its retained length never exceeds
    # capacity no matter how many sessions churned through.
    ring = runner.session.audit
    assert len(ring.records()) <= ring.capacity


def test_denied_sessions_still_reap_cleanly(rules_text):
    """Trap-hitting sessions (PFDenied verdicts) leave no residue."""
    runner = _runner(rules_text)
    baseline = sorted(runner.session.kernel.processes)
    drops = 0
    for spec in generate_stream(20, seed=99):
        result = runner.run_session(spec)
        drops += result["drops"]
    assert drops > 0  # the stream's trap steps actually fired
    assert sorted(runner.session.kernel.processes) == baseline
