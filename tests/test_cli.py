"""The pfctl command-line tool."""

import pytest

from repro.cli import main
from repro.rulesets.default import RULES_R1_R12


@pytest.fixture
def rules_file(tmp_path):
    path = tmp_path / "rules.pf"
    path.write_text(
        "# distributor rules\n" + "\n".join(RULES_R1_R12) + "\n"
    )
    return str(path)


@pytest.fixture
def e_rules_file(tmp_path):
    """A ruleset that should block all nine exploits."""
    from repro.attacks.exploits import EXPLOITS

    texts = []
    for eid in sorted(EXPLOITS):
        for text in EXPLOITS[eid]().rules():
            if text not in texts:
                texts.append(text)
    path = tmp_path / "full.pf"
    path.write_text("\n".join(texts) + "\n")
    return str(path)


class TestParse:
    def test_valid_file(self, rules_file, capsys):
        assert main(["parse", rules_file]) == 0
        assert "OK" in capsys.readouterr().out

    def test_invalid_line_fails_with_location(self, tmp_path, capsys):
        path = tmp_path / "bad.pf"
        path.write_text("pftables -o FILE_OPEN -j DROP\npftables -z nope -j DROP\n")
        assert main(["parse", str(path)]) == 1
        assert ":2:" in capsys.readouterr().out

    def test_keep_going_reports_all(self, tmp_path, capsys):
        path = tmp_path / "bad.pf"
        path.write_text("pftables -z a -j DROP\npftables -z b -j DROP\n")
        assert main(["parse", str(path), "--keep-going"]) == 1
        out = capsys.readouterr().out
        assert ":1:" in out and ":2:" in out

    def test_missing_file(self, capsys):
        assert main(["parse", "/no/such/file.pf"]) == 1


class TestFmtListSave:
    def test_fmt_output_reparses(self, rules_file, capsys, tmp_path):
        assert main(["fmt", rules_file]) == 0
        formatted = capsys.readouterr().out
        again = tmp_path / "fmt.pf"
        again.write_text(formatted)
        assert main(["parse", str(again)]) == 0

    def test_list_shows_chains(self, rules_file, capsys):
        assert main(["list", rules_file]) == 0
        out = capsys.readouterr().out
        assert "Chain input" in out
        assert "Chain signal_chain" in out

    def test_list_verbose_shows_hits(self, rules_file, capsys):
        assert main(["list", rules_file, "-v"]) == 0
        assert "hits" in capsys.readouterr().out

    def test_save_roundtrip(self, rules_file, capsys):
        from repro.firewall.engine import ProcessFirewall
        from repro.firewall.persist import load_rules

        assert main(["save", rules_file]) == 0
        saved = capsys.readouterr().out
        firewall = ProcessFirewall()
        assert load_rules(firewall, saved) == 12


class TestAudit:
    def test_full_ruleset_blocks_all_nine(self, e_rules_file, capsys):
        assert main(["audit", e_rules_file]) == 0
        out = capsys.readouterr().out
        assert "9/9 exploits blocked" in out

    def test_weak_ruleset_flagged(self, tmp_path, capsys):
        path = tmp_path / "weak.pf"
        path.write_text(RULES_R1_R12[0] + "\n")  # only R1
        assert main(["audit", str(path)]) == 2
        out = capsys.readouterr().out
        assert "not blocked" in out
        assert "E1" in out


@pytest.fixture
def shadow_rules_file(tmp_path):
    """Rules that drop (and first log) any open of shadow_t files."""
    path = tmp_path / "shadow.pf"
    path.write_text(
        "pftables -A input -o FILE_OPEN -d shadow_t -j LOG --prefix shadow\n"
        "pftables -A input -o FILE_OPEN -d shadow_t -j DROP\n"
    )
    return str(path)


class TestCounters:
    def test_listing_shows_live_counters(self, shadow_rules_file, capsys):
        assert main(["counters", shadow_rules_file]) == 0
        out = capsys.readouterr().out
        # The -L -v shape with metrics upgrades: traversals on the
        # chain header, hit and drop columns on the rules.
        assert "Chain input" in out and "traversals]" in out
        assert "hits]" in out and "drops]" in out
        assert "mediations:" in out and "dropped: 1" in out

    def test_json_export(self, shadow_rules_file, capsys):
        import json

        assert main(["counters", shadow_rules_file, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        names = {row["name"] for row in data["counters"]}
        assert "pf_mediations_total" in names
        assert "pf_rule_drops_total" in names
        assert data["phases"]  # phase timers recorded

    def test_prometheus_export_round_trips(self, shadow_rules_file, capsys):
        from repro.obs import registry_from_prometheus

        assert main(["counters", shadow_rules_file, "--prometheus"]) == 0
        text = capsys.readouterr().out
        rebuilt = registry_from_prometheus(text)
        assert rebuilt.to_prometheus() == text
        assert rebuilt.value("pf_verdicts_total", {"verdict": "drop"}) == 1


class TestExplain:
    def test_explain_open_names_dropping_rule(self, shadow_rules_file, capsys):
        assert main(["explain", shadow_rules_file, "--open", "/etc/shadow"]) == 0
        out = capsys.readouterr().out
        assert "DROPPED by: pftables -A input -o FILE_OPEN -d shadow_t -j DROP" in out
        assert "chain filter/input" in out
        assert "OBJECT_LABEL=collected" in out

    def test_explain_open_allowed_path(self, shadow_rules_file, capsys):
        assert main(["explain", shadow_rules_file, "--open", "/etc/passwd"]) == 0
        out = capsys.readouterr().out
        assert "allowed (verdict: ALLOW)" in out
        assert "DROPPED by" not in out

    def test_explain_exploit_end_to_end(self, e_rules_file, capsys):
        assert main(["explain", e_rules_file, "--exploit", "E3"]) == 0
        out = capsys.readouterr().out
        assert "E3" in out and "blocked" in out
        assert "DROPPED by:" in out

    def test_explain_unknown_exploit(self, e_rules_file, capsys):
        assert main(["explain", e_rules_file, "--exploit", "E42"]) == 1
        assert "unknown exploit" in capsys.readouterr().err


class TestSuggest:
    def test_suggest_from_json_trace(self, tmp_path, capsys):
        from repro.firewall.engine import ProcessFirewall
        from repro.rulegen.trace import dump_log_json
        from repro.world import build_world

        world = build_world()
        pf = ProcessFirewall()
        world.attach_firewall(pf)
        pf.install("pftables -A input -o FILE_OPEN -j LOG")
        proc = world.spawn("svc", uid=0, label="unconfined_t", binary_path="/bin/svc")
        proc.call(proc.binary, 0x100)
        for _ in range(12):
            fd = world.sys.open(proc, "/etc/passwd")
            world.sys.close(proc, fd)
        log_path = tmp_path / "trace.json"
        log_path.write_text(dump_log_json(pf))

        assert main(["suggest", str(log_path), "--threshold", "10"]) == 0
        out = capsys.readouterr().out
        assert "/bin/svc" in out and "0x100" in out

        # The printed rules form a valid rules file.
        rules_path = tmp_path / "suggested.pf"
        rules_path.write_text(out)
        assert main(["parse", str(rules_path)]) == 0

    def test_suggest_empty_trace(self, tmp_path, capsys):
        log_path = tmp_path / "trace.json"
        log_path.write_text("[]")
        assert main(["suggest", str(log_path)]) == 0
        assert "no pure entrypoints" in capsys.readouterr().err
