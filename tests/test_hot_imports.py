"""Function-body-import gate for the mediation hot path.

The same check CI runs via ``tools/check_hot_imports.py``; running it
as a test makes a per-call import regression fail locally before it
fails in CI.
"""

import os
import sys

TOOLS_DIR = os.path.join(os.path.dirname(__file__), "..", "tools")


def test_hot_modules_have_no_function_body_imports(capsys):
    sys.path.insert(0, os.path.abspath(TOOLS_DIR))
    try:
        from check_hot_imports import main
    finally:
        sys.path.pop(0)
    status = main()
    out = capsys.readouterr().out
    assert status == 0, "hot-path import offenders:\n" + out
