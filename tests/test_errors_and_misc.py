"""The errno hierarchy, table rendering, kernel helpers, world layout."""

import pytest

from repro import errors
from repro.analysis.tables import format_table, overhead_pct
from repro.world import ADVERSARY_UID, build_world, spawn_adversary, spawn_root_shell


class TestErrors:
    def test_every_class_registered(self):
        assert errors.ERRNO_BY_NAME["ENOENT"] is errors.ENOENT
        assert errors.ERRNO_BY_NAME["EACCES"] is errors.EACCES
        assert len(errors.ERRNO_BY_NAME) >= 17

    def test_pfdenied_is_eacces_subclass(self):
        assert issubclass(errors.PFDenied, errors.EACCES)
        exc = errors.PFDenied("dropped", rule="sentinel")
        assert exc.rule == "sentinel"
        assert exc.errno_name == "EACCES"

    def test_default_message_is_errno_name(self):
        assert errors.ELOOP().message == "ELOOP"

    def test_messages_preserved(self):
        assert errors.ENOENT("/x/y").message == "/x/y"

    def test_all_are_kernel_errors(self):
        for cls in errors.ERRNO_BY_NAME.values():
            assert issubclass(cls, errors.KernelError)


class TestTables:
    def test_overhead_pct(self):
        assert overhead_pct(100, 104) == pytest.approx(4.0)
        assert overhead_pct(100, 90) == pytest.approx(-10.0)
        assert overhead_pct(0, 5) == 0.0

    def test_format_alignment(self):
        text = format_table(["name", "value"], [("a", 1), ("long-name", 2.5)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "long-name" in lines[-1]
        assert "2.50" in text  # floats rendered to 2 places

    def test_title_underlined(self):
        text = format_table(["x"], [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert text.splitlines()[1] == "========"


class TestKernelHelpers:
    def test_mkdirs_idempotent(self):
        kernel = build_world()
        first = kernel.mkdirs("/a/b/c")
        again = kernel.mkdirs("/a/b/c")
        assert first is again

    def test_mkdirs_through_file_fails(self):
        kernel = build_world()
        kernel.add_file("/a")
        with pytest.raises(errors.ENOTDIR):
            kernel.mkdirs("/a/b")

    def test_add_file_overwrites_content(self):
        kernel = build_world()
        kernel.add_file("/tmp/x", b"one")
        kernel.add_file("/tmp/x", b"two")
        assert kernel.lookup("/tmp/x").data == b"two"

    def test_audit_disabled(self):
        kernel = build_world()
        kernel.audit_enabled = False
        root = spawn_root_shell(kernel)
        kernel.sys.open(root, "/etc/passwd")
        assert kernel.audit == []

    def test_audit_bounded(self):
        kernel = build_world()
        kernel.audit_limit = 10
        root = spawn_root_shell(kernel)
        for _ in range(20):
            kernel.sys.stat(root, "/etc/passwd")
        assert len(kernel.audit) <= kernel.audit_limit

    def test_spawn_registers_uid_with_adversary_model(self):
        kernel = build_world()
        kernel.spawn("x", uid=4242)
        assert 4242 in kernel.adversaries.known_uids

    def test_get_process_esrch(self):
        kernel = build_world()
        with pytest.raises(errors.ESRCH):
            kernel.get_process(999)


class TestWorld:
    def test_reference_labels_present(self):
        kernel = build_world()
        assert kernel.lookup("/etc/shadow").label == "shadow_t"
        assert kernel.lookup("/lib").label == "lib_t"
        assert kernel.lookup("/tmp").is_sticky

    def test_adversary_is_unprivileged(self):
        kernel = build_world()
        adversary = spawn_adversary(kernel)
        assert adversary.creds.uid == ADVERSARY_UID
        assert adversary.label == "user_t"
        with pytest.raises(errors.EACCES):
            kernel.sys.open(adversary, "/etc/shadow")

    def test_adversary_can_write_tmp(self):
        kernel = build_world()
        adversary = spawn_adversary(kernel)
        fd = kernel.sys.open(adversary, "/tmp/mine", flags=0x41)
        kernel.sys.close(adversary, fd)

    def test_mac_can_be_disabled(self):
        kernel = build_world(enforcing_mac=False)
        adversary = spawn_adversary(kernel)
        # Shadow has mode 0600, so DAC still protects it even without MAC.
        with pytest.raises(errors.EACCES):
            kernel.sys.open(adversary, "/etc/shadow")
