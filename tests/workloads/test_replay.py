"""Syscall trace record/replay."""

import pytest

from repro import errors
from repro.firewall.engine import ProcessFirewall
from repro.vfs.file import OpenFlags
from repro.workloads.replay import Trace, record_syscalls, replay
from repro.world import build_world, spawn_adversary, spawn_root_shell


def run_workload(kernel, root):
    sys = kernel.sys
    fd = sys.open(root, "/tmp/out", flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
    sys.write(root, fd, b"hello")
    sys.close(root, fd)
    child = sys.fork(root)
    sys.stat(child, "/etc/passwd")
    sys.exit(child, 0)
    fd = sys.open(root, "/etc/shadow")
    sys.read(root, fd)
    sys.close(root, fd)


class TestRecording:
    def test_records_successful_calls(self):
        kernel = build_world()
        root = spawn_root_shell(kernel)
        with record_syscalls(kernel) as trace:
            run_workload(kernel, root)
        methods = [entry[1] for entry in trace.entries]
        assert methods.count("open") == 2
        assert "fork" in methods and "write" in methods

    def test_failed_calls_not_recorded(self):
        kernel = build_world()
        root = spawn_root_shell(kernel)
        with record_syscalls(kernel) as trace:
            with pytest.raises(errors.ENOENT):
                kernel.sys.open(root, "/no/such")
        assert len(trace) == 0

    def test_recorder_detaches_on_exit(self):
        kernel = build_world()
        original = kernel.sys
        with record_syscalls(kernel):
            assert kernel.sys is not original
        assert kernel.sys is original

    def test_json_roundtrip(self):
        kernel = build_world()
        root = spawn_root_shell(kernel)
        with record_syscalls(kernel) as trace:
            run_workload(kernel, root)
        again = Trace.from_json(trace.to_json())
        assert again.entries == trace.entries

    def test_save_load(self, tmp_path):
        kernel = build_world()
        root = spawn_root_shell(kernel)
        with record_syscalls(kernel) as trace:
            kernel.sys.write(root, kernel.sys.open(root, "/tmp/x", flags=0x41), b"\x00binary")
        path = tmp_path / "t.json"
        trace.save(str(path))
        loaded = Trace.load(str(path))
        assert loaded.entries == trace.entries


class TestReplay:
    def _recorded(self):
        kernel = build_world()
        root = spawn_root_shell(kernel)
        with record_syscalls(kernel) as trace:
            run_workload(kernel, root)
        return trace

    def test_replay_reproduces_state(self):
        trace = self._recorded()
        target = build_world()
        root = spawn_root_shell(target)
        result = replay(target, trace, {1: root})
        assert result.failed == 0
        assert result.executed == len(trace)
        assert target.lookup("/tmp/out").data == b"hello"

    def test_replay_fork_extends_mapping(self):
        trace = self._recorded()
        target = build_world()
        # Make the replayed child's stat observable.
        result = replay(target, trace, {1: spawn_root_shell(target)})
        assert result.failed == 0
        assert target.stats.syscalls.get("fork") == 1
        assert target.stats.syscalls.get("exit") == 1

    def test_replay_against_stricter_kernel_collects_denials(self):
        trace = self._recorded()
        target = build_world()
        firewall = target.attach_firewall(ProcessFirewall())
        firewall.install("pftables -A input -o FILE_OPEN -d shadow_t -j DROP")
        result = replay(target, trace, {1: spawn_root_shell(target)})
        # The shadow open is dropped, and the recorded read/close of the
        # descriptor it would have produced fail in its shadow (EBADF).
        assert [f[1] for f in result.failures] == ["open", "read", "close"]
        assert result.failures[0][2] == "EACCES"

    def test_strict_mode_raises(self):
        trace = self._recorded()
        target = build_world()
        firewall = target.attach_firewall(ProcessFirewall())
        firewall.install("pftables -A input -o FILE_OPEN -d shadow_t -j DROP")
        with pytest.raises(errors.PFDenied):
            replay(target, trace, {1: spawn_root_shell(target)}, tolerate_failures=False)

    def test_unmapped_pid_skipped(self):
        trace = Trace()
        trace.append(42, "getpid", (), {})
        target = build_world()
        result = replay(target, trace, {})
        assert result.executed == 0 and result.failed == 0

    def test_kill_pids_translated(self):
        kernel = build_world()
        root = spawn_root_shell(kernel)
        from repro.proc import signals as sig

        victim = kernel.spawn("victim", uid=0, label="unconfined_t", binary_path="/bin/sh")
        with record_syscalls(kernel) as trace:
            kernel.sys.kill(root, victim.pid, sig.SIGTERM)
        target = build_world()
        new_root = spawn_root_shell(target)
        new_victim = target.spawn("victim", uid=0, label="unconfined_t", binary_path="/bin/sh")
        result = replay(target, trace, {root.pid: new_root, victim.pid: new_victim})
        assert result.failed == 0
        assert not new_victim.alive
