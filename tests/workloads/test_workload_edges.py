"""Edge cases in the workload harnesses."""

import pytest

from repro import errors
from repro.workloads.lmbench import LmbenchSuite
from repro.workloads.webbench import _build_server, apache_requests_per_second


class TestWebbench:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            _build_server("nonsense", depth=1, clients=1)

    def test_worker_pool_capped(self):
        servers, _url = _build_server("pf", depth=1, clients=500)
        assert len(servers) == 32

    def test_deep_site_built_correctly(self):
        servers, url = _build_server("program", depth=5, clients=1)
        assert url.count("/") == 5
        assert servers[0].serve(url).status == 200


class TestLmbenchEdges:
    def test_unknown_column_rejected(self):
        with pytest.raises(KeyError):
            LmbenchSuite("TURBO")

    def test_rule_count_override(self):
        suite = LmbenchSuite("EPTSPC", rule_count=50)
        assert suite.firewall.rules.rule_count() == 50

    def test_bench_process_has_deep_stack(self):
        suite = LmbenchSuite("DISABLED")
        assert suite.proc.stack.depth == 25


class TestPersistListing:
    def test_empty_firewall_lists_builtin_chains(self):
        from repro.firewall.engine import ProcessFirewall
        from repro.firewall.persist import list_rules

        text = list_rules(ProcessFirewall())
        assert "Chain input" in text

    def test_save_empty_firewall_roundtrips(self):
        from repro.firewall.engine import ProcessFirewall
        from repro.firewall.persist import load_rules, save_rules

        firewall = ProcessFirewall()
        assert load_rules(ProcessFirewall(), save_rules(firewall)) == 0
