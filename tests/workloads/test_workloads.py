"""Workload harness smoke tests (small iteration counts)."""

import pytest

from repro.workloads.lmbench import LMBENCH_OPS, LmbenchSuite, TABLE6_COLUMNS, time_operation
from repro.workloads.macro import MacrobenchSuite, TABLE7_CONFIGS
from repro.workloads.openbench import FIGURE4_PATH_LENGTHS, syscall_counts, time_variant
from repro.workloads.webbench import apache_requests_per_second


class TestLmbench:
    @pytest.mark.parametrize("column", sorted(TABLE6_COLUMNS))
    def test_all_ops_run_under_every_column(self, column):
        suite = LmbenchSuite(column, rule_count=60)
        for name, fn in suite.operations():
            fn()  # must not raise

    def test_nine_operations(self):
        assert len(LMBENCH_OPS) == 9
        assert LMBENCH_OPS[0] == "null"

    def test_time_operation_returns_microseconds(self):
        suite = LmbenchSuite("DISABLED")
        us = time_operation(suite.op_null, iterations=50, warmup=5)
        assert us > 0

    def test_full_base_invokes_firewall(self):
        suite = LmbenchSuite("EPTSPC", rule_count=60)
        suite.op_stat()
        assert suite.firewall.stats.invocations > 0

    def test_disabled_column_never_invokes_engine(self):
        suite = LmbenchSuite("DISABLED")
        suite.op_stat()
        assert suite.firewall.stats.invocations == 0


class TestMacro:
    @pytest.mark.parametrize("config", TABLE7_CONFIGS)
    def test_workloads_run(self, config):
        suite = MacrobenchSuite(config)
        assert suite.apache_build(files=5) > 0
        assert suite.boot(services=4) > 0
        latency, throughput = suite.web(requests=10)
        assert latency > 0 and throughput > 0

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError):
            MacrobenchSuite("PF Imaginary")

    def test_pf_full_counts_rules(self):
        suite = MacrobenchSuite("PF Full")
        assert suite.kernel.firewall.rules.rule_count() > 1000


class TestFigure4:
    def test_syscall_counts_shape(self):
        counts = syscall_counts(path_lengths=(1, 4, 7))
        # Plain open is always one syscall; safe_open grows linearly.
        assert all(v == 1 for v in counts["open"].values())
        assert counts["safe_open"][7] > counts["safe_open"][4] > counts["safe_open"][1]
        assert all(v == 1 for v in counts["safe_open_PF"].values())

    def test_time_variant_runs(self):
        assert time_variant("open", 4, iterations=20) > 0
        assert time_variant("safe_open_PF", 4, iterations=20) > 0


class TestFigure5:
    @pytest.mark.parametrize("mode", ["program", "pf"])
    def test_modes_serve(self, mode):
        rps = apache_requests_per_second(mode, depth=3, clients=2, requests=20)
        assert rps > 0
