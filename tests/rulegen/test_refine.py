"""Rule refinement from benign denials."""

import pytest

from repro import errors
from repro.firewall.engine import ProcessFirewall
from repro.programs.ld_so import DynamicLinker
from repro.rulegen.refine import apply_refinements, refine_rules
from repro.world import build_world, spawn_adversary, spawn_root_shell

#: R1 variant missing httpd_modules_t — the false-positive seed.
TOO_TIGHT_R1 = (
    "pftables -A input -p /lib/ld-2.15.so -i 0x596b -s SYSHIGH "
    "-d ~{lib_t|textrel_shlib_t} -o FILE_OPEN -j DROP"
)


def _world_with_rule(rule_text):
    kernel = build_world()
    firewall = kernel.attach_firewall(ProcessFirewall())
    firewall.install(rule_text)
    kernel.mkdirs("/usr/lib/apache2", label="httpd_modules_t")
    kernel.add_file("/usr/lib/apache2/mod_ssl.so", b"\x7fELF", mode=0o755, label="httpd_modules_t")
    return kernel, firewall


def _load_module(kernel):
    apache = kernel.spawn("apache2", uid=0, label="httpd_t", binary_path="/usr/bin/apache2")
    linker = DynamicLinker(kernel, apache, runpath=("/usr/lib/apache2",))
    return linker.load_library("mod_ssl.so")


class TestRefinementLoop:
    def test_too_tight_rule_denies_benign_module(self):
        kernel, _fw = _world_with_rule(TOO_TIGHT_R1)
        with pytest.raises(errors.PFDenied):
            _load_module(kernel)

    def test_refine_proposes_the_missing_label(self):
        kernel, _fw = _world_with_rule(TOO_TIGHT_R1)
        with pytest.raises(errors.PFDenied):
            _load_module(kernel)
        proposals = refine_rules(kernel)
        assert len(proposals) == 1
        assert proposals[0].added_labels == {"httpd_modules_t"}
        assert "httpd_modules_t" in proposals[0].new_text

    def test_applied_refinement_fixes_benign_keeps_blocking_attack(self):
        kernel, firewall = _world_with_rule(TOO_TIGHT_R1)
        with pytest.raises(errors.PFDenied):
            _load_module(kernel)
        applied = apply_refinements(firewall, refine_rules(kernel))
        assert applied == 1
        # Benign module load now passes...
        path, _image = _load_module(kernel)
        assert path == "/usr/lib/apache2/mod_ssl.so"
        # ...and the attack the rule exists for is still blocked.
        adversary = spawn_adversary(kernel)
        fd = kernel.sys.open(adversary, "/tmp/evil.so", flags=0x41, mode=0o755)
        kernel.sys.close(adversary, fd)
        victim = kernel.spawn("app", uid=0, label="unconfined_t", binary_path="/bin/sh",
                              env={"LD_LIBRARY_PATH": "/tmp"})
        with pytest.raises(errors.PFDenied):
            DynamicLinker(kernel, victim).load_library("evil.so")

    def test_no_denials_no_proposals(self):
        kernel, _fw = _world_with_rule(TOO_TIGHT_R1)
        assert refine_rules(kernel) == []

    def test_allow_set_rules_not_widened(self):
        """A positive-set DROP rule (drop when label IS in the set)
        cannot be fixed by widening; refine leaves it alone."""
        kernel = build_world()
        firewall = kernel.attach_firewall(ProcessFirewall())
        firewall.install("pftables -A input -o FILE_OPEN -d {etc_t} -j DROP")
        root = spawn_root_shell(kernel)
        with pytest.raises(errors.PFDenied):
            kernel.sys.open(root, "/etc/passwd")
        assert refine_rules(kernel) == []
