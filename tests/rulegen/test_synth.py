"""The synthetic trace reproduces Table 8 exactly at full scale."""

import pytest

from repro.rulegen.classify import threshold_sweep, zero_fp_threshold
from repro.rulegen.synth import synthesize_trace

#: Table 8 as printed (threshold -> columns).
PAPER_TABLE8 = {
    0: (4570, 664, 0, 5234, 525),
    5: (4436, 508, 290, 2329, 235),
    10: (4384, 482, 368, 1536, 157),
    50: (4257, 480, 497, 490, 28),
    100: (4247, 480, 507, 295, 18),
    500: (4233, 480, 521, 64, 4),
    1000: (4230, 480, 524, 34, 1),
    1149: (4229, 480, 525, 30, 0),
    5000: (4229, 480, 525, 11, 0),
}


@pytest.fixture(scope="module")
def records():
    return synthesize_trace(seed=0)


@pytest.fixture(scope="module")
def sweep(records):
    return {row["threshold"]: row for row in threshold_sweep(records)}


class TestPaperMarginals:
    @pytest.mark.parametrize("threshold", sorted(PAPER_TABLE8))
    def test_row_matches_paper(self, sweep, threshold):
        high, low, both, rules, fps = PAPER_TABLE8[threshold]
        row = sweep[threshold]
        assert row["high_only"] == high
        assert row["low_only"] == low
        assert row["both"] == both
        assert row["rules_produced"] == rules
        assert row["false_positives"] == fps

    def test_total_entrypoints(self, records):
        from repro.rulegen.classify import classify

        assert len(classify(records)) == 5234

    def test_zero_fp_threshold_is_1149(self, records):
        assert zero_fp_threshold(records) == 1149

    def test_trace_size_order_of_magnitude(self, records):
        """The paper's trace had ~410k entries; ours must be the same
        order (the classification math is count-insensitive)."""
        assert 150_000 <= len(records) <= 800_000


class TestDeterminismAndScaling:
    def test_same_seed_same_trace(self):
        a = synthesize_trace(seed=3, scale=0.02)
        b = synthesize_trace(seed=3, scale=0.02)
        assert len(a) == len(b)
        assert all(x.entrypoint == y.entrypoint and x.adv_writable == y.adv_writable for x, y in zip(a, b))

    def test_scaled_trace_much_smaller(self, records):
        small = synthesize_trace(seed=0, scale=0.02)
        assert len(small) < len(records) / 10

    def test_scaled_trace_still_classifies(self):
        small = synthesize_trace(seed=0, scale=0.02)
        rows = threshold_sweep(small, thresholds=(0, 5))
        assert rows[0]["both"] == 0  # single-observation rule still holds
