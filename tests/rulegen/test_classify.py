"""Entrypoint classification and the Table 8 math, on hand-built traces."""

import pytest

from repro.rulegen.classify import (
    BOTH,
    HIGH,
    LOW,
    classify,
    rules_for_threshold,
    table8_row,
    threshold_sweep,
    zero_fp_threshold,
)
from repro.rulegen.trace import TraceRecord

EP_A = ("/bin/a", 0x10)
EP_B = ("/bin/b", 0x20)
EP_C = ("/bin/c", 0x30)


def rec(ept, low, label=None):
    label = label or ("tmp_t" if low else "etc_t")
    return TraceRecord(ept, "FILE_OPEN", label, adv_writable=low)


def trace(*specs):
    """specs: (ept, [low-flags...])"""
    out = []
    for ept, flags in specs:
        for flag in flags:
            out.append(rec(ept, flag))
    return out


class TestClassification:
    def test_pure_high(self):
        classified = classify(trace((EP_A, [False] * 3)))
        assert classified[EP_A].full_class() is HIGH

    def test_pure_low(self):
        classified = classify(trace((EP_A, [True] * 3)))
        assert classified[EP_A].full_class() is LOW

    def test_both(self):
        classified = classify(trace((EP_A, [False, False, True])))
        assert classified[EP_A].full_class() is BOTH

    def test_prefix_classification(self):
        classified = classify(trace((EP_A, [False, False, True])))
        ept = classified[EP_A]
        assert ept.class_of_prefix(1) is HIGH
        assert ept.class_of_prefix(2) is HIGH
        assert ept.class_of_prefix(3) is BOTH

    def test_prefix_zero_uses_first(self):
        classified = classify(trace((EP_A, [True, False])))
        assert classified[EP_A].class_of_prefix(0) is LOW

    def test_reveal_index(self):
        classified = classify(trace((EP_A, [False, False, True])))
        assert classified[EP_A].reveal_index() == 3

    def test_reveal_none_for_pure(self):
        classified = classify(trace((EP_A, [False] * 5)))
        assert classified[EP_A].reveal_index() is None

    def test_records_without_entrypoint_skipped(self):
        records = [TraceRecord(None, "FILE_OPEN", "tmp_t", True)]
        assert classify(records) == {}

    def test_labels_bucketed_by_integrity(self):
        records = [rec(EP_A, False, "etc_t"), rec(EP_A, True, "tmp_t")]
        ept = classify(records)[EP_A]
        assert ept.labels_high == {"etc_t"}
        assert ept.labels_low == {"tmp_t"}


class TestTable8Row:
    @pytest.fixture
    def records(self):
        return trace(
            (EP_A, [False] * 10),          # pure high, 10 invocations
            (EP_B, [True] * 3),            # pure low, 3 invocations
            (EP_C, [False] * 4 + [True] * 2),  # both, reveal at 5
        )

    def test_threshold_zero(self, records):
        row = table8_row(classify(records), 0)
        assert row["high_only"] == 2  # A, and C looks high at 1
        assert row["low_only"] == 1
        assert row["both"] == 0
        assert row["rules_produced"] == 3
        assert row["false_positives"] == 1  # C's rule would misfire

    def test_threshold_above_reveal(self, records):
        row = table8_row(classify(records), 5)
        assert row["both"] == 1
        assert row["rules_produced"] == 1  # only A has >=5 invocations
        assert row["false_positives"] == 0

    def test_threshold_excludes_short_entrypoints(self, records):
        row = table8_row(classify(records), 4)
        # B has only 3 invocations: no rule even though pure.
        assert row["rules_produced"] == 2  # A and C (C not yet revealed)
        assert row["false_positives"] == 1

    def test_zero_fp_threshold_is_max_reveal(self, records):
        assert zero_fp_threshold(records) == 5

    def test_sweep_shape(self, records):
        rows = threshold_sweep(records, thresholds=(0, 5))
        assert [r["threshold"] for r in rows] == [0, 5]


class TestRuleGeneration:
    def test_rules_for_pure_entrypoints(self):
        records = trace((EP_A, [False] * 5), (EP_B, [True] * 5))
        rules = rules_for_threshold(records, threshold=5)
        assert len(rules) == 2
        joined = "\n".join(rules)
        assert "/bin/a" in joined and "/bin/b" in joined

    def test_both_entrypoints_excluded(self):
        records = trace((EP_C, [False, True] * 3))
        assert rules_for_threshold(records, threshold=1) == []

    def test_threshold_filters(self):
        records = trace((EP_A, [False] * 3))
        assert rules_for_threshold(records, threshold=5) == []
        assert len(rules_for_threshold(records, threshold=3)) == 1

    def test_generated_rules_parse(self):
        from repro.firewall.pftables import parse_rule

        records = trace((EP_A, [False] * 5), (EP_B, [True] * 5))
        for text in rules_for_threshold(records, threshold=1):
            assert parse_rule(text)
