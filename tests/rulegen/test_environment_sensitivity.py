"""§6.3.1's environment-sensitivity finding, reproduced.

    "Test suites exercise programs under multiple program environments
    ... These environments may access resources that are not relevant
    to the expected deployment, thus resulting in rules that cause
    false negatives.  For example, the Apache test suite exercises
    programs under configurations that allow and disallow low-integrity
    user-defined configuration files (.htaccess)."

We trace the same server twice — AllowOverride on (the test suite's
extra environment) and off (the deployment) — generate rules from each
trace, and show the test-suite-derived rules are strictly weaker.
"""

import pytest

from repro import errors
from repro.firewall.engine import ProcessFirewall
from repro.programs.apache import EPT_SERVE_OPEN, ApacheServer
from repro.rulegen.classify import classify, rules_for_threshold
from repro.rulegen.trace import records_from_engine
from repro.world import build_world, spawn_adversary


def _traced_world(allow_htaccess):
    kernel = build_world()
    firewall = kernel.attach_firewall(ProcessFirewall())
    firewall.install("pftables -A input -o FILE_OPEN -j LOG")
    # A user-content area containing a user-writable .htaccess.
    kernel.mkdirs("/var/www/html/site", uid=1000, mode=0o755, label="httpd_sys_content_t")
    kernel.add_file("/var/www/html/site/index.html", b"<html>site</html>",
                    label="httpd_sys_content_t")
    kernel.add_file("/var/www/html/site/.htaccess", b"Options -Indexes\n",
                    uid=1000, mode=0o644, label="httpd_user_content_t")
    proc = kernel.spawn("apache2", uid=0, label="httpd_t", binary_path="/usr/bin/apache2")
    server = ApacheServer(kernel, proc, allow_htaccess=allow_htaccess)
    for _ in range(12):
        assert server.serve("/site/index.html").status == 200
    return kernel, firewall


def _serve_entrypoint_class(firewall):
    records = records_from_engine(firewall)
    classified = classify(records)
    key = ("/usr/bin/apache2", EPT_SERVE_OPEN)
    return classified[key].full_class()


class TestEnvironmentSensitivity:
    def test_htaccess_environment_poisons_classification(self):
        _kernel, firewall = _traced_world(allow_htaccess=True)
        # The serving entrypoint read both the page (high) and the
        # user-writable .htaccess (low): classified "both".
        assert _serve_entrypoint_class(firewall) == "both"

    def test_deployment_environment_classifies_pure(self):
        _kernel, firewall = _traced_world(allow_htaccess=False)
        assert _serve_entrypoint_class(firewall) == "high"

    def test_test_suite_trace_yields_no_protective_rule(self):
        _kernel, firewall = _traced_world(allow_htaccess=True)
        rules = rules_for_threshold(records_from_engine(firewall), threshold=10)
        assert not any("0x2d637" in rule for rule in rules)

    def test_deployment_trace_rule_blocks_the_attack(self):
        kernel, firewall = _traced_world(allow_htaccess=False)
        rules = rules_for_threshold(records_from_engine(firewall), threshold=10)
        serving_rules = [rule for rule in rules if "0x2d637" in rule]
        assert serving_rules
        firewall.flush()
        firewall.install_all(serving_rules)
        proc = kernel.spawn("apache2", uid=0, label="httpd_t", binary_path="/usr/bin/apache2")
        server = ApacheServer(kernel, proc)
        # Benign serving still works under the generated rule.
        assert server.serve("/site/index.html").status == 200
        # The generated rule is the search-path-family invariant (the
        # entrypoint was classified *high*): it pins the entrypoint to
        # SYSHIGH objects, blocking delivery of adversary-planted
        # content pulled in via traversal.
        adversary = spawn_adversary(kernel)
        fd = kernel.sys.open(adversary, "/tmp/evil.html", flags=0x41, mode=0o666)
        kernel.sys.write(adversary, fd, b"<script>pwn()</script>")
        kernel.sys.close(adversary, fd)
        response = server.serve("/../../../../tmp/evil.html")
        assert response.status == 403
        assert firewall.stats.drops >= 1
