"""Rule suggestion from LOG records and vulnerability reports."""

import pytest

from repro.firewall.engine import ProcessFirewall
from repro.firewall.pftables import parse_rule
from repro.rulegen.suggest import VulnerabilityReport, rule_from_vulnerability, suggest_rules_from_log
from repro.world import build_world, spawn_root_shell


class TestLogDrivenSuggestion:
    def _trace_world(self):
        world = build_world()
        pf = ProcessFirewall()
        world.attach_firewall(pf)
        pf.install("pftables -A input -o FILE_OPEN -j LOG")
        return world, pf

    def test_suggests_rule_for_hot_pure_entrypoint(self):
        world, pf = self._trace_world()
        proc = world.spawn("svc", uid=0, label="unconfined_t", binary_path="/bin/svc")
        proc.call(proc.binary, 0x100)
        for _ in range(10):
            fd = world.sys.open(proc, "/etc/passwd")
            world.sys.close(proc, fd)
        rules = suggest_rules_from_log(pf, threshold=10)
        assert len(rules) == 1
        assert "/bin/svc" in rules[0] and "0x100" in rules[0]
        assert parse_rule(rules[0])

    def test_cold_entrypoints_skipped(self):
        world, pf = self._trace_world()
        proc = world.spawn("svc", uid=0, label="unconfined_t", binary_path="/bin/svc")
        proc.call(proc.binary, 0x100)
        world.sys.open(proc, "/etc/passwd")
        assert suggest_rules_from_log(pf, threshold=10) == []

    def test_suggested_rule_blocks_future_attack(self):
        """The full §6.3 loop: trace benign behaviour, generate, install,
        and the adversarial variant is blocked."""
        world, pf = self._trace_world()
        proc = world.spawn("svc", uid=0, label="unconfined_t", binary_path="/bin/svc")
        proc.call(proc.binary, 0x100)
        for _ in range(10):
            fd = world.sys.open(proc, "/etc/passwd")
            world.sys.close(proc, fd)
        rules = suggest_rules_from_log(pf, threshold=10)
        pf.flush()
        pf.install_all(rules)
        # Benign access still fine:
        fd = world.sys.open(proc, "/etc/passwd")
        world.sys.close(proc, fd)
        # Adversary-redirected access at the same entrypoint: dropped.
        world.add_file("/tmp/evil", b"x", uid=1000, mode=0o666)
        from repro import errors

        with pytest.raises(errors.PFDenied):
            world.sys.open(proc, "/tmp/evil")


class TestVulnerabilityReports:
    def test_search_path_report_generalizes_to_syshigh(self):
        report = VulnerabilityReport("untrusted_search_path", "/usr/bin/java", 0x5D7E)
        rules = rule_from_vulnerability(report)
        assert len(rules) == 1
        assert "~SYSHIGH" in rules[0] or "~{SYSHIGH}" in rules[0]
        assert parse_rule(rules[0])

    def test_toctou_report_yields_pair(self):
        report = VulnerabilityReport(
            "toctou_race", "/bin/dbus-daemon", 0x3C786, op="SOCKET_SETATTR",
            check_entrypoint=0x3C750, check_op="SOCKET_BIND",
        )
        rules = rule_from_vulnerability(report)
        assert len(rules) == 2
        assert "STATE --set" in rules[0] or "--set" in rules[0]
        for text in rules:
            assert parse_rule(text)

    def test_toctou_without_check_rejected(self):
        report = VulnerabilityReport("toctou_race", "/bin/x", 0x1)
        with pytest.raises(ValueError):
            rule_from_vulnerability(report)


class TestScriptRuleSuggestion:
    def test_suggests_and_enforces_script_rules(self):
        from repro import errors
        from repro.programs.php import PhpInterpreter
        from repro.rulegen.suggest import suggest_script_rules
        from repro.world import build_world, spawn_adversary

        world = build_world()
        pf = ProcessFirewall()
        world.attach_firewall(pf)
        pf.install("pftables -A input -o FILE_OPEN -j LOG")

        world.mkdirs("/var/www/html/app", label="httpd_user_script_exec_t")
        world.add_file("/var/www/html/app/page.php", b"<?php ok(); ?>")
        proc = world.spawn("php5", uid=0, label="httpd_t", binary_path="/usr/bin/php5")
        php = PhpInterpreter(world, proc)
        for _ in range(25):
            php.run_component("/var/www/html/app", "", "page",
                              controller="/var/www/html/app/controller.php")

        rules = suggest_script_rules(pf, threshold=20)
        assert len(rules) == 1
        assert "--file /var/www/html/app/controller.php" in rules[0]
        assert "--line 17" in rules[0]

        pf.flush()
        pf.install_all(rules)
        # Traced behaviour still fine:
        php.run_component("/var/www/html/app", "", "page",
                          controller="/var/www/html/app/controller.php")
        # Redirected include from the same script call site: dropped.
        world.add_file("/tmp/evil", b"x", uid=1000, mode=0o666)
        with pytest.raises(errors.PFDenied):
            php.run_component("/var/www/html/app", "", "../../../../../tmp/evil\x00",
                              controller="/var/www/html/app/controller.php")

    def test_low_integrity_scripts_not_ruled(self):
        from repro.programs.php import PhpInterpreter
        from repro.rulegen.suggest import suggest_script_rules
        from repro.world import build_world

        world = build_world()
        pf = ProcessFirewall()
        world.attach_firewall(pf)
        pf.install("pftables -A input -o FILE_OPEN -j LOG")
        world.add_file("/tmp/low.php", b"x", uid=1000, mode=0o666)
        proc = world.spawn("php5", uid=0, label="httpd_t", binary_path="/usr/bin/php5")
        php = PhpInterpreter(world, proc)
        for _ in range(25):
            with php.script_frame("/var/www/html/mixed.php", 5, language="php"):
                php.include("/tmp/low.php")
        assert suggest_script_rules(pf, threshold=20) == []

    def test_native_logs_have_no_script_field(self):
        from repro.world import build_world, spawn_root_shell

        world = build_world()
        pf = ProcessFirewall()
        world.attach_firewall(pf)
        pf.install("pftables -A input -o FILE_OPEN -j LOG")
        root = spawn_root_shell(world)
        world.sys.open(root, "/etc/passwd")
        assert "script" not in pf.log_records[-1]
