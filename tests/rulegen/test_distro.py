"""OS-distributor launch-consistency analysis (§6.3.2)."""

from repro.rulegen.distro import LaunchRecord, consistent_programs, synthesize_launches


class TestConsistency:
    def test_identical_launches_consistent(self):
        launches = [LaunchRecord("/usr/bin/a", argv=("/usr/bin/a",)) for _ in range(4)]
        consistent, inconsistent = consistent_programs(launches)
        assert consistent == {"/usr/bin/a"}
        assert inconsistent == set()

    def test_argv_variation_inconsistent(self):
        launches = [
            LaunchRecord("/usr/bin/a", argv=("/usr/bin/a",)),
            LaunchRecord("/usr/bin/a", argv=("/usr/bin/a", "--debug")),
        ]
        consistent, inconsistent = consistent_programs(launches)
        assert inconsistent == {"/usr/bin/a"}

    def test_env_variation_inconsistent(self):
        launches = [
            LaunchRecord("/usr/bin/a", env={"X": "1"}),
            LaunchRecord("/usr/bin/a", env={"X": "2"}),
        ]
        _, inconsistent = consistent_programs(launches)
        assert inconsistent == {"/usr/bin/a"}

    def test_modified_package_inconsistent(self):
        """User-edited configs break distributor-rule validity even if
        every launch looked identical."""
        launches = [LaunchRecord("/usr/bin/a", package_intact=False) for _ in range(3)]
        _, inconsistent = consistent_programs(launches)
        assert inconsistent == {"/usr/bin/a"}

    def test_mixed_programs_partitioned(self):
        launches = [
            LaunchRecord("/usr/bin/a"),
            LaunchRecord("/usr/bin/a"),
            LaunchRecord("/usr/bin/b", argv=("x",)),
            LaunchRecord("/usr/bin/b", argv=("y",)),
        ]
        consistent, inconsistent = consistent_programs(launches)
        assert consistent == {"/usr/bin/a"}
        assert inconsistent == {"/usr/bin/b"}


class TestSyntheticPopulation:
    def test_headline_numbers(self):
        consistent, inconsistent = consistent_programs(synthesize_launches())
        assert len(consistent) == 232
        assert len(consistent) + len(inconsistent) == 318

    def test_deterministic(self):
        a = synthesize_launches(seed=1)
        b = synthesize_launches(seed=1)
        assert [r.fingerprint() for r in a] == [r.fingerprint() for r in b]
