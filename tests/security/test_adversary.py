"""Adversary accessibility computation (paper footnote 2)."""

import pytest

from repro.proc.process import Credentials, Process
from repro.security.adversary import AdversaryModel
from repro.security.selinux import reference_policy
from repro.vfs.inode import FileType, Inode


def proc(uid=0, euid=None, label="unconfined_t"):
    p = Process(1, "t", creds=Credentials(uid=uid, euid=euid), label=label)
    return p


def file_inode(uid=0, mode=0o644, label="etc_t", itype=FileType.REG):
    return Inode(1, itype, uid=uid, mode=mode, label=label)


class TestDacAdversaries:
    def test_root_not_an_adversary(self):
        model = AdversaryModel(known_uids={0, 1000})
        assert model.dac_adversaries(proc(uid=1000, euid=1000)) == set()
        assert model.dac_adversaries(proc(uid=0)) == {1000}

    def test_self_not_an_adversary(self):
        model = AdversaryModel(known_uids={0, 1000, 1001})
        assert model.dac_adversaries(proc(uid=1000, euid=1000)) == {1001}

    def test_effective_uid_matters(self):
        """A setuid-root process's adversary set is computed from euid."""
        model = AdversaryModel(known_uids={0, 1000})
        setuid = proc(uid=1000, euid=0)
        assert model.dac_adversaries(setuid) == {1000}


class TestDacAccessibility:
    def test_world_writable_is_low_integrity(self):
        model = AdversaryModel(known_uids={0, 1000})
        assert model.is_low_integrity(proc(uid=0), file_inode(uid=0, mode=0o666))

    def test_root_owned_0644_is_high_integrity(self):
        model = AdversaryModel(known_uids={0, 1000})
        assert model.is_high_integrity(proc(uid=0), file_inode(uid=0, mode=0o644))

    def test_adversary_owned_is_low_integrity(self):
        model = AdversaryModel(known_uids={0, 1000})
        assert model.is_low_integrity(proc(uid=0), file_inode(uid=1000, mode=0o644))

    def test_world_readable_is_low_secrecy(self):
        model = AdversaryModel(known_uids={0, 1000})
        assert model.is_low_secrecy(proc(uid=0), file_inode(uid=0, mode=0o644))

    def test_0600_root_is_high_secrecy(self):
        model = AdversaryModel(known_uids={0, 1000})
        assert not model.is_low_secrecy(proc(uid=0), file_inode(uid=0, mode=0o600))

    def test_symlink_accessibility_follows_owner(self):
        """Symlinks are 0777 by construction; control means ownership."""
        model = AdversaryModel(known_uids={0, 1000})
        adversary_link = file_inode(uid=1000, mode=0o777, itype=FileType.LNK)
        root_link = file_inode(uid=0, mode=0o777, itype=FileType.LNK)
        assert model.is_low_integrity(proc(uid=0), adversary_link)
        assert not model.is_low_integrity(proc(uid=0), root_link)


class TestMacAccessibility:
    @pytest.fixture
    def model(self):
        return AdversaryModel(policy=reference_policy(), known_uids={0})

    def test_mac_adversaries_exclude_tcb(self, model):
        advs = model.mac_adversaries(proc(label="httpd_t"))
        assert "user_t" in advs
        assert "sshd_t" not in advs
        assert "httpd_t" not in advs

    def test_mac_view_of_tmp_is_writable(self, model):
        """user_t can write tmp_t objects under the reference policy."""
        inode = file_inode(uid=0, mode=0o600, label="tmp_t")
        assert model.mac_adversary_writable(proc(uid=0, label="httpd_t"), inode)

    def test_accessibility_is_dac_and_mac_conjunction(self, model):
        model.register_uid(1000)
        # DAC-protected file in /tmp: MAC alone cannot make it low.
        locked = file_inode(uid=0, mode=0o600, label="tmp_t")
        assert not model.is_low_integrity(proc(uid=0, label="httpd_t"), locked)
        # DAC-open file labeled etc_t: MAC protects it.
        loose_etc = file_inode(uid=0, mode=0o666, label="etc_t")
        assert not model.is_low_integrity(proc(uid=0, label="httpd_t"), loose_etc)
        # Open on both sides: low integrity.
        loose_tmp = file_inode(uid=0, mode=0o666, label="tmp_t")
        assert model.is_low_integrity(proc(uid=0, label="httpd_t"), loose_tmp)

    def test_etc_is_mac_high_integrity(self, model):
        inode = file_inode(uid=0, mode=0o644, label="etc_t")
        assert not model.mac_adversary_writable(proc(uid=0, label="httpd_t"), inode)

    def test_no_policy_means_no_mac_adversaries(self):
        model = AdversaryModel(known_uids={0})
        assert model.mac_adversaries(proc()) == set()
