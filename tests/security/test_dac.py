"""Discretionary access control."""

import pytest

from repro import errors
from repro.proc.process import Credentials
from repro.security import dac
from repro.vfs.inode import FileType, Inode


def inode(uid=0, gid=0, mode=0o644):
    return Inode(1, FileType.REG, uid=uid, gid=gid, mode=mode)


class TestPermits:
    def test_owner_rw(self):
        i = inode(uid=5, mode=0o600)
        assert dac.permits(i, 5, 5, "r")
        assert dac.permits(i, 5, 5, "w")
        assert not dac.permits(i, 5, 5, "x")

    def test_group(self):
        i = inode(uid=5, gid=9, mode=0o060)
        assert dac.permits(i, 7, 9, "r")
        assert not dac.permits(i, 7, 8, "r")

    def test_other(self):
        i = inode(uid=5, gid=5, mode=0o004)
        assert dac.permits(i, 7, 7, "r")
        assert not dac.permits(i, 7, 7, "w")

    def test_owner_triad_shadows_other(self):
        """An owner with 0o077 is denied even though 'other' may pass."""
        i = inode(uid=5, mode=0o077)
        assert not dac.permits(i, 5, 5, "r")
        assert dac.permits(i, 6, 6, "r")

    def test_root_bypasses(self):
        i = inode(uid=5, mode=0o000)
        assert dac.permits(i, 0, 0, "w")


class TestCheck:
    def test_denial_raises_eacces(self):
        with pytest.raises(errors.EACCES):
            dac.dac_check(Credentials(uid=7), inode(uid=5, mode=0o600), "r")

    def test_allowed_returns_none(self):
        assert dac.dac_check(Credentials(uid=5), inode(uid=5, mode=0o600), "r") is None

    def test_effective_uid_used(self):
        creds = Credentials(uid=7, euid=5)
        assert dac.dac_check(creds, inode(uid=5, mode=0o600), "w") is None


class TestEnumeration:
    def test_writers(self):
        i = inode(uid=5, mode=0o602)
        assert dac.writers(i, {0, 5, 7}) == {0, 5, 7}
        i2 = inode(uid=5, mode=0o600)
        assert dac.writers(i2, {0, 5, 7}) == {0, 5}

    def test_readers(self):
        i = inode(uid=5, mode=0o600)
        assert dac.readers(i, {5, 7}) == {5}
