"""LSM dispatch and operation records."""

import pytest

from repro import errors
from repro.proc.process import Process
from repro.security.lsm import LSMDispatcher, OP_CLASS, OP_PERM, Op, Operation


class _DenyAll:
    def __init__(self):
        self.seen = []

    def authorize(self, operation):
        self.seen.append(operation)
        raise errors.EACCES("deny-all")


class _AllowAll:
    def __init__(self):
        self.seen = []

    def authorize(self, operation):
        self.seen.append(operation)


class TestDispatcher:
    def test_modules_run_in_order(self):
        dispatcher = LSMDispatcher()
        first, second = _AllowAll(), _AllowAll()
        dispatcher.register(first)
        dispatcher.register(second)
        operation = Operation(Process(1, "t"), Op.FILE_OPEN)
        dispatcher.authorize(operation)
        assert first.seen == [operation] and second.seen == [operation]

    def test_first_denial_stops_chain(self):
        dispatcher = LSMDispatcher()
        deny, after = _DenyAll(), _AllowAll()
        dispatcher.register(deny)
        dispatcher.register(after)
        with pytest.raises(errors.EACCES):
            dispatcher.authorize(Operation(Process(1, "t"), Op.FILE_OPEN))
        assert after.seen == []

    def test_invocation_counter(self):
        dispatcher = LSMDispatcher()
        dispatcher.authorize(Operation(Process(1, "t"), Op.FILE_OPEN))
        assert dispatcher.invocations == 1

    def test_unregister(self):
        dispatcher = LSMDispatcher()
        deny = _DenyAll()
        dispatcher.register(deny)
        dispatcher.unregister(deny)
        dispatcher.authorize(Operation(Process(1, "t"), Op.FILE_OPEN))


class TestOpNames:
    def test_alias_link_read(self):
        assert Op.from_name("LINK_READ") is Op.LNK_FILE_READ

    def test_alias_socket_connect(self):
        assert Op.from_name("SOCKET_CONNECT") is Op.UNIX_STREAM_SOCKET_CONNECT

    def test_case_insensitive(self):
        assert Op.from_name("file_open") is Op.FILE_OPEN

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            Op.from_name("NOT_AN_OP")

    def test_every_op_has_class_and_perm(self):
        for op in Op:
            assert op in OP_CLASS
            assert op in OP_PERM


class TestOperation:
    def test_fields(self):
        proc = Process(3, "x")
        operation = Operation(proc, Op.FILE_READ, obj=None, path="/p", syscall="read", args=(1, 2))
        assert operation.proc is proc
        assert operation.args == (1, 2)
        assert operation.extra == {}

    def test_extra_isolated_per_operation(self):
        a = Operation(Process(1, "t"), Op.FILE_OPEN)
        b = Operation(Process(1, "t"), Op.FILE_OPEN)
        a.extra["k"] = 1
        assert "k" not in b.extra
