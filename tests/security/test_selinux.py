"""SELinux-style type enforcement."""

import pytest

from repro import errors
from repro.proc.process import Process
from repro.security.lsm import Op, Operation
from repro.security.selinux import SELinuxModule, SELinuxPolicy, reference_policy
from repro.vfs.inode import FileType, Inode


def op_for(proc, label, op=Op.FILE_OPEN):
    inode = Inode(1, FileType.REG, label=label)
    return Operation(proc, op, obj=inode, path="/x")


class TestPolicy:
    def test_allow_and_query(self):
        policy = SELinuxPolicy()
        policy.allow("httpd_t", "etc_t", "file", ("read",))
        assert policy.allows("httpd_t", "etc_t", "file", "read")
        assert not policy.allows("httpd_t", "etc_t", "file", "write")

    def test_star_grants_all(self):
        policy = SELinuxPolicy()
        policy.allow("a_t", "b_t", "file", "*")
        assert policy.allows("a_t", "b_t", "file", "anything")

    def test_types_declared(self):
        policy = SELinuxPolicy()
        policy.allow("a_t", "b_t", "file", "*")
        assert {"a_t", "b_t"} <= policy.types

    def test_tcb_marking(self):
        policy = SELinuxPolicy()
        policy.mark_tcb("init_t", object=False)
        policy.mark_tcb("etc_t", subject=False)
        assert policy.is_tcb_subject("init_t")
        assert not policy.is_tcb_object("init_t")
        assert policy.is_tcb_object("etc_t")

    def test_subjects_allowed(self):
        policy = SELinuxPolicy()
        policy.allow("a_t", "tmp_t", "file", ("write",))
        policy.allow("b_t", "tmp_t", "file", ("read",))
        assert policy.subjects_allowed("tmp_t", "file", "write") == {"a_t"}


class TestModule:
    def test_denial_raises_and_logs(self):
        policy = SELinuxPolicy()
        module = SELinuxModule(policy)
        proc = Process(1, "t", label="user_t")
        with pytest.raises(errors.EACCES):
            module.authorize(op_for(proc, "shadow_t"))
        assert module.denials

    def test_allowed_passes(self):
        policy = SELinuxPolicy()
        policy.allow("user_t", "tmp_t", "file", "*")
        module = SELinuxModule(policy)
        proc = Process(1, "t", label="user_t")
        module.authorize(op_for(proc, "tmp_t"))

    def test_permissive_mode_allows_everything(self):
        module = SELinuxModule(SELinuxPolicy(enforcing=False))
        proc = Process(1, "t", label="user_t")
        module.authorize(op_for(proc, "shadow_t"))

    def test_unlabeled_object_skipped(self):
        module = SELinuxModule(SELinuxPolicy())
        proc = Process(1, "t", label="user_t")
        module.authorize(Operation(proc, Op.PROCESS_SIGNAL_DELIVERY, obj=None))


class TestReferencePolicy:
    def test_tcb_subject_full_access(self):
        policy = reference_policy()
        assert policy.allows("httpd_t", "shadow_t", "file", "read")

    def test_user_cannot_read_shadow(self):
        policy = reference_policy()
        assert not policy.allows("user_t", "shadow_t", "file", "read")

    def test_user_writes_tmp(self):
        policy = reference_policy()
        assert policy.allows("user_t", "tmp_t", "file", "write")

    def test_user_reads_lib(self):
        policy = reference_policy()
        assert policy.allows("user_t", "lib_t", "file", "read")
        assert not policy.allows("user_t", "lib_t", "file", "write")

    def test_syshigh_sets_populated(self):
        policy = reference_policy()
        assert "sshd_t" in policy.tcb_subjects
        assert "lib_t" in policy.tcb_objects
        assert "tmp_t" not in policy.tcb_objects
        assert "user_t" not in policy.tcb_subjects
