"""The deque-backed kernel audit trail (satellite of the dcache PR).

The old trail was a plain list trimmed with ``del audit[:limit//2]`` —
O(n) per overflow.  The replacement is a ``collections.deque`` with
``maxlen`` behind a list-style surface; these tests pin that surface
(iteration, indexing, slicing, equality with lists) and the new
overflow behavior (drop-oldest, one at a time, O(1)).
"""

import pytest

from repro.kernel import AuditTrail, Kernel


class TestAuditTrailSurface:
    def test_list_style_basics(self):
        t = AuditTrail(10)
        assert len(t) == 0
        assert not t
        assert t == []
        t.append("a")
        t.append("b")
        assert len(t) == 2
        assert bool(t)
        assert list(t) == ["a", "b"]
        assert t[0] == "a" and t[-1] == "b"
        assert t[-2:] == ["a", "b"]
        assert t == ["a", "b"]
        assert t != ["a"]

    def test_equality_with_other_trails(self):
        a, b = AuditTrail(5), AuditTrail(7)
        for x in ("x", "y"):
            a.append(x)
            b.append(x)
        assert a == b
        b.append("z")
        assert a != b

    def test_overflow_drops_oldest(self):
        t = AuditTrail(3)
        for i in range(5):
            t.append(i)
        assert list(t) == [2, 3, 4]
        assert len(t) == t.limit == 3

    def test_set_limit_keeps_newest(self):
        t = AuditTrail(10)
        for i in range(6):
            t.append(i)
        t.set_limit(3)
        assert list(t) == [3, 4, 5]
        t.set_limit(5)
        t.append(6)
        assert list(t) == [3, 4, 5, 6]

    def test_clear(self):
        t = AuditTrail(4)
        t.append("a")
        t.clear()
        assert t == [] and len(t) == 0


class TestKernelIntegration:
    def test_audit_limit_property_roundtrip(self):
        k = Kernel()
        assert k.audit_limit == 200000
        k.audit_limit = 10
        assert k.audit_limit == 10
        assert k.audit.limit == 10

    def test_bounded_audit_under_syscall_load(self):
        k = Kernel()
        k.add_file("/f", b"x")
        k.audit_limit = 8
        proc = k.spawn("sh", uid=0)
        for _ in range(20):
            k.sys.stat(proc, "/f")
        assert len(k.audit) <= 8
        # Newest records survive; the trail tail is the latest stat.
        assert k.audit[-1].path in ("/f", "/")

    def test_shrinking_limit_truncates_existing(self):
        k = Kernel()
        k.add_file("/f", b"x")
        proc = k.spawn("sh", uid=0)
        for _ in range(6):
            k.sys.stat(proc, "/f")
        before = len(k.audit)
        assert before > 4
        k.audit_limit = 4
        assert len(k.audit) == 4

    def test_disabled_audit_still_compares_empty(self):
        k = Kernel()
        k.audit_enabled = False
        k.add_file("/f", b"x")
        proc = k.spawn("sh", uid=0)
        k.sys.stat(proc, "/f")
        assert k.audit == []
