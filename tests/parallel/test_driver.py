"""Driver-level parity: sharded inline replay versus the serial run.

Everything here runs shards inline (sequentially, in-process) — the
spawn path shares all of this code and gets its own OS-process
exercise in the integration differential suite and the CI smoke job.
"""

import random

import pytest

from repro.firewall.engine import EngineConfig, ProcessFirewall
from repro.firewall.persist import save_rules
from repro.parallel.driver import replay_serial, replay_sharded
from repro.parallel.merge import (
    SHARD_VARIANT_STATS,
    comparable_stats,
    merge_snapshots,
    strip_volatile,
)
from repro.rulesets.generated import install_full_rulebase
from repro.workloads.macro import record_scale_trace

SESSIONS = 3
WORLD = ("macro_scale", {"sessions": SESSIONS})


@pytest.fixture(scope="module")
def scale_setup():
    trace = record_scale_trace(sessions=SESSIONS, loops=8, profile="mixed")
    firewall = ProcessFirewall(EngineConfig.jitted())
    install_full_rulebase(firewall)
    return trace, save_rules(firewall)


@pytest.fixture(scope="module")
def serial_run(scale_setup):
    trace, rules_text = scale_setup
    return replay_serial(trace, rules_text, world=WORLD)


def _comparable(merged):
    return (
        merged["verdicts"],
        merged["executed"],
        merged["failures"],
        comparable_stats(merged["stats"], exclude=SHARD_VARIANT_STATS),
        [
            (row["lclock"], row["sub"], row["kind"], row["severity"],
             strip_volatile(row["record"]))
            for row in merged["audit"]
        ],
    )


@pytest.mark.parametrize("workers", [1, 2, 3])
@pytest.mark.parametrize("strategy", ["greedy", "round_robin"])
def test_inline_sharded_matches_serial(scale_setup, serial_run, workers, strategy):
    trace, rules_text = scale_setup
    sharded = replay_sharded(
        trace, rules_text, workers=workers, inline=True,
        world=WORLD, strategy=strategy)
    assert _comparable(sharded["merged"]) == _comparable(serial_run["merged"])
    assert sharded["plan"]["digest"]


def test_more_workers_than_groups(scale_setup, serial_run):
    trace, rules_text = scale_setup
    sharded = replay_sharded(
        trace, rules_text, workers=SESSIONS + 4, inline=True, world=WORLD)
    # Only one snapshot per populated shard — empty shards are skipped.
    assert len(sharded["snapshots"]) <= SESSIONS
    assert _comparable(sharded["merged"]) == _comparable(serial_run["merged"])


def test_merge_is_order_independent(scale_setup):
    trace, rules_text = scale_setup
    sharded = replay_sharded(
        trace, rules_text, workers=3, inline=True, world=WORLD)
    snapshots = list(sharded["snapshots"])
    rng = random.Random(7)
    for _ in range(4):
        rng.shuffle(snapshots)
        assert merge_snapshots(snapshots) == sharded["merged"]


def test_aggregate_shape(serial_run):
    aggregate = serial_run["aggregate"]
    assert aggregate["records"] == serial_run["merged"]["executed"] + len(
        [v for v in serial_run["merged"]["verdicts"] if v[2] != "ok"])
    assert aggregate["throughput_cpu"] > 0
    assert aggregate["throughput_wall"] > 0
    rows = serial_run["merged"]["workers"]
    assert [row["worker_id"] for row in rows] == [0]
    assert rows[0]["entries"] == aggregate["records"]


def test_verdict_stream_covers_every_entry(scale_setup, serial_run):
    trace, _rules_text = scale_setup
    verdicts = serial_run["merged"]["verdicts"]
    assert [v[0] for v in verdicts] == list(range(len(trace.entries)))
    assert all(v[1] == trace.entries[v[0]][1] for v in verdicts)
