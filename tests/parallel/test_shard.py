"""Lineage sharding over synthetic traces.

These traces are hand-built (``Trace.append`` / ``append_spawn``), so
every grouping decision is asserted against a known fork/kill graph
rather than whatever a recorded workload happened to produce.
"""

import pytest

from repro.parallel.shard import STRATEGIES, lineage_groups, plan_shards
from repro.workloads.replay import Trace


def _trace_three_roots():
    """Roots 1, 2, 3; root 1 forks 10, which forks 11; root 3 idles."""
    trace = Trace()
    for pid in (1, 2, 3):
        trace.append_spawn({"pid": pid, "name": "p{}".format(pid)})
    trace.append(1, "getpid", (), {})          # 0
    trace.append(2, "getpid", (), {})          # 1
    trace.append(1, "fork", (), {}, child_pid=10)   # 2
    trace.append(10, "getpid", (), {})         # 3
    trace.append(10, "fork", (), {}, child_pid=11)  # 4
    trace.append(11, "getpid", (), {})         # 5
    trace.append(2, "getpid", (), {})          # 6
    return trace


def test_fork_lineage_stays_in_one_group():
    groups = lineage_groups(_trace_three_roots())
    assert [g["roots"] for g in groups] == [[1], [2], [3]]
    assert groups[0]["pids"] == [1, 10, 11]
    assert groups[0]["indices"] == [0, 2, 3, 4, 5]
    assert groups[1]["indices"] == [1, 6]
    assert groups[2]["indices"] == []  # spawned but silent


def test_kill_unions_sender_and_target_lineages():
    trace = _trace_three_roots()
    trace.append(3, "kill", (2,), {})  # root 3 signals root 2
    groups = lineage_groups(trace)
    assert len(groups) == 2
    merged = next(g for g in groups if 2 in g["pids"])
    assert merged["roots"] == [2, 3]
    assert merged["pids"] == [2, 3]
    # Group 1's lineage is untouched by the signal.
    other = next(g for g in groups if 1 in g["pids"])
    assert other["pids"] == [1, 10, 11]


def test_indices_preserve_serial_relative_order():
    trace = _trace_three_roots()
    for group in lineage_groups(trace):
        assert group["indices"] == sorted(group["indices"])


def test_round_robin_placement_is_predictable():
    plan = plan_shards(_trace_three_roots(), workers=2, strategy="round_robin")
    assert plan.shards[0]["roots"] == [1, 3]  # groups 0 and 2
    assert plan.shards[1]["roots"] == [2]
    assert plan.total_entries == 7


def test_greedy_balances_by_entry_count():
    trace = Trace()
    for pid in (1, 2, 3):
        trace.append_spawn({"pid": pid})
    for _ in range(8):
        trace.append(1, "getpid", (), {})
    for _ in range(5):
        trace.append(2, "getpid", (), {})
    for _ in range(4):
        trace.append(3, "getpid", (), {})
    plan = plan_shards(trace, workers=2, strategy="greedy")
    # Largest group (8) alone; the 5- and 4-entry groups pack together.
    sizes = sorted(len(s["indices"]) for s in plan.shards)
    assert sizes == [8, 9]


def test_workers_beyond_group_count_leave_empty_shards():
    plan = plan_shards(_trace_three_roots(), workers=8)
    populated = [s for s in plan.shards if s["indices"]]
    assert len(plan.shards) == 8
    assert len(populated) == 2  # group 3 has no entries
    manifest = plan.manifest()
    assert len(manifest["shards"]) == 8
    assert all(s["first_index"] is None for s in manifest["shards"][3:])


def test_groups_are_never_split_across_shards():
    trace = _trace_three_roots()
    for workers in (1, 2, 3, 5):
        for strategy in STRATEGIES:
            plan = plan_shards(trace, workers, strategy=strategy)
            seen = {}
            for widx, shard in enumerate(plan.shards):
                for pid in shard["pids"]:
                    assert seen.setdefault(pid, widx) == widx
            # Fork lineage 1/10/11 always lands together.
            homes = {seen.get(pid) for pid in (1, 10, 11)}
            assert len(homes) == 1
            # Every entry is assigned exactly once.
            all_indices = sorted(
                i for shard in plan.shards for i in shard["indices"])
            assert all_indices == list(range(len(trace.entries)))


def test_manifest_digest_is_deterministic_and_sensitive():
    trace = _trace_three_roots()
    a = plan_shards(trace, 2).manifest()
    b = plan_shards(trace, 2).manifest()
    assert a == b
    assert a["digest"] == b["digest"]
    assert plan_shards(trace, 3).digest() != a["digest"]
    assert plan_shards(trace, 2, strategy="round_robin").digest() != a["digest"]


def test_trace_json_round_trip_keeps_plan_identical():
    trace = _trace_three_roots()
    rebuilt = Trace.from_json(trace.to_json())
    assert plan_shards(rebuilt, 2).manifest() == plan_shards(trace, 2).manifest()


def test_invalid_arguments_are_rejected():
    trace = _trace_three_roots()
    with pytest.raises(ValueError):
        plan_shards(trace, 0)
    with pytest.raises(ValueError):
        plan_shards(trace, 2, strategy="random")
