"""Cooperative scheduler."""

import pytest

from repro import errors
from repro.sched.scheduler import Scheduler, Threadlet


def counter(log, name, steps):
    for i in range(steps):
        log.append((name, i))
        yield
    return name


class TestThreadlet:
    def test_runs_to_completion(self):
        log = []
        t = Threadlet("a", counter(log, "a", 2))
        t.step()
        t.step()
        t.step()
        assert t.done and t.result == "a"

    def test_step_after_done_raises(self):
        t = Threadlet("a", counter([], "a", 0))
        t.step()
        with pytest.raises(errors.EINVAL):
            t.step()

    def test_kernel_error_captured(self):
        def boom():
            yield
            raise errors.EACCES("nope")

        t = Threadlet("a", boom())
        t.step()
        t.step()
        assert t.done
        assert isinstance(t.error, errors.EACCES)


class TestRoundRobin:
    def test_alternates_fairly(self):
        log = []
        sched = Scheduler()
        sched.add("a", counter(log, "a", 3))
        sched.add("b", counter(log, "b", 3))
        sched.run()
        # Steps interleave: never two consecutive from the same side
        # until one finishes.
        assert log[:4] == [("a", 0), ("b", 0), ("a", 1), ("b", 1)]

    def test_results_collected(self):
        sched = Scheduler()
        sched.add("a", counter([], "a", 1))
        sched.add("b", counter([], "b", 1))
        sched.run()
        assert sched.results() == {"a": "a", "b": "b"}


class TestScripted:
    def test_exact_interleaving(self):
        log = []
        sched = Scheduler(policy="scripted", script=["v", "adv", "v"])
        sched.add("adv", counter(log, "adv", 1))
        sched.add("v", counter(log, "v", 2))
        sched.run()
        assert log == [("v", 0), ("adv", 0), ("v", 1)]

    def test_script_exhaustion_drains(self):
        log = []
        sched = Scheduler(policy="scripted", script=["a"])
        sched.add("a", counter(log, "a", 1))
        sched.add("b", counter(log, "b", 2))
        sched.run()
        assert sched.get("b").done

    def test_script_entry_for_done_threadlet_skipped(self):
        log = []
        sched = Scheduler(policy="scripted", script=["a", "a", "a", "b", "b", "b"])
        sched.add("a", counter(log, "a", 0))
        sched.add("b", counter(log, "b", 1))
        assert sched.run()


class TestRandomPolicy:
    def test_deterministic_per_seed(self):
        def build(seed):
            log = []
            sched = Scheduler(policy="random", seed=seed)
            sched.add("a", counter(log, "a", 5))
            sched.add("b", counter(log, "b", 5))
            sched.run()
            return log

        assert build(7) == build(7)

    def test_seeds_differ(self):
        def trace(seed):
            log = []
            sched = Scheduler(policy="random", seed=seed)
            sched.add("a", counter(log, "a", 8))
            sched.add("b", counter(log, "b", 8))
            sched.run()
            return tuple(log)

        assert len({trace(s) for s in range(6)}) > 1


class TestLimits:
    def test_max_steps_guard(self):
        def forever():
            while True:
                yield

        sched = Scheduler()
        sched.add("loop", forever())
        with pytest.raises(errors.EINVAL):
            sched.run(max_steps=10)

    def test_error_does_not_stop_others(self):
        def boom():
            yield
            raise errors.EACCES("x")

        log = []
        sched = Scheduler()
        sched.add("bad", boom())
        sched.add("good", counter(log, "good", 3))
        sched.run()
        assert sched.get("good").done
        assert "bad" in sched.errors()

    def test_get_unknown_raises(self):
        with pytest.raises(errors.EINVAL):
            Scheduler().get("ghost")
