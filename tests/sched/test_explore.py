"""Exhaustive interleaving exploration."""

import pytest

from repro import errors
from repro.firewall.engine import ProcessFirewall
from repro.rulesets.default import safe_open_pf_rules
from repro.sched.explore import explore_interleavings, outcome_set
from repro.vfs.file import OpenFlags
from repro.world import build_world, spawn_adversary, spawn_root_shell


class TestEnumeration:
    def test_counts_interleavings(self):
        """Two threadlets with 2 and 1 steps => C(3,1) = 3 schedules."""

        def factory():
            def a():
                yield

            def b():
                if False:
                    yield

            return [("a", a()), ("b", b())], lambda sched: tuple(sched.trace)

        executions = explore_interleavings(factory)
        schedules = {e.schedule for e in executions}
        # a needs 2 steps (run-to-yield, then finish), b needs 1.
        assert schedules == {("a", "a", "b"), ("a", "b", "a"), ("b", "a", "a")}

    def test_bound_enforced(self):
        def factory():
            def worker():
                for _ in range(6):
                    yield

            return (
                [("a", worker()), ("b", worker()), ("c", worker())],
                lambda sched: None,
            )

        with pytest.raises(errors.EINVAL):
            explore_interleavings(factory, max_executions=50)

    def test_outcomes_collected(self):
        def factory():
            state = {"winner": None}

            def racer(name):
                yield
                if state["winner"] is None:
                    state["winner"] = name

            return (
                [("x", racer("x")), ("y", racer("y"))],
                lambda sched: state["winner"],
            )

        outcomes = outcome_set(explore_interleavings(factory))
        assert outcomes == {"x", "y"}


class TestRaceVerification:
    """The headline: verify the TOCTTOU defence over ALL schedules."""

    @staticmethod
    def _factory(protected):
        def build():
            kernel = build_world()
            if protected:
                firewall = kernel.attach_firewall(ProcessFirewall())
                firewall.install_all(safe_open_pf_rules())
            victim = spawn_root_shell(kernel, comm="victim")
            adversary = spawn_adversary(kernel)
            result = {}

            def victim_steps():
                sys = kernel.sys
                try:
                    st = sys.lstat(victim, "/tmp/work")
                    if st.is_symlink():
                        return
                    yield
                    fd = sys.open(victim, "/tmp/work")
                    result["leaked"] = sys.read(victim, fd)
                except errors.KernelError as exc:
                    result["error"] = exc.errno_name

            def adversary_steps():
                sys = kernel.sys
                fd = sys.open(adversary, "/tmp/work", flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY, mode=0o666)
                sys.write(adversary, fd, b"innocent")
                sys.close(adversary, fd)
                yield
                try:
                    sys.unlink(adversary, "/tmp/work")
                    sys.symlink(adversary, "/etc/shadow", "/tmp/work")
                except errors.KernelError:
                    pass

            def outcome(sched):
                return b"secret" in result.get("leaked", b"")

            return [("victim", victim_steps()), ("adversary", adversary_steps())], outcome

        return build

    def test_unprotected_has_both_outcomes(self):
        outcomes = outcome_set(explore_interleavings(self._factory(protected=False)))
        assert outcomes == {True, False}

    def test_protected_never_leaks_in_any_interleaving(self):
        executions = explore_interleavings(self._factory(protected=True))
        assert len(executions) >= 3  # the space was actually explored
        assert outcome_set(executions) == {False}
