"""Property-based tests on the engine's core invariants.

1. **Deny-only order independence** (§4.1/§4.3): for a rule base of
   DROP-only rules, permuting rule order never changes any verdict.
2. **Optimization transparency** (§4.2/§4.3): the FULL, CONCACHE,
   LAZYCON and EPTSPC configurations produce identical verdicts for
   identical rule bases and operations.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import errors
from repro.firewall.engine import EngineConfig, ProcessFirewall
from repro.world import build_world

LABELS = ["etc_t", "tmp_t", "lib_t", "shadow_t", "var_t"]
OPS = ["FILE_OPEN", "FILE_READ", "FILE_GETATTR", "DIR_SEARCH"]
PROGRAMS = ["/bin/sh", "/usr/bin/apache2"]
OFFSETS = [0x10, 0x20, 0x30]

PATHS = {
    "etc_t": "/etc/passwd",
    "shadow_t": "/etc/shadow",
    "lib_t": "/lib/libc.so.6",
    "var_t": "/var/run",
    "tmp_t": "/tmp",
}


@st.composite
def drop_rule(draw):
    parts = ["pftables -A input"]
    if draw(st.booleans()):
        parts.append("-o {}".format(draw(st.sampled_from(OPS))))
    if draw(st.booleans()):
        parts.append("-i {:#x} -p {}".format(draw(st.sampled_from(OFFSETS)), draw(st.sampled_from(PROGRAMS))))
    negate = draw(st.booleans())
    label = draw(st.sampled_from(LABELS))
    parts.append("-d {}{}".format("~" if negate else "", "{" + label + "}" if negate else label))
    parts.append("-j DROP")
    return " ".join(parts)


def build(rules, config):
    world = build_world()
    pf = ProcessFirewall(config)
    world.attach_firewall(pf)
    pf.install_all(rules)
    proc = world.spawn("sh", uid=0, label="unconfined_t", binary_path="/bin/sh")
    return world, proc


def verdicts(rules, config, frames):
    world, proc = build(rules, config)
    for offset in frames:
        proc.call(proc.binary, offset)
    out = []
    for label, path in sorted(PATHS.items()):
        try:
            world.sys.stat(proc, path)
            out.append("allow")
        except errors.PFDenied:
            out.append("drop")
        except errors.KernelError:
            out.append("err")
    return out


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rules=st.lists(drop_rule(), min_size=1, max_size=6),
    seed=st.integers(min_value=0, max_value=2**16),
    frames=st.lists(st.sampled_from(OFFSETS), max_size=2),
)
def test_deny_only_rule_order_is_irrelevant(rules, seed, frames):
    import random

    shuffled = list(rules)
    random.Random(seed).shuffle(shuffled)
    config = EngineConfig.optimized()
    assert verdicts(rules, config, frames) == verdicts(shuffled, config, frames)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rules=st.lists(drop_rule(), min_size=1, max_size=6),
    frames=st.lists(st.sampled_from(OFFSETS), max_size=2),
)
def test_optimizations_do_not_change_verdicts(rules, frames):
    reference = verdicts(rules, EngineConfig.unoptimized(), frames)
    for factory in (
        EngineConfig.concache,
        EngineConfig.lazycon,
        EngineConfig.optimized,
        EngineConfig.compiled,
        EngineConfig.jitted,
    ):
        assert verdicts(rules, factory(), frames) == reference


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(rules=st.lists(drop_rule(), min_size=1, max_size=5))
def test_disabled_engine_allows_everything(rules):
    assert all(v == "allow" for v in verdicts(rules, EngineConfig.disabled(), []))
