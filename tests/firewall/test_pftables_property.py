"""Property-based round-trips of the rule language.

For any rule the strategy can express: parse -> render -> reparse must
be a fixed point (same render, same match structure, same decisions).
"""

from hypothesis import given, settings, strategies as st

from repro.firewall.pftables import parse_rule

LABELS = st.sampled_from(["tmp_t", "etc_t", "lib_t", "shadow_t", "usr_t"])
OPS = st.sampled_from(["FILE_OPEN", "FILE_READ", "DIR_SEARCH", "LNK_FILE_READ", "SOCKET_BIND"])
PROGRAMS = st.sampled_from(["/bin/sh", "/usr/bin/apache2", "/lib/ld-2.15.so"])
CHAINS = st.sampled_from(["input", "create", "syscallbegin", "side_chain"])


@st.composite
def label_spec(draw):
    labels = draw(st.lists(LABELS, min_size=1, max_size=3, unique=True))
    negated = draw(st.booleans())
    syshigh = draw(st.booleans())
    parts = sorted(labels) + (["SYSHIGH"] if syshigh else [])
    body = parts[0] if len(parts) == 1 and not negated else "{" + "|".join(parts) + "}"
    return ("~" if negated else "") + body


@st.composite
def custom_match(draw):
    kind = draw(st.sampled_from(["STATE", "COMPARE", "SYSCALL_ARGS", "ADVERSARY", "SCRIPT", "SIGNAL"]))
    if kind == "STATE":
        key = draw(st.sampled_from(["'sig'", "0xbeef", "42"]))
        cmp_ = draw(st.sampled_from(["1", "C_INO", "C_OBJ"]))
        flag = draw(st.sampled_from(["--equal", "--nequal"]))
        return "-m STATE --key {} --cmp {} {}".format(key, cmp_, flag)
    if kind == "COMPARE":
        flag = draw(st.sampled_from(["--equal", "--nequal"]))
        return "-m COMPARE --v1 C_DAC_OWNER --v2 C_TGT_DAC_OWNER {}".format(flag)
    if kind == "SYSCALL_ARGS":
        return "-m SYSCALL_ARGS --arg {} --equal NR_sigreturn".format(draw(st.integers(0, 3)))
    if kind == "ADVERSARY":
        return "-m ADVERSARY " + draw(st.sampled_from(["--writable", "--not-writable", "--readable"]))
    if kind == "SCRIPT":
        line = draw(st.integers(1, 500))
        return "-m SCRIPT --file /app/x.php --line {}".format(line)
    return "-m SIGNAL_MATCH"


@st.composite
def rule_line(draw):
    parts = ["pftables -A", draw(CHAINS)]
    if draw(st.booleans()):
        parts.append("-o " + draw(OPS))
    if draw(st.booleans()):
        parts.append("-s " + draw(label_spec()))
    if draw(st.booleans()):
        parts.append("-i {:#x} -p {}".format(draw(st.integers(0, 0xFFFFF)) * 4, draw(PROGRAMS)))
    if draw(st.booleans()):
        parts.append("-d " + draw(label_spec()))
    for match in draw(st.lists(custom_match(), max_size=2)):
        parts.append(match)
    target = draw(st.sampled_from([
        "-j DROP",
        "-j ACCEPT",
        "-j LOG",
        "-j STATE --set --key 'k' --value C_INO",
        "-j side_chain",
    ]))
    parts.append(target)
    return " ".join(parts)


@settings(max_examples=200, deadline=None)
@given(text=rule_line())
def test_render_is_a_fixed_point(text):
    parsed = parse_rule(text)
    rendered = parsed.rule.render()
    reparsed = parse_rule("pftables -A {} {}".format(parsed.chain, rendered))
    assert reparsed.rule.render() == rendered
    assert reparsed.chain == parsed.chain
    assert len(reparsed.rule.matches) == len(parsed.rule.matches)
    assert type(reparsed.rule.target) is type(parsed.rule.target)


@settings(max_examples=100, deadline=None)
@given(text=rule_line())
def test_required_fields_stable_across_roundtrip(text):
    parsed = parse_rule(text)
    rendered = parsed.rule.render()
    reparsed = parse_rule("pftables -A {} {}".format(parsed.chain, rendered))
    assert reparsed.rule.required_fields == parsed.rule.required_fields
