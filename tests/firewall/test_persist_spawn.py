"""Rule-base transport across a real ``multiprocessing`` spawn boundary.

The parallel replay driver ships rules to workers as ``save_rules``
text; a pickled ``RuleBase`` must survive the same trip (it is what a
worker's snapshot ultimately derives from).  Both transports are
probed with an actual spawned child process — not a fork — because
spawn re-imports everything and is the context the driver uses.
"""

import multiprocessing
import pickle

import pytest

from repro.firewall.engine import EngineConfig, ProcessFirewall
from repro.firewall.persist import save_rules
from repro.parallel.worker import describe_rules_in_child
from repro.rulesets.generated import install_full_rulebase


def _reference_firewall():
    firewall = ProcessFirewall(EngineConfig.jitted())
    install_full_rulebase(firewall)
    return firewall


def _expected_chains(firewall):
    return {
        table_name: [
            (chain_name, [rule.render() for rule in table.chains[chain_name]])
            for chain_name in table.chains
        ]
        for table_name, table in firewall.rules.tables.items()
    }


def _probe_in_children(payloads):
    """Launch one spawned child per payload, concurrently; collect reports."""
    ctx = multiprocessing.get_context("spawn")
    jobs = []
    for payload in payloads:
        receiver, sender = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=describe_rules_in_child, args=(sender, payload))
        proc.start()
        sender.close()
        jobs.append((proc, receiver))
    reports = []
    for proc, receiver in jobs:
        status, value = receiver.recv()
        proc.join()
        if status != "ok":
            pytest.fail("child probe failed:\n{}".format(value))
        reports.append(value)
    return reports


def test_rulebase_survives_spawn_boundary():
    firewall = _reference_firewall()
    rules_text = save_rules(firewall)
    expected_chains = _expected_chains(firewall)
    via_text, via_pickle = _probe_in_children([
        {"config": "JITTED", "rules_text": rules_text},
        {"config": "JITTED", "pickled_rules": pickle.dumps(firewall.rules)},
    ])

    # Chain order and per-rule text must be preserved verbatim by both
    # transports, and both must re-serialize to the parent's text.
    for report in (via_text, via_pickle):
        assert report["chains"] == expected_chains
        assert report["rules_text"] == rules_text
        # The child's JIT program must rebuild against the transported
        # rules and share their identity stamp (the hot path compares
        # stamps by ``is``, so a stale program would disable codegen).
        assert report["jit_rebuilt"] is True

    # A pickled RuleBase keeps its (uid, version) stamp value exactly;
    # the text restore builds a fresh instance, whose uid must differ
    # (two rule bases must never collide on memo stamps).
    assert tuple(via_pickle["stamp"]) == tuple(firewall.rules.stamp)
    assert tuple(via_text["stamp"]) != tuple(firewall.rules.stamp)
    assert via_text["stamp"][1] >= firewall.rules.rule_count()


def test_text_round_trip_is_stable_in_parent():
    """Control for the spawn test: the same round-trip inside one
    process is already exact, so any spawn failure is transport."""
    firewall = _reference_firewall()
    text = save_rules(firewall)
    other = ProcessFirewall(EngineConfig.jitted())
    from repro.firewall.persist import load_rules

    load_rules(other, text)
    assert save_rules(other) == text
    assert _expected_chains(other) == _expected_chains(firewall)
