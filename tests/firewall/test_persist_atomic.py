"""load_rules atomicity: a corrupt or rejected file must not half-apply.

Regression tests for the staged-swap restore: install-time failures
(e.g. a DROP rule in the mangle table, which only the apply step
rejects) used to fire after earlier lines were already installed — and
``flush=True`` had already wiped the previous rule base, stats, and
log records.
"""

import pytest

from repro import errors
from repro.firewall.engine import EngineConfig, ProcessFirewall
from repro.firewall.persist import load_rules, save_rules
from repro.world import build_world, spawn_root_shell

GOOD_RULE = "pftables -A input -o FILE_OPEN -d shadow_t -j DROP"

#: Parses cleanly line-by-line, but the mangle DROP is rejected only at
#: install time — after the filter line would already have applied.
REJECTED_AT_INSTALL = """\
*filter
:input
-A input -o FILE_OPEN -d etc_t -j DROP
COMMIT
*mangle
:input
-A input -o FILE_OPEN -j DROP
COMMIT
"""

UNPARSEABLE = """\
*filter
-A input -o FILE_OPEN -d etc_t -j DROP
GARBAGE LINE
COMMIT
"""


def _loaded_firewall():
    """A firewall with one installed rule, traffic history, and logs."""
    world = build_world()
    pf = ProcessFirewall(EngineConfig.optimized())
    world.attach_firewall(pf)
    pf.install(GOOD_RULE)
    pf.install("pftables -A input -o FILE_GETATTR -j LOG --prefix keepme")
    root = spawn_root_shell(world)
    world.sys.stat(root, "/etc/passwd")
    with pytest.raises(errors.PFDenied):
        world.sys.open(root, "/etc/shadow")
    assert pf.stats.drops == 1 and pf.log_records
    return world, pf, root


class TestAtomicRestore:
    @pytest.mark.parametrize("payload", [REJECTED_AT_INSTALL, UNPARSEABLE])
    @pytest.mark.parametrize("flush", [True, False])
    def test_failed_load_leaves_everything_untouched(self, payload, flush):
        world, pf, root = _loaded_firewall()
        before_rules = save_rules(pf)
        before_stats = (pf.stats.invocations, pf.stats.drops, pf.stats.accepts)
        before_logs = list(pf.log_records)
        with pytest.raises(errors.EINVAL):
            load_rules(pf, payload, flush=flush)
        assert save_rules(pf) == before_rules
        assert (pf.stats.invocations, pf.stats.drops, pf.stats.accepts) == before_stats
        assert pf.log_records == before_logs
        # The surviving base still enforces.
        with pytest.raises(errors.PFDenied):
            world.sys.open(root, "/etc/shadow")

    def test_successful_load_preserves_stats_and_logs(self):
        world, pf, root = _loaded_firewall()
        stats = pf.stats
        audit = pf.audit
        logs = list(pf.log_records)
        drops = stats.drops
        load_rules(pf, save_rules(pf))
        # A restore replaces policy, not history: same stats object,
        # same audit ring, same counters, same records.
        assert pf.stats is stats and pf.stats.drops == drops
        assert pf.audit is audit
        assert pf.log_records == logs
        with pytest.raises(errors.PFDenied):
            world.sys.open(root, "/etc/shadow")

    def test_flush_false_appends_after_existing(self):
        world, pf, root = _loaded_firewall()
        count = pf.rules.rule_count()
        load_rules(pf, "*filter\n-A input -o FILE_OPEN -d etc_t -j DROP\nCOMMIT\n", flush=False)
        assert pf.rules.rule_count() == count + 1
        # Old and new rules both enforce.
        with pytest.raises(errors.PFDenied):
            world.sys.open(root, "/etc/shadow")
        with pytest.raises(errors.PFDenied):
            world.sys.open(root, "/etc/passwd")

    def test_failed_flush_false_load_does_not_disturb_original(self):
        world, pf, root = _loaded_firewall()
        before = save_rules(pf)
        with pytest.raises(errors.EINVAL):
            load_rules(pf, REJECTED_AT_INSTALL, flush=False)
        assert save_rules(pf) == before
        with pytest.raises(errors.PFDenied):
            world.sys.open(root, "/etc/shadow")

    def test_empty_user_chain_survives_round_trip(self):
        pf = ProcessFirewall()
        pf.install("pftables -A side_chain -o FILE_OPEN -d etc_t -j DROP")
        rule = next(iter(pf.rules.table("filter").chain("side_chain")))
        pf.rules.remove("filter", "side_chain", rule)
        saved = save_rules(pf)
        assert ":side_chain" in saved
        clone = ProcessFirewall()
        load_rules(clone, saved)
        assert save_rules(clone) == saved
