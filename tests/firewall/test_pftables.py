"""The pftables rule language — including Table 5 verbatim."""

import pytest

from repro import errors
from repro.firewall import matches as mm
from repro.firewall import targets as tg
from repro.firewall.pftables import parse_rule, pftables
from repro.firewall.engine import ProcessFirewall
from repro.rulesets.default import PAPER_TABLE5_TEXTS, RULES_R1_R12
from repro.rulesets.generated import generate_full_rulebase
from repro.security.lsm import Op


class TestTable5Verbatim:
    @pytest.mark.parametrize("text", PAPER_TABLE5_TEXTS, ids=["R{}".format(i + 1) for i in range(12)])
    def test_parses(self, text):
        parsed = parse_rule(text)
        assert parsed.rule.target is not None

    def test_r1_structure(self):
        parsed = parse_rule(PAPER_TABLE5_TEXTS[0])
        kinds = [type(m) for m in parsed.rule.matches]
        assert mm.EntrypointMatch in kinds
        assert mm.SubjectMatch in kinds
        assert mm.ObjectMatch in kinds
        assert isinstance(parsed.rule.target, tg.DropTarget)
        ept = [m for m in parsed.rule.matches if isinstance(m, mm.EntrypointMatch)][0]
        assert ept.program == "/lib/ld-2.15.so"
        assert ept.offset == 0x596B

    def test_r1_object_set_negated(self):
        parsed = parse_rule(PAPER_TABLE5_TEXTS[0])
        obj = [m for m in parsed.rule.matches if isinstance(m, mm.ObjectMatch)][0]
        assert obj.spec.negated
        assert obj.spec.labels == {"lib_t", "textrel_shlib_t", "httpd_modules_t"}

    def test_r5_state_target(self):
        parsed = parse_rule(PAPER_TABLE5_TEXTS[4])
        assert isinstance(parsed.rule.target, tg.StateTarget)
        assert parsed.rule.target.key.literal == 0xBEEF
        assert parsed.rule.target.value.atom == "C_INO"

    def test_r6_state_match_nequal(self):
        parsed = parse_rule(PAPER_TABLE5_TEXTS[5])
        state = [m for m in parsed.rule.matches if isinstance(m, mm.StateMatch)][0]
        assert not state.equal
        assert state.cmp_value.atom == "C_INO"

    def test_r8_compare(self):
        parsed = parse_rule(PAPER_TABLE5_TEXTS[7])
        compare = [m for m in parsed.rule.matches if isinstance(m, mm.CompareMatch)][0]
        assert compare.v1.atom == "C_DAC_OWNER"
        assert compare.v2.atom == "C_TGT_DAC_OWNER"
        assert not compare.equal
        op = [m for m in parsed.rule.matches if isinstance(m, mm.OpMatch)][0]
        assert op.op is Op.LNK_FILE_READ  # LINK_READ alias

    def test_r9_jump_target(self):
        parsed = parse_rule(PAPER_TABLE5_TEXTS[8])
        assert isinstance(parsed.rule.target, tg.JumpTarget)
        assert parsed.rule.target.chain_name == "signal_chain"
        assert parsed.chain == "input"
        assert parsed.action == "insert"

    def test_r10_quoted_key(self):
        parsed = parse_rule(PAPER_TABLE5_TEXTS[9])
        state = [m for m in parsed.rule.matches if isinstance(m, mm.StateMatch)][0]
        assert state.key.literal == "sig"
        assert state.cmp_value.literal == 1

    def test_r12_syscallbegin_chain(self):
        parsed = parse_rule(PAPER_TABLE5_TEXTS[11])
        assert parsed.chain == "syscallbegin"
        args = [m for m in parsed.rule.matches if isinstance(m, mm.SyscallArgsMatch)][0]
        assert args.arg_index == 0
        assert args.value.literal == "NR_sigreturn"


class TestParsing:
    def test_default_chain_is_input(self):
        assert parse_rule("pftables -o FILE_OPEN -j DROP").chain == "input"

    def test_create_slash_input_shorthand(self):
        assert parse_rule("pftables -I create/input -o FILE_CREATE -j DROP").chain == "create"

    def test_table_selection(self):
        assert parse_rule("pftables -t mangle -o FILE_OPEN -j DROP").table == "mangle"

    def test_insert_position(self):
        parsed = parse_rule("pftables -I input 3 -o FILE_OPEN -j DROP")
        assert parsed.position == 2  # 1-based on the wire

    def test_i_without_p_rejected(self):
        with pytest.raises(errors.EINVAL):
            parse_rule("pftables -i 0x100 -o FILE_OPEN -j DROP")

    def test_missing_target_rejected(self):
        with pytest.raises(errors.EINVAL):
            parse_rule("pftables -o FILE_OPEN")

    def test_unknown_flag_rejected(self):
        with pytest.raises(errors.EINVAL):
            parse_rule("pftables -z wat -j DROP")

    def test_unknown_match_module_rejected(self):
        with pytest.raises(errors.EINVAL):
            parse_rule("pftables -m BOGUS -j DROP")

    def test_state_match_requires_key_and_cmp(self):
        with pytest.raises(errors.EINVAL):
            parse_rule("pftables -m STATE --key x -j DROP")

    def test_adversary_match_options(self):
        parsed = parse_rule("pftables -m ADVERSARY --writable --not-readable -j DROP")
        adv = parsed.rule.matches[0]
        assert adv.writable is True and adv.readable is False

    def test_b_flag_aliases_program(self):
        parsed = parse_rule("pftables -i 0x10 -b /bin/x -o FILE_OPEN -j DROP")
        ept = [m for m in parsed.rule.matches if isinstance(m, mm.EntrypointMatch)][0]
        assert ept.program == "/bin/x"

    def test_log_target_prefix(self):
        parsed = parse_rule("pftables -o FILE_OPEN -j LOG --prefix audit1")
        assert parsed.rule.target.prefix == "audit1"

    def test_empty_rejected(self):
        with pytest.raises(errors.EINVAL):
            parse_rule("   ")


class TestInstallation:
    def test_install_and_count(self):
        firewall = ProcessFirewall()
        firewall.install_all(RULES_R1_R12)
        assert firewall.rules.rule_count() == 12

    def test_insert_goes_first(self):
        firewall = ProcessFirewall()
        firewall.install("pftables -A input -o FILE_OPEN -j DROP")
        firewall.install("pftables -I input -o FILE_READ -j DROP")
        chain = firewall.rules.table("filter").chain("input")
        assert isinstance(chain.rules[0].matches[0], mm.OpMatch)
        assert chain.rules[0].matches[0].op is Op.FILE_READ

    def test_delete_by_text(self):
        firewall = ProcessFirewall()
        text = "pftables -A input -o FILE_OPEN -j DROP"
        firewall.install(text)
        pftables(firewall, text.replace("-A", "-D"))
        assert firewall.rules.rule_count() == 0

    def test_delete_missing_raises(self):
        firewall = ProcessFirewall()
        with pytest.raises(errors.EINVAL):
            pftables(firewall, "pftables -D input -o FILE_OPEN -j DROP")

    def test_user_chain_autocreated(self):
        firewall = ProcessFirewall()
        firewall.install("pftables -A mychain -o FILE_OPEN -j DROP")
        assert "mychain" in firewall.rules.table("filter").chains

    def test_full_rulebase_generates_and_installs(self):
        texts = generate_full_rulebase()
        assert len(texts) == 1218
        firewall = ProcessFirewall()
        firewall.install_all(texts)
        assert firewall.rules.rule_count() == 1218

    def test_full_rulebase_deterministic(self):
        assert generate_full_rulebase(seed=3) == generate_full_rulebase(seed=3)

    def test_render_reparses(self):
        for text in RULES_R1_R12:
            rendered = parse_rule(text).rule.render()
            reparsed = parse_rule("pftables -A input " + rendered)
            assert reparsed.rule.render() == rendered
