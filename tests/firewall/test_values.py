"""Value atoms and literal coercion."""

import pytest

from repro.firewall.context import ContextField
from repro.firewall.values import Value, is_atom


class TestCoercion:
    def test_decimal(self):
        assert Value("42").literal == 42

    def test_hex(self):
        assert Value("0xbeef").literal == 0xBEEF

    def test_quoted_string(self):
        assert Value("'sig'").literal == "sig"

    def test_plain_string(self):
        assert Value("NR_sigreturn").literal == "NR_sigreturn"

    def test_int_passthrough(self):
        assert Value(7).literal == 7


class TestAtoms:
    def test_is_atom(self):
        assert is_atom("C_INO")
        assert not is_atom("c_ino")
        assert not is_atom(42)

    def test_atom_required_field(self):
        assert Value("C_INO").required_field is ContextField.RESOURCE_ID
        assert Value("C_DAC_OWNER").required_field is ContextField.DAC_OWNER
        assert Value("C_TGT_DAC_OWNER").required_field is ContextField.TGT_DAC_OWNER
        assert Value("5").required_field is None

    def test_literal_resolve_needs_no_engine(self):
        assert Value("5").resolve(None, None, None) == 5
