"""Rule-base linting."""

import pytest

from repro.firewall.engine import ProcessFirewall
from repro.firewall.validate import lint_rulebase, render_findings
from repro.rulesets.default import RULES_R1_R12
from repro.world import build_world


@pytest.fixture
def firewall():
    return ProcessFirewall()


@pytest.fixture
def world():
    return build_world()


def kinds(findings):
    return [f.kind for f in findings]


class TestShadowing:
    def test_identical_rule_after_drop_is_shadowed(self, firewall):
        firewall.install("pftables -A input -o FILE_OPEN -d shadow_t -j DROP")
        firewall.install("pftables -A input -o FILE_OPEN -d shadow_t -j DROP")
        assert kinds(lint_rulebase(firewall)) == ["shadowed"]

    def test_log_then_drop_not_shadowed(self, firewall):
        """A side-effect rule does not decide, so a later identical
        verdict rule still fires."""
        firewall.install("pftables -A input -o FILE_OPEN -d shadow_t -j LOG")
        firewall.install("pftables -A input -o FILE_OPEN -d shadow_t -j DROP")
        assert lint_rulebase(firewall) == []

    def test_different_matches_not_shadowed(self, firewall):
        firewall.install("pftables -A input -o FILE_OPEN -d shadow_t -j DROP")
        firewall.install("pftables -A input -o FILE_OPEN -d etc_t -j DROP")
        assert lint_rulebase(firewall) == []


class TestLabelAndProgramChecks:
    def test_unknown_label_reported(self, firewall, world):
        firewall.install("pftables -A input -o FILE_OPEN -d no_such_t -j DROP")
        findings = lint_rulebase(firewall, policy=world.adversaries.policy)
        assert kinds(findings) == ["unknown-label"]
        assert "no_such_t" in findings[0].detail

    def test_syshigh_is_not_a_label(self, firewall, world):
        firewall.install("pftables -A input -o FILE_OPEN -d ~{SYSHIGH} -j DROP")
        assert lint_rulebase(firewall, policy=world.adversaries.policy) == []

    def test_missing_program_reported(self, firewall, world):
        firewall.install("pftables -A input -i 0x10 -p /usr/bin/ghost -o FILE_OPEN -j DROP")
        findings = lint_rulebase(firewall, kernel=world)
        assert kinds(findings) == ["missing-program"]

    def test_present_program_clean(self, firewall, world):
        firewall.install("pftables -A input -i 0x10 -p /usr/bin/apache2 -o FILE_OPEN -j DROP")
        assert lint_rulebase(firewall, kernel=world) == []


class TestChainReachability:
    def test_unjumped_user_chain_reported(self, firewall):
        firewall.install("pftables -A orphan_chain -o FILE_OPEN -j DROP")
        assert kinds(lint_rulebase(firewall)) == ["unreachable-chain"]

    def test_jumped_chain_clean(self, firewall):
        firewall.install("pftables -A input -o FILE_OPEN -j side")
        firewall.install("pftables -A side -d shadow_t -j DROP")
        assert lint_rulebase(firewall) == []


class TestShippedRulesAreClean:
    def test_r1_r12_lint_clean(self, firewall, world):
        firewall.install_all(RULES_R1_R12)
        findings = lint_rulebase(firewall, policy=world.adversaries.policy, kernel=world)
        assert findings == [], render_findings(findings)

    def test_package_rules_lint_clean(self, world):
        from repro.rulesets.packages import all_packages, install_packages

        firewall = ProcessFirewall()
        install_packages(firewall, all_packages())
        findings = lint_rulebase(firewall, policy=world.adversaries.policy, kernel=world)
        assert findings == [], render_findings(findings)


class TestCli:
    def test_pfctl_lint_clean(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "ok.pf"
        path.write_text("\n".join(RULES_R1_R12) + "\n")
        assert main(["lint", str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_pfctl_lint_findings_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bad.pf"
        path.write_text("pftables -A input -o FILE_OPEN -d typo_t -j DROP\n")
        assert main(["lint", str(path)]) == 3
        assert "unknown-label" in capsys.readouterr().out
