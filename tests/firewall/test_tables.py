"""Unit and artifact tests for the TABLED flat-table engine.

Covers what the differential suites do not: the artifact lifecycle
(compile → serialize → load in a *fresh process* with byte-identical
observables; stale artifacts rejected loudly), table invalidation on
rule-base mutation, fallback-row delegation, and the metered/traced
bypass contract (no pf_* counter drift between the JITTED and TABLED
rungs when instrumentation is on).
"""

import json
import os
import subprocess
import sys

import pytest

from repro import errors
from repro.firewall import tables
from repro.firewall.engine import EngineConfig, ProcessFirewall
from repro.rulesets.generated import install_full_rulebase
from repro.world import build_world, spawn_root_shell


def _tabled_firewall(rules=None, installer=None, config=None):
    world = build_world()
    firewall = ProcessFirewall((config or EngineConfig.tabled)())
    world.attach_firewall(firewall)
    if installer is not None:
        installer(firewall)
    elif rules is not None:
        firewall.install_all(rules)
    return world, firewall


_PROBES = ("/etc/passwd", "/lib/libc.so.6", "/etc/shadow", "/bin/sh")


def _drive(world, firewall):
    """Fixed probe workload; returns picklable observables."""
    shell = spawn_root_shell(world)
    stream = []
    for _ in range(2):
        for path in _PROBES:
            for syscall in ("stat", "open"):
                try:
                    if syscall == "stat":
                        world.sys.stat(shell, path)
                    else:
                        fd = world.sys.open(shell, path)
                        world.sys.close(shell, fd)
                    stream.append([syscall, path, "allow"])
                except errors.PFDenied:
                    stream.append([syscall, path, "drop"])
                except errors.KernelError as exc:
                    stream.append([syscall, path, type(exc).__name__])
    logs = [{k: v for k, v in rec.items() if k != "time"}
            for rec in firewall.audit.records(kind="log")]
    return {"stream": stream, "stats": firewall.stats.as_dict(), "logs": logs}


# ---------------------------------------------------------------------------
# compilation basics
# ---------------------------------------------------------------------------


def test_static_rows_compile_for_constant_rules():
    _, firewall = _tabled_firewall(rules=[
        "pftables -A input -o FILE_OPEN -s etc_t -j DROP",
        "pftables -A input -o FILE_READ -d shadow_t -j ACCEPT",
    ])
    program = tables.compile_tables(firewall)
    static_rows, fallback_rows = program.row_counts()
    assert static_rows > 0
    assert fallback_rows == 0


def test_dynamic_rules_become_fallback_rows():
    _, firewall = _tabled_firewall(rules=[
        "pftables -A input -o FILE_OPEN -m COMPARE --v1 C_DAC_OWNER "
        "--v2 C_TGT_DAC_OWNER --nequal -j DROP",
    ])
    program = tables.compile_tables(firewall)
    static_rows, fallback_rows = program.row_counts()
    assert fallback_rows > 0


def test_table_program_rebuilds_on_rule_mutation():
    world, firewall = _tabled_firewall(rules=[
        "pftables -A input -o FILE_OPEN -s etc_t -j DROP",
    ])
    first = firewall.table_program()
    assert firewall.table_program() is first  # stable while rules are
    firewall.install("pftables -A input -o FILE_READ -s tmp_t -j DROP")
    second = firewall.table_program()
    assert second is not first
    assert second.stamp is firewall.rules.stamp


def test_fallback_rows_share_verdicts_and_counters_with_jitted():
    """A base of *only* dynamic rules runs entirely through fallback
    rows; everything observable must still match JITTED exactly."""
    rules = [
        "pftables -A input -o LNK_FILE_READ -m ADVERSARY --writable "
        "-m COMPARE --v1 C_DAC_OWNER --v2 C_TGT_DAC_OWNER --nequal -j DROP",
        "pftables -A input -o FILE_OPEN -m COMPARE --v1 C_DAC_OWNER "
        "--v2 C_TGT_DAC_OWNER --nequal -j DROP",
    ]
    world_j, fw_j = _tabled_firewall(rules=rules, config=EngineConfig.jitted)
    world_t, fw_t = _tabled_firewall(rules=rules)
    jitted = _drive(world_j, fw_j)
    tabled = _drive(world_t, fw_t)
    skip = {"tables_hits", "tables_fallbacks"}
    assert tabled["stream"] == jitted["stream"]
    assert tabled["logs"] == jitted["logs"]
    assert ({k: v for k, v in tabled["stats"].items() if k not in skip}
            == {k: v for k, v in jitted["stats"].items() if k not in skip})
    assert fw_t.stats.tables_fallbacks > 0
    assert fw_t.stats.tables_hits == 0


# ---------------------------------------------------------------------------
# artifact round-trip
# ---------------------------------------------------------------------------


def test_serialize_load_round_trip_is_byte_identical():
    _, firewall = _tabled_firewall(installer=install_full_rulebase)
    text = tables.serialize_tables(tables.compile_tables(firewall))
    _, fresh = _tabled_firewall(installer=install_full_rulebase)
    program = tables.load_tables(fresh, text)
    assert program.loaded
    assert tables.serialize_tables(program) == text


def test_loaded_artifact_observables_match_compiled():
    world_c, fw_c = _tabled_firewall(installer=install_full_rulebase)
    text = tables.serialize_tables(tables.compile_tables(fw_c))
    world_l, fw_l = _tabled_firewall(installer=install_full_rulebase)
    tables.load_tables(fw_l, text)
    assert _drive(world_l, fw_l) == _drive(world_c, fw_c)


_CHILD_SCRIPT = """\
import json, sys
sys.path.insert(0, {src!r})
import test_tables as T
from repro.firewall import tables
from repro.rulesets.generated import install_full_rulebase

world, firewall = T._tabled_firewall(installer=install_full_rulebase)
with open({artifact!r}) as fh:
    tables.load_tables(firewall, fh.read())
print(json.dumps(T._drive(world, firewall), sort_keys=True))
"""


def test_artifact_loads_in_fresh_process_with_identical_observables(tmp_path):
    """The zero-warmup contract: a brand-new interpreter that only ever
    saw the serialized artifact produces byte-identical verdicts, logs
    and stats to the process that compiled it."""
    world, firewall = _tabled_firewall(installer=install_full_rulebase)
    text = tables.serialize_tables(tables.compile_tables(firewall))
    artifact = tmp_path / "full.tables.json"
    artifact.write_text(text)
    reference = json.dumps(_drive(world, firewall), sort_keys=True)
    script = _CHILD_SCRIPT.format(
        src=os.path.dirname(os.path.abspath(__file__)), artifact=str(artifact))
    proc = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True,
        timeout=120)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == reference


# ---------------------------------------------------------------------------
# staleness: a mismatched artifact must never be silently used
# ---------------------------------------------------------------------------


def test_stale_digest_artifact_is_rejected():
    _, firewall = _tabled_firewall(installer=install_full_rulebase)
    text = tables.serialize_tables(tables.compile_tables(firewall))
    _, changed = _tabled_firewall(installer=install_full_rulebase)
    changed.install("pftables -A input -o FILE_OPEN -s nosuch_t -j DROP")
    with pytest.raises(errors.PFTablesStale) as excinfo:
        tables.load_tables(changed, text)
    assert "digest" in excinfo.value.message
    assert changed._tables is None  # nothing half-attached


def test_garbage_and_wrong_version_artifacts_are_rejected():
    _, firewall = _tabled_firewall(installer=install_full_rulebase)
    text = tables.serialize_tables(tables.compile_tables(firewall))
    with pytest.raises(errors.PFTablesStale):
        tables.load_tables(firewall, "{not json")
    with pytest.raises(errors.PFTablesStale):
        tables.load_tables(firewall, json.dumps({"format": "something-else"}))
    payload = json.loads(text)
    payload["version"] = tables.ARTIFACT_VERSION + 1
    with pytest.raises(errors.PFTablesStale):
        tables.load_tables(firewall, json.dumps(payload))


def test_tcb_snapshot_mismatch_is_rejected():
    _, firewall = _tabled_firewall(installer=install_full_rulebase)
    text = tables.serialize_tables(tables.compile_tables(firewall))
    payload = json.loads(text)
    payload["tcb_subjects"] = payload["tcb_subjects"] + ["bogus_new_t"]
    with pytest.raises(errors.PFTablesStale):
        tables.load_tables(firewall, json.dumps(payload))


def test_pftables_stale_is_a_kernel_error():
    # Session/CLI error handling relies on the hierarchy.
    assert issubclass(errors.PFTablesStale, errors.EINVAL)
    assert issubclass(errors.PFTablesStale, errors.KernelError)


# ---------------------------------------------------------------------------
# metered/traced bypass: no counter drift between rungs
# ---------------------------------------------------------------------------


def _metered_metrics(config):
    world, firewall = _tabled_firewall(
        installer=install_full_rulebase, config=config)
    firewall.metrics.enable()
    observables = _drive(world, firewall)
    return observables, firewall.metrics


def test_metered_tabled_matches_jitted_metric_families():
    """Regression (ISSUE 8 bugfix sweep): instrumented TABLED runs take
    the same interpreted path as instrumented JITTED runs, so every
    shared pf_* counter family — fallback counters included — must
    agree; the only divergence allowed is the TABLED-specific
    pf_tables_* family, which must actually record the bypasses."""
    jitted_obs, jitted_metrics = _metered_metrics(EngineConfig.jitted)
    tabled_obs, tabled_metrics = _metered_metrics(EngineConfig.tabled)
    skip = {"tables_hits", "tables_fallbacks"}
    assert tabled_obs["stream"] == jitted_obs["stream"]
    assert tabled_obs["logs"] == jitted_obs["logs"]
    assert ({k: v for k, v in tabled_obs["stats"].items() if k not in skip}
            == {k: v for k, v in jitted_obs["stats"].items() if k not in skip})

    def counter_families(registry):
        # Phase timers are wall-clock samples, legitimately unequal.
        return {name: dict(series)
                for name, series in registry._counters.items()
                if not name.startswith("pf_tables_")}

    assert counter_families(tabled_metrics) == counter_families(jitted_metrics)
    assert tabled_metrics.value("pf_tables_total", {"result": "bypass"}) > 0
    assert jitted_metrics.value("pf_tables_total", {"result": "bypass"}) == 0
    # And the tables never dispatched: the bypass path leaves the
    # TABLED-only stats untouched.
    assert tabled_obs["stats"]["tables_hits"] == 0
    assert tabled_obs["stats"]["tables_fallbacks"] == 0


def test_traced_tabled_bypasses_tables():
    world, firewall = _tabled_firewall(installer=install_full_rulebase)
    firewall.enable_tracing(capacity=256)
    _drive(world, firewall)
    assert firewall.stats.tables_hits == 0
    assert firewall.stats.tables_fallbacks == 0
    assert firewall.tracer.last() is not None


def test_compile_tables_records_row_metrics():
    _, firewall = _tabled_firewall(installer=install_full_rulebase)
    firewall.metrics.enable()
    program = tables.compile_tables(firewall)
    static_rows, fallback_rows = program.row_counts()
    assert firewall.metrics.value(
        "pf_tables_rows_total", {"kind": "static"}) == static_rows
    assert firewall.metrics.value(
        "pf_tables_rows_total", {"kind": "fallback"}) == fallback_rows
