"""The rule-processing engine: verdicts, chains, caching, optimizations."""

import pytest

from repro import errors
from repro.firewall.context import ContextField
from repro.firewall.engine import EngineConfig, ProcessFirewall
from repro.security.lsm import Op, Operation
from repro.vfs.file import OpenFlags
from repro.world import build_world, spawn_adversary, spawn_root_shell


def make_world(config=None, rules=()):
    world = build_world()
    pf = ProcessFirewall(config or EngineConfig.optimized())
    world.attach_firewall(pf)
    pf.install_all(list(rules))
    return world, pf


class TestVerdicts:
    def test_default_allow(self):
        world, pf = make_world()
        root = spawn_root_shell(world)
        world.sys.open(root, "/etc/passwd")
        assert pf.stats.drops == 0

    def test_drop_raises_pfdenied_with_rule(self):
        world, pf = make_world(rules=["pftables -A input -o FILE_OPEN -d etc_t -j DROP"])
        root = spawn_root_shell(world)
        with pytest.raises(errors.PFDenied) as excinfo:
            world.sys.open(root, "/etc/passwd")
        assert excinfo.value.rule is not None
        assert "etc_t" in excinfo.value.rule.text

    def test_pfdenied_is_eacces(self):
        world, pf = make_world(rules=["pftables -A input -o FILE_OPEN -d etc_t -j DROP"])
        root = spawn_root_shell(world)
        with pytest.raises(errors.EACCES):
            world.sys.open(root, "/etc/passwd")

    def test_accept_short_circuits_later_drop(self):
        world, pf = make_world(
            rules=[
                "pftables -A input -o FILE_OPEN -d etc_t -j ACCEPT",
                "pftables -A input -o FILE_OPEN -d etc_t -j DROP",
            ]
        )
        root = spawn_root_shell(world)
        world.sys.open(root, "/etc/passwd")  # not dropped

    def test_disabled_engine_never_blocks(self):
        world, pf = make_world(
            config=EngineConfig.disabled(),
            rules=["pftables -A input -o FILE_OPEN -d etc_t -j DROP"],
        )
        root = spawn_root_shell(world)
        world.sys.open(root, "/etc/passwd")
        assert pf.stats.invocations == 0

    def test_detach_firewall_restores_stock(self):
        world, pf = make_world(rules=["pftables -A input -o FILE_OPEN -d etc_t -j DROP"])
        root = spawn_root_shell(world)
        world.detach_firewall()
        world.sys.open(root, "/etc/passwd")

    def test_drop_recorded_in_audit(self):
        world, pf = make_world(rules=["pftables -A input -o FILE_OPEN -d etc_t -j DROP"])
        root = spawn_root_shell(world)
        with pytest.raises(errors.PFDenied):
            world.sys.open(root, "/etc/passwd")
        assert any(rec.decision == "pf_drop" for rec in world.audit)


class TestChains:
    def test_jump_and_return(self):
        world, pf = make_world(
            rules=[
                "pftables -A input -o FILE_OPEN -j sidechain",
                "pftables -A sidechain -d shadow_t -j DROP",
            ]
        )
        root = spawn_root_shell(world)
        world.sys.open(root, "/etc/passwd")  # passes through side chain
        with pytest.raises(errors.PFDenied):
            world.sys.open(root, "/etc/shadow")

    def test_return_target_resumes_parent(self):
        world, pf = make_world(
            rules=[
                "pftables -A input -o FILE_OPEN -j sidechain",
                "pftables -A sidechain -j RETURN",
                "pftables -A sidechain -j DROP",
                "pftables -A input -o FILE_OPEN -d shadow_t -j DROP",
            ]
        )
        root = spawn_root_shell(world)
        world.sys.open(root, "/etc/passwd")
        with pytest.raises(errors.PFDenied):
            world.sys.open(root, "/etc/shadow")

    def test_jump_loop_guard(self):
        world, pf = make_world(
            rules=[
                "pftables -A loopchain -j loopchain",
                "pftables -A input -o FILE_OPEN -j loopchain",
            ]
        )
        root = spawn_root_shell(world)
        with pytest.raises(errors.EINVAL):
            world.sys.open(root, "/etc/passwd")

    def test_syscallbegin_chain_sees_every_syscall(self):
        world, pf = make_world(
            rules=["pftables -A syscallbegin -m SYSCALL_ARGS --arg 0 --equal getpid -j DROP"]
        )
        root = spawn_root_shell(world)
        with pytest.raises(errors.PFDenied):
            world.sys.getpid(root)
        world.sys.getuid(root)  # different name: allowed

    def test_create_chain_sees_file_creates(self):
        world, pf = make_world(rules=["pftables -A create -d tmp_t -j DROP"])
        root = spawn_root_shell(world)
        with pytest.raises(errors.PFDenied):
            world.sys.open(root, "/tmp/new", flags=OpenFlags.O_CREAT)
        world.sys.open(root, "/etc/passwd")  # plain opens unaffected


class TestStateAndLog:
    def test_state_target_and_match_roundtrip(self):
        world, pf = make_world(
            rules=[
                "pftables -A input -o SOCKET_BIND -j STATE --set --key 0xbeef --value C_INO",
                "pftables -A input -o SOCKET_SETATTR -m STATE --key 0xbeef --cmp C_INO --nequal -j DROP",
            ]
        )
        root = spawn_root_shell(world)
        inode = world.sys.bind(root, "/tmp/sock")
        assert root.pf_state[0xBEEF] == inode.ino
        world.sys.chmod(root, "/tmp/sock", 0o666)  # same inode: allowed

    def test_log_target_records_context(self):
        world, pf = make_world(rules=["pftables -A input -o FILE_OPEN -j LOG --prefix trace"])
        root = spawn_root_shell(world)
        root.call(root.binary, 0x42)
        world.sys.open(root, "/etc/passwd")
        record = pf.log_records[-1]
        assert record["prefix"] == "trace"
        assert record["op"] == "FILE_OPEN"
        assert record["object_label"] == "etc_t"
        assert record["entrypoint"] == ["/bin/sh", 0x42]
        assert record["adv_writable"] is False

    def test_log_does_not_block(self):
        world, pf = make_world(rules=["pftables -A input -o FILE_OPEN -j LOG"])
        root = spawn_root_shell(world)
        world.sys.open(root, "/etc/passwd")


class TestOptimizationEquivalence:
    CONFIGS = ["unoptimized", "concache", "lazycon", "optimized", "compiled"]

    RULES = [
        "pftables -A input -o FILE_OPEN -d shadow_t -j DROP",
        "pftables -A input -o LNK_FILE_READ -m ADVERSARY --writable "
        "-m COMPARE --v1 C_DAC_OWNER --v2 C_TGT_DAC_OWNER --nequal -j DROP",
        "pftables -A input -i 0x2d637 -p /bin/sh -o FILE_OPEN -d tmp_t -j DROP",
    ]

    def _outcomes(self, config_name):
        world, pf = make_world(config=getattr(EngineConfig, config_name)(), rules=self.RULES)
        root = spawn_root_shell(world)
        adversary = spawn_adversary(world)
        world.add_file("/tmp/data", b"x", uid=1000, mode=0o666)
        world.sys.symlink(adversary, "/etc/passwd", "/tmp/trap")
        outcomes = []
        for action in [
            lambda: world.sys.open(root, "/etc/passwd"),
            lambda: world.sys.open(root, "/etc/shadow"),
            lambda: world.sys.open(root, "/tmp/trap"),
            lambda: world.sys.open(root, "/tmp/data"),
        ]:
            try:
                action()
                outcomes.append("allow")
            except errors.PFDenied:
                outcomes.append("drop")
        # Entry-pointed rule: open /tmp/data from the watched call site.
        root.call(root.binary, 0x2D637)
        try:
            world.sys.open(root, "/tmp/data")
            outcomes.append("allow")
        except errors.PFDenied:
            outcomes.append("drop")
        root.ret()
        return outcomes

    @pytest.mark.parametrize("config_name", CONFIGS)
    def test_all_configs_agree(self, config_name):
        expected = ["allow", "drop", "drop", "allow", "drop"]
        assert self._outcomes(config_name) == expected

    def test_eager_collects_more_context(self):
        lazy_world, lazy_pf = make_world(config=EngineConfig.optimized(), rules=self.RULES)
        eager_world, eager_pf = make_world(config=EngineConfig.unoptimized(), rules=self.RULES)
        for world in (lazy_world, eager_world):
            root = spawn_root_shell(world)
            world.sys.open(root, "/etc/passwd")
        lazy_unwinds = lazy_pf.stats.context_collections.get("ENTRYPOINT", 0)
        eager_unwinds = eager_pf.stats.context_collections.get("ENTRYPOINT", 0)
        assert eager_unwinds > lazy_unwinds

    def test_context_cache_hits_within_syscall(self):
        world, pf = make_world(
            config=EngineConfig.optimized(),
            rules=["pftables -A input -i 0x10 -p /bin/sh -o DIR_SEARCH -j DROP"],
        )
        root = spawn_root_shell(world)
        root.call(root.binary, 0x99)
        world.sys.open(root, "/etc/passwd")  # multi-component walk
        assert pf.stats.cache_hits > 0

    def test_without_cache_no_hits(self):
        world, pf = make_world(
            config=EngineConfig.unoptimized(),
            rules=["pftables -A input -i 0x10 -p /bin/sh -o DIR_SEARCH -j DROP"],
        )
        root = spawn_root_shell(world)
        world.sys.open(root, "/etc/passwd")
        assert pf.stats.cache_hits == 0

    def test_entrypoint_chains_skip_rules(self):
        rules = [
            "pftables -A input -i {:#x} -p /usr/bin/other -o FILE_OPEN -j DROP".format(0x1000 + i)
            for i in range(50)
        ]
        linear_world, linear_pf = make_world(config=EngineConfig.lazycon(), rules=rules)
        indexed_world, indexed_pf = make_world(config=EngineConfig.optimized(), rules=rules)
        for world in (linear_world, indexed_world):
            root = spawn_root_shell(world)
            world.sys.open(root, "/etc/passwd")
        assert indexed_pf.stats.rules_evaluated < linear_pf.stats.rules_evaluated


class TestCacheHitAccounting:
    """``stats.cache_hits`` counts fields a rule *used* from the
    per-process context cache — not every field the cache carried."""

    RULES = [
        # DIR_SEARCH reads the entrypoint (bucket resolution); the
        # FILE_OPEN rule reads only the object label.
        "pftables -A input -i 0x10 -p /bin/sh -o DIR_SEARCH -j DROP",
        "pftables -A input -o FILE_OPEN -d shadow_t -j DROP",
    ]

    def test_hits_count_uses_not_absorptions(self):
        world, pf = make_world(config=EngineConfig.optimized(), rules=self.RULES)
        root = spawn_root_shell(world)
        root.call(root.binary, 0x99)
        # open("/etc/passwd"): DIR_SEARCH on "/" collects ENTRYPOINT
        # (a miss), DIR_SEARCH on "/etc" reads it from the cache (one
        # hit).  The FILE_OPEN mediation absorbs the cached entrypoint
        # but never reads it — the old accounting charged a hit there
        # too.
        world.sys.open(root, "/etc/passwd")
        assert pf.stats.cache_hits == 1

    def test_unused_cached_fields_never_counted(self):
        world, pf = make_world(
            config=EngineConfig.optimized(),
            rules=["pftables -A input -o FILE_OPEN -d shadow_t -j DROP"],
        )
        root = spawn_root_shell(world)
        # No rule reads any syscall-scoped field: nothing is cached,
        # nothing is hit.
        world.sys.open(root, "/etc/passwd")
        assert pf.stats.cache_hits == 0

    def test_eager_mode_counts_cache_absorbed_collections(self):
        # In eager (CONCACHE) mode the cache stands in for whole
        # collections, so an absorbed *needed* field counts even
        # without a rule-level read.
        world, pf = make_world(
            config=EngineConfig.concache(),
            rules=["pftables -A input -i 0x10 -p /bin/sh -o DIR_SEARCH -j DROP"],
        )
        root = spawn_root_shell(world)
        world.sys.open(root, "/etc/passwd")
        assert pf.stats.cache_hits > 0


class TestDecisionCache:
    """The COMPILED negative-decision cache (beyond-EPTSPC rung)."""

    RULES = [
        "pftables -A input -o FILE_OPEN -d shadow_t -j DROP",
        "pftables -A input -i 0x2d637 -p /bin/sh -o FILE_GETATTR -j DROP",
    ]

    def _world(self, rules=None):
        world, pf = make_world(config=EngineConfig.compiled(), rules=rules or self.RULES)
        return world, pf, spawn_root_shell(world)

    def test_repeat_allows_short_circuit(self):
        world, pf, root = self._world()
        for _ in range(5):
            world.sys.stat(root, "/etc/passwd")
        assert pf.stats.decision_cache_hits > 0
        assert pf.stats.drops == 0

    def test_verdicts_unchanged_by_cache(self):
        world, pf, root = self._world()
        for _ in range(3):
            world.sys.stat(root, "/etc/passwd")  # warm the memo
        with pytest.raises(errors.PFDenied):
            world.sys.open(root, "/etc/shadow")
        root.call(root.binary, 0x2D637)
        with pytest.raises(errors.PFDenied):
            world.sys.stat(root, "/etc/passwd")  # watched call site
        root.ret()
        world.sys.stat(root, "/etc/passwd")  # and back to allowed

    def test_rule_install_invalidates(self):
        world, pf, root = self._world()
        for _ in range(3):
            world.sys.stat(root, "/etc/passwd")
        assert pf.stats.decision_cache_hits > 0
        pf.install("pftables -A input -o FILE_GETATTR -d etc_t -j DROP")
        with pytest.raises(errors.PFDenied):
            world.sys.stat(root, "/etc/passwd")

    def test_state_target_clears_per_task_cache(self):
        world, pf, root = self._world(
            rules=self.RULES
            + ["pftables -A input -o SOCKET_BIND -j STATE --set --key 0x1 --value C_INO"]
        )
        for _ in range(2):
            world.sys.stat(root, "/etc/passwd")
        assert root.pf_decision_cache is not None
        world.sys.bind(root, "/tmp/sock")  # STATE target fires
        assert root.pf_decision_cache is None

    def test_matched_rules_never_memoized(self):
        # A LOG rule matches every FILE_OPEN: each open must emit a
        # fresh record, so none of these traversals may be cached.
        world, pf, root = self._world(
            rules=["pftables -A input -o FILE_OPEN -j LOG --prefix t"]
        )
        for _ in range(4):
            world.sys.open(root, "/etc/passwd")
        assert len([r for r in pf.log_records if r["prefix"] == "t"]) == 4

    def test_fork_inherits_and_execve_clears(self):
        world, pf, root = self._world()
        for _ in range(2):
            world.sys.stat(root, "/etc/passwd")
        assert root.pf_decision_cache is not None
        child = world.sys.fork(root)
        assert child.pf_decision_cache is not None
        # CoW contract: the entries are structurally shared right after
        # fork (O(1) inheritance) ...
        assert child.pf_decision_cache[1] is root.pf_decision_cache[1]
        before = {k: set(v) if v is not True else True for k, v in root.pf_decision_cache[1].items()}
        # ... and the first memoization on either side breaks the share:
        # the child warming a new entrypoint head must not leak into
        # the parent.
        child.call(child.binary, 0x1)
        world.sys.stat(child, "/etc/passwd")
        assert child.pf_decision_cache[1] is not root.pf_decision_cache[1]
        assert root.pf_decision_cache[1] == before
        world.sys.execve(child, "/bin/sh")
        assert child.pf_decision_cache is None
        assert root.pf_decision_cache is not None

    def test_flush_invalidates_via_stamp(self):
        world, pf, root = self._world()
        for _ in range(2):
            world.sys.stat(root, "/etc/passwd")
        pf.flush()
        pf.install("pftables -A input -o FILE_GETATTR -d etc_t -j DROP")
        with pytest.raises(errors.PFDenied):
            world.sys.stat(root, "/etc/passwd")

    def test_eptspc_config_has_no_decision_hits(self):
        world, pf = make_world(config=EngineConfig.optimized(), rules=self.RULES)
        root = spawn_root_shell(world)
        for _ in range(3):
            world.sys.stat(root, "/etc/passwd")
        assert pf.stats.decision_cache_hits == 0


class TestReentrancy:
    def test_per_process_traversal_state(self):
        """§5.1: traversal state lives on the task, so concurrent
        processes mid-walk never corrupt each other."""
        world, pf = make_world(rules=["pftables -A input -o FILE_OPEN -d shadow_t -j DROP"])
        a = spawn_root_shell(world)
        b = spawn_root_shell(world)
        # Interleave two processes' syscalls; both must be judged
        # correctly and no irq-disable emulation should trigger.
        world.sys.open(a, "/etc/passwd")
        with pytest.raises(errors.PFDenied):
            world.sys.open(b, "/etc/shadow")
        world.sys.open(a, "/etc/passwd")
        assert pf.stats.irq_disables == 0

    def test_global_state_ablation_counts_irq_disables(self):
        config = EngineConfig.optimized().clone(global_traversal_state=True)
        world, pf = make_world(config=config, rules=["pftables -A input -o FILE_OPEN -d shadow_t -j DROP"])
        root = spawn_root_shell(world)
        world.sys.open(root, "/etc/passwd")
        assert pf.stats.irq_disables > 0

    def test_denied_mediation_unwinds_shared_traversal_state(self):
        """Regression: a DROP must pop the iptables-style shared
        traversal entry on the way out — PFDenied used to propagate
        past the pop, leaving a phantom in-flight walk behind."""
        config = EngineConfig.optimized().clone(global_traversal_state=True)
        world, pf = make_world(config=config, rules=["pftables -A input -o FILE_OPEN -d shadow_t -j DROP"])
        root = spawn_root_shell(world)
        with pytest.raises(errors.PFDenied):
            world.sys.open(root, "/etc/shadow")
        assert pf._shared_traversal == []
        # The state machine still works after the denial: allowed
        # accesses go through and also leave the shared list empty.
        world.sys.open(root, "/etc/passwd")
        assert pf._shared_traversal == []


class TestMaliciousProcesses:
    def test_forged_stack_only_hurts_the_forger(self):
        """§4.4: a forged stack removes the forger's protection but the
        engine neither crashes nor blocks other processes."""
        world, pf = make_world(
            rules=["pftables -A input -i 0x2d637 -p /bin/sh -o FILE_OPEN -d etc_t -j DROP"]
        )
        honest = spawn_root_shell(world)
        forger = spawn_root_shell(world)
        forger.stack.push(0xDEADBEEF)  # unmapped PC
        world.sys.open(forger, "/etc/passwd")  # rule cannot match: allowed
        honest.call(honest.binary, 0x2D637)
        with pytest.raises(errors.PFDenied):
            world.sys.open(honest, "/etc/passwd")

    def test_corrupted_stack_graceful(self):
        world, pf = make_world(
            rules=["pftables -A input -i 0x2d637 -p /bin/sh -o FILE_OPEN -d etc_t -j DROP"]
        )
        victim = spawn_root_shell(world)
        victim.call(victim.binary, 0x2D637)
        victim.stack.corrupt_below = 0
        world.sys.open(victim, "/etc/passwd")  # unwind aborts: no match

    def test_flush_resets_everything(self):
        world, pf = make_world(rules=["pftables -A input -o FILE_OPEN -d etc_t -j DROP"])
        pf.flush()
        root = spawn_root_shell(world)
        world.sys.open(root, "/etc/passwd")
        assert pf.rules.rule_count() == 0


class TestFailureInjection:
    def test_context_module_efault_yields_none(self, monkeypatch):
        """A context module hitting bad memory must not fail the
        mediation — the value degrades to None (paper §4.4)."""
        from repro.firewall.modules import registry

        world, pf = make_world(
            rules=["pftables -A input -o FILE_OPEN -d shadow_t -j DROP"]
        )
        original = registry.CONTEXT_MODULES[
            __import__("repro.firewall.context", fromlist=["ContextField"]).ContextField.OBJECT_LABEL
        ].collect

        def exploding(operation, kernel):
            raise errors.EFAULT("bad userspace pointer")

        from repro.firewall.context import ContextField

        monkeypatch.setattr(registry.CONTEXT_MODULES[ContextField.OBJECT_LABEL], "collect", exploding)
        root = spawn_root_shell(world)
        # Label collection fails -> ObjectMatch sees None -> no match ->
        # allowed; crucially, no exception escapes to the syscall.
        world.sys.open(root, "/etc/shadow")
        assert pf.stats.drops == 0

    def test_eager_mode_survives_efault(self, monkeypatch):
        from repro.firewall.context import ContextField
        from repro.firewall.modules import registry

        world, pf = make_world(
            config=EngineConfig.unoptimized(),
            rules=["pftables -A input -o FILE_OPEN -d shadow_t -j DROP"],
        )

        def exploding(operation, kernel):
            raise errors.EFAULT("bad userspace pointer")

        monkeypatch.setattr(registry.CONTEXT_MODULES[ContextField.OBJECT_LABEL], "collect", exploding)
        root = spawn_root_shell(world)
        world.sys.open(root, "/etc/passwd")
