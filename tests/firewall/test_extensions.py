"""Extension features: script entrypoints, C_OBJ identity,
persistence/listing, hit counters, denial analysis."""

import pytest

from repro import errors
from repro.analysis.denials import collect_denials, render_denials, suspected_vulnerabilities
from repro.firewall.engine import EngineConfig, ProcessFirewall
from repro.firewall.persist import list_rules, load_rules, save_rules
from repro.programs.php import PhpInterpreter
from repro.proc.interp import InterpreterStack
from repro.rulesets.default import RULES_R1_R12, toctou_rules
from repro.world import build_world, spawn_adversary, spawn_root_shell


@pytest.fixture
def world():
    return build_world()


@pytest.fixture
def firewall(world):
    pf = ProcessFirewall(EngineConfig.optimized())
    world.attach_firewall(pf)
    return pf


class TestScriptEntrypoints:
    """-m SCRIPT distinguishes scripts sharing one interpreter opcode."""

    APP = "/var/www/html/app"

    @pytest.fixture
    def php(self, world):
        world.mkdirs(self.APP, label="httpd_user_script_exec_t")
        world.add_file(self.APP + "/controller.php", b"<?php include(...); ?>")
        world.add_file(self.APP + "/vulnerable.php", b"<?php include($_GET['x']); ?>")
        world.add_file(self.APP + "/page.php", b"<?php ok(); ?>")
        proc = world.spawn("php5", uid=0, label="httpd_t", binary_path="/usr/bin/php5")
        return PhpInterpreter(world, proc)

    def test_script_match_pins_the_vulnerable_script(self, world, firewall, php):
        firewall.install(
            "pftables -A input -o FILE_OPEN -m SCRIPT --file {}/vulnerable.php -d ~{{SYSHIGH}} -j DROP".format(self.APP)
        )
        world.add_file("/tmp/evil", b"<?php evil(); ?>", uid=1000, mode=0o666)
        # Include issued from the vulnerable script: dropped.
        with pytest.raises(errors.PFDenied):
            php.run_component(self.APP, "", "../../../../../tmp/evil\x00",
                              controller=self.APP + "/vulnerable.php")
        # The *same* include from a different (trusted) script: allowed.
        source = php.run_component(self.APP, "", "../../../../../tmp/evil\x00",
                                   controller=self.APP + "/controller.php")
        assert source == b"<?php evil(); ?>"

    def test_script_line_match(self, world, firewall, php):
        firewall.install(
            "pftables -A input -o FILE_OPEN -m SCRIPT --file {}/controller.php --line 17 "
            "-d ~{{SYSHIGH}} -j DROP".format(self.APP)
        )
        world.add_file("/tmp/evil", b"x", uid=1000, mode=0o666)
        with pytest.raises(errors.PFDenied):
            php.run_component(self.APP, "", "../../../../../tmp/evil\x00",
                              controller=self.APP + "/controller.php", controller_line=17)
        # Same script, different line: not this rule's concern.
        php.run_component(self.APP, "", "../../../../../tmp/evil\x00",
                          controller=self.APP + "/controller.php", controller_line=30)

    def test_native_program_never_matches_script_rule(self, world, firewall):
        firewall.install("pftables -A input -o FILE_OPEN -m SCRIPT --file /x.php -j DROP")
        root = spawn_root_shell(world)
        world.sys.open(root, "/etc/passwd")  # no script stack: allowed

    def test_corrupted_script_stack_degrades(self, world, firewall, php):
        firewall.install(
            "pftables -A input -o FILE_OPEN -m SCRIPT --file {}/vulnerable.php -j DROP".format(self.APP)
        )
        php.proc.script_stack = InterpreterStack("php")
        php.proc.script_stack.push(self.APP + "/vulnerable.php", 1)
        php.proc.script_stack.corrupt_below = 0
        # Unwind aborts -> no context -> no match -> allowed (only the
        # corrupting process loses protection, §4.4).
        php.include(self.APP + "/page.php")

    def test_script_match_renders_and_reparses(self):
        from repro.firewall.pftables import parse_rule

        text = "pftables -A input -o FILE_OPEN -m SCRIPT --file /a.php --line 9 -j DROP"
        rendered = parse_rule(text).rule.render()
        assert "--file /a.php" in rendered and "--line 9" in rendered
        assert parse_rule("pftables -A input " + rendered)


class TestObjIdentityAtom:
    """C_OBJ (dev, ino, generation) is sound under inode recycling."""

    def _run_cryo(self, identity):
        from repro.attacks.toctou import EPT_SPOOL_CHECK, EPT_SPOOL_OPEN, CryogenicSleepRace

        scenario = CryogenicSleepRace()

        def rules(_self=scenario):
            return toctou_rules(
                "/usr/sbin/spoold", EPT_SPOOL_CHECK, "FILE_GETATTR",
                EPT_SPOOL_OPEN, "FILE_OPEN", identity=identity,
            )

        scenario.rules = rules
        return scenario.run(with_firewall=True)

    def test_c_ino_is_defeated_by_recycling(self):
        result = self._run_cryo("C_INO")
        assert result.succeeded  # the paper's printed atom is blind here

    def test_c_obj_blocks_recycling(self):
        result = self._run_cryo("C_OBJ")
        assert not result.succeeded
        assert result.blocked

    def test_c_obj_no_false_positive(self, world, firewall):
        from repro.attacks.toctou import EPT_SPOOL_CHECK, EPT_SPOOL_OPEN, CryogenicSleepRace

        scenario = CryogenicSleepRace()
        scenario.rules = lambda: toctou_rules(
            "/usr/sbin/spoold", EPT_SPOOL_CHECK, "FILE_GETATTR",
            EPT_SPOOL_OPEN, "FILE_OPEN", identity="C_OBJ",
        )
        assert scenario.run_benign(with_firewall=True)


class TestPersistence:
    def test_save_load_roundtrip(self, firewall):
        firewall.install_all(RULES_R1_R12)
        saved = save_rules(firewall)
        clone = ProcessFirewall()
        count = load_rules(clone, saved)
        assert count == 12
        assert save_rules(clone) == saved

    def test_roundtrip_preserves_decisions(self, world, firewall):
        firewall.install("pftables -A input -o FILE_OPEN -d shadow_t -j DROP")
        saved = save_rules(firewall)
        firewall.flush()
        load_rules(firewall, saved)
        root = spawn_root_shell(world)
        with pytest.raises(errors.PFDenied):
            world.sys.open(root, "/etc/shadow")

    def test_load_flushes_by_default(self, firewall):
        firewall.install("pftables -A input -o FILE_OPEN -d shadow_t -j DROP")
        load_rules(firewall, save_rules(firewall))
        assert firewall.rules.rule_count() == 1

    def test_load_append_mode(self, firewall):
        firewall.install("pftables -A input -o FILE_OPEN -d shadow_t -j DROP")
        load_rules(firewall, "*filter\n-A input -o FILE_READ -d shadow_t -j DROP\nCOMMIT\n", flush=False)
        assert firewall.rules.rule_count() == 2

    def test_corrupt_file_rejected_before_applying(self, firewall):
        firewall.install("pftables -A input -o FILE_OPEN -d shadow_t -j DROP")
        with pytest.raises(errors.EINVAL):
            load_rules(firewall, "*filter\nGARBAGE LINE\nCOMMIT\n")
        # The pre-existing base must be intact (parse-then-apply).
        assert firewall.rules.rule_count() == 1

    def test_comments_and_blank_lines_ignored(self, firewall):
        load_rules(firewall, "# saved by pftables\n\n*filter\n:input\nCOMMIT\n")
        assert firewall.rules.rule_count() == 0


class TestHitCountersAndListing:
    def test_hits_increment_on_match_only(self, world, firewall):
        rule = firewall.install("pftables -A input -o FILE_OPEN -d shadow_t -j DROP")
        root = spawn_root_shell(world)
        world.sys.open(root, "/etc/passwd")  # different label: no hit
        assert rule.hits == 0
        with pytest.raises(errors.PFDenied):
            world.sys.open(root, "/etc/shadow")
        assert rule.hits == 1

    def test_listing_contains_rules_and_hits(self, world, firewall):
        firewall.install("pftables -A input -o FILE_OPEN -d shadow_t -j DROP")
        root = spawn_root_shell(world)
        with pytest.raises(errors.PFDenied):
            world.sys.open(root, "/etc/shadow")
        text = list_rules(firewall, verbose=True)
        assert "Chain input" in text
        assert "-o FILE_OPEN" in text
        assert "1 hits" in text

    def test_log_and_state_rules_count_hits(self, world, firewall):
        rule = firewall.install("pftables -A input -o FILE_OPEN -j LOG")
        root = spawn_root_shell(world)
        world.sys.open(root, "/etc/passwd")
        assert rule.hits == 1


class TestDenialAnalysis:
    def test_denials_grouped_and_rendered(self, world, firewall):
        firewall.install("pftables -A input -o FILE_OPEN -d shadow_t -j DROP")
        root = spawn_root_shell(world)
        for _ in range(3):
            with pytest.raises(errors.PFDenied):
                world.sys.open(root, "/etc/shadow")
        reports = collect_denials(world)
        assert len(reports) == 1
        report = reports[0]
        assert report.count == 3
        assert report.comm == "sh"
        assert "/etc/shadow" in report.paths
        assert "shadow_t" in report.rule_text
        assert "3 x sh FILE_OPEN" in render_denials(reports)

    def test_no_denials_message(self, world):
        assert render_denials(collect_denials(world)) == "no firewall denials recorded"

    def test_e8_discovery_workflow(self):
        """The Icecat story: run the 'benign' browser under R1, then
        find the silently-blocked library load in the denial logs."""
        from repro.attacks.search_path import IcecatEnvironmentLibrary

        scenario = IcecatEnvironmentLibrary()
        result = scenario.run(with_firewall=True)
        assert result.blocked
        reports = suspected_vulnerabilities(scenario.kernel, benign_programs=("icecat",))
        assert reports
        assert reports[0].comm == "icecat"
        assert any("/tmp" in p for p in reports[0].paths)


class TestBashScriptEntrypoints:
    """The second interpreter language: bash `source` backtraces."""

    def test_script_rule_pins_sourcing_script(self, world, firewall):
        from repro.programs.shell import ShellScript

        firewall.install(
            "pftables -A input -o FILE_OPEN -m SCRIPT --file /etc/init.d/vulnerable "
            "-d ~{SYSHIGH} -j DROP"
        )
        world.add_file("/tmp/payload.sh", b"evil", uid=1000, mode=0o666)
        world.add_file("/etc/functions.sh", b"helpers", label="etc_t")
        proc = world.spawn("bash", uid=0, label="init_t", binary_path="/bin/bash")
        script = ShellScript(world, proc)
        # The vulnerable script sourcing a /tmp file: dropped.
        with pytest.raises(errors.PFDenied):
            script.source_file("/tmp/payload.sh", calling_script="/etc/init.d/vulnerable")
        # Same source from a different script: outside the rule.
        assert script.source_file("/tmp/payload.sh", calling_script="/etc/init.d/other") == b"evil"
        # The vulnerable script sourcing trusted helpers: allowed.
        assert script.source_file("/etc/functions.sh", calling_script="/etc/init.d/vulnerable") == b"helpers"

    def test_bash_language_recorded(self, world):
        from repro.programs.shell import ShellScript

        world.add_file("/etc/functions.sh", b"x", label="etc_t")
        proc = world.spawn("bash", uid=0, label="init_t", binary_path="/bin/bash")
        ShellScript(world, proc).source_file("/etc/functions.sh")
        assert proc.script_stack.language == "bash"
