"""Resource-context cache: invalidation correctness (the S4 suite).

Every test follows the same shape: mediate once so the JITTED engine
caches an expensive per-inode answer (adversary accessibility or the
object label), mutate system state through the VFS, and assert the next
mediation sees the *new* answer — a stale cache here is not a perf bug
but a security hole (the firewall would keep trusting a resource an
adversary just gained access to).
"""

import pytest

from repro import errors
from repro.firewall.context import ContextField
from repro.firewall.engine import EngineConfig, ProcessFirewall
from repro.firewall.rescache import HIT, INVALIDATE, MISS, ResourceContextCache
from repro.security.lsm import Op, Operation
from repro.world import build_world, spawn_root_shell

WRITABLE_DROP = "pftables -A input -o FILE_OPEN -m ADVERSARY --writable -j DROP"
TMP_LABEL_DROP = "pftables -A input -o FILE_OPEN -d tmp_t -j DROP"


def make_jitted(*rules):
    world = build_world()
    pf = ProcessFirewall(EngineConfig.jitted())
    world.attach_firewall(pf)
    for rule in rules:
        pf.install(rule)
    root = spawn_root_shell(world)
    return world, pf, root


def attempt_open(world, proc, path):
    """One mediated open; returns "allow" or "drop"."""
    try:
        fd = world.sys.open(proc, path)
        world.sys.close(proc, fd)
        return "allow"
    except errors.PFDenied:
        return "drop"


class TestInvalidationFlips:
    """Each VFS mutation must flip the cached answer it affects."""

    def _adversarial_world(self):
        """World with one non-root user (the DAC adversary)."""
        world, pf, root = make_jitted(WRITABLE_DROP)
        world.spawn("adv", uid=1000, label="user_t", binary_path="/bin/sh")
        return world, pf, root

    def test_repeat_access_is_a_cache_hit(self):
        world, pf, root = self._adversarial_world()
        world.add_file("/tmp/victim", b"x", uid=0, mode=0o666, label="tmp_t")
        assert attempt_open(world, root, "/tmp/victim") == "drop"
        misses = pf.stats.rescache_misses
        assert misses > 0
        assert attempt_open(world, root, "/tmp/victim") == "drop"
        assert pf.stats.rescache_hits > 0
        assert pf.stats.rescache_misses == misses  # no re-collection

    def test_chmod_flips_adversary_writable(self):
        world, pf, root = self._adversarial_world()
        victim = world.add_file("/tmp/victim", b"x", uid=0, mode=0o666, label="tmp_t")
        assert attempt_open(world, root, "/tmp/victim") == "drop"
        world.fs.chmod(victim, 0o600)  # root-only: no adversary writers
        assert attempt_open(world, root, "/tmp/victim") == "allow"
        assert pf.stats.rescache_invalidations > 0

    def test_chown_flips_adversary_writable(self):
        world, pf, root = self._adversarial_world()
        victim = world.add_file("/tmp/victim", b"x", uid=0, mode=0o644, label="tmp_t")
        assert attempt_open(world, root, "/tmp/victim") == "allow"
        world.fs.chown(victim, 1000)  # owner write bit now an adversary's
        assert attempt_open(world, root, "/tmp/victim") == "drop"
        assert pf.stats.rescache_invalidations > 0

    def test_relabel_flips_object_label(self):
        world, pf, root = make_jitted(TMP_LABEL_DROP)
        victim = world.add_file("/tmp/victim", b"x", uid=0, mode=0o644, label="tmp_t")
        assert attempt_open(world, root, "/tmp/victim") == "drop"
        world.fs.relabel(victim, "etc_t")
        assert attempt_open(world, root, "/tmp/victim") == "allow"
        assert pf.stats.rescache_invalidations > 0

    def test_rename_replacement_flips_answer(self):
        """An adversary renaming their file over a trusted path must not
        inherit the trusted inode's cached accessibility."""
        world, pf, root = self._adversarial_world()
        world.add_file("/etc/target", b"x", uid=0, mode=0o600, label="etc_t")
        evil = world.add_file("/tmp/evil", b"y", uid=1000, mode=0o666, label="tmp_t")
        assert attempt_open(world, root, "/etc/target") == "allow"
        assert attempt_open(world, root, "/tmp/evil") == "drop"  # caches evil's inode
        world.fs.rename(world.lookup("/tmp"), "evil", world.lookup("/etc"), "target")
        assert world.lookup("/etc/target") is evil
        assert attempt_open(world, root, "/etc/target") == "drop"
        assert pf.stats.rescache_invalidations > 0  # moved inode's meta_gen bumped

    def test_unlink_then_recycled_inode_is_not_stale(self):
        """The cryogenic-sleep shape: the inode *number* comes back but
        the generation differs, so the prior tenant's entry is dead."""
        world, pf, root = make_jitted(TMP_LABEL_DROP)
        victim = world.add_file("/tmp/victim", b"x", uid=0, mode=0o644, label="tmp_t")
        assert attempt_open(world, root, "/tmp/victim") == "drop"
        world.sys.unlink(root, "/tmp/victim")
        fresh = world.add_file("/tmp/victim", b"y", uid=0, mode=0o644, label="etc_t")
        assert fresh.ino == victim.ino  # number recycled ...
        assert fresh.generation != victim.generation  # ... tenant changed
        assert attempt_open(world, root, "/tmp/victim") == "allow"
        assert pf.stats.rescache_invalidations > 0

    def test_remount_invalidates(self):
        world, pf, root = self._adversarial_world()
        world.add_file("/tmp/victim", b"x", uid=0, mode=0o666, label="tmp_t")
        assert attempt_open(world, root, "/tmp/victim") == "drop"
        world.fs.remount()
        assert attempt_open(world, root, "/tmp/victim") == "drop"
        assert pf.stats.rescache_invalidations > 0

    def test_new_uid_bumps_epoch_and_flips(self):
        """A user added *after* the answer was cached is a brand-new
        adversary; the cached "nobody can write this" must not survive."""
        world, pf, root = make_jitted(WRITABLE_DROP)
        # Owner uid 2000 is not in the known-UID population yet, so the
        # owner-writable file has no adversary writers.
        world.add_file("/tmp/victim", b"x", uid=2000, mode=0o600, label="tmp_t")
        assert attempt_open(world, root, "/tmp/victim") == "allow"
        world.spawn("adv", uid=2000, label="user_t", binary_path="/bin/sh")
        assert attempt_open(world, root, "/tmp/victim") == "drop"
        assert pf.stats.rescache_invalidations > 0

    def test_rule_base_stamp_invalidates(self):
        world, pf, root = self._adversarial_world()
        world.add_file("/tmp/victim", b"x", uid=0, mode=0o666, label="tmp_t")
        assert attempt_open(world, root, "/tmp/victim") == "drop"
        invalidations = pf.stats.rescache_invalidations
        pf.install(TMP_LABEL_DROP)  # any rule mutation moves the stamp
        assert attempt_open(world, root, "/tmp/victim") == "drop"
        assert pf.stats.rescache_invalidations > invalidations


class TestCacheUnit:
    """Direct fetch/store outcome checks on the cache object."""

    def _operation(self, world, proc, path):
        return Operation(proc, Op.FILE_OPEN, obj=world.lookup(path), path=path)

    def test_fetch_store_outcome_cycle(self):
        world, pf, root = make_jitted(TMP_LABEL_DROP)
        world.add_file("/tmp/victim", b"x", uid=0, mode=0o644, label="tmp_t")
        cache = ResourceContextCache()
        op = self._operation(world, root, "/tmp/victim")
        field = ContextField.OBJECT_LABEL
        assert cache.fetch(field, op, pf) == (MISS, None)
        cache.store(field, op, pf, "tmp_t")
        assert cache.fetch(field, op, pf) == (HIT, "tmp_t")
        op.obj.bump_meta()
        assert cache.fetch(field, op, pf) == (INVALIDATE, None)
        # The invalidated entry is gone, so the next probe is a miss.
        assert cache.fetch(field, op, pf) == (MISS, None)

    def test_adversary_fields_are_keyed_per_identity(self):
        world, pf, root = make_jitted(TMP_LABEL_DROP)
        other = world.spawn("adv", uid=1000, label="user_t", binary_path="/bin/sh")
        world.add_file("/tmp/victim", b"x", uid=0, mode=0o644, label="tmp_t")
        cache = ResourceContextCache()
        field = ContextField.ADV_WRITABLE
        op_root = self._operation(world, root, "/tmp/victim")
        op_other = self._operation(world, other, "/tmp/victim")
        cache.store(field, op_root, pf, False)
        # Same inode, different caller identity: no aliasing.
        assert cache.fetch(field, op_other, pf) == (MISS, None)
        assert cache.fetch(field, op_root, pf) == (HIT, False)

    def test_capacity_eviction_is_wholesale(self):
        world, pf, root = make_jitted(TMP_LABEL_DROP)
        paths = []
        for i in range(3):
            path = "/tmp/f{}".format(i)
            world.add_file(path, b"x", uid=0, mode=0o644, label="tmp_t")
            paths.append(path)
        cache = ResourceContextCache(capacity=2)
        field = ContextField.OBJECT_LABEL
        for path in paths:
            cache.store(field, self._operation(world, root, path), pf, "tmp_t")
        assert len(cache) == 1  # third insert cleared the full cache

    def test_flush_clears_resource_cache(self):
        world, pf, root = make_jitted(WRITABLE_DROP)
        world.spawn("adv", uid=1000, label="user_t", binary_path="/bin/sh")
        world.add_file("/tmp/victim", b"x", uid=0, mode=0o666, label="tmp_t")
        assert attempt_open(world, root, "/tmp/victim") == "drop"
        pf.flush()
        assert len(pf._rescache) == 0
