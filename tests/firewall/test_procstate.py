"""The CoW substrate: CowMap/ProcState sharing, breaks, generations."""

import pytest

from repro.firewall.procstate import (
    CowMap,
    ProcState,
    reset_substrate_stats,
    substrate_stats,
)


@pytest.fixture(autouse=True)
def _fresh_counters():
    reset_substrate_stats()
    yield
    reset_substrate_stats()


class TestCowMap:
    def test_behaves_like_a_dict(self):
        m = CowMap({"a": 1})
        m["b"] = 2
        assert m["a"] == 1 and m.get("b") == 2 and m.get("c", 9) == 9
        assert "a" in m and len(m) == 2 and sorted(m) == ["a", "b"]
        assert m == {"a": 1, "b": 2}
        del m["a"]
        assert m == {"b": 2}

    def test_fork_shares_storage(self):
        parent = CowMap({"k": 1})
        child = parent.fork()
        assert child == parent
        assert parent.shared and child.shared
        assert child._data is parent._data
        assert substrate_stats()["state_copies"] == 0

    def test_child_write_breaks_share_once(self):
        parent = CowMap({"k": 1})
        child = parent.fork()
        child["k"] = 2
        assert parent["k"] == 1 and child["k"] == 2
        assert not child.shared and parent.shared  # parent still points at old storage
        child["j"] = 3
        assert substrate_stats()["state_copies"] == 1  # copy paid exactly once

    def test_parent_write_does_not_leak_to_child(self):
        parent = CowMap({"k": 1})
        child = parent.fork()
        parent["k"] = 99
        assert child["k"] == 1

    def test_many_children_one_copy_on_parent_write(self):
        parent = CowMap({"k": 1})
        children = [parent.fork() for _ in range(100)]
        parent["k"] = 2
        assert substrate_stats()["state_copies"] == 1
        assert all(c["k"] == 1 for c in children)

    def test_generation_bumps_on_every_mutation(self):
        m = CowMap()
        g0 = m.generation
        m["a"] = 1
        m["a"] = 2
        del m["a"]
        m.clear()
        assert m.generation == g0 + 4

    def test_fork_carries_generation(self):
        m = CowMap({"a": 1})
        m["b"] = 2
        child = m.fork()
        assert child.generation == m.generation

    def test_clear_on_shared_map_preserves_relatives(self):
        parent = CowMap({"k": 1})
        child = parent.fork()
        child.clear()
        assert len(child) == 0 and parent["k"] == 1

    def test_eager_copy_is_independent_immediately(self):
        parent = CowMap({"k": 1})
        clone = parent.copy_eager()
        assert not parent.shared and not clone.shared
        clone["k"] = 2
        assert parent["k"] == 1
        assert substrate_stats()["state_copies"] == 0  # no deferred break


class TestProcStateFork:
    def _warm(self):
        pf = ProcState()
        pf.state["inv"] = 0x1234
        stamp = object()
        pf.decision_cache = (stamp, {("op", "label"): {("/bin/sh", 1)}})
        pf.context_cache = (7, {"f": "v"})
        return pf, stamp

    def test_cow_fork_shares_everything(self):
        pf, stamp = self._warm()
        child = pf.fork()
        assert child.state._data is pf.state._data
        assert child.decision_probe(stamp) is pf.decision_probe(stamp)
        assert child.context_cache is pf.context_cache
        assert pf.decision_shared and child.decision_shared
        assert substrate_stats() == {
            "cow_forks": 1, "eager_forks": 0, "state_copies": 0,
            "decision_copies": 0, "releases": 0,
        }

    def test_eager_fork_copies_everything(self):
        pf, stamp = self._warm()
        child = pf.fork(eager=True)
        assert child.state == pf.state and child.state._data is not pf.state._data
        centries = child.decision_probe(stamp)
        pentries = pf.decision_probe(stamp)
        assert centries == pentries and centries is not pentries
        # The head sets inside must be copies too.
        assert centries[("op", "label")] is not pentries[("op", "label")]
        assert substrate_stats()["eager_forks"] == 1

    def test_decision_writable_breaks_fork_share(self):
        pf, stamp = self._warm()
        child = pf.fork()
        wentries = child.decision_writable(stamp)
        wentries[("op2", "label")] = True
        wentries[("op", "label")].add(("/bin/sh", 2))
        pentries = pf.decision_probe(stamp)
        assert ("op2", "label") not in pentries
        assert ("/bin/sh", 2) not in pentries[("op", "label")]
        assert substrate_stats()["decision_copies"] == 1
        # The child now owns its entries: no second copy.
        child.decision_writable(stamp)["op3"] = True
        assert substrate_stats()["decision_copies"] == 1

    def test_decision_writable_stamp_mismatch_discards(self):
        pf, _ = self._warm()
        fresh = pf.decision_writable(object())
        assert fresh == {}
        assert not pf.decision_shared

    def test_decision_probe_is_stamp_gated(self):
        pf, stamp = self._warm()
        assert pf.decision_probe(stamp) is not None
        assert pf.decision_probe(object()) is None

    def test_decision_invalidate_drops_only_own_side(self):
        pf, stamp = self._warm()
        child = pf.fork()
        child.decision_invalidate()
        assert child.decision_probe(stamp) is None
        assert pf.decision_probe(stamp) is not None

    def test_fork_without_decision_cache_shares_nothing_stale(self):
        pf = ProcState()
        pf.state["k"] = 1
        child = pf.fork()
        assert child.decision_cache is None and not child.decision_shared

    def test_execve_reset_abandons_shared_state(self):
        pf, stamp = self._warm()
        child = pf.fork()
        child.execve_reset()
        assert len(child.state) == 0
        assert child.decision_probe(stamp) is None
        assert child.context_cache is None
        # The parent's view is untouched.
        assert pf.state["inv"] == 0x1234
        assert pf.decision_probe(stamp) is not None
        # And no copy was charged: the child just walked away.
        assert substrate_stats()["state_copies"] == 0

    def test_grandchild_chains_share_until_written(self):
        pf, _ = self._warm()
        child = pf.fork()
        grandchild = child.fork()
        assert grandchild.state._data is pf.state._data
        grandchild.state["own"] = 1
        assert "own" not in pf.state and "own" not in child.state
        assert substrate_stats()["state_copies"] == 1

    def test_decision_cache_tuple_view_roundtrip(self):
        pf = ProcState()
        assert pf.decision_cache is None
        stamp = object()
        pf.decision_cache = (stamp, {"k": True})
        assert pf.decision_cache == (stamp, {"k": True})
        pf.decision_cache = None
        assert pf.decision_cache is None
