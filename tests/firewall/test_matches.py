"""Match modules and label specs."""

import pytest

from repro.firewall.context import ContextFrame
from repro.firewall.engine import EngineConfig, ProcessFirewall
from repro.firewall import matches as mm
from repro.security.lsm import Op, Operation
from repro.world import build_world


@pytest.fixture
def world():
    return build_world()


@pytest.fixture
def engine(world):
    pf = ProcessFirewall(EngineConfig.optimized())
    world.attach_firewall(pf)
    return pf


@pytest.fixture
def proc(world):
    return world.spawn("prog", uid=0, label="httpd_t", binary_path="/usr/bin/apache2")


def operation(world, proc, path="/etc/passwd", op=Op.FILE_OPEN):
    return Operation(proc, op, obj=world.lookup(path), path=path)


class TestLabelSpec:
    def test_single_label(self):
        spec = mm.LabelSpec.parse("tmp_t")
        assert spec.member("tmp_t", frozenset())
        assert not spec.member("etc_t", frozenset())

    def test_set(self):
        spec = mm.LabelSpec.parse("{a_t|b_t}")
        assert spec.member("a_t", frozenset()) and spec.member("b_t", frozenset())

    def test_negated_set(self):
        spec = mm.LabelSpec.parse("~{a_t|b_t}")
        assert not spec.member("a_t", frozenset())
        assert spec.member("c_t", frozenset())

    def test_syshigh_expands_via_tcb(self):
        spec = mm.LabelSpec.parse("SYSHIGH")
        assert spec.member("lib_t", frozenset({"lib_t"}))
        assert not spec.member("tmp_t", frozenset({"lib_t"}))

    def test_negated_syshigh(self):
        spec = mm.LabelSpec.parse("~{SYSHIGH}")
        assert spec.member("tmp_t", frozenset({"lib_t"}))
        assert not spec.member("lib_t", frozenset({"lib_t"}))

    def test_mixed_set_with_syshigh(self):
        spec = mm.LabelSpec.parse("{extra_t|SYSHIGH}")
        assert spec.member("extra_t", frozenset())
        assert spec.member("lib_t", frozenset({"lib_t"}))

    def test_render_roundtrip(self):
        for text in ["tmp_t", "{a_t|b_t}", "~{a_t|b_t}", "SYSHIGH", "~{SYSHIGH}"]:
            spec = mm.LabelSpec.parse(text)
            again = mm.LabelSpec.parse(spec.render())
            assert again.labels == spec.labels
            assert again.negated == spec.negated
            assert again.syshigh == spec.syshigh


class TestDefaultMatches:
    def test_op_match(self, engine, world, proc):
        match = mm.OpMatch("FILE_OPEN")
        assert match.matches(engine, operation(world, proc), ContextFrame())
        assert not match.matches(engine, operation(world, proc, op=Op.FILE_READ), ContextFrame())

    def test_op_match_link_alias(self, engine, world, proc):
        match = mm.OpMatch("LINK_READ")
        assert match.matches(engine, operation(world, proc, op=Op.LNK_FILE_READ), ContextFrame())

    def test_subject_match_syshigh(self, engine, world, proc):
        match = mm.SubjectMatch("SYSHIGH")
        assert match.matches(engine, operation(world, proc), ContextFrame())
        user_proc = world.spawn("u", uid=1000, label="user_t")
        assert not match.matches(engine, operation(world, user_proc), ContextFrame())

    def test_object_match(self, engine, world, proc):
        match = mm.ObjectMatch("etc_t")
        assert match.matches(engine, operation(world, proc), ContextFrame())

    def test_object_match_none_label_never_matches(self, engine, world, proc):
        match = mm.ObjectMatch("~{anything_t}")
        op = Operation(proc, Op.PROCESS_SIGNAL_DELIVERY, obj=None)
        assert not match.matches(engine, op, ContextFrame())

    def test_entrypoint_match_innermost(self, engine, world, proc):
        proc.call(proc.binary, 0x2D637)
        match = mm.EntrypointMatch("/usr/bin/apache2", 0x2D637)
        assert match.matches(engine, operation(world, proc), ContextFrame())

    def test_entrypoint_match_wrong_offset(self, engine, world, proc):
        proc.call(proc.binary, 0x111)
        match = mm.EntrypointMatch("/usr/bin/apache2", 0x2D637)
        assert not match.matches(engine, operation(world, proc), ContextFrame())

    def test_entrypoint_match_outer_frame_not_considered(self, engine, world, proc):
        proc.call(proc.binary, 0x2D637)  # outer
        proc.call(proc.binary, 0x999)  # innermost
        match = mm.EntrypointMatch("/usr/bin/apache2", 0x2D637)
        assert not match.matches(engine, operation(world, proc), ContextFrame())

    def test_entrypoint_empty_stack_no_match(self, engine, world, proc):
        match = mm.EntrypointMatch("/usr/bin/apache2", 0x2D637)
        assert not match.matches(engine, operation(world, proc), ContextFrame())

    def test_program_match(self, engine, world, proc):
        assert mm.ProgramMatch("/usr/bin/apache2").matches(engine, operation(world, proc), ContextFrame())
        assert not mm.ProgramMatch("/bin/sh").matches(engine, operation(world, proc), ContextFrame())


class TestStateMatch:
    def test_missing_key_never_matches(self, engine, world, proc):
        match = mm.StateMatch("k", 1, equal=True)
        assert not match.matches(engine, operation(world, proc), ContextFrame())
        match_ne = mm.StateMatch("k", 1, equal=False)
        assert not match_ne.matches(engine, operation(world, proc), ContextFrame())

    def test_equal(self, engine, world, proc):
        proc.pf_state["k"] = 1
        assert mm.StateMatch("k", 1).matches(engine, operation(world, proc), ContextFrame())
        assert not mm.StateMatch("k", 2).matches(engine, operation(world, proc), ContextFrame())

    def test_nequal_against_atom(self, engine, world, proc):
        op = operation(world, proc)
        proc.pf_state[0xBEEF] = world.lookup("/etc/passwd").ino
        match = mm.StateMatch("0xbeef", "C_INO", equal=False)
        assert not match.matches(engine, op, ContextFrame())
        proc.pf_state[0xBEEF] = 999999
        assert match.matches(engine, op, ContextFrame())


class TestCompareMatch:
    def test_owner_compare(self, engine, world, proc):
        op = operation(world, proc)
        op.extra["link_target_resolver"] = lambda: world.lookup("/etc/shadow")
        match = mm.CompareMatch("C_DAC_OWNER", "C_TGT_DAC_OWNER", equal=True)
        assert match.matches(engine, op, ContextFrame())  # both root-owned

    def test_unresolvable_never_matches(self, engine, world, proc):
        op = operation(world, proc)
        op.extra["link_target_resolver"] = lambda: None
        match = mm.CompareMatch("C_DAC_OWNER", "C_TGT_DAC_OWNER", equal=False)
        assert not match.matches(engine, op, ContextFrame())

    def test_literal_compare(self, engine, world, proc):
        assert mm.CompareMatch("5", "5").matches(engine, operation(world, proc), ContextFrame())
        assert not mm.CompareMatch("5", "6").matches(engine, operation(world, proc), ContextFrame())


class TestSignalAndArgsMatches:
    def test_signal_match_handled(self, engine, world, proc):
        from repro.proc.signals import SignalDisposition

        op = Operation(proc, Op.PROCESS_SIGNAL_DELIVERY)
        op.extra["signum"] = 14
        op.extra["disposition"] = SignalDisposition(handler_pc=0x1)
        assert mm.SignalMatch().matches(engine, op, ContextFrame())

    def test_signal_match_unhandled(self, engine, world, proc):
        from repro.proc.signals import SignalDisposition

        op = Operation(proc, Op.PROCESS_SIGNAL_DELIVERY)
        op.extra["signum"] = 14
        op.extra["disposition"] = SignalDisposition()
        assert not mm.SignalMatch().matches(engine, op, ContextFrame())

    def test_signal_match_unblockable(self, engine, world, proc):
        from repro.proc.signals import SignalDisposition

        op = Operation(proc, Op.PROCESS_SIGNAL_DELIVERY)
        op.extra["signum"] = 9  # SIGKILL
        op.extra["disposition"] = SignalDisposition(handler_pc=0x1)
        assert not mm.SignalMatch().matches(engine, op, ContextFrame())

    def test_signal_match_non_signal_op(self, engine, world, proc):
        assert not mm.SignalMatch().matches(engine, operation(world, proc), ContextFrame())

    def test_syscall_args_nr_prefix(self, engine, world, proc):
        op = Operation(proc, Op.SYSCALL_BEGIN, args=("sigreturn",))
        match = mm.SyscallArgsMatch(0, "NR_sigreturn")
        assert match.matches(engine, op, ContextFrame())

    def test_syscall_args_index_out_of_range(self, engine, world, proc):
        op = Operation(proc, Op.SYSCALL_BEGIN, args=())
        assert not mm.SyscallArgsMatch(0, "open").matches(engine, op, ContextFrame())

    def test_adversary_match(self, engine, world, proc):
        world.add_file("/tmp/loose", mode=0o666)
        loose = operation(world, proc, "/tmp/loose")
        tight = operation(world, proc, "/etc/passwd")
        match = mm.AdversaryMatch(writable=True)
        assert match.matches(engine, loose, ContextFrame())
        assert not match.matches(engine, tight, ContextFrame())
