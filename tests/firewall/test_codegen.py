"""Unit tests for the JITTED engine's per-rule codegen.

The differential harnesses pin JITTED's observable behavior to the
interpreted rungs; these tests aim at the generator itself — source
readability, specialization choices, rebuild-on-mutation, the traced
fallback, and the control-flow targets (JUMP / RETURN) that the flat
generated functions must re-encode.
"""

import pytest

from repro import errors
from repro.cli import main as pfctl
from repro.firewall.codegen import dump_codegen
from repro.firewall.engine import EngineConfig, ProcessFirewall
from repro.world import build_world, spawn_root_shell

LABEL_DROP = "pftables -A input -o FILE_OPEN -d shadow_t -j DROP"
SIGRETURN_STATE = (
    "pftables -A syscallbegin -m SYSCALL_ARGS --arg 0 --equal NR_sigreturn "
    "-j STATE --set --key sig --value 0"
)


def make_jitted(*rules):
    world = build_world()
    pf = ProcessFirewall(EngineConfig.jitted())
    world.attach_firewall(pf)
    for rule in rules:
        pf.install(rule)
    return world, pf


class TestGeneratedSource:
    def test_dump_is_readable_annotated_python(self):
        _world, pf = make_jitted(LABEL_DROP, SIGRETURN_STATE)
        source = dump_codegen(pf)
        assert "# pf-jit:" in source  # per-chain provenance headers
        assert "def _chain(operation, frame):" in source
        # Every rule is annotated with its pftables text.
        assert "-d shadow_t -j DROP" in source
        # The dump is genuinely compilable Python.
        compile(source, "<dump>", "exec")

    def test_syscall_args_literal_comparison_is_inlined(self):
        """A ``--equal NR_x`` match compiles to a direct tuple-index
        comparison: no Value.resolve call, no NR_ strip at run time."""
        _world, pf = make_jitted(SIGRETURN_STATE)
        source = dump_codegen(pf)
        assert "_args[0] != 'sigreturn'" in source

    def test_membership_tests_are_inlined_sets(self):
        _world, pf = make_jitted(LABEL_DROP)
        source = dump_codegen(pf)
        # ObjectMatch lowers to a bound-constant membership test, not a
        # call back into the interpreted match module.
        assert "_obj in " in source


class TestProgramLifecycle:
    def test_rule_mutation_rebuilds_the_program(self):
        world, pf = make_jitted(LABEL_DROP)
        root = spawn_root_shell(world)
        world.sys.open(root, "/etc/passwd")
        first = pf.jit_program()
        pf.install("pftables -A input -o FILE_OPEN -d etc_t -j DROP")
        with pytest.raises(errors.PFDenied):
            world.sys.open(root, "/etc/passwd")
        assert pf.jit_program() is not first

    def test_flush_discards_the_program(self):
        world, pf = make_jitted(LABEL_DROP)
        root = spawn_root_shell(world)
        world.sys.open(root, "/etc/passwd")
        assert pf._jit is not None
        pf.flush()
        assert pf._jit is None

    def test_traced_mediations_never_touch_generated_code(self):
        """Tracing wants the interpreted walker's rich per-rule events,
        so a traced firewall must not even build the program."""
        world, pf = make_jitted(LABEL_DROP)
        pf.enable_tracing()
        root = spawn_root_shell(world)
        world.sys.open(root, "/etc/passwd")
        with pytest.raises(errors.PFDenied):
            world.sys.open(root, "/etc/shadow")
        assert pf._jit is None
        assert pf.tracer.drops()  # and the traces are actually there


class TestControlFlow:
    """JUMP and RETURN re-encoded in the flat generated functions."""

    RULES = [
        "pftables -A input -o FILE_OPEN -d etc_t -j screen",
        "pftables -A screen -s unconfined_t -j RETURN",
        "pftables -A screen -j DROP",
        "pftables -A input -o FILE_OPEN -d shadow_t -j DROP",
    ]

    def _verdicts(self, config):
        world = build_world()
        pf = ProcessFirewall(config())
        world.attach_firewall(pf)
        for rule in self.RULES:
            pf.install(rule)
        root = spawn_root_shell(world)
        out = []
        for path in ("/etc/passwd", "/etc/shadow", "/etc/passwd"):
            try:
                fd = world.sys.open(root, path)
                world.sys.close(root, fd)
                out.append("allow")
            except errors.PFDenied:
                out.append("drop")
        return out, pf

    def test_jump_then_return_resumes_the_caller_chain(self):
        verdicts, pf = self._verdicts(EngineConfig.jitted)
        # /etc/passwd: jump into `screen`, RETURN for unconfined_t,
        # resume `input`, no shadow_t match -> allow.  /etc/shadow: the
        # trailing input rule drops.
        assert verdicts == ["allow", "drop", "allow"]
        assert pf._jit is not None and pf._jit.sources

    def test_control_flow_matches_interpreted_walker(self):
        assert self._verdicts(EngineConfig.jitted)[0] == self._verdicts(EngineConfig.optimized)[0]

    def test_jump_to_dropping_chain_drops(self):
        world, pf = make_jitted(
            "pftables -A input -o FILE_OPEN -d etc_t -j vet",
            "pftables -A vet -m ADVERSARY --readable -j DROP",
        )
        root = spawn_root_shell(world)
        with pytest.raises(errors.PFDenied):
            world.sys.open(root, "/etc/passwd")  # world-readable /etc file


def test_cli_explain_codegen(tmp_path, capsys):
    rules = tmp_path / "rules.pf"
    rules.write_text("-A input -o FILE_OPEN -d shadow_t -j DROP\n")
    assert pfctl(["explain", str(rules), "--codegen"]) == 0
    out = capsys.readouterr().out
    assert "# pf-jit:" in out and "def _chain" in out
