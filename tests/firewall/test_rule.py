"""Rule, chain, and rule-base structure."""

import pytest

from repro import errors
from repro.firewall import matches as mm
from repro.firewall import targets as tg
from repro.firewall.context import ContextField
from repro.firewall.pftables import parse_rule
from repro.firewall.rule import Chain, Rule, RuleBase, Table
from repro.security.lsm import Op


def rule(text):
    return parse_rule(text).rule


class TestRule:
    def test_required_fields_union(self):
        r = rule("pftables -s SYSHIGH -d tmp_t -i 0x10 -p /bin/x -o FILE_OPEN -j DROP")
        fields = r.required_fields
        assert fields & ContextField.SUBJECT_LABEL
        assert fields & ContextField.OBJECT_LABEL
        assert fields & ContextField.ENTRYPOINT

    def test_entrypoint_key(self):
        r = rule("pftables -i 0x10 -p /bin/x -o FILE_OPEN -j DROP")
        assert r.entrypoint_key() == ("/bin/x", 0x10)
        assert rule("pftables -o FILE_OPEN -j DROP").entrypoint_key() is None

    def test_op_filter(self):
        assert rule("pftables -o FILE_OPEN -j DROP").op_filter() is Op.FILE_OPEN
        assert rule("pftables -d tmp_t -j DROP").op_filter() is None

    def test_render_contains_all_parts(self):
        r = rule("pftables -o FILE_OPEN -d tmp_t -j DROP")
        rendered = r.render()
        assert "-o FILE_OPEN" in rendered and "-d tmp_t" in rendered and "-j DROP" in rendered


class TestChain:
    def test_reindex_preamble_vs_buckets(self):
        chain = Chain("input")
        plain = rule("pftables -o FILE_OPEN -j DROP")
        pinned = rule("pftables -i 0x10 -p /bin/x -o FILE_OPEN -j DROP")
        chain.append(plain)
        chain.append(pinned)
        assert chain.preamble == [plain]
        assert chain.by_entrypoint[("/bin/x", 0x10)] == [pinned]

    def test_relevant_ops_collected(self):
        chain = Chain("input")
        chain.append(rule("pftables -o FILE_OPEN -j DROP"))
        chain.append(rule("pftables -o FILE_READ -j DROP"))
        assert chain.relevant_ops == {Op.FILE_OPEN, Op.FILE_READ}

    def test_rule_without_op_wildcards_relevance(self):
        chain = Chain("input")
        chain.append(rule("pftables -d tmp_t -j DROP"))
        assert chain.relevant_ops is None

    def test_insert_positions(self):
        chain = Chain("input")
        first = rule("pftables -o FILE_OPEN -j DROP")
        second = rule("pftables -o FILE_READ -j DROP")
        chain.append(first)
        chain.insert(second, 0)
        assert chain.rules == [second, first]

    def test_delete_reindexes(self):
        chain = Chain("input")
        r = rule("pftables -i 0x10 -p /bin/x -o FILE_OPEN -j DROP")
        chain.append(r)
        chain.delete(r)
        assert chain.by_entrypoint == {}

    def test_flush(self):
        chain = Chain("input")
        chain.append(rule("pftables -o FILE_OPEN -j DROP"))
        chain.flush()
        assert len(chain) == 0


class TestTableAndBase:
    def test_builtin_chains_exist(self):
        table = Table("filter")
        for name in ("input", "output", "syscallbegin", "create"):
            assert table.chain(name).builtin

    def test_unknown_chain_raises_without_create(self):
        with pytest.raises(errors.EINVAL):
            Table("filter").chain("ghost")

    def test_create_user_chain(self):
        table = Table("filter")
        chain = table.chain("mine", create=True)
        assert not chain.builtin

    def test_rulebase_required_fields_recomputed(self):
        base = RuleBase()
        base.install("filter", "input", rule("pftables -s SYSHIGH -o FILE_OPEN -j DROP"))
        assert base.required_fields & ContextField.SUBJECT_LABEL
        base.install("filter", "input", rule("pftables -d tmp_t -o FILE_OPEN -j DROP"))
        assert base.required_fields & ContextField.OBJECT_LABEL

    def test_rulebase_remove(self):
        base = RuleBase()
        r = rule("pftables -s SYSHIGH -o FILE_OPEN -j DROP")
        base.install("filter", "input", r)
        base.remove("filter", "input", r)
        assert base.rule_count() == 0
        assert base.required_fields == ContextField(0)

    def test_unknown_table_raises(self):
        with pytest.raises(errors.EINVAL):
            RuleBase().table("ghost")
