"""Rule, chain, and rule-base structure."""

import pytest

from repro import errors
from repro.firewall import matches as mm
from repro.firewall import targets as tg
from repro.firewall.context import ContextField
from repro.firewall.pftables import parse_rule
from repro.firewall.rule import Chain, Rule, RuleBase, Table
from repro.security.lsm import Op


def rule(text):
    return parse_rule(text).rule


class TestRule:
    def test_required_fields_union(self):
        r = rule("pftables -s SYSHIGH -d tmp_t -i 0x10 -p /bin/x -o FILE_OPEN -j DROP")
        fields = r.required_fields
        assert fields & ContextField.SUBJECT_LABEL
        assert fields & ContextField.OBJECT_LABEL
        assert fields & ContextField.ENTRYPOINT

    def test_entrypoint_key(self):
        r = rule("pftables -i 0x10 -p /bin/x -o FILE_OPEN -j DROP")
        assert r.entrypoint_key() == ("/bin/x", 0x10)
        assert rule("pftables -o FILE_OPEN -j DROP").entrypoint_key() is None

    def test_op_filter(self):
        assert rule("pftables -o FILE_OPEN -j DROP").op_filter() is Op.FILE_OPEN
        assert rule("pftables -d tmp_t -j DROP").op_filter() is None

    def test_render_contains_all_parts(self):
        r = rule("pftables -o FILE_OPEN -d tmp_t -j DROP")
        rendered = r.render()
        assert "-o FILE_OPEN" in rendered and "-d tmp_t" in rendered and "-j DROP" in rendered


class TestChain:
    def test_reindex_preamble_vs_buckets(self):
        chain = Chain("input")
        plain = rule("pftables -o FILE_OPEN -j DROP")
        pinned = rule("pftables -i 0x10 -p /bin/x -o FILE_OPEN -j DROP")
        chain.append(plain)
        chain.append(pinned)
        assert chain.preamble == [plain]
        assert chain.by_entrypoint[("/bin/x", 0x10)] == [pinned]

    def test_relevant_ops_collected(self):
        chain = Chain("input")
        chain.append(rule("pftables -o FILE_OPEN -j DROP"))
        chain.append(rule("pftables -o FILE_READ -j DROP"))
        assert chain.relevant_ops == {Op.FILE_OPEN, Op.FILE_READ}

    def test_rule_without_op_wildcards_relevance(self):
        chain = Chain("input")
        chain.append(rule("pftables -d tmp_t -j DROP"))
        assert chain.relevant_ops is None

    def test_insert_positions(self):
        chain = Chain("input")
        first = rule("pftables -o FILE_OPEN -j DROP")
        second = rule("pftables -o FILE_READ -j DROP")
        chain.append(first)
        chain.insert(second, 0)
        assert chain.rules == [second, first]

    def test_delete_reindexes(self):
        chain = Chain("input")
        r = rule("pftables -i 0x10 -p /bin/x -o FILE_OPEN -j DROP")
        chain.append(r)
        chain.delete(r)
        assert chain.by_entrypoint == {}

    def test_flush(self):
        chain = Chain("input")
        chain.append(rule("pftables -o FILE_OPEN -j DROP"))
        chain.flush()
        assert len(chain) == 0


class TestReindexTransitions:
    """Delete/flush/wildcard transitions must keep every derived index
    (``relevant_ops``, ``ept_ops``, ``by_entrypoint``, the compiled
    dispatch memo) consistent with ``rules``."""

    def test_delete_restores_specific_relevant_ops(self):
        chain = Chain("input")
        specific = rule("pftables -o FILE_OPEN -j DROP")
        wildcard = rule("pftables -d tmp_t -j DROP")
        chain.append(specific)
        chain.append(wildcard)
        assert chain.relevant_ops is None
        chain.delete(wildcard)
        assert chain.relevant_ops == {Op.FILE_OPEN}

    def test_delete_last_bucket_rule_clears_key_and_ept_ops(self):
        chain = Chain("input")
        pinned = rule("pftables -i 0x10 -p /bin/x -o FILE_OPEN -j DROP")
        chain.append(pinned)
        assert chain.ept_ops == {Op.FILE_OPEN}
        chain.delete(pinned)
        assert chain.by_entrypoint == {}
        assert chain.ept_ops == set()
        assert chain.relevant_ops == set()

    def test_wildcard_bucket_rule_wildcards_ept_ops(self):
        chain = Chain("input")
        chain.append(rule("pftables -i 0x10 -p /bin/x -d tmp_t -j DROP"))
        assert chain.ept_ops is None
        assert chain.relevant_ops is None

    def test_ept_ops_narrow_again_after_wildcard_delete(self):
        chain = Chain("input")
        narrow = rule("pftables -i 0x10 -p /bin/x -o FILE_OPEN -j DROP")
        wide = rule("pftables -i 0x20 -p /bin/x -d tmp_t -j DROP")
        chain.append(narrow)
        chain.append(wide)
        assert chain.ept_ops is None
        chain.delete(wide)
        assert chain.ept_ops == {Op.FILE_OPEN}
        assert list(chain.by_entrypoint) == [("/bin/x", 0x10)]

    def test_flush_resets_all_indexes(self):
        chain = Chain("input")
        chain.append(rule("pftables -o FILE_OPEN -j DROP"))
        chain.append(rule("pftables -i 0x10 -p /bin/x -j DROP"))
        chain.dispatch(Op.FILE_OPEN)  # populate the memo
        chain.flush()
        assert chain.preamble == []
        assert chain.by_entrypoint == {}
        assert chain.relevant_ops == set()
        assert chain.ept_ops == set()
        assert chain.preamble_by_op == {}
        assert chain._compiled == {}

    def test_preamble_ops_do_not_leak_into_ept_ops(self):
        chain = Chain("input")
        chain.append(rule("pftables -o FILE_READ -j DROP"))
        chain.append(rule("pftables -i 0x10 -p /bin/x -o FILE_OPEN -j DROP"))
        assert chain.ept_ops == {Op.FILE_OPEN}
        assert chain.relevant_ops == {Op.FILE_READ, Op.FILE_OPEN}


class TestCompiledDispatch:
    def test_dispatch_filters_and_orders(self):
        chain = Chain("input")
        open_rule = rule("pftables -o FILE_OPEN -j DROP")
        any_rule = rule("pftables -d tmp_t -j DROP")
        read_rule = rule("pftables -o FILE_READ -j DROP")
        pinned = rule("pftables -i 0x10 -p /bin/x -o FILE_OPEN -j DROP")
        for r in (open_rule, any_rule, read_rule, pinned):
            chain.append(r)
        assert chain.dispatch(Op.FILE_OPEN) == (open_rule, any_rule)
        assert chain.dispatch(Op.FILE_READ) == (any_rule, read_rule)
        assert chain.dispatch(Op.FILE_OPEN, ("/bin/x", 0x10)) == (
            open_rule,
            any_rule,
            pinned,
        )

    def test_dispatch_memo_invalidated_by_mutation(self):
        chain = Chain("input")
        first = rule("pftables -o FILE_OPEN -j DROP")
        chain.append(first)
        assert chain.dispatch(Op.FILE_OPEN) == (first,)
        second = rule("pftables -o FILE_OPEN -d tmp_t -j DROP")
        chain.append(second)
        assert chain.dispatch(Op.FILE_OPEN) == (first, second)

    def test_dispatch_honours_link_read_alias(self):
        chain = Chain("input")
        lnk = rule("pftables -o LNK_FILE_READ -j DROP")
        chain.append(lnk)
        assert chain.dispatch(Op.LINK_READ) == (lnk,)
        assert chain.dispatch(Op.FILE_OPEN) == ()

    def test_rulebase_stamp_changes_on_every_mutation(self):
        base = RuleBase()
        stamps = {base.stamp}
        r = rule("pftables -o FILE_OPEN -j DROP")
        base.install("filter", "input", r)
        stamps.add(base.stamp)
        base.remove("filter", "input", r)
        stamps.add(base.stamp)
        assert len(stamps) == 3
        # Distinct instances never share a stamp, even at version 0.
        assert RuleBase().stamp != RuleBase().stamp


class TestTableAndBase:
    def test_builtin_chains_exist(self):
        table = Table("filter")
        for name in ("input", "output", "syscallbegin", "create"):
            assert table.chain(name).builtin

    def test_unknown_chain_raises_without_create(self):
        with pytest.raises(errors.EINVAL):
            Table("filter").chain("ghost")

    def test_create_user_chain(self):
        table = Table("filter")
        chain = table.chain("mine", create=True)
        assert not chain.builtin

    def test_rulebase_required_fields_recomputed(self):
        base = RuleBase()
        base.install("filter", "input", rule("pftables -s SYSHIGH -o FILE_OPEN -j DROP"))
        assert base.required_fields & ContextField.SUBJECT_LABEL
        base.install("filter", "input", rule("pftables -d tmp_t -o FILE_OPEN -j DROP"))
        assert base.required_fields & ContextField.OBJECT_LABEL

    def test_rulebase_remove(self):
        base = RuleBase()
        r = rule("pftables -s SYSHIGH -o FILE_OPEN -j DROP")
        base.install("filter", "input", r)
        base.remove("filter", "input", r)
        assert base.rule_count() == 0
        assert base.required_fields == ContextField(0)

    def test_unknown_table_raises(self):
        with pytest.raises(errors.EINVAL):
            RuleBase().table("ghost")
