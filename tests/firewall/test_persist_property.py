"""Property-based save/restore round-trips for arbitrary rule bases."""

from hypothesis import given, settings, strategies as st

from repro.firewall.engine import ProcessFirewall
from repro.firewall.persist import load_rules, save_rules

from tests.firewall.test_pftables_property import rule_line


@settings(max_examples=60, deadline=None)
@given(lines=st.lists(rule_line(), max_size=8))
def test_save_load_save_is_a_fixed_point(lines):
    firewall = ProcessFirewall()
    for line in lines:
        try:
            firewall.install(line)
        except Exception:
            # mangle-DROP combinations are rejected by design; the
            # strategy doesn't know table semantics.
            continue
    saved = save_rules(firewall)
    clone = ProcessFirewall()
    load_rules(clone, saved)
    assert save_rules(clone) == saved
    assert clone.rules.rule_count() == firewall.rules.rule_count()


@settings(max_examples=40, deadline=None)
@given(lines=st.lists(rule_line(), min_size=1, max_size=6))
def test_restored_base_has_same_required_fields(lines):
    firewall = ProcessFirewall()
    firewall.install_all(lines)
    clone = ProcessFirewall()
    load_rules(clone, save_rules(firewall))
    assert clone.rules.required_fields == firewall.rules.required_fields
