"""Property-based save/restore round-trips for arbitrary rule bases."""

from hypothesis import given, settings, strategies as st

from repro import errors
from repro.firewall.engine import ProcessFirewall
from repro.firewall.persist import load_rules, save_rules
from repro.security.lsm import Op, Operation
from repro.world import build_world

from tests.firewall.test_pftables_property import rule_line

#: Mangle-table lines (verdictless targets only — mangle rejects DROP).
MANGLE_LINES = st.sampled_from(
    [
        "pftables -t mangle -A input -o FILE_OPEN -j LOG",
        "pftables -t mangle -A input -j STATE --set --key 0x7 --value C_INO",
        "pftables -t mangle -A input -o DIR_SEARCH -j ACCEPT",
    ]
)

#: Call-stack shapes for the verdict matrix: no frame, and two distinct
#: entrypoints the rule strategy can also name.
MATRIX_FRAMES = [(), (0x40,), (0x80,)]


def _verdict_matrix(firewall):
    """Mediate every Op from a few entrypoints; return verdict strings.

    Operations are synthesized directly (no syscall layer) so the
    matrix covers ops no workload conveniently reaches.
    """
    world = build_world()
    world.attach_firewall(firewall)
    inode = world.lookup("/etc/passwd")
    out = []
    for frames in MATRIX_FRAMES:
        proc = world.spawn("m", uid=0, label="unconfined_t", binary_path="/bin/sh")
        for offset in frames:
            proc.call(proc.binary, offset)
        for op in sorted(Op, key=lambda o: o.value):
            operation = Operation(
                proc, op, obj=inode, path="/etc/passwd", syscall="matrix", args=("matrix", 0)
            )
            try:
                firewall.mediate(operation)
                out.append("allow")
            except errors.PFDenied:
                out.append("drop")
    return out


@settings(max_examples=60, deadline=None)
@given(lines=st.lists(rule_line(), max_size=8))
def test_save_load_save_is_a_fixed_point(lines):
    firewall = ProcessFirewall()
    for line in lines:
        try:
            firewall.install(line)
        except Exception:
            # mangle-DROP combinations are rejected by design; the
            # strategy doesn't know table semantics.
            continue
    saved = save_rules(firewall)
    clone = ProcessFirewall()
    load_rules(clone, saved)
    assert save_rules(clone) == saved
    assert clone.rules.rule_count() == firewall.rules.rule_count()


@settings(max_examples=40, deadline=None)
@given(
    lines=st.lists(rule_line(), min_size=1, max_size=6),
    mangle_lines=st.lists(MANGLE_LINES, max_size=2),
)
def test_round_trip_preserves_every_verdict(lines, mangle_lines):
    """save → load yields identical verdicts for all ops × entrypoints,
    including user chains and mangle rules."""
    firewall = ProcessFirewall()
    for line in lines + mangle_lines:
        try:
            firewall.install(line)
        except Exception:
            continue  # combinations the rule language rejects
    clone = ProcessFirewall()
    load_rules(clone, save_rules(firewall))
    assert save_rules(clone) == save_rules(firewall)
    assert _verdict_matrix(firewall) == _verdict_matrix(clone)


@settings(max_examples=40, deadline=None)
@given(lines=st.lists(rule_line(), min_size=1, max_size=6))
def test_restored_base_has_same_required_fields(lines):
    firewall = ProcessFirewall()
    firewall.install_all(lines)
    clone = ProcessFirewall()
    load_rules(clone, save_rules(firewall))
    assert clone.rules.required_fields == firewall.rules.required_fields
