"""flush() must leave no stale decision state behind.

The regression pinned here: ``flush()`` replaces the rule base and
zeroes counters, but the engine also keeps derived decision state —
the per-op chain memo and per-process negative-decision caches.  If
either survived a flush and was consulted against the *new* rule base,
a verdict memoized under the old rules could leak through (a stale
default-allow after stricter rules were installed is a security hole,
not just a stats bug).
"""

import pytest

from repro import errors
from repro.firewall.engine import EngineConfig, ProcessFirewall
from repro.world import build_world, spawn_root_shell


def _world(config=None):
    world = build_world()
    firewall = ProcessFirewall(config or EngineConfig.optimized())
    world.attach_firewall(firewall)
    shell = spawn_root_shell(world)
    return world, firewall, shell


class TestVerdictsAfterFlush:
    def test_flush_disarms_old_rules(self):
        world, firewall, shell = _world()
        firewall.install("pftables -A input -o FILE_OPEN -d shadow_t -j DROP")
        with pytest.raises(errors.PFDenied):
            world.sys.open(shell, "/etc/shadow")
        firewall.flush()
        fd = world.sys.open(shell, "/etc/shadow")
        world.sys.close(shell, fd)

    def test_no_stale_decision_cache_after_flush(self):
        """The critical direction: a memoized default-allow must not
        survive a flush + stricter reinstall."""
        world, firewall, shell = _world(EngineConfig.compiled())
        # Subject-only rule that misses for the shell: the allow
        # verdict is memoized in the per-process decision cache.
        firewall.install("pftables -A input -o FILE_OPEN -s sshd_t -j DROP")
        for _ in range(3):
            fd = world.sys.open(shell, "/etc/passwd")
            world.sys.close(shell, fd)
        assert firewall.stats.decision_cache_hits > 0
        assert shell.pf_decision_cache is not None
        firewall.flush()
        # Stricter rules: the same access must now be denied even
        # though the process still carries the old cache tuple.
        firewall.install(
            "pftables -A input -o FILE_OPEN -s unconfined_t -j DROP")
        with pytest.raises(errors.PFDenied):
            world.sys.open(shell, "/etc/passwd")

    def test_no_stale_chain_memo_after_flush(self):
        world, firewall, shell = _world()
        # No FILE_OPEN rules: the op-index memo learns "no relevant
        # chains" for FILE_OPEN (fast path).
        firewall.install("pftables -A input -o FILE_READ -d shadow_t -j DROP")
        fd = world.sys.open(shell, "/etc/passwd")
        world.sys.close(shell, fd)
        firewall.flush()
        assert firewall._chain_memo == {}
        assert firewall._chain_memo_stamp is None
        firewall.install("pftables -A input -o FILE_OPEN -d etc_t -j DROP")
        with pytest.raises(errors.PFDenied):
            world.sys.open(shell, "/etc/passwd")


class TestHistoryAfterFlush:
    def test_flush_clears_audit_metrics_and_traces(self):
        world, firewall, shell = _world()
        firewall.install(
            "pftables -A input -o FILE_OPEN -d shadow_t -j LOG --prefix s")
        firewall.install("pftables -A input -o FILE_OPEN -d shadow_t -j DROP")
        firewall.metrics.enable()
        tracer = firewall.enable_tracing()
        with pytest.raises(errors.PFDenied):
            world.sys.open(shell, "/etc/shadow")
        assert firewall.log_records and firewall.metrics.counters() and len(tracer)
        firewall.flush()
        assert firewall.log_records == []
        assert len(firewall.audit) == 0
        assert firewall.metrics.counters() == []
        assert firewall.metrics.phases() == {}
        assert len(tracer) == 0
        # The registry's enabled flag and the tracer itself survive:
        # flush resets history, not instrumentation choices.
        assert firewall.metrics.enabled is True
        assert firewall.tracer is tracer

    def test_stats_reset_alone_never_changes_decisions(self):
        """EngineStats.reset() is pure bookkeeping: verdicts before and
        after must be identical (the reset()/flush() asymmetry)."""
        world, firewall, shell = _world(EngineConfig.compiled())
        firewall.install("pftables -A input -o FILE_OPEN -d shadow_t -j DROP")
        with pytest.raises(errors.PFDenied):
            world.sys.open(shell, "/etc/shadow")
        firewall.stats.reset()
        assert firewall.stats.invocations == 0
        with pytest.raises(errors.PFDenied):
            world.sys.open(shell, "/etc/shadow")
        fd = world.sys.open(shell, "/etc/passwd")
        world.sys.close(shell, fd)
