"""Context fields, frames, and context modules."""

import pytest

from repro.firewall.context import ContextField, ContextFrame, SYSCALL_SCOPED, field_scope
from repro.firewall.modules.registry import CONTEXT_MODULES, collect_field
from repro.proc.stack import BinaryImage
from repro.security.lsm import Op, Operation
from repro.world import build_world


@pytest.fixture
def world():
    return build_world()


@pytest.fixture
def proc(world):
    return world.spawn("prog", uid=0, label="httpd_t", binary_path="/usr/bin/apache2")


def file_operation(world, proc, path="/etc/passwd", op=Op.FILE_OPEN):
    return Operation(proc, op, obj=world.lookup(path), path=path)


class TestFrame:
    def test_bitmask_tracks_collection(self):
        frame = ContextFrame()
        assert not frame.has(ContextField.ENTRYPOINT)
        frame.put(ContextField.ENTRYPOINT, ())
        assert frame.has(ContextField.ENTRYPOINT)
        assert frame.get(ContextField.ENTRYPOINT) == ()

    def test_scopes(self):
        assert field_scope(ContextField.ENTRYPOINT) == "syscall"
        assert field_scope(ContextField.OBJECT_LABEL) == "operation"
        assert field_scope(ContextField.RESOURCE_ID) == "operation"

    def test_syscall_scoped_extraction(self):
        frame = ContextFrame()
        frame.put(ContextField.ENTRYPOINT, (("/x", 1),))
        frame.put(ContextField.OBJECT_LABEL, "tmp_t")
        cached = frame.syscall_scoped_values()
        assert ContextField.ENTRYPOINT in cached
        assert ContextField.OBJECT_LABEL not in cached

    def test_absorb_cached(self):
        frame = ContextFrame()
        frame.absorb_cached({ContextField.PROGRAM: "/bin/sh"})
        assert frame.get(ContextField.PROGRAM) == "/bin/sh"


class TestModules:
    def test_every_field_has_module(self):
        for field in ContextField:
            assert field in CONTEXT_MODULES

    def test_subject_label(self, world, proc):
        op = file_operation(world, proc)
        assert CONTEXT_MODULES[ContextField.SUBJECT_LABEL].collect(op, world) == "httpd_t"

    def test_object_label(self, world, proc):
        op = file_operation(world, proc)
        assert CONTEXT_MODULES[ContextField.OBJECT_LABEL].collect(op, world) == "etc_t"

    def test_resource_id(self, world, proc):
        op = file_operation(world, proc)
        dev, ino = CONTEXT_MODULES[ContextField.RESOURCE_ID].collect(op, world)
        assert (dev, ino) == world.lookup("/etc/passwd").identity()

    def test_resource_id_for_signal(self, world, proc):
        op = Operation(proc, Op.PROCESS_SIGNAL_DELIVERY)
        op.extra["signum"] = 14
        assert CONTEXT_MODULES[ContextField.RESOURCE_ID].collect(op, world) == ("signal", 14)

    def test_program(self, world, proc):
        op = file_operation(world, proc)
        assert CONTEXT_MODULES[ContextField.PROGRAM].collect(op, world) == "/usr/bin/apache2"

    def test_entrypoint_innermost_first(self, world, proc):
        proc.call(proc.binary, 0x100, "outer")
        proc.call(proc.binary, 0x200, "inner")
        op = file_operation(world, proc)
        entries = CONTEXT_MODULES[ContextField.ENTRYPOINT].collect(op, world)
        assert entries[0] == ("/usr/bin/apache2", 0x200)
        assert entries[1] == ("/usr/bin/apache2", 0x100)

    def test_entrypoint_skips_forged_frames(self, world, proc):
        proc.stack.push(0xDEAD)  # no image
        op = file_operation(world, proc)
        assert CONTEXT_MODULES[ContextField.ENTRYPOINT].collect(op, world) == ()

    def test_entrypoint_corrupt_stack_graceful(self, world, proc):
        """§4.4: a corrupted stack yields empty context, not a crash."""
        proc.call(proc.binary, 0x100)
        proc.stack.corrupt_below = 0
        op = file_operation(world, proc)
        assert CONTEXT_MODULES[ContextField.ENTRYPOINT].collect(op, world) == ()

    def test_entrypoint_infinite_stack_bounded(self, world, proc):
        proc.call(proc.binary, 0x100)
        proc.stack.infinite = True
        op = file_operation(world, proc)
        entries = CONTEXT_MODULES[ContextField.ENTRYPOINT].collect(op, world)
        assert len(entries) <= proc.stack.MAX_UNWIND_FRAMES

    def test_adversary_writable(self, world, proc):
        world.add_file("/tmp/loose", mode=0o666)
        op = file_operation(world, proc, "/tmp/loose")
        assert CONTEXT_MODULES[ContextField.ADV_WRITABLE].collect(op, world) is True
        op2 = file_operation(world, proc, "/etc/passwd")
        assert CONTEXT_MODULES[ContextField.ADV_WRITABLE].collect(op2, world) is False

    def test_tgt_dac_owner_uses_resolver(self, world, proc):
        op = file_operation(world, proc)
        op.extra["link_target_resolver"] = lambda: world.lookup("/etc/passwd")
        assert CONTEXT_MODULES[ContextField.TGT_DAC_OWNER].collect(op, world) == 0

    def test_tgt_dac_owner_without_resolver(self, world, proc):
        op = file_operation(world, proc)
        assert CONTEXT_MODULES[ContextField.TGT_DAC_OWNER].collect(op, world) is None

    def test_collect_field_records_stats(self, world, proc):
        from repro.firewall.engine import EngineStats

        stats = EngineStats()
        frame = ContextFrame()
        collect_field(ContextField.ENTRYPOINT, file_operation(world, proc), world, frame, stats)
        assert frame.has(ContextField.ENTRYPOINT)
        assert stats.context_collections["ENTRYPOINT"] == 1
        assert stats.context_cost >= CONTEXT_MODULES[ContextField.ENTRYPOINT].cost
