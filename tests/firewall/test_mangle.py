"""Mangle table: mark in mangle, decide in filter."""

import pytest

from repro import errors
from repro.firewall.engine import ProcessFirewall
from repro.world import build_world, spawn_root_shell


@pytest.fixture
def world():
    return build_world()


@pytest.fixture
def firewall(world):
    pf = ProcessFirewall()
    world.attach_firewall(pf)
    return pf


class TestMangleSemantics:
    def test_mangle_runs_before_filter(self, world, firewall):
        """A mark set by mangle is visible to the filter rule mediating
        the very same operation."""
        firewall.install(
            "pftables -t mangle -A input -o FILE_OPEN -d shadow_t "
            "-j STATE --set --key 'tainted' --value 1"
        )
        firewall.install(
            "pftables -A input -o FILE_OPEN -m STATE --key 'tainted' --cmp 1 -j DROP"
        )
        root = spawn_root_shell(world)
        world.sys.open(root, "/etc/passwd")  # not marked: allowed
        with pytest.raises(errors.PFDenied):
            world.sys.open(root, "/etc/shadow")

    def test_mangle_drop_rejected_at_install(self, firewall):
        with pytest.raises(errors.EINVAL):
            firewall.install("pftables -t mangle -A input -o FILE_OPEN -j DROP")

    def test_mangle_accept_does_not_skip_filter(self, world, firewall):
        firewall.install("pftables -t mangle -A input -o FILE_OPEN -j ACCEPT")
        firewall.install("pftables -A input -o FILE_OPEN -d shadow_t -j DROP")
        root = spawn_root_shell(world)
        with pytest.raises(errors.PFDenied):
            world.sys.open(root, "/etc/shadow")

    def test_mangle_accept_skips_later_mangle_rules(self, world, firewall):
        firewall.install("pftables -t mangle -A input -o FILE_OPEN -j ACCEPT")
        firewall.install(
            "pftables -t mangle -A input -o FILE_OPEN -j STATE --set --key 'mark' --value 1"
        )
        root = spawn_root_shell(world)
        world.sys.open(root, "/etc/passwd")
        assert "mark" not in root.pf_state

    def test_mangle_log_collects(self, world, firewall):
        firewall.install("pftables -t mangle -A input -o FILE_OPEN -j LOG --prefix mg")
        root = spawn_root_shell(world)
        world.sys.open(root, "/etc/passwd")
        assert any(r["prefix"] == "mg" for r in firewall.log_records)

    def test_mangle_alone_never_denies(self, world, firewall):
        firewall.install(
            "pftables -t mangle -A input -o FILE_OPEN -j STATE --set --key 'k' --value 1"
        )
        root = spawn_root_shell(world)
        world.sys.open(root, "/etc/shadow")
        assert firewall.stats.drops == 0

    def test_save_restore_preserves_mangle(self, world, firewall):
        from repro.firewall.persist import load_rules, save_rules

        firewall.install(
            "pftables -t mangle -A input -o FILE_OPEN -j STATE --set --key 'k' --value 1"
        )
        saved = save_rules(firewall)
        assert "*mangle" in saved
        clone = ProcessFirewall()
        load_rules(clone, saved)
        assert clone.rules.table("mangle").chain("input").rules
