"""Target modules."""

import pytest

from repro.firewall import targets as tg
from repro.firewall.context import ContextFrame
from repro.firewall.engine import EngineConfig, ProcessFirewall
from repro.security.lsm import Op, Operation
from repro.world import build_world


@pytest.fixture
def world():
    return build_world()


@pytest.fixture
def engine(world):
    pf = ProcessFirewall(EngineConfig.optimized())
    world.attach_firewall(pf)
    return pf


@pytest.fixture
def proc(world):
    return world.spawn("p", uid=0, label="unconfined_t", binary_path="/bin/sh")


def op(world, proc, path="/etc/passwd"):
    return Operation(proc, Op.FILE_OPEN, obj=world.lookup(path), path=path)


class TestVerdictTargets:
    def test_drop(self, engine, world, proc):
        assert tg.DropTarget().execute(engine, op(world, proc), ContextFrame()) == (tg.DROP, None)

    def test_accept(self, engine, world, proc):
        assert tg.AcceptTarget().execute(engine, op(world, proc), ContextFrame()) == (tg.ACCEPT, None)

    def test_return(self, engine, world, proc):
        assert tg.ReturnTarget().execute(engine, op(world, proc), ContextFrame()) == (tg.RETURN, None)

    def test_renders(self):
        assert tg.DropTarget().render() == "-j DROP"
        assert tg.AcceptTarget().render() == "-j ACCEPT"


class TestStateTarget:
    def test_sets_literal(self, engine, world, proc):
        target = tg.StateTarget("'sig'", "1")
        verdict, _ = target.execute(engine, op(world, proc), ContextFrame())
        assert verdict == tg.CONTINUE
        assert proc.pf_state["sig"] == 1

    def test_sets_atom_value(self, engine, world, proc):
        target = tg.StateTarget("0xbeef", "C_INO")
        target.execute(engine, op(world, proc), ContextFrame())
        assert proc.pf_state[0xBEEF] == world.lookup("/etc/passwd").ino

    def test_required_fields_cover_atoms(self):
        from repro.firewall.context import ContextField

        target = tg.StateTarget("k", "C_INO")
        assert target.required_fields & ContextField.RESOURCE_ID

    def test_overwrites(self, engine, world, proc):
        tg.StateTarget("k", "1").execute(engine, op(world, proc), ContextFrame())
        tg.StateTarget("k", "2").execute(engine, op(world, proc), ContextFrame())
        assert proc.pf_state["k"] == 2


class TestLogTarget:
    def test_record_shape(self, engine, world, proc):
        proc.call(proc.binary, 0x77)
        target = tg.LogTarget(prefix="x")
        verdict, _ = target.execute(engine, op(world, proc), ContextFrame())
        assert verdict == tg.CONTINUE
        record = engine.log_records[-1]
        for key in ("pid", "comm", "program", "entrypoint", "op", "object_label", "resource_id",
                    "adv_writable", "adv_readable", "path", "time", "prefix"):
            assert key in record

    def test_json_serializable(self, engine, world, proc):
        import json

        tg.LogTarget().execute(engine, op(world, proc), ContextFrame())
        assert json.dumps(engine.log_records[-1])


class TestJumpTarget:
    def test_lowercases_chain(self, engine, world, proc):
        target = tg.JumpTarget("SIGNAL_CHAIN")
        assert target.execute(engine, op(world, proc), ContextFrame()) == (tg.JUMP, "signal_chain")
