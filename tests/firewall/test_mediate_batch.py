"""Unit coverage for ``engine.mediate_batch`` and its helpers.

The byte-identity contract itself is hammered by the randomized
differential suite (``tests/integration/test_differential_batch.py``);
these tests pin the mechanics: which records bulk, which fall back,
and the stats/preset/serialization helpers the parallel driver uses.
"""

import pytest

from repro.firewall.engine import (
    EngineConfig,
    EngineStats,
    ProcessFirewall,
    record_mutates,
)
from repro.rulesets.generated import install_full_rulebase
from repro.parallel.batch import (
    record_mediations,
    replay_mediations,
    reset_mediation_state,
)
from repro.world import build_world, spawn_root_shell
from repro.vfs.file import OpenFlags


def _world(config=None):
    kernel = build_world()
    kernel.audit_enabled = False
    firewall = ProcessFirewall(config or EngineConfig.jitted())
    kernel.attach_firewall(firewall)
    install_full_rulebase(firewall)
    return kernel, firewall, spawn_root_shell(kernel)


def _capture(kernel, firewall, workload):
    with record_mediations(firewall) as operations:
        workload(kernel)
    return operations


def _observables(firewall):
    return (
        firewall.stats.as_dict(),
        [dict(r) for r in firewall.log_records],
        [e.record for e in firewall.audit.entries(kind="drop")],
    )


def _differential(firewall, operations):
    """Per-call vs batched over the same stream; returns the verdicts."""
    reset_mediation_state(firewall)
    percall = replay_mediations(firewall, operations, batched=False)
    percall_obs = _observables(firewall)
    reset_mediation_state(firewall)
    batched = replay_mediations(firewall, operations, batched=True)
    batched_obs = _observables(firewall)
    assert batched == percall
    assert batched_obs == percall_obs
    return percall


def _count_mediate_calls(firewall, operations):
    """How many records mediate_batch routes through mediate()."""
    calls = []
    with record_mediations(firewall) as calls:
        reset_mediation_state(firewall)
        firewall.mediate_batch(operations)
    return len(calls)


def test_disabled_engine_allows_everything_without_counting():
    kernel, firewall, root = _world(EngineConfig.disabled())
    with record_mediations(firewall) as operations:
        kernel.sys.stat(root, "/etc/passwd")
    # Disabled engines mediate nothing, so capture happens at the
    # kernel hook but the stream reaching mediate_batch may be empty;
    # synthesize a batch from a live stat operation instead.
    kernel2, firewall2, root2 = _world()
    operations = _capture(
        kernel2, firewall2, lambda k: k.sys.stat(root2, "/etc/passwd"))
    verdicts = firewall.mediate_batch(operations)
    assert verdicts == ["allow"] * len(operations)
    assert firewall.stats.invocations == 0


def test_homogeneous_run_is_bulked_and_identical():
    kernel, firewall, root = _world()
    operations = _capture(
        kernel, firewall, lambda k: k.sys.stat(root, "/etc/passwd"))
    getattr_op = next(op for op in operations if op.op.value == "FILE_GETATTR")
    batch = [getattr_op] * 50
    _differential(firewall, batch)
    # The bulk path must actually fire: only the first record (plus
    # any warmup misses) goes through mediate().
    reset_mediation_state(firewall)
    assert _count_mediate_calls(firewall, batch) < len(batch)


def test_mutating_records_split_runs_and_fall_back():
    kernel, firewall, root = _world()

    def workload(k):
        for i in range(6):
            k.sys.stat(root, "/etc/passwd")
        k.sys.chmod(root, "/tmp", 0o1777)
        for i in range(6):
            k.sys.stat(root, "/etc/passwd")

    operations = _capture(kernel, firewall, workload)
    assert any(record_mutates(op) for op in operations)
    _differential(firewall, operations)


def test_write_open_counts_as_mutating():
    kernel, firewall, root = _world()

    def workload(k):
        fd = k.sys.open(root, "/tmp/batchfile",
                        flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        k.sys.write(root, fd, b"x")
        k.sys.close(root, fd)

    operations = _capture(kernel, firewall, workload)
    mutators = [op for op in operations if record_mutates(op)]
    assert mutators, "create/write opens must be classified as mutating"
    _differential(firewall, operations)


def test_metered_firewall_falls_back_per_call():
    kernel, firewall, root = _world()
    operations = _capture(
        kernel, firewall, lambda k: k.sys.stat(root, "/etc/passwd"))
    batch = [operations[-1]] * 20
    firewall.metrics.enable()
    try:
        reset_mediation_state(firewall)
        assert _count_mediate_calls(firewall, batch) == len(batch)
        _differential(firewall, batch)
    finally:
        firewall.metrics.disable()


def test_traced_firewall_falls_back_per_call():
    kernel, firewall, root = _world()
    operations = _capture(
        kernel, firewall, lambda k: k.sys.stat(root, "/etc/passwd"))
    batch = [operations[-1]] * 20
    firewall.enable_tracing(capacity=512)
    try:
        reset_mediation_state(firewall)
        assert _count_mediate_calls(firewall, batch) == len(batch)
    finally:
        firewall.disable_tracing() if hasattr(firewall, "disable_tracing") else None


def test_unoptimized_config_stays_identical():
    kernel, firewall, root = _world(EngineConfig.unoptimized())
    operations = _capture(
        kernel, firewall, lambda k: k.sys.stat(root, "/etc/passwd"))
    _differential(firewall, [operations[-1]] * 10 + operations)


def test_record_mutates_classification():
    kernel, firewall, root = _world()
    operations = _capture(kernel, firewall, lambda k: (
        k.sys.stat(root, "/etc/passwd"),
        k.sys.chmod(root, "/tmp", 0o1777),
    ))
    by_syscall = {}
    for op in operations:
        by_syscall.setdefault(op.syscall, []).append(op)
    assert all(not record_mutates(op) for op in by_syscall["stat"])
    assert all(record_mutates(op) for op in by_syscall["chmod"])


def test_engine_config_preset_resolution():
    assert EngineConfig.preset("JITTED").jit_codegen
    assert EngineConfig.preset("compiled").compiled_dispatch
    assert not EngineConfig.preset("DISABLED").enabled
    with pytest.raises(ValueError):
        EngineConfig.preset("TURBO")


def test_engine_stats_snapshot_round_trip_and_merge():
    a = EngineStats()
    a.invocations = 10
    a.accepts = 9
    a.drops = 1
    a.context_collections = {"ENTRYPOINT": 4}
    payload = a.as_dict()
    rebuilt = EngineStats.from_dict(payload)
    assert rebuilt.as_dict() == payload

    b = EngineStats()
    b.invocations = 5
    b.accepts = 5
    b.context_collections = {"ENTRYPOINT": 1, "SYSCALL_ARGS": 2}
    merged = EngineStats().merge(a).merge(b.as_dict())
    assert merged.invocations == 15
    assert merged.drops == 1
    assert merged.context_collections == {"ENTRYPOINT": 5, "SYSCALL_ARGS": 2}
