"""The dynamic linker's search-path behaviour."""

import pytest

from repro import errors
from repro.programs.ld_so import DEFAULT_LIBRARY_PATH, EPT_OPEN_LIBRARY, DynamicLinker
from repro.world import build_world, spawn_adversary


@pytest.fixture
def world():
    return build_world()


def make_victim(world, uid=0, setuid=False, env=None):
    proc = world.spawn("app", uid=uid, label="unconfined_t", binary_path="/bin/sh", env=env)
    if setuid:
        proc.creds.euid = 0 if uid != 0 else uid
    return proc


class TestSearchPath:
    def test_default_path(self, world):
        linker = DynamicLinker(world, make_victim(world))
        assert tuple(linker.build_search_path()) == DEFAULT_LIBRARY_PATH

    def test_ld_library_path_prepended(self, world):
        victim = make_victim(world, env={"LD_LIBRARY_PATH": "/opt/a:/opt/b"})
        linker = DynamicLinker(world, victim)
        assert linker.build_search_path()[:2] == ["/opt/a", "/opt/b"]

    def test_setuid_scrubs_environment(self, world):
        """Figure 1b lines 1-5."""
        victim = make_victim(world, uid=1000, setuid=True,
                             env={"LD_LIBRARY_PATH": "/tmp", "LD_PRELOAD": "/tmp/x.so"})
        linker = DynamicLinker(world, victim)
        path = linker.build_search_path()
        assert "/tmp" not in path
        assert "LD_LIBRARY_PATH" not in victim.env
        assert "LD_PRELOAD" not in victim.env

    def test_runpath_not_scrubbed_even_for_setuid(self, world):
        """The E1 channel: RUNPATH is trusted unconditionally."""
        victim = make_victim(world, uid=1000, setuid=True)
        linker = DynamicLinker(world, victim, runpath=("/tmp/svn",))
        assert "/tmp/svn" in linker.build_search_path()

    def test_runpath_after_ld_library_path(self, world):
        victim = make_victim(world, env={"LD_LIBRARY_PATH": "/opt"})
        linker = DynamicLinker(world, victim, runpath=("/rp",))
        path = linker.build_search_path()
        assert path.index("/opt") < path.index("/rp") < path.index("/lib")


class TestLoading:
    def test_loads_first_hit(self, world):
        linker = DynamicLinker(world, make_victim(world))
        path, image = linker.load_library("libc.so.6")
        assert path == "/lib/libc.so.6"
        assert image.path == path

    def test_missing_library_enoent(self, world):
        linker = DynamicLinker(world, make_victim(world))
        with pytest.raises(errors.ENOENT):
            linker.load_library("libnothere.so")

    def test_preload_wins_for_non_setuid(self, world):
        world.add_file("/tmp/pre.so", b"\x7fELF", uid=1000, mode=0o755)
        victim = make_victim(world, env={"LD_PRELOAD": "/tmp/pre.so"})
        path, _ = linker_load(world, victim, "libc.so.6")
        assert path == "/tmp/pre.so"

    def test_preload_ignored_for_setuid(self, world):
        world.add_file("/tmp/pre.so", b"\x7fELF", uid=1000, mode=0o755)
        victim = make_victim(world, uid=1000, setuid=True, env={"LD_PRELOAD": "/tmp/pre.so"})
        path, _ = linker_load(world, victim, "libc.so.6")
        assert path == "/lib/libc.so.6"

    def test_entrypoint_frames_balanced(self, world):
        victim = make_victim(world)
        linker = DynamicLinker(world, victim)
        linker.load_library("libc.so.6")
        assert victim.stack.depth == 0

    def test_library_mapped_into_process(self, world):
        victim = make_victim(world)
        linker = DynamicLinker(world, victim)
        _, image = linker.load_library("libc.so.6")
        assert image in victim.images


def linker_load(world, victim, name):
    return DynamicLinker(world, victim).load_library(name)
