"""The Apache-like server."""

import pytest

from repro.programs.apache import ApacheServer
from repro.world import build_world, spawn_adversary


@pytest.fixture
def world():
    return build_world()


@pytest.fixture
def server(world):
    proc = world.spawn("apache2", uid=0, label="httpd_t", binary_path="/usr/bin/apache2")
    return ApacheServer(world, proc)


class TestServing:
    def test_serves_index(self, server):
        response = server.serve("/index.html")
        assert response.status == 200
        assert b"hello" in response.body

    def test_404_for_missing(self, server):
        assert server.serve("/nothing.html").status == 404

    def test_403_for_directory(self, world, server):
        world.mkdirs("/var/www/html/subdir", label="httpd_sys_content_t")
        assert server.serve("/subdir").status == 403

    def test_traversal_escapes_docroot(self, server):
        response = server.serve("/../../../../etc/passwd")
        assert response.status == 200
        assert b"root:" in response.body

    def test_filter_blocks_dotdot(self, world):
        proc = world.spawn("apache2", uid=0, label="httpd_t", binary_path="/usr/bin/apache2")
        server = ApacheServer(world, proc, filter_traversal=True)
        assert server.serve("/../../etc/passwd").status == 400


class TestSymlinksIfOwnerMatch:
    @pytest.fixture
    def checking_server(self, world):
        proc = world.spawn("apache2", uid=0, label="httpd_t", binary_path="/usr/bin/apache2")
        return ApacheServer(world, proc, symlinks_if_owner_match=True)

    def test_same_owner_link_served(self, world, checking_server):
        world.add_file("/var/www/html/real.html", b"real", uid=0, label="httpd_sys_content_t")
        world.add_symlink("/var/www/html/alias.html", "/var/www/html/real.html", uid=0)
        assert checking_server.serve("/alias.html").status == 200

    def test_owner_mismatch_forbidden(self, world, checking_server, adversary_link):
        assert checking_server.serve("/leak.html").status == 403

    def test_unchecked_server_follows(self, world, server, adversary_link):
        response = server.serve("/leak.html")
        assert response.status == 200 and b"root:" in response.body

    def test_program_checks_cost_syscalls(self, world, checking_server, server):
        world.add_file("/var/www/html/page.html", b"x", label="httpd_sys_content_t")
        before = world.stats.total_syscalls
        server.serve("/page.html")
        plain_cost = world.stats.total_syscalls - before
        before = world.stats.total_syscalls
        checking_server.serve("/page.html")
        checked_cost = world.stats.total_syscalls - before
        assert checked_cost > plain_cost


@pytest.fixture
def adversary_link(world):
    adversary = spawn_adversary(world)
    # The upload dir is writable by the adversary inside the docroot.
    world.mkdirs("/var/www/html/up", uid=1000, mode=0o777, label="httpd_user_content_t")
    world.sys.symlink(adversary, "/etc/passwd", "/var/www/html/up/link")
    world.add_symlink("/var/www/html/leak.html", "/var/www/html/up/link", uid=1000)
    return adversary


class TestAuthentication:
    def test_auth_reads_shadow(self, server):
        assert server.authenticate("root", "secret")

    def test_auth_uses_distinct_entrypoint(self, world, server):
        from repro.firewall.engine import ProcessFirewall
        from repro.programs.apache import EPT_AUTH_OPEN, EPT_SERVE_OPEN

        pf = ProcessFirewall()
        world.attach_firewall(pf)
        pf.install("pftables -A input -o FILE_OPEN -j LOG")
        server.serve("/index.html")
        server.authenticate("root", "x")
        epts = [tuple(r["entrypoint"]) for r in pf.log_records if r["entrypoint"]]
        assert ("/usr/bin/apache2", EPT_SERVE_OPEN) in epts
        assert ("/usr/bin/apache2", EPT_AUTH_OPEN) in epts
