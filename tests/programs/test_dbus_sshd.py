"""D-Bus daemon/client and sshd signal handling."""

import pytest

from repro import errors
from repro.proc import signals as sig
from repro.programs.dbus import DbusDaemon, LibDbusClient, SYSTEM_SOCKET
from repro.programs.sshd import Sshd
from repro.world import build_world, spawn_adversary


@pytest.fixture
def world():
    return build_world()


class TestDbusDaemon:
    @pytest.fixture
    def daemon(self, world):
        proc = world.spawn("dbus-daemon", uid=0, label="system_dbusd_t", binary_path="/bin/dbus-daemon")
        return DbusDaemon(world, proc)

    def test_setup_binds_and_chmods(self, world, daemon):
        daemon.setup()
        sock = world.lookup(SYSTEM_SOCKET, follow=False)
        assert sock.bound_socket == daemon.proc.pid
        assert sock.mode & 0o777 == 0o666

    def test_double_bind_raises(self, world, daemon):
        daemon.bind_socket()
        with pytest.raises(errors.EADDRINUSE):
            daemon.bind_socket()


class TestLibDbusClient:
    def test_default_address(self, world):
        proc = world.spawn("app", uid=0, label="unconfined_t", binary_path="/bin/sh")
        assert LibDbusClient(world, proc).bus_address() == SYSTEM_SOCKET

    def test_env_overrides_even_for_setuid(self, world):
        """The E3 bug: no scrubbing for setuid processes."""
        proc = world.spawn(
            "app", uid=1000, label="unconfined_t", binary_path="/bin/sh",
            env={"DBUS_SYSTEM_BUS_ADDRESS": "/tmp/other"},
        )
        proc.creds.euid = 0
        assert LibDbusClient(world, proc).bus_address() == "/tmp/other"

    def test_connect_reaches_daemon(self, world):
        daemon_proc = world.spawn("dbus-daemon", uid=0, label="system_dbusd_t", binary_path="/bin/dbus-daemon")
        DbusDaemon(world, daemon_proc).setup()
        client_proc = world.spawn("app", uid=0, label="unconfined_t", binary_path="/bin/sh")
        assert LibDbusClient(world, client_proc).connect() == daemon_proc.pid

    def test_connect_uses_library_entrypoint(self, world):
        from repro.firewall.engine import ProcessFirewall
        from repro.programs.dbus import EPT_CONNECT, LIBDBUS_PATH

        daemon_proc = world.spawn("dbus-daemon", uid=0, label="system_dbusd_t", binary_path="/bin/dbus-daemon")
        DbusDaemon(world, daemon_proc).setup()
        pf = ProcessFirewall()
        world.attach_firewall(pf)
        pf.install("pftables -A input -o UNIX_STREAM_SOCKET_CONNECT -j LOG")
        client_proc = world.spawn("app", uid=0, label="unconfined_t", binary_path="/bin/sh")
        LibDbusClient(world, client_proc).connect()
        record = [r for r in pf.log_records if r["op"] == "UNIX_STREAM_SOCKET_CONNECT"][-1]
        assert tuple(record["entrypoint"]) == (LIBDBUS_PATH, EPT_CONNECT)


class TestSshd:
    @pytest.fixture
    def sshd(self, world):
        proc = world.spawn("sshd", uid=0, label="sshd_t", binary_path="/usr/sbin/sshd")
        daemon = Sshd(world, proc)
        daemon.install_handlers()
        return daemon

    def test_handlers_installed(self, sshd):
        assert sshd.proc.signals.disposition(sig.SIGALRM).is_handled
        assert sshd.proc.signals.disposition(sig.SIGTERM).is_handled

    def test_single_signal_no_corruption(self, world, sshd):
        world.sys.kill(sshd.proc, sshd.proc.pid, sig.SIGALRM)
        sshd.note_handler_entry()
        sshd.finish_handler()
        assert not sshd.corrupted
        assert sshd.handler_entries == 1

    def test_reentry_corrupts(self, world, sshd):
        world.sys.kill(sshd.proc, sshd.proc.pid, sig.SIGALRM)
        sshd.note_handler_entry()
        world.sys.kill(sshd.proc, sshd.proc.pid, sig.SIGTERM)
        sshd.note_handler_entry()
        assert sshd.corrupted
