"""PHP, Python, Java, and shell program behaviour."""

import pytest

from repro import errors
from repro.programs.java import JavaRuntime
from repro.programs.php import PhpInterpreter
from repro.programs.python_interp import PythonInterpreter
from repro.programs.shell import ShellScript
from repro.world import build_world, spawn_adversary


@pytest.fixture
def world():
    return build_world()


class TestPhp:
    @pytest.fixture
    def php(self, world):
        proc = world.spawn("php5", uid=0, label="httpd_t", binary_path="/usr/bin/php5")
        return PhpInterpreter(world, proc)

    def test_include_reads_source(self, world, php):
        world.mkdirs("/var/www/html/app", label="httpd_user_script_exec_t")
        world.add_file("/var/www/html/app/page.php", b"<?php ok(); ?>")
        assert php.include("/var/www/html/app/page.php") == b"<?php ok(); ?>"
        assert php.included == ["/var/www/html/app/page.php"]

    def test_component_appends_extension(self, world, php):
        world.mkdirs("/var/www/html/app", label="httpd_user_script_exec_t")
        world.add_file("/var/www/html/app/view.php", b"view")
        assert php.run_component("/var/www/html/app", "", "view") == b"view"

    def test_null_byte_truncates_extension(self, world, php):
        world.add_file("/tmp/evil", b"payload")
        source = php.run_component("/var/www/html", "", "../../../tmp/evil\x00")
        assert source == b"payload"

    def test_missing_include_raises(self, php):
        with pytest.raises(errors.ENOENT):
            php.include("/var/www/html/none.php")


class TestPython:
    def test_cwd_searched_first(self, world):
        proc = world.spawn("py", uid=0, label="unconfined_t", binary_path="/usr/bin/python2.7")
        world.add_file("/tmp/mod.py", b"cwd version")
        world.mkdirs("/usr/share/py", label="usr_t")
        world.add_file("/usr/share/py/mod.py", b"system version")
        interp = PythonInterpreter(world, proc, cwd_path="/tmp", sys_path=["", "/usr/share/py"])
        path, source = interp.import_module("mod")
        assert path == "/tmp/mod.py" and source == b"cwd version"

    def test_without_cwd_entry_system_wins(self, world):
        proc = world.spawn("py", uid=0, label="unconfined_t", binary_path="/usr/bin/python2.7")
        world.mkdirs("/usr/share/py", label="usr_t")
        world.add_file("/usr/share/py/mod.py", b"system version")
        interp = PythonInterpreter(world, proc, cwd_path="/tmp", sys_path=["/usr/share/py"])
        path, _ = interp.import_module("mod")
        assert path == "/usr/share/py/mod.py"

    def test_missing_module(self, world):
        proc = world.spawn("py", uid=0, label="unconfined_t", binary_path="/usr/bin/python2.7")
        interp = PythonInterpreter(world, proc)
        with pytest.raises(errors.ENOENT):
            interp.import_module("ghost")


class TestJava:
    def test_cwd_config_preferred(self, world):
        world.mkdirs("/etc/java", label="etc_t")
        world.add_file("/etc/java/jvm.cfg", b"system")
        world.add_file("/tmp/jvm.cfg", b"local")
        proc = world.spawn("java", uid=0, label="unconfined_t", binary_path="/usr/bin/java")
        java = JavaRuntime(world, proc, cwd_path="/tmp")
        path, data = java.load_config()
        assert path == "/tmp/jvm.cfg" and data == b"local"

    def test_fallback_to_system(self, world):
        world.mkdirs("/etc/java", label="etc_t")
        world.add_file("/etc/java/jvm.cfg", b"system")
        proc = world.spawn("java", uid=0, label="unconfined_t", binary_path="/usr/bin/java")
        java = JavaRuntime(world, proc, cwd_path="/home/user")
        path, _ = java.load_config()
        assert path == "/etc/java/jvm.cfg"


class TestShell:
    def test_redirect_creates_and_writes(self, world):
        proc = world.spawn("script", uid=0, label="init_t", binary_path="/bin/bash")
        script = ShellScript(world, proc)
        script.redirect_to("/tmp/out", data=b"hello\n")
        assert world.lookup("/tmp/out").data == b"hello\n"

    def test_redirect_follows_planted_link(self, world):
        proc = world.spawn("script", uid=0, label="init_t", binary_path="/bin/bash")
        adversary = spawn_adversary(world)
        world.sys.symlink(adversary, "/etc/passwd", "/tmp/out")
        ShellScript(world, proc).redirect_to("/tmp/out", data=b"CLOBBER")
        assert world.lookup("/etc/passwd").data == b"CLOBBER"

    def test_safe_redirect_refuses_planted_link(self, world):
        proc = world.spawn("script", uid=0, label="init_t", binary_path="/bin/bash")
        adversary = spawn_adversary(world)
        world.sys.symlink(adversary, "/etc/passwd", "/tmp/out")
        with pytest.raises(errors.KernelError):
            ShellScript(world, proc).redirect_to_safely("/tmp/out")

    def test_safe_redirect_clean(self, world):
        proc = world.spawn("script", uid=0, label="init_t", binary_path="/bin/bash")
        ShellScript(world, proc).redirect_to_safely("/tmp/out", data=b"x")
        assert world.lookup("/tmp/out").data == b"x"
