"""The open-variant defences of Figure 4, attacked and benign."""

import pytest

from repro import errors
from repro.programs.libc import (
    OPEN_VARIANTS,
    SafetyViolation,
    open_nofollow,
    open_nolink,
    open_race,
    plain_open,
    safe_open,
)
from repro.sched.scheduler import Scheduler
from repro.vfs.file import OpenFlags
from repro.world import build_world, spawn_adversary, spawn_root_shell


@pytest.fixture
def world():
    return build_world()


@pytest.fixture
def root(world):
    return spawn_root_shell(world)


@pytest.fixture
def adversary(world):
    return spawn_adversary(world)


class TestBenign:
    @pytest.mark.parametrize("variant", sorted(OPEN_VARIANTS))
    def test_all_variants_open_clean_file(self, world, root, variant):
        world.add_file("/tmp/clean", b"data", uid=0, mode=0o600)
        fd = OPEN_VARIANTS[variant](world, root, "/tmp/clean")
        assert world.sys.read(root, fd) == b"data"

    def test_safe_open_allows_root_owned_links(self, world, root):
        """A victim's own symlinks are fine (owner matches)."""
        world.add_file("/var/target", b"ok", uid=0)
        world.add_symlink("/tmp/rootlink", "/var/target", uid=0)
        fd = safe_open(world, root, "/tmp/rootlink")
        assert world.sys.read(root, fd) == b"ok"

    def test_safe_open_allows_adversary_link_to_own_file(self, world, root, adversary):
        """Chari semantics: a link into the adversary's own files is
        allowed."""
        world.add_file("/tmp/users-own", b"theirs", uid=1000, mode=0o644)
        world.sys.symlink(adversary, "/tmp/users-own", "/tmp/users-link")
        fd = safe_open(world, root, "/tmp/users-link")
        assert world.sys.read(root, fd) == b"theirs"


class TestStaticAttacks:
    @pytest.fixture
    def planted(self, world, adversary):
        world.sys.symlink(adversary, "/etc/shadow", "/tmp/victim")
        return "/tmp/victim"

    def test_plain_open_fooled(self, world, root, planted):
        fd = plain_open(world, root, planted)
        assert b"secret" in world.sys.read(root, fd)

    def test_nofollow_blocks(self, world, root, planted):
        with pytest.raises(errors.ELOOP):
            open_nofollow(world, root, planted)

    def test_nolink_blocks_static_link(self, world, root, planted):
        with pytest.raises(SafetyViolation):
            open_nolink(world, root, planted)

    def test_safe_open_blocks_adversary_link_to_victim_file(self, world, root, planted):
        with pytest.raises(SafetyViolation):
            safe_open(world, root, planted)

    def test_safe_open_blocks_intermediate_link(self, world, root, adversary):
        """nofollow/nolink only see the final component; safe_open sees
        every prefix."""
        world.sys.symlink(adversary, "/etc", "/tmp/etc-alias")
        # Final component is a regular file: the naive checks pass.
        fd = open_nolink(world, root, "/tmp/etc-alias/passwd")
        world.sys.close(root, fd)
        with pytest.raises(SafetyViolation):
            safe_open(world, root, "/tmp/etc-alias/passwd")


class TestRacedAttacks:
    def test_open_nolink_race_window(self, world, root, adversary):
        """Reproduce Figure 1a lines 3-6 losing the race."""
        path = "/tmp/work"
        fd = world.sys.open(adversary, path, flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY, mode=0o666)
        world.sys.close(adversary, fd)
        st = world.sys.lstat(root, path)
        assert not st.is_symlink()
        # ... adversary runs here ...
        world.sys.unlink(adversary, path)
        world.sys.symlink(adversary, "/etc/shadow", path)
        fd = world.sys.open(root, path)  # the "use" of open_nolink
        assert b"secret" in world.sys.read(root, fd)

    def test_open_race_detects_swap(self, world, root, adversary):
        """The fstat identity check catches a plain swap."""
        path = "/tmp/work"
        fd = world.sys.open(adversary, path, flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY, mode=0o666)
        world.sys.close(adversary, fd)

        original_open = world.sys.open
        swapped = {}

        def open_with_swap(proc, p, **kwargs):
            # Adversary wins the race exactly once, right before the
            # victim's open.  They hold the original file open during
            # the swap so its inode number cannot recycle into the
            # replacement (otherwise the swap is a cryogenic-sleep
            # variant, tested separately).
            if proc is root and p == path and not swapped:
                swapped["done"] = True
                pin = original_open(adversary, p)
                world.sys.unlink(adversary, path)
                replacement = original_open(
                    adversary, path, flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY, mode=0o666
                )
                world.sys.close(adversary, replacement)
                world.sys.close(adversary, pin)
            return original_open(proc, p, **kwargs)

        world.sys.open = open_with_swap
        try:
            with pytest.raises(SafetyViolation):
                open_race(world, root, path)
        finally:
            world.sys.open = original_open

    def test_open_race_detects_cryogenic_sleep(self, world, root, adversary):
        """The second lstat (held fd pins the inode) catches recycling."""
        path = "/tmp/work"
        fd = world.sys.open(adversary, path, flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY, mode=0o666)
        world.sys.close(adversary, fd)

        original_fstat = world.sys.fstat
        raced = {}

        def fstat_with_swap(proc, fd_):
            result = original_fstat(proc, fd_)
            if proc is root and not raced:
                raced["done"] = True
                # After the victim's fstat comparison data is captured,
                # swap the name to a new file; the re-lstat must differ.
                world.sys.unlink(adversary, path)
                replacement = world.sys.open(
                    adversary, path, flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY, mode=0o666
                )
                world.sys.close(adversary, replacement)
            return result

        world.sys.fstat = fstat_with_swap
        try:
            with pytest.raises(SafetyViolation):
                open_race(world, root, path)
        finally:
            world.sys.fstat = original_fstat


class TestSyscallCosts:
    def test_variant_costs_ordered(self, world, root):
        """open < nolink < race < safe_open in syscalls issued."""
        world.mkdirs("/a/b/c")
        world.add_file("/a/b/c/f", b"x", uid=0, mode=0o600)
        costs = {}
        for name in ("open", "open_nolink", "open_race", "safe_open"):
            before = world.stats.total_syscalls
            fd = OPEN_VARIANTS[name](world, root, "/a/b/c/f")
            world.sys.close(root, fd)
            costs[name] = world.stats.total_syscalls - before - 1
        assert costs["open"] < costs["open_nolink"] < costs["open_race"] < costs["safe_open"]

    def test_safe_open_cost_at_least_4_per_component(self, world, root):
        world.mkdirs("/a/b/c")
        world.add_file("/a/b/c/f", b"x", uid=0, mode=0o600)
        before = world.stats.total_syscalls
        fd = safe_open(world, root, "/a/b/c/f")
        world.sys.close(root, fd)
        cost = world.stats.total_syscalls - before - 1
        assert cost >= 4 * 4  # four components
