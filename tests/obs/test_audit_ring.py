"""AuditRing: wraparound, severity filtering, and the log_records view."""

import json

import pytest

from repro import errors
from repro.firewall.engine import ProcessFirewall
from repro.obs import DEBUG, ERROR, INFO, WARNING, AuditRing, severity_level, severity_name
from repro.world import build_world, spawn_root_shell


class TestRingBasics:
    def test_emit_returns_monotonic_seq(self):
        ring = AuditRing(capacity=8)
        assert [ring.emit({"n": i}) for i in range(5)] == [0, 1, 2, 3, 4]
        assert len(ring) == 5
        assert ring.evicted == 0

    def test_wraparound_evicts_oldest_and_counts(self):
        ring = AuditRing(capacity=4)
        for i in range(10):
            ring.emit({"n": i})
        assert len(ring) == 4
        assert ring.evicted == 6
        # Survivors are the newest four, in emission order, with their
        # original sequence numbers intact.
        assert [e.record["n"] for e in ring.entries()] == [6, 7, 8, 9]
        assert [e.seq for e in ring.entries()] == [6, 7, 8, 9]

    def test_seq_survives_clear(self):
        ring = AuditRing(capacity=4)
        ring.emit({})
        ring.clear()
        assert len(ring) == 0
        assert ring.emit({}) == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AuditRing(capacity=0)


class TestSeverity:
    def test_levels_are_ordered(self):
        assert DEBUG < INFO < WARNING < ERROR

    def test_name_level_round_trip(self):
        for name in ("debug", "info", "warning", "error"):
            assert severity_name(severity_level(name)) == name

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            severity_level("shouty")

    def test_min_severity_filter(self):
        ring = AuditRing(capacity=16)
        ring.emit({"n": 0}, severity=DEBUG)
        ring.emit({"n": 1}, severity="info")
        ring.emit({"n": 2}, severity=WARNING)
        ring.emit({"n": 3}, severity="error")
        assert [e.record["n"] for e in ring.entries(min_severity="warning")] == [2, 3]
        assert [e.record["n"] for e in ring.entries(min_severity=DEBUG)] == [0, 1, 2, 3]

    def test_kind_filter(self):
        ring = AuditRing(capacity=16)
        ring.emit({"n": 0}, kind="log")
        ring.emit({"n": 1}, kind="drop")
        ring.emit({"n": 2}, kind="log")
        assert [r["n"] for r in ring.records(kind="log")] == [0, 2]
        assert [r["n"] for r in ring.records(kind="drop")] == [1]

    def test_as_dict_flattens_metadata(self):
        ring = AuditRing()
        ring.emit({"path": "/etc/shadow"}, severity=WARNING, kind="drop")
        entry = ring.entries()[0]
        flat = entry.as_dict()
        assert flat["seq"] == 0
        assert flat["severity"] == "warning"
        assert flat["kind"] == "drop"
        assert flat["path"] == "/etc/shadow"


def _shadow_world(extra_rules=()):
    world = build_world()
    firewall = ProcessFirewall()
    world.attach_firewall(firewall)
    firewall.install("pftables -A input -o FILE_OPEN -d shadow_t -j LOG --prefix shadow")
    for line in extra_rules:
        firewall.install(line)
    shell = spawn_root_shell(world)
    return world, firewall, shell


class TestLogRecordsView:
    def test_log_records_is_plain_json_ready_list(self):
        world, firewall, shell = _shadow_world()
        fd = world.sys.open(shell, "/etc/shadow")
        world.sys.close(shell, fd)
        records = firewall.log_records
        assert isinstance(records, list) and len(records) == 1
        assert records[0]["prefix"] == "shadow"
        json.dumps(records)  # rulegen consumes this via json.dumps

    def test_drop_records_do_not_leak_into_log_view(self):
        world, firewall, shell = _shadow_world(
            ["pftables -A input -o FILE_OPEN -d shadow_t -j DROP"])
        with pytest.raises(errors.PFDenied):
            world.sys.open(shell, "/etc/shadow")
        # One LOG record; the drop notification lives on its own channel.
        assert len(firewall.log_records) == 1
        drops = firewall.audit.records(kind="drop")
        assert len(drops) == 1
        assert drops[0]["path"] == "/etc/shadow"
        assert drops[0]["rule"].endswith("-j DROP")
        assert firewall.audit.entries(kind="drop")[0].severity == WARNING

    def test_log_level_option_sets_severity(self):
        world, firewall, shell = _shadow_world(
            ["pftables -A input -o FILE_READ -d shadow_t -j LOG --level error"])
        fd = world.sys.open(shell, "/etc/shadow")
        world.sys.read(shell, fd, 16)
        world.sys.close(shell, fd)
        severities = [e.severity for e in firewall.audit.entries(kind="log")]
        assert INFO in severities and ERROR in severities
        # Filtering by severity keeps only the --level error record.
        errors_only = firewall.audit.records(min_severity="error", kind="log")
        assert len(errors_only) == 1

    def test_bad_level_rejected_at_install(self):
        firewall = ProcessFirewall()
        with pytest.raises(errors.EINVAL):
            firewall.install(
                "pftables -A input -o FILE_OPEN -d shadow_t -j LOG --level loud")


class TestForkExecInteraction:
    def test_ring_is_per_firewall_not_per_process(self):
        world, firewall, shell = _shadow_world()
        child = world.sys.fork(shell)
        fd = world.sys.open(child, "/etc/shadow")
        world.sys.close(child, fd)
        world.sys.execve(child, "/bin/sh", argv=["/bin/sh"])
        fd = world.sys.open(child, "/etc/shadow")
        world.sys.close(child, fd)
        # Records from before and after fork/execve accumulate in the
        # same ring; execve resets per-process firewall state, never
        # the audit history.
        assert len(firewall.log_records) == 2
        assert firewall.audit.evicted == 0
