"""MetricsRegistry.merge()/snapshot(): the sharded-run combination path.

The property the parallel replay driver leans on: merging per-shard
registries — any split, any order, any grouping — must equal the one
registry that counted everything serially.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry, registry_from_prometheus

_NAMES = ["pf_mediations_total", "pf_rule_hits_total", "pf_verdicts_total"]
_LABELS = [None, {"op": "FILE_OPEN"}, {"op": "DIR_SEARCH"}, {"verdict": "allow"}]
_PHASES = ["context", "chain_walk", "decision_cache"]

_events = st.lists(
    st.one_of(
        st.tuples(
            st.just("inc"),
            st.sampled_from(_NAMES),
            st.sampled_from(_LABELS),
            st.integers(min_value=1, max_value=9),
        ),
        st.tuples(
            st.just("phase"),
            st.sampled_from(_PHASES),
            # Dyadic rationals: float addition over them is exact, so
            # any summation order gives bit-equal totals — the test
            # probes merge logic, not IEEE rounding.
            st.integers(min_value=0, max_value=256).map(lambda n: n / 256),
        ),
    ),
    max_size=60,
)


def _apply(registry, event):
    if event[0] == "inc":
        _kind, name, labels, value = event
        registry.inc(name, labels=labels, value=value)
    else:
        _kind, phase, seconds = event
        registry.observe_phase(phase, seconds)


def _view(registry):
    return (registry.counters(), registry.phases())


@settings(max_examples=60, deadline=None)
@given(events=_events, seed=st.integers(min_value=0, max_value=2**31))
def test_merge_of_random_splits_equals_serial_totals(events, seed):
    rng = random.Random(seed)
    serial = MetricsRegistry()
    for event in events:
        _apply(serial, event)

    parts = [MetricsRegistry() for _ in range(rng.randint(1, 4))]
    for event in events:
        _apply(rng.choice(parts), event)
    rng.shuffle(parts)
    merged = MetricsRegistry()
    for part in parts:
        assert merged.merge(part) is merged
    assert _view(merged) == _view(serial)


@settings(max_examples=25, deadline=None)
@given(events=_events)
def test_merge_is_associative_over_groupings(events):
    parts = [MetricsRegistry() for _ in range(3)]
    for index, event in enumerate(events):
        _apply(parts[index % 3], event)
    a, b, c = (part.snapshot() for part in parts)
    left = a.snapshot().merge(b.snapshot().merge(c.snapshot()))
    right = a.snapshot().merge(b.snapshot()).merge(c.snapshot())
    assert _view(left) == _view(right)


def test_snapshot_is_detached():
    registry = MetricsRegistry(enabled=True)
    registry.inc("pf_mediations_total", {"op": "FILE_OPEN"}, value=3)
    registry.observe_phase("context", 0.5)
    frozen = _view(registry)
    snap = registry.snapshot()
    assert snap.enabled is True
    assert _view(snap) == frozen
    registry.inc("pf_mediations_total", {"op": "FILE_OPEN"}, value=4)
    registry.observe_phase("context", 0.25)
    assert _view(snap) == frozen  # original kept counting; copy did not move


def test_merge_round_trips_through_prometheus_text():
    """The driver ships shard metrics as Prometheus text; parse+merge
    must lose nothing versus merging the live registries."""
    a = MetricsRegistry()
    a.inc("pf_verdicts_total", {"verdict": "allow"}, value=7)
    a.observe_phase("chain_walk", 0.125)
    b = MetricsRegistry()
    b.inc("pf_verdicts_total", {"verdict": "allow"}, value=5)
    b.inc("pf_verdicts_total", {"verdict": "drop"}, value=2)
    b.observe_phase("chain_walk", 0.25)

    direct = a.snapshot().merge(b)
    via_text = registry_from_prometheus(a.to_prometheus())
    via_text.merge(registry_from_prometheus(b.to_prometheus()))
    assert _view(via_text) == _view(direct)
