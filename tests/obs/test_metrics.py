"""MetricsRegistry: counters, phases, and the JSON/Prometheus exports."""

import json

import pytest

from repro import errors
from repro.firewall.engine import EngineConfig, ProcessFirewall
from repro.obs import MetricsRegistry, parse_prometheus, registry_from_prometheus
from repro.obs.metrics import PHASE_CACHE_PROBE, PHASE_CHAIN_WALK, PHASE_CONTEXT
from repro.world import build_world, spawn_root_shell


class TestRegistry:
    def test_disabled_by_default(self):
        assert MetricsRegistry().enabled is False
        assert ProcessFirewall().metrics.enabled is False

    def test_inc_and_value(self):
        m = MetricsRegistry()
        m.inc("pf_mediations_total", {"op": "FILE_OPEN"})
        m.inc("pf_mediations_total", {"op": "FILE_OPEN"}, value=2)
        m.inc("pf_mediations_total", {"op": "FILE_READ"})
        m.inc("pf_fast_path_total")
        assert m.value("pf_mediations_total", {"op": "FILE_OPEN"}) == 3
        assert m.value("pf_mediations_total", {"op": "FILE_READ"}) == 1
        assert m.value("pf_fast_path_total") == 1
        assert m.value("pf_never_touched_total") == 0

    def test_label_order_is_irrelevant(self):
        m = MetricsRegistry()
        m.inc("x_total", {"a": "1", "b": "2"})
        assert m.value("x_total", {"b": "2", "a": "1"}) == 1

    def test_observe_phase_accumulates(self):
        m = MetricsRegistry()
        m.observe_phase(PHASE_CONTEXT, 0.25)
        m.observe_phase(PHASE_CONTEXT, 0.75)
        phases = m.phases()
        assert phases[PHASE_CONTEXT]["entries"] == 2
        assert phases[PHASE_CONTEXT]["seconds"] == pytest.approx(1.0)

    def test_reset_drops_values_keeps_enabled(self):
        m = MetricsRegistry(enabled=True)
        m.inc("x_total")
        m.observe_phase(PHASE_CHAIN_WALK, 1.0)
        m.reset()
        assert m.enabled is True
        assert m.counters() == []
        assert m.phases() == {}


class TestExports:
    def _populated(self):
        m = MetricsRegistry()
        m.inc("pf_mediations_total", {"op": "FILE_OPEN"}, value=7)
        m.inc("pf_rule_hits_total", {
            "table": "filter", "chain": "input",
            "rule": 'pftables -A input -s "evil label" -j DROP'})
        m.inc("pf_fast_path_total", value=3)
        m.observe_phase(PHASE_CONTEXT, 0.5)
        m.observe_phase(PHASE_CACHE_PROBE, 0.125)
        return m

    def test_json_export_is_valid_and_complete(self):
        m = self._populated()
        data = json.loads(m.to_json())
        names = {row["name"] for row in data["counters"]}
        assert names == {"pf_mediations_total", "pf_rule_hits_total", "pf_fast_path_total"}
        assert data["phases"][PHASE_CONTEXT]["entries"] == 1

    def test_prometheus_round_trip(self):
        m = self._populated()
        text = m.to_prometheus()
        assert "# TYPE pf_mediations_total counter" in text
        rebuilt = registry_from_prometheus(text)
        assert rebuilt.to_prometheus() == text
        assert rebuilt.as_dict() == m.as_dict()

    def test_round_trip_escapes_label_values(self):
        m = MetricsRegistry()
        m.inc("x_total", {"rule": 'has "quotes" and \\slashes\\ and\nnewlines'})
        parsed = parse_prometheus(m.to_prometheus())
        ((_, labels),) = list(parsed)
        assert dict(labels)["rule"] == 'has "quotes" and \\slashes\\ and\nnewlines'

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not a metric line\n")


def _run_sensitive_workload(config=None):
    world = build_world()
    firewall = ProcessFirewall(config or EngineConfig.optimized())
    world.attach_firewall(firewall)
    firewall.install("pftables -A input -o FILE_OPEN -d shadow_t -j DROP")
    firewall.metrics.enable()
    shell = spawn_root_shell(world)
    fd = world.sys.open(shell, "/etc/passwd")
    world.sys.close(shell, fd)
    with pytest.raises(errors.PFDenied):
        world.sys.open(shell, "/etc/shadow")
    return firewall


class TestEngineIntegration:
    def test_engine_populates_expected_series(self):
        firewall = _run_sensitive_workload()
        m = firewall.metrics
        stats = firewall.stats
        # Aggregates agree with EngineStats.
        total_mediations = sum(
            v for name, _k, v in m.counters() if name == "pf_mediations_total")
        assert total_mediations == stats.invocations
        assert m.value("pf_verdicts_total", {"verdict": "drop"}) == stats.drops
        assert m.value("pf_verdicts_total", {"verdict": "allow"}) == stats.accepts
        drop_rule = "pftables -A input -o FILE_OPEN -d shadow_t -j DROP"
        labels = {"table": "filter", "chain": "input", "rule": drop_rule}
        assert m.value("pf_rule_hits_total", labels) == 1
        assert m.value("pf_rule_drops_total", labels) == 1
        assert m.value("pf_chain_traversals_total",
                       {"table": "filter", "chain": "input"}) >= 1
        phases = m.phases()
        assert phases[PHASE_CHAIN_WALK]["entries"] >= 1
        assert phases[PHASE_CONTEXT]["entries"] >= 1

    def test_compiled_config_reports_cache_probe_phase(self):
        world = build_world()
        firewall = ProcessFirewall(EngineConfig.compiled())
        world.attach_firewall(firewall)
        # A subject-only rule: misses consult nothing resource-
        # dependent, so the default-allow verdict is memoizable.
        firewall.install("pftables -A input -o FILE_OPEN -s sshd_t -j DROP")
        firewall.metrics.enable()
        shell = spawn_root_shell(world)
        for _ in range(3):
            fd = world.sys.open(shell, "/etc/passwd")
            world.sys.close(shell, fd)
        m = firewall.metrics
        hits = m.value("pf_decision_cache_total", {"result": "hit"})
        assert hits == firewall.stats.decision_cache_hits
        assert hits > 0
        assert m.phases()[PHASE_CACHE_PROBE]["entries"] >= 1

    def test_disabled_registry_collects_nothing(self):
        world = build_world()
        firewall = ProcessFirewall()
        world.attach_firewall(firewall)
        firewall.install("pftables -A input -o FILE_OPEN -d shadow_t -j DROP")
        shell = spawn_root_shell(world)
        fd = world.sys.open(shell, "/etc/passwd")
        world.sys.close(shell, fd)
        assert firewall.metrics.counters() == []
        assert firewall.metrics.phases() == {}

    def test_cli_counters_listing_round_trips_through_export(self):
        firewall = _run_sensitive_workload()
        rebuilt = registry_from_prometheus(firewall.metrics.to_prometheus())
        assert rebuilt.as_dict() == firewall.metrics.as_dict()
