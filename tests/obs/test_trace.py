"""Decision traces: recording, rendering, and engine integration."""

import json

import pytest

from repro import errors
from repro.firewall.engine import EngineConfig, ProcessFirewall
from repro.obs import Tracer
from repro.obs.trace import (
    FIELD_CACHED,
    FIELD_COLLECTED,
    STAGE_CHAIN_WALK,
    STAGE_CONTEXT,
    STAGE_DECISION_CACHE,
    STAGE_FAST_PATH,
    STAGE_VERDICT,
)
from repro.world import build_world, spawn_root_shell

RULES = [
    "pftables -A input -o FILE_OPEN -d shadow_t -j LOG --prefix shadow",
    "pftables -A input -o FILE_OPEN -d shadow_t -j DROP",
    "pftables -A input -o FILE_OPEN -d etc_t -s sshd_t -j DROP",
]


def _traced_world(config=None, rules=RULES):
    world = build_world()
    firewall = ProcessFirewall(config or EngineConfig.optimized())
    world.attach_firewall(firewall)
    firewall.install_all(rules)
    tracer = firewall.enable_tracing()
    shell = spawn_root_shell(world)
    return world, firewall, tracer, shell


class TestTraceRecords:
    def test_drop_trace_names_rule_and_consumed_fields(self):
        world, firewall, tracer, shell = _traced_world()
        with pytest.raises(errors.PFDenied):
            world.sys.open(shell, "/etc/shadow")
        trace = tracer.last()
        assert trace.verdict == "DROP"
        assert trace.rule == RULES[1]
        assert trace.op == "FILE_OPEN"
        assert trace.path == "/etc/shadow"
        # The chain walk shows both shadow rules firing in order.
        (visit,) = [v for v in trace.chains if v.chain == "input"]
        results = [(ev.result, ev.verdict) for ev in visit.rules]
        assert ("matched", "CONTINUE") in results  # the LOG rule
        assert ("matched", "DROP") in results
        # Fields the walk consumed are attributed to collection/cache.
        assert "OBJECT_LABEL" in trace.context
        assert set(trace.context.values()) <= {FIELD_COLLECTED, FIELD_CACHED}

    def test_miss_names_failing_predicate(self):
        world, firewall, tracer, shell = _traced_world()
        fd = world.sys.open(shell, "/etc/passwd")
        world.sys.close(shell, fd)
        open_traces = tracer.for_op("FILE_OPEN")
        assert open_traces, "open must have been mediated"
        trace = open_traces[-1]
        assert trace.verdict == "ALLOW"
        misses = [ev for v in trace.chains for ev in v.rules if ev.result == "miss"]
        assert misses, "passwd is not shadow_t: the shadow rules must miss"
        assert all(ev.failed_match for ev in misses)

    def test_fast_path_trace_has_no_chain_walk(self):
        world, firewall, tracer, shell = _traced_world()
        world.sys.getpid(shell)
        trace = tracer.last()
        assert STAGE_FAST_PATH in trace.stages or trace.chains == []
        assert trace.verdict == "ALLOW"

    def test_as_dict_is_json_ready_and_complete(self):
        world, firewall, tracer, shell = _traced_world()
        with pytest.raises(errors.PFDenied):
            world.sys.open(shell, "/etc/shadow")
        data = tracer.last().as_dict()
        json.dumps(data)
        for key in ("seq", "op", "pid", "comm", "label", "path", "stages",
                    "decision_cache", "context", "chains", "verdict", "rule"):
            assert key in data
        assert data["stages"][-1] == STAGE_VERDICT

    def test_render_mentions_drop_rule_and_stages(self):
        world, firewall, tracer, shell = _traced_world()
        with pytest.raises(errors.PFDenied):
            world.sys.open(shell, "/etc/shadow")
        text = tracer.last().render()
        assert "DROPPED by: " + RULES[1] in text
        assert STAGE_CHAIN_WALK in text
        assert STAGE_CONTEXT in text

    def test_drops_helper_filters(self):
        world, firewall, tracer, shell = _traced_world()
        fd = world.sys.open(shell, "/etc/passwd")
        world.sys.close(shell, fd)
        with pytest.raises(errors.PFDenied):
            world.sys.open(shell, "/etc/shadow")
        drops = tracer.drops()
        assert len(drops) == 1
        assert drops[0].path == "/etc/shadow"


class TestTracerBounds:
    def test_capacity_bounds_retained_traces(self):
        world, firewall, tracer, shell = _traced_world()
        firewall.disable_tracing()
        tracer = firewall.enable_tracing(capacity=4)
        for _ in range(6):
            world.sys.getpid(shell)
        assert len(tracer) <= 4

    def test_disable_tracing_stops_recording(self):
        world, firewall, tracer, shell = _traced_world()
        firewall.disable_tracing()
        world.sys.getpid(shell)
        assert firewall.tracer is None
        assert len(tracer) == 0  # nothing recorded after disable

    def test_enable_is_idempotent(self):
        firewall = ProcessFirewall()
        t1 = firewall.enable_tracing()
        t2 = firewall.enable_tracing()
        assert t1 is t2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestDecisionCacheTracing:
    def test_compiled_hits_show_in_trace(self):
        # A subject-only rule keeps the default-allow verdict
        # memoizable (no resource-dependent context consulted).
        world, firewall, tracer, shell = _traced_world(
            EngineConfig.compiled(),
            rules=["pftables -A input -o FILE_OPEN -s sshd_t -j DROP"])
        for _ in range(3):
            fd = world.sys.open(shell, "/etc/passwd")
            world.sys.close(shell, fd)
        outcomes = [t.decision_cache for t in tracer.for_op("FILE_OPEN")]
        assert "miss" in outcomes
        assert any(o.startswith("hit") for o in outcomes)
        hit_trace = [t for t in tracer.for_op("FILE_OPEN")
                     if t.decision_cache.startswith("hit")][-1]
        assert STAGE_DECISION_CACHE in hit_trace.stages
        assert hit_trace.chains == []  # the walk was skipped

    def test_uninstrumented_configs_report_off(self):
        world, firewall, tracer, shell = _traced_world()
        fd = world.sys.open(shell, "/etc/passwd")
        world.sys.close(shell, fd)
        assert all(t.decision_cache == "off" for t in tracer)
