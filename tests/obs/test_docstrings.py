"""Docstring-presence gate for the observability layer and the engine.

The same check CI runs via ``tools/check_docstrings.py``; running it as
a test makes a missing docstring fail locally before it fails in CI.
"""

import os
import sys

TOOLS_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "tools")


def test_public_surface_is_documented():
    sys.path.insert(0, os.path.abspath(TOOLS_DIR))
    try:
        from check_docstrings import missing_docstrings
    finally:
        sys.path.pop(0)
    missing = missing_docstrings()
    assert missing == [], "public symbols missing docstrings: {}".format(missing)
