"""The Session facade: construction shapes, lifecycle, deprecations."""

import pytest

from repro.api import WORLD_BUILDERS, Session, register_world, resolve_engine
from repro.deprecation import reset_warned
from repro.firewall.engine import EngineConfig
from repro.firewall.persist import save_rules
from repro.firewall.procstate import reset_substrate_stats, substrate_stats
from repro.kernel import Kernel
from repro.rulesets.default import safe_open_pf_rules
from repro.security.selinux import reference_policy
from repro.world import build_world


# ---------------------------------------------------------------------------
# resolve_engine
# ---------------------------------------------------------------------------

def _config_dict(config):
    return {name: getattr(config, name) for name in EngineConfig.__slots__}


def test_resolve_engine_none_is_optimized():
    assert _config_dict(resolve_engine(None)) == _config_dict(EngineConfig.optimized())


def test_resolve_engine_preset_string_case_insensitive():
    expected = _config_dict(EngineConfig.preset("JITTED"))
    assert _config_dict(resolve_engine("JITTED")) == expected
    assert _config_dict(resolve_engine("jitted")) == expected


def test_resolve_engine_config_passthrough():
    config = EngineConfig(resource_cache=True)
    assert resolve_engine(config) is config


def test_resolve_engine_rejects_other_types():
    with pytest.raises(TypeError):
        resolve_engine(42)
    with pytest.raises(ValueError):
        resolve_engine("NO-SUCH-COLUMN")


# ---------------------------------------------------------------------------
# construction shapes
# ---------------------------------------------------------------------------

def test_default_session_builds_standard_world():
    session = Session()
    assert session.kernel.lookup("/etc/passwd") is not None
    assert session.firewall is session.kernel.firewall
    assert session.sys is session.kernel.sys


def test_world_accepts_existing_kernel():
    kernel = build_world()
    session = Session(world=kernel)
    assert session.kernel is kernel


def test_world_kernel_rejects_kwargs():
    with pytest.raises(ValueError):
        Session(world=build_world(), world_kwargs={"x": 1})


def test_world_accepts_callable_and_tuple():
    from repro import errors

    direct = Session(world=lambda: Kernel(policy=reference_policy()))
    with pytest.raises(errors.ENOENT):
        direct.kernel.lookup("/etc/passwd")
    named = Session(world=("macro_scale", {"sessions": 2}))
    assert named.kernel.lookup("/srv/scale/s1") is not None
    with pytest.raises(errors.ENOENT):
        named.kernel.lookup("/srv/scale/s2")


def test_world_unknown_name_and_bad_type():
    with pytest.raises(ValueError):
        Session(world="no-such-world")
    with pytest.raises(TypeError):
        Session(world=42)


def test_register_world_extends_registry():
    register_world("tests-tiny", lambda: Kernel(policy=reference_policy()))
    try:
        assert Session(world="tests-tiny").kernel.processes == {}
    finally:
        del WORLD_BUILDERS["tests-tiny"]


def test_rules_shapes_agree():
    """Installer callable, save_rules text, and line list install alike."""
    lines = safe_open_pf_rules()
    from_lines = Session(rules=lines)
    text = save_rules(from_lines.firewall)
    from_text = Session(rules=text)
    from_callable = Session(rules=lambda fw: fw.install_all(lines))
    counts = {
        s.firewall.rules.rule_count()
        for s in (from_lines, from_text, from_callable)
    }
    assert counts == {from_lines.firewall.rules.rule_count()}
    assert from_lines.firewall.rules.rule_count() > 0


def test_kernel_audit_override():
    assert Session(kernel_audit=False).kernel.audit_enabled is False
    assert Session(kernel_audit=True).kernel.audit_enabled is True


def test_metered_and_traced_flags():
    session = Session(metered=True, traced=True)
    assert session.metrics.enabled
    assert session.firewall.tracer is not None
    plain = Session()
    assert not plain.metrics.enabled


# ---------------------------------------------------------------------------
# mediation verdict vocabulary
# ---------------------------------------------------------------------------

def test_mediate_returns_allow_drop():
    """The facade verdict vocabulary: strings out, no exceptions."""
    from repro.parallel.batch import record_mediations
    from repro.world import ADVERSARY_UID

    session = Session(rules=safe_open_pf_rules())
    shell = session.spawn("sh", binary_path="/bin/sh")
    session.kernel.add_symlink("/tmp/api-trap", "/etc/passwd",
                               uid=ADVERSARY_UID)
    with record_mediations(session.firewall) as stream:
        fd = session.sys.open(shell, "/etc/passwd")
        session.sys.close(shell, fd)
        with pytest.raises(Exception):
            session.sys.open(shell, "/tmp/api-trap")
    verdicts = {session.mediate(op) for op in stream}
    assert verdicts == {"allow", "drop"}
    batch = [op for op in stream]
    assert session.mediate_batch(batch) == [session.mediate(op) for op in batch]


# ---------------------------------------------------------------------------
# reap + snapshot
# ---------------------------------------------------------------------------

def test_reap_frees_census_and_state():
    session = Session(rules=safe_open_pf_rules())
    baseline = sorted(session.kernel.processes)
    reset_substrate_stats()
    proc = session.spawn("churn", binary_path="/bin/sh")
    fd = session.sys.open(proc, "/etc/passwd")
    assert fd in proc.fds
    session.reap(proc)
    assert sorted(session.kernel.processes) == baseline
    assert not proc.alive
    assert proc.fds == {}
    assert len(proc.pf.state) == 0
    assert substrate_stats()["releases"] == 1


def test_snapshot_shape():
    session = Session(metered=True)
    snap = session.snapshot()
    assert set(snap) == {"stats", "metrics_prom", "live_pids", "audit_next_seq"}
    assert snap["live_pids"] == sorted(session.kernel.processes)
    assert isinstance(snap["metrics_prom"], str)
    assert Session().snapshot()["metrics_prom"] is None


# ---------------------------------------------------------------------------
# deprecation shims
# ---------------------------------------------------------------------------

def test_log_records_deprecated():
    reset_warned()
    session = Session()
    with pytest.warns(DeprecationWarning, match="log_records"):
        session.firewall.log_records
    # warn-once: a second touch is silent
    import warnings
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        session.firewall.log_records


def test_process_pf_views_deprecated():
    reset_warned()
    session = Session()
    proc = session.spawn("sh", binary_path="/bin/sh")
    with pytest.warns(DeprecationWarning, match="proc.pf.state"):
        proc.pf_state
    with pytest.warns(DeprecationWarning, match="proc.pf.context_cache"):
        proc.pf_context_cache
    with pytest.warns(DeprecationWarning, match="proc.pf.decision_cache"):
        proc.pf_decision_cache
    assert proc.pf_state is proc.pf.state
