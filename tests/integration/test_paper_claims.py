"""Headline shape claims of the evaluation, asserted end-to-end.

These are the qualitative results a reader takes away from §6; each
test states the claim it checks.  Absolute numbers are Python-speed,
so every assertion is about *ordering and direction*, never magnitude.
"""

import pytest

from repro import errors
from repro.firewall.engine import EngineConfig, ProcessFirewall
from repro.rulesets.generated import install_full_rulebase
from repro.workloads.lmbench import LmbenchSuite, time_operation
from repro.workloads.openbench import syscall_counts
from repro.world import build_world, spawn_root_shell


class TestTable6Shape:
    """FULL costs most; each optimization recovers cost; EPTSPC lands
    near BASE."""

    @pytest.fixture(scope="class")
    def timings(self):
        columns = ["DISABLED", "BASE", "FULL", "CONCACHE", "LAZYCON", "EPTSPC"]
        out = {}
        for column in columns:
            suite = LmbenchSuite(column, rule_count=400)
            # Best-of-3: the shape assertions compare medians-of-means,
            # and a single noisy round under full-suite load can flip
            # close comparisons.
            out[column] = {
                "stat": min(time_operation(suite.op_stat, iterations=300, warmup=30) for _ in range(3)),
                "null": min(time_operation(suite.op_null, iterations=300, warmup=30) for _ in range(3)),
            }
        return out

    def test_full_is_worst_for_stat(self, timings):
        stat = {c: t["stat"] for c, t in timings.items()}
        assert stat["FULL"] > stat["DISABLED"] * 1.3
        assert stat["FULL"] >= max(stat["LAZYCON"], stat["EPTSPC"])

    def test_optimizations_recover_cost(self, timings):
        stat = {c: t["stat"] for c, t in timings.items()}
        null = {c: t["null"] for c, t in timings.items()}
        # Entrypoint chains are the big win on resource syscalls.
        assert stat["EPTSPC"] < stat["FULL"] * 0.8
        # Lazy context retrieval shows on rows where collection (not
        # rule scanning) dominates — the null syscall.
        assert null["LAZYCON"] < null["FULL"] * 0.8

    def test_base_is_cheap(self, timings):
        stat = {c: t["stat"] for c, t in timings.items()}
        assert stat["BASE"] < stat["FULL"]
        assert stat["BASE"] <= stat["DISABLED"] * 1.6

    def test_stat_hit_harder_than_null(self, timings):
        """Resource-bound syscalls pay more than null syscalls (paper:
        stat +110% vs null +8% in FULL).  Our simulated null syscall's
        baseline is a single Python call (~1µs), which inflates relative
        overheads, so the claim is asserted on *absolute* added cost:
        stat mediates several resource accesses per call and must pay a
        multiple of null's single hook."""
        added = {
            op: timings["FULL"][op] - timings["DISABLED"][op]
            for op in ("stat", "null")
        }
        assert added["stat"] > 3 * added["null"]


class TestFigure4Shape:
    def test_safe_open_grows_with_path_length(self):
        counts = syscall_counts(path_lengths=(1, 4, 7))
        deltas = [counts["safe_open"][n] for n in (1, 4, 7)]
        assert deltas[2] - deltas[1] == deltas[1] - deltas[0]  # linear
        assert counts["safe_open"][7] >= 4 * 7  # >=4 syscalls/component

    def test_safe_open_pf_is_single_syscall(self):
        counts = syscall_counts(path_lengths=(7,))
        assert counts["safe_open_PF"][7] == 1


class TestSecurityClaims:
    def test_all_nine_exploits_blocked(self):
        from repro.attacks.exploits import run_security_evaluation

        rows = run_security_evaluation()
        assert len(rows) == 9
        assert all(r["succeeds_unprotected"] for r in rows)
        assert all(r["blocked_protected"] for r in rows)
        assert all(r["benign_ok"] for r in rows)

    def test_full_rulebase_blocks_exploits_too(self):
        """The deployed configuration (PF Full) blocks the attacks the
        per-scenario minimal rules block."""
        from repro.attacks.exploits import EXPLOITS
        from repro.rulesets.generated import generate_full_rulebase

        scenario = EXPLOITS["E1"]()
        scenario.build(with_firewall=False)
        firewall = ProcessFirewall()
        scenario.kernel.attach_firewall(firewall)
        firewall.install_all(generate_full_rulebase(size=100))
        assert not scenario.run(with_firewall=True).succeeded


class TestZeroFalsePositiveThreshold:
    def test_1149_claim(self):
        from repro.rulegen.classify import zero_fp_threshold
        from repro.rulegen.synth import synthesize_trace

        assert zero_fp_threshold(synthesize_trace()) == 1149


class TestSystemWideCoverage:
    def test_one_rule_covers_many_programs(self):
        """R1 protects every process that uses the dynamic linker —
        the 'single mechanism, many attacks' claim."""
        from repro.programs.ld_so import DynamicLinker
        from repro.rulesets.default import RULES_R1_R12

        world = build_world()
        pf = ProcessFirewall()
        world.attach_firewall(pf)
        pf.install(RULES_R1_R12[0])
        world.add_file("/tmp/evil.so", b"\x7fELF", uid=1000, mode=0o755)
        for comm in ("icecat", "apache2", "java"):
            victim = world.spawn(comm, uid=0, label="unconfined_t",
                                 binary_path="/usr/bin/" + comm,
                                 env={"LD_LIBRARY_PATH": "/tmp"})
            linker = DynamicLinker(world, victim)
            with pytest.raises(errors.PFDenied):
                linker.load_library("evil.so")
