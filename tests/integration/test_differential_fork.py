"""Differential harness: CoW vs eager fork-state must be invisible.

``kernel.fork_state_mode`` selects how ``fork(2)`` propagates the
per-process firewall bundle — O(1) structural sharing (``cow``, the
default) or the deep-copy baseline (``eager``).  The choice is an
engine-internal optimization; nothing observable may change.  Three
probes:

1. Every Table 4 exploit (E1–E9) runs attack + benign under both
   modes, with a fork+execve storm *interposed* between scenario setup
   and the exploit (every live process forks a worker that execs and
   exits, plus one long-lived forked bystander) — identical outcomes,
   drop counts, stats, and log records.
2. A recorded fork/exec-heavy workload with live STATE rule traffic
   (binds recording invariants pre-fork, children tripping and
   re-recording them) replays against full-rulebase worlds in both
   modes — identical executed/failure streams, verdicts, and logs.
3. Parent/child decision caches must share right after fork and
   diverge independently afterwards (the CoW contract, asserted via
   the same workload).
"""

import pytest

from repro import errors
from repro.attacks.base import AttackResult
from repro.attacks.exploits import EXPLOITS
from repro.firewall.engine import EngineConfig, ProcessFirewall
from repro.rulesets.generated import install_full_rulebase
from repro.workloads.replay import record_syscalls, replay
from repro.world import build_world, spawn_root_shell

MODES = ("cow", "eager")


def _strip_time(records):
    return [{k: v for k, v in rec.items() if k != "time"} for rec in records]


def _interpose_fork_exec(kernel):
    """A fork+execve storm over every live process.

    Each pre-existing process forks a worker that execs a fresh image
    (dropping its bundle) and exits, then forks a bystander that stays
    alive holding the shared snapshot — so if CoW leaked writes across
    relatives, the exploit run after this storm would see it.
    """
    for pid in sorted(kernel.processes):
        proc = kernel.processes[pid]
        try:
            worker = kernel.sys.fork(proc)
            kernel.sys.execve(worker, "/bin/sh", argv=["/bin/sh", "-c", "true"])
            kernel.sys.exit(worker, 0)
            kernel.sys.fork(proc)  # long-lived bystander
        except errors.KernelError:
            # A scenario process without exec rights (or mid-attack
            # credentials) keeps the storm going for the others.
            continue


def _attack_result(scenario):
    """Re-run :meth:`AttackScenario.run`'s classification after our
    interposed storm (run() itself gives no post-setup hook)."""
    try:
        succeeded = scenario._attack()
    except errors.PFDenied as exc:
        return AttackResult(False, blocked=True, detail=exc.message)
    except errors.KernelError as exc:
        return AttackResult(False, denied=True, detail="{}: {}".format(exc.errno_name, exc.message))
    blocked = (
        not succeeded and scenario.firewall is not None and scenario.firewall.stats.drops > 0
    )
    return AttackResult(bool(succeeded), blocked=blocked, detail="")


def _scenario_observables(scenario_cls, mode):
    """Attack + benign observables under one fork-state mode."""

    def set_mode(firewall):
        firewall.kernel.fork_state_mode = mode

    out = {}
    scenario = scenario_cls()
    scenario.build(True, config=EngineConfig.compiled(), instrument=set_mode)
    _interpose_fork_exec(scenario.kernel)
    result = _attack_result(scenario)
    out["attack"] = (result.succeeded, result.blocked, result.denied)
    stats = scenario.firewall.stats
    out["attack_stats"] = (stats.invocations, stats.accepts, stats.drops)
    out["attack_logs"] = _strip_time(scenario.firewall.log_records)
    benign = scenario_cls()
    benign.build(True, config=EngineConfig.compiled(), instrument=set_mode)
    _interpose_fork_exec(benign.kernel)
    out["benign"] = bool(benign._benign())
    benign_stats = benign.firewall.stats
    out["benign_stats"] = (benign_stats.invocations, benign_stats.accepts, benign_stats.drops)
    out["benign_logs"] = _strip_time(benign.firewall.log_records)
    return out


@pytest.mark.parametrize("eid", sorted(EXPLOITS))
def test_exploits_identical_across_fork_modes(eid):
    reference = _scenario_observables(EXPLOITS[eid], "eager")
    cow = _scenario_observables(EXPLOITS[eid], "cow")
    assert cow == reference


def _fork_state_workload(world, shell):
    """fork/execve-heavy traffic with live STATE rule state.

    The shell binds (recording a STATE invariant), forks workers that
    inherit it, trip it, overwrite it with their own binds, exec, and
    exit — exercising every transition of the state lifecycle table.
    """
    sys = world.sys
    sys.bind(shell, "/var/run/main.sock")
    sys.chmod(shell, "/var/run/main.sock", 0o660)
    for i in range(3):
        worker = sys.fork(shell)
        sys.stat(worker, "/etc/passwd")
        # Inherited invariant holds for the parent's socket ...
        sys.chmod(worker, "/var/run/main.sock", 0o600)
        # ... then the worker re-records with its own bind.
        sys.bind(worker, "/var/run/w{}.sock".format(i))
        try:
            sys.chmod(worker, "/var/run/main.sock", 0o640)
        except errors.KernelError:
            pass  # the TOCTTOU drop — part of the recorded stream
        grand = sys.fork(worker)
        sys.execve(grand, "/bin/sh", argv=["/bin/sh", "-c", "true"])
        sys.stat(grand, "/bin/sh")
        sys.exit(grand, 0)
        sys.exit(worker, 0)
    for _ in range(4):
        sys.stat(shell, "/etc/passwd")


def _record_trace():
    world = build_world()
    shell = spawn_root_shell(world)
    with record_syscalls(world) as trace:
        _fork_state_workload(world, shell)
    return trace, shell.pid


#: Unconditioned variants of the dbus TOCTTOU template (the full
#: rulebase's STATE rules are entrypoint-gated to dbus-daemon, which a
#: recorded shell never hits) so the replayed binds/chmods above carry
#: live STATE traffic through fork.
STATE_RULES = (
    "pftables -A input -o SOCKET_BIND -j STATE --set --key 0xbeef --value C_INO",
    "pftables -A input -o SOCKET_SETATTR -m STATE --key 0xbeef --cmp C_INO --nequal -j DROP",
)


def _replay_observables(trace, recorded_pid, mode):
    world = build_world()
    firewall = ProcessFirewall(EngineConfig.compiled())
    world.attach_firewall(firewall)
    install_full_rulebase(firewall)
    firewall.install_all(list(STATE_RULES))
    world.fork_state_mode = mode
    shell = spawn_root_shell(world)
    result = replay(world, trace, {recorded_pid: shell})
    return {
        "executed": result.executed,
        "failures": [(method, errno) for _index, method, errno in result.failures],
        "stats": (firewall.stats.invocations, firewall.stats.accepts, firewall.stats.drops),
        "logs": _strip_time(firewall.log_records),
    }


def test_fork_state_workload_replays_identically():
    trace, recorded_pid = _record_trace()
    assert len(trace) > 20
    reference = _replay_observables(trace, recorded_pid, "eager")
    cow = _replay_observables(trace, recorded_pid, "cow")
    assert cow == reference
    assert reference["executed"] > 20
    assert reference["stats"][0] > 0


def test_decision_caches_share_then_diverge():
    """The CoW contract on the decision cache, end to end: shared
    entries right after fork, independent divergence after."""
    world = build_world()
    firewall = ProcessFirewall(EngineConfig.compiled())
    world.attach_firewall(firewall)
    install_full_rulebase(firewall)
    shell = spawn_root_shell(world)
    for _ in range(3):
        world.sys.stat(shell, "/etc/passwd")
    assert shell.pf_decision_cache is not None
    child = world.sys.fork(shell)
    assert child.pf_decision_cache[1] is shell.pf_decision_cache[1]
    child.call(child.binary, 0x51)
    world.sys.stat(child, "/etc/passwd")
    assert child.pf_decision_cache[1] is not shell.pf_decision_cache[1]
    shell.call(shell.binary, 0x52)
    world.sys.stat(shell, "/etc/passwd")

    def heads(proc):
        return {
            h for v in proc.pf_decision_cache[1].values() if v is not True for h in v
        }

    # Each side memoized its own head into its own private entries.
    assert ("/bin/sh", 0x51) in heads(child)
    assert ("/bin/sh", 0x51) not in heads(shell)
    assert ("/bin/sh", 0x52) in heads(shell)
    assert ("/bin/sh", 0x52) not in heads(child)
