"""Differential harness: observability on vs off must be invisible.

Tracing and metrics are pure recorders; enabling them may not change a
single verdict, counter, log record, or audit entry.  Mirrors the
compiled-engine differential harness:

1. Every Table 4 exploit (E1–E9) runs attack + benign twice — bare vs
   fully instrumented (tracing + metrics) — and every observable the
   bare run produces must be byte-identical.
2. A recorded macro workload replays under both — same story.
3. Positive direction: with tracing on, every DROP the exploit suite
   produces yields a trace naming the matching rule and the context
   fields the walk consumed.
"""

import pytest

from repro.attacks.exploits import EXPLOITS
from repro.firewall.engine import EngineConfig, ProcessFirewall
from repro.rulesets.generated import install_full_rulebase
from repro.workloads.replay import record_syscalls, replay
from repro.world import build_world, spawn_root_shell


def _instrument(firewall):
    firewall.enable_tracing(capacity=4096)
    firewall.metrics.enable()


def _strip_time(records):
    return [{k: v for k, v in rec.items() if k != "time"} for rec in records]


def _stats_tuple(stats):
    return (
        stats.invocations,
        stats.rules_evaluated,
        stats.accepts,
        stats.drops,
        stats.cache_hits,
        stats.decision_cache_hits,
        stats.rescache_hits,
        stats.rescache_misses,
        stats.rescache_invalidations,
        dict(stats.context_collections),
    )


def _scenario_observables(scenario_cls, config, instrument):
    out = {}
    scenario = scenario_cls()
    result = scenario.run(with_firewall=True, config=config(), instrument=instrument)
    out["attack"] = (result.succeeded, result.blocked, result.denied, result.detail)
    out["attack_stats"] = _stats_tuple(scenario.firewall.stats)
    out["attack_logs"] = _strip_time(scenario.firewall.log_records)
    out["attack_drops"] = _strip_time(scenario.firewall.audit.records(kind="drop"))
    benign = scenario_cls()
    out["benign"] = benign.run_benign(with_firewall=True, config=config(),
                                      instrument=instrument)
    out["benign_stats"] = _stats_tuple(benign.firewall.stats)
    out["benign_logs"] = _strip_time(benign.firewall.log_records)
    return out


@pytest.mark.parametrize("config_name,config",
                         [("EPTSPC", EngineConfig.optimized),
                          ("COMPILED", EngineConfig.compiled),
                          ("JITTED", EngineConfig.jitted),
                          ("TABLED", EngineConfig.tabled)])
@pytest.mark.parametrize("eid", sorted(EXPLOITS))
def test_exploits_identical_with_observability_on(eid, config_name, config):
    bare = _scenario_observables(EXPLOITS[eid], config, instrument=None)
    instrumented = _scenario_observables(EXPLOITS[eid], config, _instrument)
    assert instrumented == bare


@pytest.mark.parametrize("eid", sorted(EXPLOITS))
def test_every_drop_yields_an_explaining_trace(eid):
    """Positive direction: each drop is explained by a trace naming the
    matching rule and the context fields the walk consumed."""
    scenario = EXPLOITS[eid]()
    holder = {}

    def instrument(firewall):
        holder["firewall"] = firewall
        _instrument(firewall)

    scenario.run(with_firewall=True, instrument=instrument)
    firewall = holder["firewall"]
    drop_traces = firewall.tracer.drops()
    assert len(drop_traces) == firewall.stats.drops
    installed = {rule.text
                 for table in firewall.rules.tables.values()
                 for chain in table.chains.values()
                 for rule in chain}
    for trace in drop_traces:
        assert trace.verdict == "DROP"
        assert trace.rule, "a drop trace must name its rule"
        assert trace.rule in installed
        # The matched rule appears in the chain walk with a DROP verdict.
        matched = [ev for visit in trace.chains for ev in visit.rules
                   if ev.result == "matched" and ev.verdict == "DROP"]
        assert matched and matched[-1].rule == trace.rule
        # Consumed context fields are attributed (a drop can only come
        # from a matched rule, which consulted at least the fields of
        # its match modules — ENTRYPOINT-only rules included).
        assert trace.consumed_fields() or trace.op == "SYSCALL_BEGIN"
        # Drop audit record and trace agree.
    drops = firewall.audit.records(kind="drop")
    assert sorted(r["rule"] for r in drops) == sorted(t.rule for t in drop_traces)


def _macro_workload(world, shell):
    sys = world.sys
    for _ in range(8):
        sys.stat(shell, "/etc/passwd")
        fd = sys.open(shell, "/etc/passwd")
        sys.read(shell, fd, 32)
        sys.close(shell, fd)
    for _ in range(4):
        sys.stat(shell, "/lib/libc.so.6")
        sys.getpid(shell)
    child = sys.fork(shell)
    sys.execve(child, "/bin/sh", argv=["/bin/sh", "-c", "true"])
    sys.stat(child, "/bin/sh")
    sys.exit(child, 0)


def _record_trace():
    world = build_world()
    shell = spawn_root_shell(world)
    with record_syscalls(world) as trace:
        _macro_workload(world, shell)
    return trace, shell.pid


def _replay_observables(trace, recorded_pid, instrument):
    world = build_world()
    firewall = ProcessFirewall(EngineConfig.compiled())
    world.attach_firewall(firewall)
    install_full_rulebase(firewall)
    if instrument is not None:
        instrument(firewall)
    shell = spawn_root_shell(world)
    result = replay(world, trace, {recorded_pid: shell})
    return {
        "executed": result.executed,
        "failures": [(method, errno) for _i, method, errno in result.failures],
        "stats": _stats_tuple(firewall.stats),
        "logs": _strip_time(firewall.log_records),
    }


def test_recorded_workload_identical_with_observability_on():
    trace, recorded_pid = _record_trace()
    bare = _replay_observables(trace, recorded_pid, None)
    instrumented = _replay_observables(trace, recorded_pid, _instrument)
    assert instrumented == bare
    assert bare["executed"] > 20
    assert bare["stats"][0] > 0
