"""Differential harness: optimized() vs compiled() must be invisible.

The COMPILED rung (compiled dispatch + negative-decision cache) is an
engine-internal optimization; nothing observable may change.  Two
probes:

1. Every Table 4 exploit (E1–E9) runs attack + benign under both
   configurations — identical outcomes, drop counts, and log records.
2. A recorded macro-style workload (file tree walking, builds, forks,
   execs) replays against two fresh full-rulebase worlds — identical
   executed/failure streams, verdict counters, and log records.
"""

import pytest

from repro.attacks.exploits import EXPLOITS
from repro.firewall.engine import EngineConfig, ProcessFirewall
from repro.rulesets.generated import install_full_rulebase
from repro.workloads.replay import record_syscalls, replay
from repro.world import build_world, spawn_root_shell

CONFIGS = {"EPTSPC": EngineConfig.optimized, "COMPILED": EngineConfig.compiled}


def _strip_time(records):
    """Log records minus the wall-clock field (worlds tick alike, but
    keep the comparison about content, not clock plumbing)."""
    return [{k: v for k, v in rec.items() if k != "time"} for rec in records]


def _scenario_observables(scenario_cls, config):
    """Run one exploit scenario end-to-end; collect everything visible."""
    out = {}
    scenario = scenario_cls()
    result = scenario.run(with_firewall=True, config=config())
    out["attack"] = (result.succeeded, result.blocked, result.denied)
    stats = scenario.firewall.stats
    out["attack_stats"] = (stats.invocations, stats.accepts, stats.drops)
    out["attack_logs"] = _strip_time(scenario.firewall.log_records)
    benign = scenario_cls()
    out["benign"] = benign.run_benign(with_firewall=True)
    benign_stats = benign.firewall.stats
    out["benign_stats"] = (benign_stats.invocations, benign_stats.accepts, benign_stats.drops)
    out["benign_logs"] = _strip_time(benign.firewall.log_records)
    return out


@pytest.mark.parametrize("eid", sorted(EXPLOITS))
def test_exploits_identical_under_compiled_engine(eid):
    reference = _scenario_observables(EXPLOITS[eid], CONFIGS["EPTSPC"])
    compiled = _scenario_observables(EXPLOITS[eid], CONFIGS["COMPILED"])
    assert compiled == reference


def _macro_workload(world, shell):
    """A small macro workload: tree walks, builds, forks, and execs."""
    sys = world.sys
    for i in range(8):
        sys.stat(shell, "/etc/passwd")
        fd = sys.open(shell, "/etc/passwd")
        sys.read(shell, fd, 32)
        sys.close(shell, fd)
    for i in range(4):
        sys.stat(shell, "/lib/libc.so.6")
        sys.getpid(shell)
    child = sys.fork(shell)
    sys.execve(child, "/bin/sh", argv=["/bin/sh", "-c", "true"])
    sys.stat(child, "/bin/sh")
    sys.exit(child, 0)
    worker = sys.fork(shell)
    for i in range(4):
        sys.stat(worker, "/etc/passwd")
    sys.exit(worker, 0)


def _record_trace():
    world = build_world()
    shell = spawn_root_shell(world)
    with record_syscalls(world) as trace:
        _macro_workload(world, shell)
    return trace, shell.pid


def _replay_observables(trace, recorded_pid, config):
    world = build_world()
    firewall = ProcessFirewall(config())
    world.attach_firewall(firewall)
    install_full_rulebase(firewall)
    shell = spawn_root_shell(world)
    result = replay(world, trace, {recorded_pid: shell})
    return {
        "executed": result.executed,
        "failures": [(method, errno) for _index, method, errno in result.failures],
        "stats": (firewall.stats.invocations, firewall.stats.accepts, firewall.stats.drops),
        "logs": _strip_time(firewall.log_records),
    }


def test_recorded_workload_replays_identically():
    trace, recorded_pid = _record_trace()
    assert len(trace) > 20
    reference = _replay_observables(trace, recorded_pid, CONFIGS["EPTSPC"])
    compiled = _replay_observables(trace, recorded_pid, CONFIGS["COMPILED"])
    assert compiled == reference
    # The comparison is meaningful only if the replay actually ran.
    assert reference["executed"] > 20
    assert reference["stats"][0] > 0


def test_compiled_short_circuits_during_replay():
    """Sanity: the equivalence above is not vacuous — the compiled
    engine really does take the cached path during the replay."""
    trace, recorded_pid = _record_trace()
    world = build_world()
    firewall = ProcessFirewall(EngineConfig.compiled())
    world.attach_firewall(firewall)
    install_full_rulebase(firewall)
    shell = spawn_root_shell(world)
    replay(world, trace, {recorded_pid: shell})
    assert firewall.stats.decision_cache_hits > 0
