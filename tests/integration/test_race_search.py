"""Interleaving search: the firewall wins under *every* schedule.

A TOCTTOU defence that only works for the interleaving the developer
imagined is no defence.  These tests drive the victim/adversary pairs
under randomized schedules (seeded, so failures replay) and assert:

- unprotected: some schedule makes the attack succeed (the race is
  real);
- protected: **no** schedule lets the attack goal hold.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import errors
from repro.firewall.engine import ProcessFirewall
from repro.rulesets.default import safe_open_pf_rules
from repro.sched.scheduler import Scheduler
from repro.vfs.file import OpenFlags
from repro.world import build_world, spawn_adversary, spawn_root_shell

SECRET_TARGET = "/etc/shadow"
WORK = "/tmp/work-file"


def _build(protected):
    kernel = build_world()
    if protected:
        firewall = kernel.attach_firewall(ProcessFirewall())
        firewall.install_all(safe_open_pf_rules())
    victim = spawn_root_shell(kernel, comm="victim")
    adversary = spawn_adversary(kernel)
    return kernel, victim, adversary


def _victim_steps(kernel, victim, outcome):
    """open_nolink with a preemption point in the check/use window."""
    sys = kernel.sys
    try:
        st_ = sys.lstat(victim, WORK)
        if st_.is_symlink():
            return
        yield
        fd = sys.open(victim, WORK)
        outcome["leaked"] = sys.read(victim, fd)
        sys.close(victim, fd)
    except errors.KernelError as exc:
        outcome["error"] = exc
    if False:  # pragma: no cover - make this a generator even on error
        yield


def _adversary_steps(kernel, adversary):
    sys = kernel.sys
    fd = sys.open(adversary, WORK, flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY, mode=0o666)
    sys.write(adversary, fd, b"innocent")
    sys.close(adversary, fd)
    yield
    try:
        sys.unlink(adversary, WORK)
        sys.symlink(adversary, SECRET_TARGET, WORK)
    except errors.KernelError:
        pass
    yield


def _run(protected, seed):
    kernel, victim, adversary = _build(protected)
    outcome = {}
    sched = Scheduler(policy="random", seed=seed)
    sched.add("adversary", _adversary_steps(kernel, adversary))
    sched.add("victim", _victim_steps(kernel, victim, outcome))
    sched.run()
    leaked = outcome.get("leaked", b"")
    return b"secret" in leaked


def test_unprotected_race_is_winnable():
    """Some schedule leaks the secret on a stock kernel."""
    assert any(_run(protected=False, seed=seed) for seed in range(30))


def test_unprotected_race_is_losable_too():
    """And some schedule doesn't — it really is a race."""
    assert any(not _run(protected=False, seed=seed) for seed in range(30))


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_protected_never_leaks_under_any_schedule(seed):
    assert not _run(protected=True, seed=seed)
