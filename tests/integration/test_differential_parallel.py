"""Differential harness: sharded replay and batched mediation are invisible.

Two optimizations ride this PR and both must be observably identical
to the serial per-call JITTED engine:

1. **Sharded replay** — the macro workload sharded across workers
   (inline and real ``spawn`` processes) must merge back into the
   serial verdict stream, stats, metrics, and audit ring.  COMPILED
   configurations (no resource-context cache) are held to *full*
   stats/metrics equality; JITTED runs exclude only the rescache
   counters whose locality legitimately shifts under sharding
   (``repro.parallel.merge`` documents why).
2. **Batched mediation** — ``mediate_batch`` over the operation
   streams of every Table 4 exploit (attack *and* benign arms) and
   over randomized mutation-heavy batches must match a per-call
   ``mediate`` loop byte for byte: verdicts, stats, log records,
   audit entries.
"""

import contextlib
import random

import pytest

from repro import errors
from repro.attacks.exploits import EXPLOITS
from repro.firewall.engine import EngineConfig, ProcessFirewall, record_mutates
from repro.firewall.persist import save_rules
from repro.parallel.batch import (
    record_mediations,
    replay_mediations,
    reset_mediation_state,
)
from repro.parallel.driver import replay_serial, replay_sharded
from repro.parallel.merge import (
    SHARD_VARIANT_METRIC_PREFIXES,
    SHARD_VARIANT_STATS,
    comparable_metrics,
    comparable_stats,
    strip_volatile,
)
from repro.rulesets.generated import install_full_rulebase
from repro.vfs.file import OpenFlags
from repro.workloads.macro import record_scale_trace
from repro.world import build_world, spawn_root_shell

SESSIONS = 3
WORLD = ("macro_scale", {"sessions": SESSIONS})

#: Extra rules for the audit-interleave probe: a LOG rule the workload
#: trips on every config-file stat and a DROP on the session data
#: opens, so both audit kinds appear mid-trace on every lineage.
AUDIT_RULES = (
    "pftables -A input -o FILE_GETATTR -d etc_t -j LOG",
    "pftables -A input -o FILE_OPEN -d var_t -j DROP",
)


def _rules_text(extra_rules=()):
    firewall = ProcessFirewall(EngineConfig.jitted())
    install_full_rulebase(firewall)
    if extra_rules:
        firewall.install_all(list(extra_rules))
    return save_rules(firewall)


def _audit_key(rows):
    return [
        (row["lclock"], row["sub"], row["kind"], row["severity"],
         strip_volatile(row["record"]))
        for row in rows
    ]


@pytest.fixture(scope="module")
def scale_trace():
    return record_scale_trace(sessions=SESSIONS, loops=10, profile="mixed")


# ---------------------------------------------------------------------------
# sharded replay vs serial
# ---------------------------------------------------------------------------


def test_compiled_metered_sharded_full_equality(scale_trace):
    """COMPILED has no rescache, so *every* counter must survive
    sharding: stats dict equality and full metric-series equality
    (phase timers excepted — they are wall-clock by construction)."""
    rules = _rules_text()
    serial = replay_serial(scale_trace, rules, config="COMPILED",
                           metered=True, world=WORLD)
    sharded = replay_sharded(scale_trace, rules, workers=3, config="COMPILED",
                             inline=True, metered=True, world=WORLD)
    assert sharded["merged"]["verdicts"] == serial["merged"]["verdicts"]
    assert sharded["merged"]["failures"] == serial["merged"]["failures"]
    assert sharded["merged"]["stats"] == serial["merged"]["stats"]
    assert _audit_key(sharded["merged"]["audit"]) == _audit_key(serial["merged"]["audit"])
    assert comparable_metrics(sharded["merged"]["metrics_prom"],
                              exclude_prefixes=("pf_phase_",)) == \
        comparable_metrics(serial["merged"]["metrics_prom"],
                           exclude_prefixes=("pf_phase_",))


def test_jitted_metered_sharded_filtered_equality(scale_trace):
    rules = _rules_text()
    serial = replay_serial(scale_trace, rules, metered=True, world=WORLD)
    sharded = replay_sharded(scale_trace, rules, workers=2,
                             inline=True, metered=True, world=WORLD)
    assert sharded["merged"]["verdicts"] == serial["merged"]["verdicts"]
    assert comparable_stats(sharded["merged"]["stats"], SHARD_VARIANT_STATS) == \
        comparable_stats(serial["merged"]["stats"], SHARD_VARIANT_STATS)
    assert comparable_metrics(sharded["merged"]["metrics_prom"],
                              SHARD_VARIANT_METRIC_PREFIXES) == \
        comparable_metrics(serial["merged"]["metrics_prom"],
                           SHARD_VARIANT_METRIC_PREFIXES)


def test_audit_interleaves_by_logical_clock(scale_trace):
    rules = _rules_text(AUDIT_RULES)
    serial = replay_serial(scale_trace, rules, world=WORLD)
    sharded = replay_sharded(scale_trace, rules, workers=3,
                             inline=True, world=WORLD)
    merged = sharded["merged"]["audit"]
    assert _audit_key(merged) == _audit_key(serial["merged"]["audit"])
    # The probe is not vacuous: both audit kinds fired, from more than
    # one worker, and the merge really interleaved (monotone lclock).
    kinds = {row["kind"] for row in merged}
    assert {"log", "drop"} <= kinds
    workers = {row["worker"] for row in merged}
    assert len(workers) >= 2
    lclocks = [row["lclock"] for row in merged]
    assert lclocks == sorted(lclocks)
    # Records from non-zero workers carry *recorded* pids: their worker
    # worlds spawned only their own roots (different live pids), so a
    # match against serial is only possible through pid normalization.
    assert any(row["worker"] != 0 and "pid" in row["record"] for row in merged)


def test_spawn_two_workers_match_serial():
    """The production path: real spawn-context OS worker processes."""
    trace = record_scale_trace(sessions=2, loops=6, profile="null")
    rules = _rules_text()
    world = ("macro_scale", {"sessions": 2})
    serial = replay_serial(trace, rules, world=world)
    sharded = replay_sharded(trace, rules, workers=2, inline=False, world=world)
    assert sharded["mode"] == "spawn"
    assert len(sharded["snapshots"]) == 2
    assert sharded["merged"]["verdicts"] == serial["merged"]["verdicts"]
    assert comparable_stats(sharded["merged"]["stats"], SHARD_VARIANT_STATS) == \
        comparable_stats(serial["merged"]["stats"], SHARD_VARIANT_STATS)
    assert _audit_key(sharded["merged"]["audit"]) == _audit_key(serial["merged"]["audit"])


# ---------------------------------------------------------------------------
# batched mediation vs per-call
# ---------------------------------------------------------------------------


def _strip_times(records):
    return [{k: v for k, v in rec.items() if k != "time"} for rec in records]


def _batch_observables(firewall):
    return (
        firewall.stats.as_dict(),
        _strip_times([dict(r) for r in firewall.log_records]),
        [(e.kind, e.severity, strip_volatile(e.record, ("time",)))
         for e in firewall.audit.entries()],
    )


def _assert_batched_identical(firewall, operations):
    reset_mediation_state(firewall)
    percall = replay_mediations(firewall, operations, batched=False)
    percall_obs = _batch_observables(firewall)
    reset_mediation_state(firewall)
    batched = replay_mediations(firewall, operations, batched=True)
    assert batched == percall
    assert _batch_observables(firewall) == percall_obs
    return percall


def _captured_scenario_stream(scenario, mode):
    """Run one scenario arm under JITTED, capturing its operation
    stream through the instrument hook; returns (firewall, ops)."""
    holder = {}
    with contextlib.ExitStack() as stack:
        def instrument(firewall):
            holder["firewall"] = firewall
            holder["ops"] = stack.enter_context(record_mediations(firewall))

        getattr(scenario, mode)(with_firewall=True,
                                config=EngineConfig.jitted(),
                                instrument=instrument)
    return holder["firewall"], holder["ops"]


@pytest.mark.parametrize("eid", sorted(EXPLOITS))
@pytest.mark.parametrize("mode", ["run", "run_benign"])
def test_exploit_streams_batched_identical(eid, mode):
    firewall, operations = _captured_scenario_stream(EXPLOITS[eid](), mode)
    assert operations, "scenario produced no mediations to batch"
    _assert_batched_identical(firewall, operations)


def _mutation_workload(kernel, proc, rng):
    """Read-heavy stream with chmod/rename/unlink/create churn mixed in
    at random — every mutation forces the batched path to fall back."""
    sys = kernel.sys
    created = []
    serial = [0]

    def create():
        path = "/tmp/mut{}".format(serial[0])
        serial[0] += 1
        fd = sys.open(proc, path, flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        sys.write(proc, fd, b"x")
        sys.close(proc, fd)
        created.append(path)

    actions = [
        lambda: sys.stat(proc, "/etc/passwd"),
        lambda: sys.access(proc, "/etc/passwd"),
        lambda: sys.getpid(proc),
        create,
        lambda: created and sys.chmod(proc, rng.choice(created), 0o640),
        lambda: created and sys.rename(proc, created[-1], created[-1] + ".r")
        and None,
        lambda: created and sys.unlink(proc, created.pop()),
    ]
    weights = [5, 3, 3, 2, 1, 1, 1]
    for _ in range(150):
        action = rng.choices(actions, weights=weights)[0]
        try:
            action()
        except errors.KernelError:
            pass  # denials/noise are part of the stream


@pytest.mark.parametrize("seed", range(10))
def test_randomized_mutation_batches_identical(seed):
    kernel = build_world()
    kernel.audit_enabled = False
    firewall = ProcessFirewall(EngineConfig.jitted())
    kernel.attach_firewall(firewall)
    install_full_rulebase(firewall)
    shell = spawn_root_shell(kernel)
    rng = random.Random(seed)
    with record_mediations(firewall) as operations:
        _mutation_workload(kernel, shell, rng)
    assert any(record_mutates(op) for op in operations)
    assert any(not record_mutates(op) for op in operations)
    _assert_batched_identical(firewall, operations)
