"""Syscall fuzzing: random multi-process sequences, clean failures only.

Whatever sequence of syscalls a mix of root and unprivileged processes
throws at the kernel — with the full 1218-rule firewall attached — the
only acceptable failures are :class:`repro.errors.KernelError`
subclasses, and the filesystem invariants must hold afterwards.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import errors
from repro.firewall.engine import ProcessFirewall
from repro.proc import signals as sig
from repro.rulesets.generated import install_full_rulebase
from repro.vfs.file import OpenFlags
from repro.world import build_world, spawn_adversary, spawn_root_shell

PATHS = [
    "/etc/passwd", "/etc/shadow", "/tmp", "/tmp/a", "/tmp/b", "/tmp/link",
    "/tmp/dir", "/tmp/dir/x", "/lib/libc.so.6", "/var/run/sock", "/home/user/f",
]

SYSCALLS = [
    "open", "open_creat", "stat", "lstat", "readlink", "unlink", "mkdir",
    "rmdir", "symlink", "link", "rename", "chmod", "bind", "connect",
    "read_fd", "write_fd", "close_fd", "dup_fd", "fork", "exit", "kill",
    "sigaction", "sigreturn", "mkfifo", "listdir",
]


@st.composite
def step(draw):
    return (
        draw(st.sampled_from(SYSCALLS)),
        draw(st.sampled_from(PATHS)),
        draw(st.sampled_from(PATHS)),
        draw(st.integers(min_value=0, max_value=5)),  # fd / pid selector
        draw(st.booleans()),  # actor: root or adversary
    )


def _fs_invariants(kernel):
    fs = kernel.fs
    live = set(fs.inodes._live)
    seen = set()
    stack = [fs.root]
    entry_counts = {}
    while stack:
        node = stack.pop()
        if node.ino in seen:
            continue
        seen.add(node.ino)
        for name, ino in node.children.items():
            assert fs.inodes.is_live(ino), "dangling entry {!r}".format(name)
            entry_counts[ino] = entry_counts.get(ino, 0) + 1
            child = fs.inodes.get(ino)
            if child.is_dir:
                stack.append(child)
    for ino, count in entry_counts.items():
        assert fs.inodes.get(ino).nlink == count
    # No free-list number may be live.
    assert not (set(fs.inodes._free) & live)


def _apply(kernel, procs, fds, op):
    name, path_a, path_b, selector, as_root = op
    proc = procs[0] if as_root else procs[1]
    if not proc.alive:
        return
    sys = kernel.sys
    if name == "open":
        fds.append((proc, sys.open(proc, path_a)))
    elif name == "open_creat":
        fds.append((proc, sys.open(proc, path_a, flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY)))
    elif name == "stat":
        sys.stat(proc, path_a)
    elif name == "lstat":
        sys.lstat(proc, path_a)
    elif name == "readlink":
        sys.readlink(proc, path_a)
    elif name == "unlink":
        sys.unlink(proc, path_a)
    elif name == "mkdir":
        sys.mkdir(proc, path_a)
    elif name == "rmdir":
        sys.rmdir(proc, path_a)
    elif name == "symlink":
        sys.symlink(proc, path_b, path_a)
    elif name == "link":
        sys.link(proc, path_b, path_a)
    elif name == "rename":
        sys.rename(proc, path_a, path_b)
    elif name == "chmod":
        sys.chmod(proc, path_a, 0o600 + selector)
    elif name == "bind":
        sys.bind(proc, path_a)
    elif name == "connect":
        sys.connect(proc, path_a)
    elif name == "mkfifo":
        sys.mkfifo(proc, path_a)
    elif name == "listdir":
        sys.listdir(proc, path_a)
    elif name == "read_fd" and fds:
        owner, fd = fds[selector % len(fds)]
        sys.read(owner, fd, 8)
    elif name == "write_fd" and fds:
        owner, fd = fds[selector % len(fds)]
        sys.write(owner, fd, b"z")
    elif name == "close_fd" and fds:
        owner, fd = fds.pop(selector % len(fds))
        sys.close(owner, fd)
    elif name == "dup_fd" and fds:
        owner, fd = fds[selector % len(fds)]
        fds.append((owner, sys.dup(owner, fd)))
    elif name == "fork":
        child = sys.fork(proc)
        procs.append(child)
    elif name == "exit" and len(procs) > 2:
        victim = procs.pop()
        if victim.alive:
            # Forget descriptors owned by the exiting process.
            fds[:] = [(o, fd) for o, fd in fds if o is not victim]
            sys.exit(victim)
    elif name == "kill":
        target = procs[selector % len(procs)]
        if target.alive:
            sys.kill(proc, target.pid, sig.SIGUSR1)
    elif name == "sigaction":
        sys.sigaction(proc, sig.SIGUSR1, handler_pc=0x100)
    elif name == "sigreturn":
        sys.sigreturn(proc)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(step(), max_size=40))
def test_fuzzed_sequences_fail_cleanly(ops):
    kernel = build_world()
    kernel.audit_enabled = False
    firewall = ProcessFirewall()
    kernel.attach_firewall(firewall)
    install_full_rulebase(firewall, size=80)
    procs = [spawn_root_shell(kernel), spawn_adversary(kernel)]
    fds = []
    for op in ops:
        try:
            _apply(kernel, procs, fds, op)
        except errors.KernelError:
            pass  # clean, expected failure mode
    _fs_invariants(kernel)
    # Firewall bookkeeping is consistent.
    assert firewall.stats.drops <= firewall.stats.invocations
    # Exiting processes cleaned their per-process traversal stacks.
    for proc in procs:
        assert proc.pf_traversal == []
