"""Differential harness: the JITTED engine must be invisible (S3).

Per-rule codegen plus the resource-context cache are engine-internal
optimizations; nothing observable may change versus the interpreted
rungs.  Three probes:

1. Every Table 4 exploit (E1–E9) runs attack + benign under EPTSPC,
   COMPILED and JITTED — identical outcomes, verdict counters, and log
   records.  Against COMPILED the bar is higher: the generated code
   walks the same rules in the same order, so ``rules_evaluated``,
   ``cache_hits`` and ``decision_cache_hits`` are pinned too.
2. A recorded macro workload replays under all three — same story.
3. Randomized rule bases (seeded, spanning label / entrypoint /
   adversary / syscall-arg matches) drive a fixed probe workload under
   all three configurations — identical verdict streams.
"""

import random

import pytest

from repro import errors
from repro.attacks.exploits import EXPLOITS
from repro.firewall.engine import EngineConfig, ProcessFirewall
from repro.rulesets.generated import install_full_rulebase
from repro.workloads.replay import record_syscalls, replay
from repro.world import build_world, spawn_root_shell

CONFIGS = {
    "EPTSPC": EngineConfig.optimized,
    "COMPILED": EngineConfig.compiled,
    "JITTED": EngineConfig.jitted,
}


def _strip_time(records):
    return [{k: v for k, v in rec.items() if k != "time"} for rec in records]


def _loose_stats(stats):
    """Counters comparable across *any* two engine rungs."""
    return (stats.invocations, stats.accepts, stats.drops)


def _pinned_stats(stats):
    """Counters comparable between COMPILED and JITTED: the generated
    code must walk the same rules in the same order and hit the same
    per-frame/decision caches as the interpreted compiled-dispatch
    walker.  ``context_collections`` is deliberately absent — avoiding
    repeat collections is the resource-context cache's entire job, so
    that counter legitimately *shrinks* under JITTED."""
    return _loose_stats(stats) + (
        stats.rules_evaluated,
        stats.cache_hits,
        stats.decision_cache_hits,
    )


def _scenario_observables(scenario_cls, config, stats_fn):
    out = {}
    scenario = scenario_cls()
    result = scenario.run(with_firewall=True, config=config())
    out["attack"] = (result.succeeded, result.blocked, result.denied)
    out["attack_stats"] = stats_fn(scenario.firewall.stats)
    out["attack_logs"] = _strip_time(scenario.firewall.log_records)
    benign = scenario_cls()
    out["benign"] = benign.run_benign(with_firewall=True, config=config())
    out["benign_stats"] = stats_fn(benign.firewall.stats)
    out["benign_logs"] = _strip_time(benign.firewall.log_records)
    return out


@pytest.mark.parametrize("eid", sorted(EXPLOITS))
def test_exploits_identical_under_jitted_engine(eid):
    reference = _scenario_observables(EXPLOITS[eid], CONFIGS["EPTSPC"], _loose_stats)
    jitted = _scenario_observables(EXPLOITS[eid], CONFIGS["JITTED"], _loose_stats)
    assert jitted == reference


@pytest.mark.parametrize("eid", sorted(EXPLOITS))
def test_exploits_pin_jitted_to_compiled(eid):
    reference = _scenario_observables(EXPLOITS[eid], CONFIGS["COMPILED"], _pinned_stats)
    jitted = _scenario_observables(EXPLOITS[eid], CONFIGS["JITTED"], _pinned_stats)
    assert jitted == reference


# ---------------------------------------------------------------------------
# macro replay
# ---------------------------------------------------------------------------


def _macro_workload(world, shell):
    sys = world.sys
    for _ in range(8):
        sys.stat(shell, "/etc/passwd")
        fd = sys.open(shell, "/etc/passwd")
        sys.read(shell, fd, 32)
        sys.close(shell, fd)
    for _ in range(4):
        sys.stat(shell, "/lib/libc.so.6")
        sys.getpid(shell)
    child = sys.fork(shell)
    sys.execve(child, "/bin/sh", argv=["/bin/sh", "-c", "true"])
    sys.stat(child, "/bin/sh")
    sys.exit(child, 0)


def _record_trace():
    world = build_world()
    shell = spawn_root_shell(world)
    with record_syscalls(world) as trace:
        _macro_workload(world, shell)
    return trace, shell.pid


def _replay_observables(trace, recorded_pid, config, stats_fn):
    world = build_world()
    firewall = ProcessFirewall(config())
    world.attach_firewall(firewall)
    install_full_rulebase(firewall)
    shell = spawn_root_shell(world)
    result = replay(world, trace, {recorded_pid: shell})
    return {
        "executed": result.executed,
        "failures": [(method, errno) for _i, method, errno in result.failures],
        "stats": stats_fn(firewall.stats),
        "logs": _strip_time(firewall.log_records),
    }, firewall


def test_recorded_workload_identical_and_pinned():
    trace, recorded_pid = _record_trace()
    reference, _ = _replay_observables(trace, recorded_pid, CONFIGS["EPTSPC"], _loose_stats)
    jitted_loose, _ = _replay_observables(trace, recorded_pid, CONFIGS["JITTED"], _loose_stats)
    assert jitted_loose == reference
    compiled, _ = _replay_observables(trace, recorded_pid, CONFIGS["COMPILED"], _pinned_stats)
    jitted, firewall = _replay_observables(trace, recorded_pid, CONFIGS["JITTED"], _pinned_stats)
    assert jitted == compiled
    assert reference["executed"] > 20
    assert reference["stats"][0] > 0
    # Not vacuous: the replay really ran through generated code.
    assert firewall._jit is not None and firewall._jit.sources


# ---------------------------------------------------------------------------
# randomized rule bases
# ---------------------------------------------------------------------------

_LABELS = ["etc_t", "tmp_t", "lib_t", "shadow_t", "var_t"]
_OPS = ["FILE_OPEN", "FILE_READ", "FILE_GETATTR", "DIR_SEARCH"]
_OFFSETS = [0x10, 0x20, 0x30]
_SYSCALLS = ["stat", "open", "getpid", "read"]
_PROBE_PATHS = [
    "/etc/passwd",
    "/etc/shadow",
    "/lib/libc.so.6",
    "/tmp/world-writable",
    "/tmp/private",
]


def _random_rules(rng):
    """A deny-only rule base spanning every jittable match module."""
    rules = []
    for _ in range(rng.randint(2, 8)):
        kind = rng.choice(("label", "entry", "adversary", "sysarg"))
        if kind == "sysarg":
            rules.append(
                "pftables -A syscallbegin -m SYSCALL_ARGS --arg 0 --equal NR_{} "
                "-j DROP".format(rng.choice(_SYSCALLS))
            )
            continue
        parts = ["pftables -A input"]
        if rng.random() < 0.8:
            parts.append("-o {}".format(rng.choice(_OPS)))
        if kind == "entry":
            parts.append("-i {:#x} -p /bin/sh".format(rng.choice(_OFFSETS)))
        if kind == "adversary":
            parts.append("-m ADVERSARY --{}".format(rng.choice(("writable", "readable"))))
        else:
            label = rng.choice(_LABELS)
            negate = rng.random() < 0.3
            parts.append("-d {}{}".format("~" if negate else "",
                                          "{" + label + "}" if negate else label))
        parts.append("-j DROP")
        rules.append(" ".join(parts))
    return rules


def _verdict_stream(rules, config):
    """Build a world with adversary-accessible files, install ``rules``
    and record the verdict of every probe access."""
    world = build_world()
    firewall = ProcessFirewall(config())
    world.attach_firewall(firewall)
    firewall.install_all(rules)
    proc = world.spawn("sh", uid=0, label="unconfined_t", binary_path="/bin/sh")
    world.add_file("/tmp/world-writable", b"x", uid=1000, mode=0o666, label="tmp_t")
    world.add_file("/tmp/private", b"x", uid=0, mode=0o600, label="tmp_t")
    for offset in _OFFSETS[:2]:
        proc.call(proc.binary, offset)
    stream = []
    for _round in range(2):  # second round exercises every cache
        for path in _PROBE_PATHS:
            for syscall in ("stat", "open"):
                try:
                    if syscall == "stat":
                        world.sys.stat(proc, path)
                    else:
                        fd = world.sys.open(proc, path)
                        world.sys.close(proc, fd)
                    stream.append((syscall, path, "allow"))
                except errors.PFDenied:
                    stream.append((syscall, path, "drop"))
                except errors.KernelError as exc:
                    stream.append((syscall, path, type(exc).__name__))
    return stream, _pinned_stats(firewall.stats), _strip_time(firewall.log_records)


@pytest.mark.parametrize("seed", range(12))
def test_randomized_rule_bases_agree(seed):
    rules = _random_rules(random.Random(seed))
    eptspc = _verdict_stream(rules, CONFIGS["EPTSPC"])
    compiled = _verdict_stream(rules, CONFIGS["COMPILED"])
    jitted = _verdict_stream(rules, CONFIGS["JITTED"])
    # Verdict streams and logs agree across all three rungs.
    assert compiled[0] == eptspc[0] and jitted[0] == eptspc[0]
    assert compiled[2] == eptspc[2] and jitted[2] == eptspc[2]
    # COMPILED vs JITTED additionally pins the walk-shape counters.
    assert jitted[1] == compiled[1]
