"""Differential harness: the TABLED engine must be invisible (S3).

Ahead-of-time flat-table compilation (:mod:`repro.firewall.tables`) is
an engine-internal optimization; nothing observable may change versus
the interpreted rungs.  Four probes:

1. Every Table 4 exploit (E1–E9) runs attack + benign under EPTSPC and
   TABLED — identical outcomes, verdict counters, and log records.
   Against JITTED the bar is higher: the flat tables walk the same
   rules in the same order, so ``rules_evaluated``, ``cache_hits`` and
   ``decision_cache_hits`` are pinned too.
2. A recorded macro workload replays under EPTSPC, JITTED and TABLED —
   same story, plus a non-vacuity check that the replay really went
   through compiled rows.
3. Randomized rule bases (seeded, spanning label / entrypoint /
   adversary / syscall-arg matches) drive a fixed probe workload under
   JITTED and TABLED — identical verdict streams and pinned counters.
4. Artifact transparency: a TABLED engine that *loaded* a serialized
   artifact produces observables identical to one that compiled the
   same rules in-process.
"""

import random

from repro import errors
import pytest

from repro.attacks.exploits import EXPLOITS
from repro.firewall import tables
from repro.firewall.engine import EngineConfig, ProcessFirewall
from repro.rulesets.generated import install_full_rulebase
from repro.workloads.replay import record_syscalls, replay
from repro.world import build_world, spawn_root_shell

CONFIGS = {
    "EPTSPC": EngineConfig.optimized,
    "JITTED": EngineConfig.jitted,
    "TABLED": EngineConfig.tabled,
}


def _strip_time(records):
    return [{k: v for k, v in rec.items() if k != "time"} for rec in records]


def _loose_stats(stats):
    """Counters comparable across *any* two engine rungs."""
    return (stats.invocations, stats.accepts, stats.drops)


def _pinned_stats(stats):
    """Counters comparable between JITTED and TABLED: a static row must
    charge exactly the rules the generated code would have walked and
    hit the same per-frame/decision caches.  ``tables_hits`` /
    ``tables_fallbacks`` are deliberately absent — they exist only on
    the TABLED rung."""
    return _loose_stats(stats) + (
        stats.rules_evaluated,
        stats.cache_hits,
        stats.decision_cache_hits,
    )


def _scenario_observables(scenario_cls, config, stats_fn):
    out = {}
    scenario = scenario_cls()
    result = scenario.run(with_firewall=True, config=config())
    out["attack"] = (result.succeeded, result.blocked, result.denied)
    out["attack_stats"] = stats_fn(scenario.firewall.stats)
    out["attack_logs"] = _strip_time(scenario.firewall.audit.records(kind="log"))
    benign = scenario_cls()
    out["benign"] = benign.run_benign(with_firewall=True, config=config())
    out["benign_stats"] = stats_fn(benign.firewall.stats)
    out["benign_logs"] = _strip_time(benign.firewall.audit.records(kind="log"))
    return out


@pytest.mark.parametrize("eid", sorted(EXPLOITS))
def test_exploits_identical_under_tabled_engine(eid):
    reference = _scenario_observables(EXPLOITS[eid], CONFIGS["EPTSPC"], _loose_stats)
    tabled = _scenario_observables(EXPLOITS[eid], CONFIGS["TABLED"], _loose_stats)
    assert tabled == reference


@pytest.mark.parametrize("eid", sorted(EXPLOITS))
def test_exploits_pin_tabled_to_jitted(eid):
    reference = _scenario_observables(EXPLOITS[eid], CONFIGS["JITTED"], _pinned_stats)
    tabled = _scenario_observables(EXPLOITS[eid], CONFIGS["TABLED"], _pinned_stats)
    assert tabled == reference


# ---------------------------------------------------------------------------
# macro replay
# ---------------------------------------------------------------------------


def _macro_workload(world, shell):
    sys = world.sys
    for _ in range(8):
        sys.stat(shell, "/etc/passwd")
        fd = sys.open(shell, "/etc/passwd")
        sys.read(shell, fd, 32)
        sys.close(shell, fd)
    for _ in range(4):
        sys.stat(shell, "/lib/libc.so.6")
        sys.getpid(shell)
    child = sys.fork(shell)
    sys.execve(child, "/bin/sh", argv=["/bin/sh", "-c", "true"])
    sys.stat(child, "/bin/sh")
    sys.exit(child, 0)


def _record_trace():
    world = build_world()
    shell = spawn_root_shell(world)
    with record_syscalls(world) as trace:
        _macro_workload(world, shell)
    return trace, shell.pid


def _replay_observables(trace, recorded_pid, config, stats_fn, artifact=None):
    world = build_world()
    firewall = ProcessFirewall(config())
    world.attach_firewall(firewall)
    install_full_rulebase(firewall)
    if artifact is not None:
        tables.load_tables(firewall, artifact)
    shell = spawn_root_shell(world)
    result = replay(world, trace, {recorded_pid: shell})
    return {
        "executed": result.executed,
        "failures": [(method, errno) for _i, method, errno in result.failures],
        "stats": stats_fn(firewall.stats),
        "logs": _strip_time(firewall.audit.records(kind="log")),
    }, firewall


def test_recorded_workload_identical_and_pinned():
    trace, recorded_pid = _record_trace()
    reference, _ = _replay_observables(trace, recorded_pid, CONFIGS["EPTSPC"], _loose_stats)
    tabled_loose, _ = _replay_observables(trace, recorded_pid, CONFIGS["TABLED"], _loose_stats)
    assert tabled_loose == reference
    jitted, _ = _replay_observables(trace, recorded_pid, CONFIGS["JITTED"], _pinned_stats)
    tabled, firewall = _replay_observables(trace, recorded_pid, CONFIGS["TABLED"], _pinned_stats)
    assert tabled == jitted
    assert reference["executed"] > 20
    assert reference["stats"][0] > 0
    # Not vacuous: the replay really dispatched through flat tables.
    assert firewall._tables is not None
    assert firewall.stats.tables_hits + firewall.stats.tables_fallbacks > 0


def test_loaded_artifact_replay_matches_in_process_compile():
    """Rung 4: artifact load must be observably identical to compiling."""
    trace, recorded_pid = _record_trace()
    compiler = ProcessFirewall(EngineConfig.tabled())
    build_world().attach_firewall(compiler)
    install_full_rulebase(compiler)
    artifact = tables.serialize_tables(tables.compile_tables(compiler))
    compiled, _ = _replay_observables(trace, recorded_pid, CONFIGS["TABLED"], _pinned_stats)
    loaded, firewall = _replay_observables(
        trace, recorded_pid, CONFIGS["TABLED"], _pinned_stats, artifact=artifact)
    assert loaded == compiled
    assert firewall._tables is not None and firewall._tables.loaded
    assert (firewall.stats.tables_hits, firewall.stats.tables_fallbacks) != (0, 0)


# ---------------------------------------------------------------------------
# randomized rule bases
# ---------------------------------------------------------------------------

_LABELS = ["etc_t", "tmp_t", "lib_t", "shadow_t", "var_t"]
_OPS = ["FILE_OPEN", "FILE_READ", "FILE_GETATTR", "DIR_SEARCH"]
_OFFSETS = [0x10, 0x20, 0x30]
_SYSCALLS = ["stat", "open", "getpid", "read"]
_PROBE_PATHS = [
    "/etc/passwd",
    "/etc/shadow",
    "/lib/libc.so.6",
    "/tmp/world-writable",
    "/tmp/private",
]


def _random_rules(rng):
    """A deny-only rule base spanning every jittable match module."""
    rules = []
    for _ in range(rng.randint(2, 8)):
        kind = rng.choice(("label", "entry", "adversary", "sysarg"))
        if kind == "sysarg":
            rules.append(
                "pftables -A syscallbegin -m SYSCALL_ARGS --arg 0 --equal NR_{} "
                "-j DROP".format(rng.choice(_SYSCALLS))
            )
            continue
        parts = ["pftables -A input"]
        if rng.random() < 0.8:
            parts.append("-o {}".format(rng.choice(_OPS)))
        if kind == "entry":
            parts.append("-i {:#x} -p /bin/sh".format(rng.choice(_OFFSETS)))
        if kind == "adversary":
            parts.append("-m ADVERSARY --{}".format(rng.choice(("writable", "readable"))))
        else:
            label = rng.choice(_LABELS)
            negate = rng.random() < 0.3
            parts.append("-d {}{}".format("~" if negate else "",
                                          "{" + label + "}" if negate else label))
        parts.append("-j DROP")
        rules.append(" ".join(parts))
    return rules


def _verdict_stream(rules, config):
    """Build a world with adversary-accessible files, install ``rules``
    and record the verdict of every probe access."""
    world = build_world()
    firewall = ProcessFirewall(config())
    world.attach_firewall(firewall)
    firewall.install_all(rules)
    proc = world.spawn("sh", uid=0, label="unconfined_t", binary_path="/bin/sh")
    world.add_file("/tmp/world-writable", b"x", uid=1000, mode=0o666, label="tmp_t")
    world.add_file("/tmp/private", b"x", uid=0, mode=0o600, label="tmp_t")
    for offset in _OFFSETS[:2]:
        proc.call(proc.binary, offset)
    stream = []
    for _round in range(2):  # second round exercises every cache
        for path in _PROBE_PATHS:
            for syscall in ("stat", "open"):
                try:
                    if syscall == "stat":
                        world.sys.stat(proc, path)
                    else:
                        fd = world.sys.open(proc, path)
                        world.sys.close(proc, fd)
                    stream.append((syscall, path, "allow"))
                except errors.PFDenied:
                    stream.append((syscall, path, "drop"))
                except errors.KernelError as exc:
                    stream.append((syscall, path, type(exc).__name__))
    return (stream, _pinned_stats(firewall.stats),
            _strip_time(firewall.audit.records(kind="log")))


@pytest.mark.parametrize("seed", range(12))
def test_randomized_rule_bases_agree(seed):
    rules = _random_rules(random.Random(seed))
    eptspc = _verdict_stream(rules, CONFIGS["EPTSPC"])
    jitted = _verdict_stream(rules, CONFIGS["JITTED"])
    tabled = _verdict_stream(rules, CONFIGS["TABLED"])
    # Verdict streams and logs agree across all three rungs.
    assert jitted[0] == eptspc[0] and tabled[0] == eptspc[0]
    assert jitted[2] == eptspc[2] and tabled[2] == eptspc[2]
    # JITTED vs TABLED additionally pins the walk-shape counters.
    assert tabled[1] == jitted[1]
