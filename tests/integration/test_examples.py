"""Every example script runs to completion (in-process)."""

import io
import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")
EXAMPLES = sorted(f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py"))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, monkeypatch):
    buffer = io.StringIO()
    monkeypatch.setattr(sys, "stdout", buffer)
    runpy.run_path(os.path.join(EXAMPLES_DIR, script), run_name="__main__")
    output = buffer.getvalue()
    assert output.strip(), "{} printed nothing".format(script)
    assert "Traceback" not in output


def test_expected_examples_present():
    names = {
        "quickstart.py",
        "webserver_hardening.py",
        "toctou_defense.py",
        "rule_generation.py",
        "library_hijack.py",
    }
    assert names <= set(EXAMPLES)


def test_quickstart_blocks(monkeypatch):
    buffer = io.StringIO()
    monkeypatch.setattr(sys, "stdout", buffer)
    runpy.run_path(os.path.join(EXAMPLES_DIR, "quickstart.py"), run_name="__main__")
    output = buffer.getvalue()
    assert "attack succeeded" in output  # stock kernel half
    assert "attack BLOCKED" in output  # firewall half
