"""Differential harness: the name-resolution fast path must be invisible.

The dentry/walk caches (:mod:`repro.vfs.dcache`) sit *under* the
mediation pipeline — on a walk-cache hit the recorded steps are
replayed to the observer, so DAC, MAC, and firewall verdicts re-run
live.  Nothing observable may change versus a cold walker:

1. Every Table 4 exploit (E1–E9) runs attack + benign with the cache
   on (the kernel default) and forced off — identical outcomes,
   verdict counters (down to rules_evaluated / cache_hits /
   decision_cache_hits: replay drives the *same* mediation stream
   through the *same* engine), log records, and kernel audit trails
   (logical timestamps included: the clock ticks per syscall, not per
   directory probe, so even time is pinned).
2. A recorded macro workload (stat/open/read loops, fork + execve)
   replays under both — same story.
3. The service generators: a fixed-seed session stream through the
   inline service runner with worker dcaches on vs off — identical
   verdict streams, audit, and drop counts.
4. The cache must not *break the attacks*: the symlink-race exploits
   (E9 is the corpus's direct symlink clobber; E5's setuid race also
   pivots on path state) still succeed without a firewall while the
   cache serves their victim's repeated resolutions — stamp-precise
   invalidation means the adversary's rename/symlink flips the cached
   answer exactly as it flips the namespace.
"""

import pytest

from repro.attacks.exploits import EXPLOITS
from repro.firewall.engine import EngineConfig
from repro.firewall.persist import save_rules
from repro.rulesets.generated import install_full_rulebase
from repro.service import run_service
from repro.workloads.generators import generate_stream, service_rules_text
from repro.workloads.replay import record_syscalls, replay
from repro.world import build_world, spawn_root_shell


def _dcache_off(firewall):
    firewall.kernel.dcache.enabled = False


def _strip_time(records):
    return [{k: v for k, v in rec.items() if k != "time"} for rec in records]


def _pinned_stats(stats):
    """Same engine, same rule walk — everything is pinned, including
    the engine-internal cache counters: replay feeds the engine an
    identical mediation stream."""
    return (
        stats.invocations,
        stats.accepts,
        stats.drops,
        stats.rules_evaluated,
        stats.cache_hits,
        stats.decision_cache_hits,
    )


def _kernel_audit(kernel):
    return [
        (r.time, r.pid, r.comm, r.op, r.path, r.decision, r.detail)
        for r in kernel.audit
    ]


def _scenario_observables(scenario_cls, instrument):
    out = {}
    scenario = scenario_cls()
    result = scenario.run(
        with_firewall=True, config=EngineConfig.jitted(), instrument=instrument
    )
    out["attack"] = (result.succeeded, result.blocked, result.denied)
    out["attack_stats"] = _pinned_stats(scenario.firewall.stats)
    out["attack_logs"] = _strip_time(
        scenario.firewall.audit.records(kind="log"))
    out["attack_audit"] = _kernel_audit(scenario.kernel)
    benign = scenario_cls()
    out["benign"] = benign.run_benign(
        with_firewall=True, config=EngineConfig.jitted(), instrument=instrument
    )
    out["benign_stats"] = _pinned_stats(benign.firewall.stats)
    out["benign_audit"] = _kernel_audit(benign.kernel)
    return out


@pytest.mark.parametrize("eid", sorted(EXPLOITS))
def test_exploits_identical_with_and_without_dcache(eid):
    cold = _scenario_observables(EXPLOITS[eid], _dcache_off)
    cached = _scenario_observables(EXPLOITS[eid], None)
    assert cached == cold


def test_dcache_actually_engaged_in_scenarios():
    """Guard against vacuity: the cached side of the differential
    really serves warm resolutions during at least one scenario."""
    hits = 0
    for eid in sorted(EXPLOITS):
        scenario = EXPLOITS[eid]()
        scenario.run(with_firewall=True, config=EngineConfig.jitted())
        dc = scenario.kernel.dcache
        assert dc.enabled
        hits += dc.walks.hits + dc.dentries.hits
    assert hits > 0


# ---------------------------------------------------------------------------
# macro replay
# ---------------------------------------------------------------------------


def _macro_workload(world, shell):
    sys = world.sys
    for _ in range(8):
        sys.stat(shell, "/etc/passwd")
        fd = sys.open(shell, "/etc/passwd")
        sys.read(shell, fd, 32)
        sys.close(shell, fd)
    for _ in range(4):
        sys.stat(shell, "/lib/libc.so.6")
        sys.getpid(shell)
    child = sys.fork(shell)
    sys.execve(child, "/bin/sh", argv=["/bin/sh", "-c", "true"])
    sys.stat(child, "/bin/sh")
    sys.exit(child, 0)


def _replay_observables(dcache_on):
    world = build_world()
    shell = spawn_root_shell(world)
    with record_syscalls(world) as trace:
        _macro_workload(world, shell)
    target = build_world()
    target.dcache.enabled = dcache_on
    from repro.firewall.engine import ProcessFirewall

    firewall = ProcessFirewall(EngineConfig.jitted())
    target.attach_firewall(firewall)
    install_full_rulebase(firewall)
    target_shell = spawn_root_shell(target)
    result = replay(target, trace, {shell.pid: target_shell})
    return {
        "executed": result.executed,
        "failures": [(m, errno) for _i, m, errno in result.failures],
        "stats": _pinned_stats(firewall.stats),
        "audit": _kernel_audit(target),
        "logs": _strip_time(firewall.audit.records(kind="log")),
    }, target


def test_macro_replay_identical_with_and_without_dcache():
    cold, _ = _replay_observables(dcache_on=False)
    cached, kernel = _replay_observables(dcache_on=True)
    assert cached == cold
    assert cold["executed"] > 20
    # Not vacuous: the cached replay served warm walks.
    assert kernel.dcache.walks.hits > 0


# ---------------------------------------------------------------------------
# service generators
# ---------------------------------------------------------------------------


def _service_observables(dcache):
    result = run_service(
        generate_stream(16, seed=0xDCAC),
        service_rules_text(),
        workers=1,
        processes=False,
        dcache=dcache,
    )
    return {
        "verdicts": result["verdicts"],
        "audit": [
            {k: v for k, v in row.items() if k != "worker"}
            for row in result["audit"]
        ],
        "drops": result["drops"],
        "completed": result["counters"]["completed"],
        "stats": {
            k: v for k, v in result["stats"].items()
            if k in ("invocations", "accepts", "drops", "rules_evaluated")
        },
    }


def test_service_generators_identical_with_and_without_dcache():
    cold = _service_observables(dcache=False)
    cached = _service_observables(dcache=True)
    assert cached == cold
    assert cold["completed"] == 16
    assert cold["drops"] > 0  # trap steps fire either way


# ---------------------------------------------------------------------------
# the attacks still fire *under* the cache
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("eid", ["E5", "E9"])
def test_race_exploits_still_fire_under_cache(eid):
    """Stamp-precise invalidation is the whole point: with no firewall,
    the adversary's namespace flip mid-race retargets the victim's
    *cached* resolution, so the attack lands exactly as it does cold."""
    cached = EXPLOITS[eid]()
    result = cached.run(with_firewall=False)
    assert cached.kernel.dcache.enabled
    assert result.succeeded and not result.blocked

    cold_scenario = EXPLOITS[eid]()
    cold_scenario.build(False)
    cold_scenario.kernel.dcache.enabled = False
    cold = cold_scenario._attack()
    assert bool(cold) == result.succeeded


def test_save_rules_roundtrip_unaffected_by_dcache():
    """Sanity: rule persistence (pure string plumbing) sees no kernel
    state; pinned here because the service differential ships rules
    text through it on both sides."""
    world = build_world()
    from repro.firewall.engine import ProcessFirewall

    firewall = ProcessFirewall(EngineConfig.jitted())
    world.attach_firewall(firewall)
    install_full_rulebase(firewall)
    text = save_rules(firewall)
    world.dcache.enabled = False
    assert save_rules(firewall) == text
