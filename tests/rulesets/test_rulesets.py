"""Shipped rule sets: R1-R12, templates, the generated full base."""

import pytest

from repro.firewall.engine import ProcessFirewall
from repro.firewall.pftables import parse_rule
from repro.rulesets.default import (
    PAPER_TABLE5_TEXTS,
    RULES_R1_R12,
    SIGNAL_RULE_TEXTS,
    install_default_rules,
    install_signal_rules,
    restrict_entrypoint_rule,
    safe_open_pf_rules,
    toctou_rules,
)
from repro.rulesets.generated import FULL_RULEBASE_SIZE, generate_full_rulebase, install_full_rulebase


class TestDefaultRules:
    def test_twelve_rules(self):
        assert len(RULES_R1_R12) == 12
        assert len(PAPER_TABLE5_TEXTS) == 12

    def test_install_default(self):
        pf = ProcessFirewall()
        install_default_rules(pf)
        assert pf.rules.rule_count() == 12

    def test_signal_rules_order(self):
        """R10 (check) must precede R11 (set) in the signal chain."""
        pf = ProcessFirewall()
        install_signal_rules(pf)
        chain = pf.rules.table("filter").chain("signal_chain")
        assert "DROP" in chain.rules[0].render()
        assert "STATE" in chain.rules[1].render()

    def test_sigreturn_rule_in_syscallbegin(self):
        pf = ProcessFirewall()
        install_signal_rules(pf)
        assert len(pf.rules.table("filter").chain("syscallbegin")) == 1


class TestTemplates:
    def test_t1_renders_and_parses(self):
        text = restrict_entrypoint_rule("/bin/x", 0x10, ("lib_t", "usr_t"), op="FILE_OPEN")
        parsed = parse_rule(text)
        assert parsed.chain == "input"
        assert "~{lib_t|usr_t}" in text

    def test_t1_syshigh_form(self):
        text = restrict_entrypoint_rule("/bin/x", 0x10, "SYSHIGH")
        assert "-d ~SYSHIGH" in text
        assert parse_rule(text)

    def test_t1_with_subject(self):
        text = restrict_entrypoint_rule("/bin/x", 0x10, "SYSHIGH", subject="SYSHIGH")
        assert "-s SYSHIGH" in text

    def test_t2_pair(self):
        record, enforce = toctou_rules("/bin/x", 0x10, "FILE_GETATTR", 0x20, "FILE_OPEN")
        assert "STATE --set" in record.replace("-j STATE --set", "STATE --set")
        assert "--nequal" in enforce
        assert parse_rule(record) and parse_rule(enforce)

    def test_t2_key_is_use_entrypoint(self):
        record, enforce = toctou_rules("/bin/x", 0x10, "FILE_GETATTR", 0x20, "FILE_OPEN")
        assert "--key 0x20" in record and "--key 0x20" in enforce

    def test_safe_open_rules_parse(self):
        for text in safe_open_pf_rules():
            assert parse_rule(text)


class TestGeneratedBase:
    def test_size(self):
        assert len(generate_full_rulebase()) == FULL_RULEBASE_SIZE

    def test_contains_table5(self):
        texts = generate_full_rulebase()
        for rule in RULES_R1_R12:
            assert rule in texts

    def test_all_parse_and_install(self):
        pf = ProcessFirewall()
        count = install_full_rulebase(pf)
        assert count == FULL_RULEBASE_SIZE

    def test_synthetic_entrypoints_disjoint_from_real(self):
        """Synthetic offsets start at 0x400000 so they can never match
        the scenario programs' call sites."""
        from repro.firewall.pftables import parse_rule as parse

        for text in generate_full_rulebase():
            if text in RULES_R1_R12 or text in safe_open_pf_rules():
                continue
            parsed = parse(text)
            key = parsed.rule.entrypoint_key()
            if key is not None:
                assert key[1] >= 0x400000 or key in {
                    ("/bin/dbus-daemon", 0x3C750),
                    ("/bin/dbus-daemon", 0x3C786),
                }

    def test_full_base_does_not_break_benign_exploit_worlds(self):
        """PF Full must not introduce false positives on the E1-E9
        benign workloads (the paper's deployment-safety claim)."""
        from repro.attacks.exploits import EXPLOITS
        from repro.rulesets.generated import generate_full_rulebase

        extra = generate_full_rulebase(size=200)
        for eid in ("E1", "E4", "E9"):
            scenario = EXPLOITS[eid]()
            scenario.build(with_firewall=True, extra_rules=[t for t in extra if t not in scenario.rules()])
            assert scenario._benign()
