"""Per-package rule delivery."""

import pytest

from repro import errors
from repro.attacks.exploits import EXPLOITS
from repro.firewall.engine import ProcessFirewall
from repro.firewall.pftables import parse_rule
from repro.rulesets.packages import PACKAGE_RULES, all_packages, install_packages, rules_for_packages

#: Exploit -> package whose shipped rules must block it.
COVERAGE = {
    "E1": "libc6",
    "E2": "python2.7",
    "E3": "libdbus-1",
    "E4": "php5",
    "E5": "openssh-server",
    "E6": "dbus-daemon",
    "E7": "openjdk",
    "E8": "libc6",
    "E9": "base-files",
}


class TestRegistry:
    def test_every_package_parses(self):
        for name in all_packages():
            for line in PACKAGE_RULES[name]:
                assert parse_rule(line), (name, line)

    def test_unknown_package_rejected(self):
        with pytest.raises(errors.EINVAL):
            rules_for_packages(["not-a-package"])

    def test_duplicates_install_once(self):
        # base-files and openssh-server both ship the signal rules.
        combined = rules_for_packages(["base-files", "openssh-server"])
        assert len(combined) == len(set(combined))

    def test_install_counts(self):
        firewall = ProcessFirewall()
        count = install_packages(firewall, ["apache2", "php5"])
        assert count == 3


class TestCoverage:
    @pytest.mark.parametrize("eid,package", sorted(COVERAGE.items()))
    def test_package_rules_block_their_exploit(self, eid, package):
        scenario = EXPLOITS[eid]()
        scenario.rules = lambda _pkg=package: rules_for_packages([_pkg])
        result = scenario.run(with_firewall=True)
        assert not result.succeeded, "{} not blocked by {} rules".format(eid, package)

    @pytest.mark.parametrize("eid,package", sorted(COVERAGE.items()))
    def test_package_rules_preserve_benign(self, eid, package):
        scenario = EXPLOITS[eid]()
        scenario.rules = lambda _pkg=package: rules_for_packages([_pkg])
        assert scenario.run_benign(with_firewall=True)

    def test_whole_distribution_blocks_everything(self):
        everything = rules_for_packages(all_packages())
        blocked = 0
        for eid in sorted(EXPLOITS):
            scenario = EXPLOITS[eid]()
            base_rules = scenario.rules()
            scenario.rules = lambda _r=everything, _b=base_rules: list(_r) + [
                t for t in _b if t not in _r
            ]
            if not scenario.run(with_firewall=True).succeeded:
                blocked += 1
        assert blocked == len(EXPLOITS)
