"""ASCII figure rendering."""

from repro.analysis.figures import BAR_WIDTH, bar_chart, grouped_bar_chart


class TestBarChart:
    def test_peak_fills_width(self):
        text = bar_chart([("a", 10.0), ("b", 5.0)])
        lines = text.splitlines()
        assert lines[0].count("#") == BAR_WIDTH
        assert lines[1].count("#") == BAR_WIDTH // 2

    def test_zero_value_has_no_bar(self):
        text = bar_chart([("a", 10.0), ("z", 0.0)])
        assert "#" not in text.splitlines()[-1]

    def test_values_printed_with_unit(self):
        text = bar_chart([("a", 3.14159)], unit=" us")
        assert "3.14 us" in text

    def test_title(self):
        text = bar_chart([("a", 1)], title="Latency")
        assert text.splitlines()[0] == "Latency"

    def test_empty_series(self):
        assert bar_chart([], title="Empty") == "Empty"

    def test_labels_aligned(self):
        text = bar_chart([("short", 1), ("much-longer-label", 2)])
        lines = text.splitlines()
        assert lines[0].index("#") == lines[1].index("#")


class TestGroupedBarChart:
    def test_groups_rendered(self):
        text = grouped_bar_chart(
            [("n=1", [("a", 1), ("b", 2)]), ("n=2", [("a", 3), ("b", 4)])],
            title="Fig",
        )
        assert "n=1" in text and "n=2" in text
        assert text.splitlines()[0] == "Fig"
