"""Shared fixtures: worlds, processes, firewalls."""

import pytest

from repro.firewall.engine import EngineConfig, ProcessFirewall
from repro.kernel import Kernel
from repro.security.selinux import reference_policy
from repro.world import build_world, spawn_adversary, spawn_root_shell


@pytest.fixture
def kernel():
    """A bare kernel with the reference MAC policy, empty filesystem."""
    return Kernel(policy=reference_policy())


@pytest.fixture
def world():
    """The standard Ubuntu-flavoured world."""
    return build_world()


@pytest.fixture
def root(world):
    """A root shell process in the standard world."""
    return spawn_root_shell(world)


@pytest.fixture
def adversary(world):
    """The uid-1000 untrusted local user."""
    return spawn_adversary(world)


@pytest.fixture
def firewall(world):
    """An optimized-engine firewall attached to the standard world."""
    pf = ProcessFirewall(EngineConfig.optimized())
    world.attach_firewall(pf)
    return pf
