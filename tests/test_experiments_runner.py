"""The one-shot evaluation runner."""

import pytest

from repro.experiments import DEFAULT_ORDER, EXPERIMENTS, main


class TestRunner:
    def test_registry_matches_order(self):
        assert set(DEFAULT_ORDER) == set(EXPERIMENTS)

    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Untrusted Search Path" in out

    def test_table4_runs(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert out.count("exploits") == 9

    def test_quick_table8(self, capsys):
        assert main(["--quick", "table8"]) == 0
        assert "zero-false-positive threshold" in capsys.readouterr().out

    def test_quick_fig4(self, capsys):
        assert main(["--quick", "fig4"]) == 0
        assert "safe_open_PF" in capsys.readouterr().out

    def test_baselines(self, capsys):
        assert main(["baselines"]) == 0
        out = capsys.readouterr().out
        assert "raceguard" in out and "process firewall" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["table99"])
