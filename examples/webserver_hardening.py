#!/usr/bin/env python3
"""Harden a web server without touching its code.

The paper's motivating example: one Apache process has two resource
contexts — serving user content (must never reach the password file)
and authenticating users (must read it).  Access control cannot tell
the two apart; entrypoint-specific firewall rules can.

Also compares the program-side SymLinksIfOwnerMatch checks against
firewall rule R8, reproducing Figure 5's trade in miniature.

Run:  python examples/webserver_hardening.py
"""

import time

from repro import ProcessFirewall
from repro.programs.apache import EPT_SERVE_OPEN, ApacheServer
from repro.rulesets.default import RULES_R1_R12, restrict_entrypoint_rule
from repro.world import build_world, spawn_adversary


def build_server(with_rules, symlinks_if_owner_match=False):
    kernel = build_world()
    if with_rules:
        firewall = kernel.attach_firewall(ProcessFirewall())
        firewall.install(
            restrict_entrypoint_rule(
                "/usr/bin/apache2", EPT_SERVE_OPEN,
                ("httpd_sys_content_t", "httpd_user_content_t"), op="FILE_OPEN",
            )
        )
        firewall.install(RULES_R1_R12[7])  # R8: SymLinksIfOwnerMatch
    proc = kernel.spawn("apache2", uid=0, label="httpd_t", binary_path="/usr/bin/apache2")
    server = ApacheServer(kernel, proc, symlinks_if_owner_match=symlinks_if_owner_match)
    return kernel, server


def main():
    print("=== directory traversal, stock server ===")
    _, server = build_server(with_rules=False)
    response = server.serve("/../../../../etc/passwd")
    print("GET /../../../../etc/passwd ->", response.status, response.body[:30])

    print()
    print("=== same request, firewall rules installed ===")
    kernel, server = build_server(with_rules=True)
    response = server.serve("/../../../../etc/passwd")
    print("GET /../../../../etc/passwd ->", response.status, response.body)
    print("GET /index.html            ->", server.serve("/index.html").status)
    print("authenticate('root', ...)  ->", server.authenticate("root", "secret"),
          " (same process, different entrypoint: still allowed)")

    print()
    print("=== planted symlink inside the docroot ===")
    adversary = spawn_adversary(kernel)
    kernel.mkdirs("/var/www/html/up", uid=1000, mode=0o777, label="httpd_user_content_t")
    kernel.sys.symlink(adversary, "/etc/passwd", "/var/www/html/up/leak.png")
    print("GET /up/leak.png           ->", server.serve("/up/leak.png").status,
          "(rule R8 drops the owner-mismatched link)")

    print()
    print("=== Figure 5 in miniature: program checks vs rule R8 ===")
    for mode, flags in (("program checks", dict(symlinks_if_owner_match=True)),
                        ("firewall rule R8", dict(symlinks_if_owner_match=False))):
        _, bench_server = build_server(with_rules=(mode == "firewall rule R8"), **flags)
        start = time.perf_counter()
        for _ in range(500):
            assert bench_server.serve("/index.html").status == 200
        elapsed = time.perf_counter() - start
        print("  {:>18}: {:8.0f} requests/second".format(mode, 500 / elapsed))


if __name__ == "__main__":
    main()
