#!/usr/bin/env python3
"""Quickstart: block a classic /tmp symlink attack with one rule.

Builds the simulated world, demonstrates the attack on a stock kernel,
attaches a Process Firewall with the system-wide safe-open rules, and
shows the same attack being dropped while the victim's normal work is
untouched.

Run:  python examples/quickstart.py
"""

from repro import EngineConfig, ProcessFirewall, errors
from repro.rulesets.default import safe_open_pf_rules
from repro.vfs.file import OpenFlags
from repro.world import build_world, spawn_adversary, spawn_root_shell


def demonstrate_attack(kernel, victim, adversary):
    """Adversary plants /tmp/status -> /etc/passwd; root writes it."""
    kernel.sys.symlink(adversary, "/etc/passwd", "/tmp/status")
    try:
        fd = kernel.sys.open(
            victim, "/tmp/status", flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY | OpenFlags.O_TRUNC
        )
        kernel.sys.write(victim, fd, b"service started\n")
        kernel.sys.close(victim, fd)
        return "attack succeeded: /etc/passwd now reads {!r}".format(
            kernel.lookup("/etc/passwd").data
        )
    except errors.PFDenied as denied:
        return "attack BLOCKED by rule: {}".format(denied.rule.text)


def main():
    print("=== stock kernel (no Process Firewall) ===")
    kernel = build_world()
    victim = spawn_root_shell(kernel, comm="statusd")
    adversary = spawn_adversary(kernel)
    print(demonstrate_attack(kernel, victim, adversary))

    print()
    print("=== with the Process Firewall ===")
    kernel = build_world()
    firewall = kernel.attach_firewall(ProcessFirewall(EngineConfig.optimized()))
    firewall.install_all(safe_open_pf_rules())
    victim = spawn_root_shell(kernel, comm="statusd")
    adversary = spawn_adversary(kernel)
    print(demonstrate_attack(kernel, victim, adversary))

    # The victim's legitimate work is unaffected (no false positive):
    fd = kernel.sys.open(victim, "/tmp/scratch", flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
    kernel.sys.write(victim, fd, b"fine\n")
    kernel.sys.close(victim, fd)
    print("benign create in /tmp still works: /tmp/scratch = {!r}".format(
        kernel.lookup("/tmp/scratch").data
    ))

    print()
    print("firewall statistics: {} invocations, {} drops".format(
        firewall.stats.invocations, firewall.stats.drops
    ))
    print("last audit records:")
    for record in kernel.audit[-3:]:
        print("  ", record)


if __name__ == "__main__":
    main()
