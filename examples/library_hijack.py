#!/usr/bin/env python3
"""One rule, many programs: untrusted library loads system-wide.

Reproduces the E1/E8 family: the dynamic linker can be steered to an
adversary's shared object via RUNPATH (the Debian-installer bug) or an
insecure environment (Icecat).  A single firewall rule — R1, pinned to
ld.so's library-open entrypoint — blocks every variant for every
program on the system, with no program changes.

Run:  python examples/library_hijack.py
"""

from repro import ProcessFirewall, errors
from repro.programs.ld_so import DynamicLinker
from repro.rulesets.default import RULES_R1_R12
from repro.world import build_world, spawn_adversary


def try_load(kernel, comm, env=None, runpath=()):
    victim = kernel.spawn(comm, uid=0, label="unconfined_t",
                          binary_path="/usr/bin/" + comm, env=env)
    linker = DynamicLinker(kernel, victim, runpath=runpath)
    try:
        path, _image = linker.load_library("libssl.so")
        return "loaded {}".format(path)
    except errors.PFDenied as denied:
        return "BLOCKED ({})".format(denied.rule.text.split(" -d ")[0] + " ...")
    except errors.ENOENT:
        return "library not found"


def run(world_name, with_rule):
    kernel = build_world()
    if with_rule:
        firewall = kernel.attach_firewall(ProcessFirewall())
        firewall.install(RULES_R1_R12[0])  # R1
    adversary = spawn_adversary(kernel)
    # The adversary stages a trojan in two writable locations.
    for path in ("/tmp/libssl.so",):
        fd = kernel.sys.open(adversary, path, flags=0x41, mode=0o755)
        kernel.sys.write(adversary, fd, b"\x7fELF trojan")
        kernel.sys.close(adversary, fd)
    kernel.mkdirs("/tmp/svn", uid=1000, mode=0o755)
    fd = kernel.sys.open(adversary, "/tmp/svn/libssl.so", flags=0x41, mode=0o755)
    kernel.sys.write(adversary, fd, b"\x7fELF trojan")
    kernel.sys.close(adversary, fd)

    print("=== {} ===".format(world_name))
    print("icecat, insecure launcher env :", try_load(kernel, "icecat", env={"LD_LIBRARY_PATH": "/tmp"}))
    print("apache2, insecure RUNPATH     :", try_load(kernel, "apache2", runpath=("/tmp/svn",)))
    print("java, clean environment       :", try_load(kernel, "java"))
    print()


def main():
    run("stock kernel", with_rule=False)
    run("with rule R1", with_rule=True)


if __name__ == "__main__":
    main()
