#!/usr/bin/env python3
"""Verify a race defence over *every* interleaving.

Random testing shows a race can be lost; exhaustive interleaving
exploration (bounded model checking over the cooperative scheduler)
shows something stronger: with the safe-open firewall rules installed,
**no schedule whatsoever** lets the adversary win — while without them
the attack provably succeeds under some schedules and fails under
others (i.e., it really is a race, not a deterministic bug).

Run:  python examples/race_verification.py
"""

from repro import ProcessFirewall, errors
from repro.rulesets.default import safe_open_pf_rules
from repro.sched.explore import explore_interleavings, outcome_set
from repro.vfs.file import OpenFlags
from repro.world import build_world, spawn_adversary, spawn_root_shell


def make_factory(protected):
    """A fresh lstat/open race instance per explored schedule."""

    def build():
        kernel = build_world()
        if protected:
            firewall = kernel.attach_firewall(ProcessFirewall())
            firewall.install_all(safe_open_pf_rules())
        victim = spawn_root_shell(kernel, comm="victim")
        adversary = spawn_adversary(kernel)
        result = {}

        def victim_steps():
            sys = kernel.sys
            try:
                st = sys.lstat(victim, "/tmp/work")
                if st.is_symlink():
                    return
                yield  # the check/use window
                fd = sys.open(victim, "/tmp/work")
                result["read"] = sys.read(victim, fd)
            except errors.KernelError as exc:
                result["error"] = exc.errno_name

        def adversary_steps():
            sys = kernel.sys
            fd = sys.open(adversary, "/tmp/work",
                          flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY, mode=0o666)
            sys.write(adversary, fd, b"innocent")
            sys.close(adversary, fd)
            yield
            try:
                sys.unlink(adversary, "/tmp/work")
                sys.symlink(adversary, "/etc/shadow", "/tmp/work")
            except errors.KernelError:
                pass

        def outcome(_sched):
            return "LEAKED" if b"secret" in result.get("read", b"") else "safe"

        return [("victim", victim_steps()), ("adversary", adversary_steps())], outcome

    return build


def report(label, protected):
    executions = explore_interleavings(make_factory(protected))
    outcomes = outcome_set(executions)
    print("{}: {} interleavings explored -> outcomes {}".format(
        label, len(executions), sorted(outcomes)))
    for execution in executions:
        marker = "!!" if execution.outcome == "LEAKED" else "  "
        print("  {} {:<40} {}".format(marker, " -> ".join(execution.schedule), execution.outcome))
    return outcomes


def main():
    print("=== stock kernel ===")
    unprotected = report("unprotected", protected=False)
    assert "LEAKED" in unprotected and "safe" in unprotected, "should be a real race"

    print()
    print("=== with safe-open firewall rules ===")
    protected = report("protected", protected=True)
    assert protected == {"safe"}
    print()
    print("verified: no interleaving leaks with the rules installed.")


if __name__ == "__main__":
    main()
