#!/usr/bin/env python3
"""TOCTTOU races, scheduled deterministically, and the T2 defence.

Shows the access/open race of a setuid helper losing to an adversary
under an exact interleaving, then the same interleaving with template
T2 rules installed: the kernel records the checked resource's identity
in the process's firewall STATE and drops the mismatched use.

Run:  python examples/toctou_defense.py
"""

from repro import ProcessFirewall, errors
from repro.attacks.toctou import (
    EPT_ACCESS_CHECK,
    EPT_OPEN_USE,
    MAILDIR_FILE,
    MailHelper,
)
from repro.rulesets.default import toctou_rules
from repro.sched.scheduler import Scheduler
from repro.vfs.file import OpenFlags
from repro.world import build_world, spawn_adversary


def run_race(with_firewall):
    kernel = build_world()
    if with_firewall:
        firewall = kernel.attach_firewall(ProcessFirewall())
        rules = toctou_rules(
            "/usr/bin/mail-helper", EPT_ACCESS_CHECK, "FILE_GETATTR", EPT_OPEN_USE, "FILE_OPEN"
        )
        print("installing T2 rules:")
        for text in rules:
            print("  ", text)
        firewall.install_all(rules)

    kernel.add_file("/usr/bin/mail-helper", b"\x7fELF", mode=0o755, label="bin_t")
    victim = kernel.spawn("mail-helper", uid=1000, label="unconfined_t",
                          binary_path="/usr/bin/mail-helper")
    victim.creds.euid = 0  # setuid root
    helper = MailHelper(kernel, victim)
    adversary = spawn_adversary(kernel)
    passwd_before = kernel.lookup("/etc/passwd").data

    def adversary_steps():
        fd = kernel.sys.open(adversary, MAILDIR_FILE,
                             flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY, mode=0o666)
        kernel.sys.close(adversary, fd)
        yield  # the victim's access() check runs here
        kernel.sys.unlink(adversary, MAILDIR_FILE)
        kernel.sys.symlink(adversary, "/etc/passwd", MAILDIR_FILE)

    sched = Scheduler(policy="scripted",
                      script=["adversary", "victim", "adversary", "victim"])
    sched.add("adversary", adversary_steps())
    sched.add("victim", helper.deliver(MAILDIR_FILE))
    sched.run()
    print("interleaving:", " -> ".join(sched.trace))

    error = sched.get("victim").error
    if isinstance(error, errors.PFDenied):
        print("use call DROPPED: {}".format(error.rule.text))
        print("victim STATE held check identity:", victim.pf_state)
    elif error is not None:
        print("victim failed:", error)
    clobbered = kernel.lookup("/etc/passwd").data != passwd_before
    print("/etc/passwd clobbered:", clobbered)
    return clobbered


def main():
    print("=== stock kernel ===")
    assert run_race(with_firewall=False)
    print()
    print("=== with T2 rules ===")
    assert not run_race(with_firewall=True)


if __name__ == "__main__":
    main()
