#!/usr/bin/env python3
"""The §6.3 rule-generation loop, end to end.

1. Run a workload under a LOG-everything firewall (trace gathering).
2. Classify entrypoints from the trace and suggest T1 rules.
3. Install the suggested rules and verify they block a redirected
   access while leaving the traced behaviour untouched.
4. Show the Table 8 threshold analysis on the synthetic two-week trace.

Run:  python examples/rule_generation.py
"""

from repro import ProcessFirewall, errors
from repro.analysis.tables import format_table
from repro.programs.php import PhpInterpreter
from repro.rulegen.classify import threshold_sweep, zero_fp_threshold
from repro.rulegen.suggest import suggest_rules_from_log
from repro.rulegen.synth import synthesize_trace
from repro.world import build_world, spawn_adversary


def main():
    # ---- 1. trace a PHP application under LOG rules ------------------
    kernel = build_world()
    firewall = kernel.attach_firewall(ProcessFirewall())
    firewall.install("pftables -A input -o FILE_OPEN -j LOG")

    kernel.mkdirs("/var/www/html/app", label="httpd_user_script_exec_t")
    for i in range(4):
        kernel.add_file("/var/www/html/app/page{}.php".format(i), b"<?php ok(); ?>")
    proc = kernel.spawn("php5", uid=0, label="httpd_t", binary_path="/usr/bin/php5")
    php = PhpInterpreter(kernel, proc)
    for round_ in range(30):
        php.include("/var/www/html/app/page{}.php".format(round_ % 4))
    print("traced {} resource accesses".format(len(firewall.log_records)))

    # ---- 2. suggest rules from the trace -----------------------------
    suggested = suggest_rules_from_log(firewall, threshold=20)
    print("suggested rules:")
    for text in suggested:
        print("  ", text)

    # ---- 3. enforce and verify ---------------------------------------
    firewall.flush()
    firewall.install_all(suggested)
    php.include("/var/www/html/app/page0.php")  # traced behaviour: fine
    print("benign include still works")

    adversary = spawn_adversary(kernel)
    fd = kernel.sys.open(adversary, "/tmp/evil", flags=0x41, mode=0o666)
    kernel.sys.write(adversary, fd, b"<?php system($_GET['cmd']); ?>")
    kernel.sys.close(adversary, fd)
    try:
        php.run_component("/var/www/html/app", "", "../../../../../tmp/evil\x00")
        print("!! inclusion NOT blocked")
    except errors.PFDenied as denied:
        print("adversarial include dropped by:", denied.rule.text)

    # ---- 4. Table 8 on the synthetic two-week trace ------------------
    print()
    records = synthesize_trace()
    rows = threshold_sweep(records)
    print(format_table(
        ["threshold", "high", "low", "both", "rules", "false positives"],
        [(r["threshold"], r["high_only"], r["low_only"], r["both"],
          r["rules_produced"], r["false_positives"]) for r in rows],
        title="Table 8 over the synthetic trace",
    ))
    print("zero-false-positive threshold:", zero_fp_threshold(records), "(paper: 1149)")


if __name__ == "__main__":
    main()
