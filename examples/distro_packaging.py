#!/usr/bin/env python3
"""The OS-distributor workflow (§6.3.2), end to end.

1. Assemble the rule files shipped by the installed packages.
2. Lint and audit them with the ``pfctl`` tool.
3. Boot a world, install the rules, and persist/restore the running
   base with the pftables-save format.
4. Review the deployment's denial log — the workflow that surfaced the
   paper's two previously-unknown vulnerabilities (E8, E9).

Run:  python examples/distro_packaging.py
"""

import os
import tempfile

from repro import ProcessFirewall, errors
from repro.analysis.denials import collect_denials, render_denials
from repro.cli import main as pfctl
from repro.firewall.persist import list_rules, load_rules, save_rules
from repro.rulesets.packages import all_packages, install_packages, rules_for_packages
from repro.world import build_world, spawn_adversary, spawn_root_shell


def main():
    installed = ["libc6", "base-files", "apache2", "php5", "openssh-server"]
    print("installed packages:", ", ".join(installed))
    rules = rules_for_packages(installed)
    print("their packages ship {} firewall rules\n".format(len(rules)))

    # ---- lint + audit with pfctl -------------------------------------
    with tempfile.NamedTemporaryFile("w", suffix=".pf", delete=False) as fh:
        fh.write("\n".join(rules) + "\n")
        rules_path = fh.name
    try:
        print("$ pfctl parse", os.path.basename(rules_path))
        pfctl(["parse", rules_path])
        print("\n$ pfctl audit", os.path.basename(rules_path))
        pfctl(["audit", rules_path])
    finally:
        os.unlink(rules_path)

    # ---- boot, enforce, persist --------------------------------------
    kernel = build_world()
    firewall = kernel.attach_firewall(ProcessFirewall())
    install_packages(firewall, installed)
    saved = save_rules(firewall)
    print("\npftables-save serialization is {} lines; restoring into a "
          "fresh firewall...".format(len(saved.splitlines())))
    clone = ProcessFirewall()
    print("restored", load_rules(clone, saved), "rules")

    # ---- run the system; read the denial log -------------------------
    victim = spawn_root_shell(kernel, comm="backupd")
    adversary = spawn_adversary(kernel)
    kernel.sys.symlink(adversary, "/etc/shadow", "/tmp/backup-target")
    try:
        kernel.sys.open(victim, "/tmp/backup-target")
    except errors.PFDenied:
        pass
    print("\ndenial log after a day in production:")
    print(render_denials(collect_denials(kernel)))
    print("\n-> that root daemon following an adversary's link is either a")
    print("   rule false positive or a real vulnerability: exactly how the")
    print("   paper found E8 (Icecat) and E9 (the init script).")


if __name__ == "__main__":
    main()
