"""Logical clock for the simulated kernel.

A simple monotonically increasing counter: every syscall ticks it once.
Used for inode timestamps, audit ordering, and deterministic scheduling.
"""

from __future__ import annotations


class LogicalClock:
    """Monotonic logical time."""

    def __init__(self):
        self._now = 0

    def now(self):
        return self._now

    def tick(self, amount=1):
        self._now += amount
        return self._now
