"""``pfctl`` — command-line front end for rule files.

The paper's deployment story has OS distributors shipping rule bases in
packages; this tool is the maintainer's lint/test harness for those
files:

- ``parse``  — validate a rules file (one pftables line per row,
  ``#`` comments allowed); non-zero exit on the first bad line.
- ``fmt``    — print the normalized (re-rendered) rules.
- ``list``   — install into a fresh firewall and print the chain view.
- ``save``   — emit the pftables-save serialization.
- ``audit``  — install the rules into the standard world and run the
  paper's nine exploits against them, reporting which are blocked.

Usage::

    python -m repro.cli parse myrules.pf
    python -m repro.cli audit myrules.pf
"""

from __future__ import annotations

import argparse
import sys

from repro import errors
from repro.firewall.engine import ProcessFirewall
from repro.firewall.persist import list_rules, save_rules
from repro.firewall.pftables import parse_rule, pftables


def read_rule_lines(path):
    """Read a rules file: one pftables line per row, # comments."""
    with open(path) as fh:
        lines = []
        for raw in fh:
            line = raw.strip()
            if line and not line.startswith("#"):
                lines.append(line)
        return lines


def _load_file(path):
    firewall = ProcessFirewall()
    for line in read_rule_lines(path):
        pftables(firewall, line)
    return firewall


def cmd_parse(args):
    ok = True
    for i, line in enumerate(read_rule_lines(args.file), 1):
        try:
            parse_rule(line)
        except errors.KernelError as exc:
            print("{}:{}: {}".format(args.file, i, exc.message))
            ok = False
            if not args.keep_going:
                return 1
    if ok:
        print("{}: OK".format(args.file))
    return 0 if ok else 1


def cmd_fmt(args):
    for line in read_rule_lines(args.file):
        parsed = parse_rule(line)
        chain_part = "-A {} ".format(parsed.chain)
        print("pftables -t {} {}{}".format(parsed.table, chain_part, parsed.rule.render()))
    return 0


def cmd_list(args):
    firewall = _load_file(args.file)
    print(list_rules(firewall, verbose=args.verbose))
    return 0


def cmd_save(args):
    firewall = _load_file(args.file)
    sys.stdout.write(save_rules(firewall))
    return 0


def cmd_suggest(args):
    from repro.rulegen.classify import rules_for_threshold
    from repro.rulegen.trace import records_from_json

    with open(args.log) as fh:
        records = records_from_json(fh.read())
    rules = rules_for_threshold(records, threshold=args.threshold)
    for rule in rules:
        print(rule)
    if not rules:
        print("# no pure entrypoints above threshold {}".format(args.threshold), file=sys.stderr)
    return 0


def cmd_lint(args):
    from repro.firewall.validate import lint_rulebase, render_findings
    from repro.world import build_world

    firewall = _load_file(args.file)
    kernel = build_world()
    findings = lint_rulebase(firewall, policy=kernel.adversaries.policy, kernel=kernel)
    print(render_findings(findings))
    return 0 if not findings else 3


def cmd_audit(args):
    from repro.attacks.exploits import EXPLOITS

    rule_lines = read_rule_lines(args.file)
    blocked = 0
    print("auditing {} rules against the paper's nine exploits".format(len(rule_lines)))
    for eid in sorted(EXPLOITS):
        scenario = EXPLOITS[eid]()
        scenario.rules = lambda _lines=rule_lines: list(_lines)
        result = scenario.run(with_firewall=True)
        verdict = "BLOCKED" if (result.blocked or not result.succeeded) else "not blocked"
        if verdict == "BLOCKED":
            blocked += 1
        print("  {}  {:<40} {}".format(eid, scenario.name[:40], verdict))
    print("{}/9 exploits blocked by this rule set".format(blocked))
    return 0 if blocked == len(EXPLOITS) else 2


def build_parser():
    parser = argparse.ArgumentParser(prog="pfctl", description=__doc__.split("\n\n")[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("parse", help="validate a rules file")
    p.add_argument("file")
    p.add_argument("--keep-going", action="store_true", help="report every bad line")
    p.set_defaults(func=cmd_parse)

    p = sub.add_parser("fmt", help="print normalized rules")
    p.add_argument("file")
    p.set_defaults(func=cmd_fmt)

    p = sub.add_parser("list", help="print the chain view")
    p.add_argument("file")
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=cmd_list)

    p = sub.add_parser("save", help="emit pftables-save serialization")
    p.add_argument("file")
    p.set_defaults(func=cmd_save)

    p = sub.add_parser("suggest", help="generate T1 rules from a JSON LOG trace")
    p.add_argument("log")
    p.add_argument("--threshold", type=int, default=100)
    p.set_defaults(func=cmd_suggest)

    p = sub.add_parser("lint", help="static checks against the standard world")
    p.add_argument("file")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("audit", help="run the E1-E9 exploits against the rules")
    p.add_argument("file")
    p.set_defaults(func=cmd_audit)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except errors.KernelError as exc:
        print("pfctl: {}".format(exc.message), file=sys.stderr)
        return 1
    except OSError as exc:
        print("pfctl: {}".format(exc), file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
