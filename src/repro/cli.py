"""``pfctl`` — command-line front end for rule files.

The paper's deployment story has OS distributors shipping rule bases in
packages; this tool is the maintainer's lint/test harness for those
files:

- ``parse``  — validate a rules file (one pftables line per row,
  ``#`` comments allowed); non-zero exit on the first bad line.
- ``fmt``    — print the normalized (re-rendered) rules.
- ``list``   — install into a fresh firewall and print the chain view.
- ``save``   — emit the pftables-save serialization.
- ``audit``  — install the rules into the standard world and run the
  paper's nine exploits against them, reporting which are blocked.
- ``counters`` — drive a built-in benign workload through the rules and
  print the ``iptables -L -v``-style chain view with live hit/drop/
  traversal counters (``--json`` / ``--prometheus`` export the metrics
  registry instead).
- ``explain`` — the ``pf-trace`` front end: mediate one access (or one
  of the E1–E9 exploits) with decision tracing on and print why each
  mediation was allowed or dropped; ``--codegen`` instead prints the
  JITTED engine's generated per-chain decision functions for the file.
- ``bench-scale`` — record the macro scaling workload, replay it
  serially and sharded across N OS workers (``repro.parallel``), and
  print per-point throughput (worker-CPU-time basis) with verdict
  parity checked against the serial run.
- ``bench-fork`` — fork a warm pre-fork parent at 1k/10k(/100k) live
  children under eager-copy vs copy-on-write state propagation
  (``repro.workloads.forkscale``) and print per-fork cost and
  substrate bytes, with CoW-vs-eager observable parity checked.
- ``compile-tables`` — ahead-of-time compile a rules file into the
  TABLED engine's flat-table artifact (``repro.firewall.tables``) and
  write the serialized JSON; ``--check`` instead validates an existing
  artifact against the rules (exit 4 when stale).

Usage::

    python -m repro.cli parse myrules.pf
    python -m repro.cli audit myrules.pf
    python -m repro.cli counters myrules.pf --prometheus
    python -m repro.cli explain myrules.pf --open /etc/shadow
"""

from __future__ import annotations

import argparse
import sys

from repro import errors
from repro.firewall.engine import EngineConfig, ProcessFirewall
from repro.firewall.persist import list_rules, save_rules
from repro.firewall.pftables import parse_rule, pftables
from repro.service.wire import DEFAULT_PROTOCOL, PROTOCOLS


def read_rule_lines(path):
    """Read a rules file: one pftables line per row, # comments."""
    with open(path) as fh:
        lines = []
        for raw in fh:
            line = raw.strip()
            if line and not line.startswith("#"):
                lines.append(line)
        return lines


def _load_file(path):
    firewall = ProcessFirewall()
    for line in read_rule_lines(path):
        pftables(firewall, line)
    return firewall


def cmd_parse(args):
    ok = True
    for i, line in enumerate(read_rule_lines(args.file), 1):
        try:
            parse_rule(line)
        except errors.KernelError as exc:
            print("{}:{}: {}".format(args.file, i, exc.message))
            ok = False
            if not args.keep_going:
                return 1
    if ok:
        print("{}: OK".format(args.file))
    return 0 if ok else 1


def cmd_fmt(args):
    for line in read_rule_lines(args.file):
        parsed = parse_rule(line)
        chain_part = "-A {} ".format(parsed.chain)
        print("pftables -t {} {}{}".format(parsed.table, chain_part, parsed.rule.render()))
    return 0


def cmd_list(args):
    firewall = _load_file(args.file)
    print(list_rules(firewall, verbose=args.verbose))
    return 0


def cmd_save(args):
    firewall = _load_file(args.file)
    sys.stdout.write(save_rules(firewall))
    return 0


def cmd_suggest(args):
    from repro.rulegen.classify import rules_for_threshold
    from repro.rulegen.trace import records_from_json

    with open(args.log) as fh:
        records = records_from_json(fh.read())
    rules = rules_for_threshold(records, threshold=args.threshold)
    for rule in rules:
        print(rule)
    if not rules:
        print("# no pure entrypoints above threshold {}".format(args.threshold), file=sys.stderr)
    return 0


def cmd_lint(args):
    from repro.firewall.validate import lint_rulebase, render_findings
    from repro.world import build_world

    firewall = _load_file(args.file)
    kernel = build_world()
    findings = lint_rulebase(firewall, policy=kernel.adversaries.policy, kernel=kernel)
    print(render_findings(findings))
    return 0 if not findings else 3


def cmd_audit(args):
    from repro.attacks.exploits import EXPLOITS

    rule_lines = read_rule_lines(args.file)
    blocked = 0
    print("auditing {} rules against the paper's nine exploits".format(len(rule_lines)))
    for eid in sorted(EXPLOITS):
        scenario = EXPLOITS[eid]()
        scenario.rules = lambda _lines=rule_lines: list(_lines)
        result = scenario.run(with_firewall=True)
        verdict = "BLOCKED" if (result.blocked or not result.succeeded) else "not blocked"
        if verdict == "BLOCKED":
            blocked += 1
        print("  {}  {:<40} {}".format(eid, scenario.name[:40], verdict))
    print("{}/9 exploits blocked by this rule set".format(blocked))
    return 0 if blocked == len(EXPLOITS) else 2


def _drive_workload(world, shell):
    """A small built-in benign workload for the ``counters`` command.

    Mirrors the differential harness's macro workload (tree stats,
    open/read loops, fork + execve) plus one guaranteed-sensitive open,
    swallowing kernel denials so drop counters accumulate instead of
    aborting the drive.
    """
    sysi = world.sys

    def attempt(fn):
        try:
            fn()
        except errors.KernelError:
            pass

    def open_read(path):
        fd = sysi.open(shell, path)
        sysi.read(shell, fd, 32)
        sysi.close(shell, fd)

    for path in ("/etc/passwd", "/lib/libc.so.6", "/bin/sh"):
        attempt(lambda p=path: sysi.stat(shell, p))
    for _ in range(4):
        attempt(lambda: open_read("/etc/passwd"))
    attempt(lambda: open_read("/etc/shadow"))
    child = sysi.fork(shell)
    attempt(lambda: sysi.execve(child, "/bin/sh", argv=["/bin/sh", "-c", "true"]))
    attempt(lambda: sysi.stat(child, "/bin/sh"))
    sysi.exit(child, 0)


def cmd_counters(args):
    from repro.api import Session
    from repro.world import spawn_root_shell

    if args.service:
        return _cmd_counters_service(args)
    if not args.file:
        print("pfctl: counters requires a rules file (or --service N)",
              file=sys.stderr)
        return 1
    # Resource-context caching is decision-identical, so turning it on
    # here costs nothing and lets the counters view surface the
    # pf_rescache_total{result=...} family alongside the chain counters.
    session = Session(
        engine=EngineConfig(resource_cache=True),
        rules=read_rule_lines(args.file),
        metered=True,
        dcache=False if args.no_dcache else None,
    )
    world, firewall = session.kernel, session.firewall
    shell = spawn_root_shell(world)
    _drive_workload(world, shell)
    # One-shot export of the name-resolution cache counters into the
    # registry so the JSON/Prometheus views carry the pf_dcache_* family
    # alongside the engine counters.
    world.dcache.publish(firewall.metrics)
    if args.json:
        print(firewall.metrics.to_json())
        return 0
    if args.prometheus:
        sys.stdout.write(firewall.metrics.to_prometheus())
        return 0
    print(list_rules(firewall, verbose=True))
    print()
    print("mediations: {}  allowed: {}  dropped: {}  fast-path: {}".format(
        firewall.stats.invocations,
        firewall.stats.accepts,
        firewall.stats.drops,
        firewall.metrics.value("pf_fast_path_total"),
    ))
    print("rescache: hits={}  misses={}  invalidations={}".format(
        firewall.metrics.value("pf_rescache_total", {"result": "hit"}),
        firewall.metrics.value("pf_rescache_total", {"result": "miss"}),
        firewall.metrics.value("pf_rescache_total", {"result": "invalidate"}),
    ))
    dc = world.dcache.counters()
    print("dcache: {} — dentry hits={} neg={} misses={} inval={}; "
          "walk hits={} misses={} inval={}".format(
        "on" if world.dcache.enabled else "off",
        dc[("dentry", "hit")], dc[("dentry", "negative_hit")],
        dc[("dentry", "miss")], dc[("dentry", "invalidate")],
        dc[("walk", "hit")], dc[("walk", "miss")], dc[("walk", "invalidate")],
    ))
    return 0


def _cmd_counters_service(args):
    """``pfctl counters --service N``: metered service run, wire family.

    Runs ``N`` generated sessions through a real 2-worker metered
    service pool under the given rules and prints (or exports) the
    merged metrics registry — the way to see the
    ``pf_service_wire_*`` data-plane family next to the engine
    counters, since only actual pipe traffic populates it.
    """
    from repro.obs.metrics import registry_from_prometheus
    from repro.service import run_service
    from repro.workloads.generators import generate_stream

    rules_text = None
    if args.file:
        from repro.firewall.persist import save_rules as _save

        rules_text = _save(_load_file(args.file))
    result = run_service(
        generate_stream(args.service, seed=0x5EA5),
        rules_text,
        workers=2,
        metered=True,
    )
    prom = result["metrics_prom"] or ""
    if args.json:
        print(registry_from_prometheus(prom).to_json())
        return 0
    if args.prometheus:
        sys.stdout.write(prom)
        return 0
    registry = registry_from_prometheus(prom)
    wire_summary = result["wire"]
    print("service counters: {} sessions over 2 workers ({} wire)".format(
        args.service, wire_summary["protocol"]))
    print("mediations: {}  dropped: {}".format(
        result["stats"]["invocations"], result["stats"]["drops"]))
    for direction in ("tx", "rx"):
        print("wire {}: {} bytes, {} sessions, frames {}".format(
            direction,
            registry.value("pf_service_wire_bytes_total",
                           {"endpoint": "driver", "dir": direction}),
            registry.value("pf_service_wire_sessions_total",
                           {"endpoint": "driver", "dir": direction}),
            wire_summary["driver"]["frames"][direction]))
    print("wire derived: {:.1f} B/session, {:.2f} sessions/frame".format(
        wire_summary["bytes_per_session"] or 0.0,
        wire_summary["sessions_per_frame"] or 0.0))
    return 0


def cmd_explain(args):
    if getattr(args, "codegen", False):
        from repro.api import resolve_engine
        from repro.firewall.codegen import dump_codegen

        firewall = ProcessFirewall(resolve_engine("JITTED"))
        for line in read_rule_lines(args.file):
            pftables(firewall, line)
        print(dump_codegen(firewall))
        return 0

    if args.exploit:
        from repro.attacks.exploits import EXPLOITS

        eid = args.exploit.upper()
        if eid not in EXPLOITS:
            print(
                "pfctl: unknown exploit {!r} (choose from {})".format(
                    args.exploit, ", ".join(sorted(EXPLOITS))),
                file=sys.stderr,
            )
            return 1
        rule_lines = read_rule_lines(args.file)
        scenario = EXPLOITS[eid]()
        scenario.rules = lambda _lines=rule_lines: list(_lines)
        holder = {}

        def instrument(firewall):
            holder["tracer"] = firewall.enable_tracing(capacity=1024)

        result = scenario.run(with_firewall=True, instrument=instrument)
        state = "blocked" if result.blocked else (
            "succeeded" if result.succeeded else "failed")
        print("{} {}: {} ({})".format(eid, scenario.name, state, result.detail))
        tracer = holder["tracer"]
        traces = tracer.drops()
        if not traces and tracer.last() is not None:
            traces = [tracer.last()]
        for trace in traces:
            print(trace.render())
        return 0

    from repro.api import Session
    from repro.world import spawn_root_shell

    session = Session(rules=read_rule_lines(args.file))
    world, firewall = session.kernel, session.firewall
    tracer = firewall.enable_tracing(capacity=1024)
    shell = spawn_root_shell(world)
    try:
        fd = world.sys.open(shell, args.open)
        world.sys.close(shell, fd)
    except errors.PFDenied:
        pass
    except errors.KernelError as exc:
        print("pfctl: open denied outside the firewall: {}".format(exc.message))
    for trace in tracer:
        print(trace.render())
    return 0


def cmd_bench_scale(args):
    """Run the sharded macro-replay scaling sweep from the CLI."""
    import json as _json

    from repro.parallel import replay_serial, replay_sharded
    from repro.rulesets.generated import install_full_rulebase
    from repro.workloads.macro import record_scale_trace

    if args.file:
        firewall = _load_file(args.file)
    else:
        firewall = ProcessFirewall()
        install_full_rulebase(firewall)
    rules_text = save_rules(firewall)
    trace = record_scale_trace(
        sessions=args.sessions, loops=args.loops, profile=args.profile)
    world = ("macro_scale", {"sessions": args.sessions})
    serial = replay_serial(trace, rules_text, config=args.engine, world=world)
    reference = serial["merged"]["verdicts"]
    serial_tp = serial["aggregate"]["throughput_cpu"]
    points = []
    for workers in args.workers:
        result = replay_sharded(
            trace, rules_text, workers=workers, config=args.engine,
            inline=args.inline, world=world)
        if result["merged"]["verdicts"] != reference:
            print("pfctl: verdict divergence at {} workers".format(workers),
                  file=sys.stderr)
            return 1
        tp = result["aggregate"]["throughput_cpu"]
        points.append({
            "workers": workers,
            "throughput_cpu": round(tp, 1),
            "throughput_wall": round(result["aggregate"]["throughput_wall"], 1),
            "speedup_cpu": round(tp / serial_tp, 3),
            "digest": result["plan"]["digest"],
        })
    if args.json:
        print(_json.dumps({
            "engine": args.engine,
            "profile": args.profile,
            "trace_entries": len(trace.entries),
            "scaling_basis": "worker-cpu-time",
            "serial_throughput_cpu": round(serial_tp, 1),
            "points": points,
        }, indent=2, sort_keys=True))
        return 0
    print("macro-replay scaling: {} entries, engine {}, profile {} "
          "(basis: worker CPU time)".format(
              len(trace.entries), args.engine, args.profile))
    print("{:>8} {:>16} {:>16} {:>9}".format(
        "workers", "rec/cpu-s", "rec/wall-s", "speedup"))
    print("{:>8} {:>16.1f} {:>16.1f} {:>9}".format(
        "serial", serial_tp, serial["aggregate"]["throughput_wall"], "1.00x"))
    for point in points:
        print("{:>8} {:>16.1f} {:>16.1f} {:>8.2f}x".format(
            point["workers"], point["throughput_cpu"],
            point["throughput_wall"], point["speedup_cpu"]))
    print("verdict parity vs serial: OK ({} records)".format(len(reference)))
    return 0


def cmd_compile_tables(args):
    """AOT-compile a rules file to the TABLED flat-table artifact."""
    from repro.world import build_world
    from repro.firewall import tables

    if args.file:
        firewall = _load_file(args.file)
    else:
        from repro.rulesets.generated import install_full_rulebase

        firewall = ProcessFirewall()
        install_full_rulebase(firewall)
    # Attach a world so label universes fold the MAC policy's TCB in —
    # the same environment a serving session compiles against.
    build_world().attach_firewall(firewall)
    if args.check:
        with open(args.check) as fh:
            text = fh.read()
        try:
            program = tables.load_tables(firewall, text)
        except errors.PFTablesStale as exc:
            print("pfctl: stale artifact: {}".format(exc.message), file=sys.stderr)
            return 4
        static_rows, fallback_rows = program.row_counts()
        print("{}: OK ({} static rows, {} fallback rows)".format(
            args.check, static_rows, fallback_rows))
        return 0
    program = tables.compile_tables(firewall)
    text = tables.serialize_tables(program)
    static_rows, fallback_rows = program.row_counts()
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print("wrote {} ({} bytes, {} static rows, {} fallback rows)".format(
            args.output, len(text), static_rows, fallback_rows))
    else:
        sys.stdout.write(text)
    return 0


def cmd_serve(args):
    """Run the live mediation service over a generated session stream."""
    from repro.service import run_service
    from repro.workloads.generators import generate_stream

    rules_text = None
    if args.file:
        from repro.firewall.persist import save_rules as _save

        rules_text = _save(_load_file(args.file))
    tables_text = None
    if args.tables:
        with open(args.tables) as fh:
            tables_text = fh.read()
    specs = generate_stream(args.sessions, seed=args.seed)
    result = run_service(
        specs,
        rules_text,
        engine=args.engine,
        workers=args.workers,
        processes=not args.inline,
        mode="open" if args.rate else "closed",
        offered_rate=args.rate,
        max_pending=args.max_pending,
        tables_text=tables_text,
        protocol=args.protocol,
    )
    counters = result["counters"]
    throughput = result["throughput"]
    latency = result["latency"]
    print("service: {} workers, engine {}, {} wire, {} mode".format(
        args.workers, args.engine, args.protocol,
        "open-loop @ {}/s".format(args.rate) if args.rate else "closed-loop"))
    print("sessions: {} offered, {} admitted, {} completed, {} rejected".format(
        args.sessions, counters["admitted"], counters["completed"],
        counters["rejected"]))
    print("mediations: {} total, {} dropped; {:.1f}/s wall, {:.1f}/cpu-s".format(
        throughput["mediations"], result["drops"],
        throughput["mediations_per_s"], throughput["mediations_per_cpu_s"]))
    if latency["p50"] is not None:
        print("mediation latency: p50 {:.1f}us  p99 {:.1f}us".format(
            latency["p50"] * 1e6, latency["p99"] * 1e6))
    print("backpressure: queue peak {}, inflight peak {}".format(
        counters["queue_depth_peak"], counters["inflight_peak"]))
    summary = result["wire"]
    if summary["bytes_per_session"] is not None:
        codec = summary["codec_s"]
        print("wire: {:.1f} B/session, {:.2f} sessions/frame, codec "
              "{:.1f}ms driver / {:.1f}ms workers".format(
                  summary["bytes_per_session"],
                  summary["sessions_per_frame"] or 1.0,
                  1e3 * (codec["driver_encode"] + codec["driver_decode"]),
                  1e3 * (codec["worker_encode"] + codec["worker_decode"])))
    return 0


def cmd_bench_service(args):
    """Run the service throughput/latency sweep from the CLI."""
    import json as _json

    from repro.service.driver import sweep_service

    result = sweep_service(
        worker_counts=args.workers,
        load_factors=args.loads,
        sessions=args.sessions,
        seed=args.seed,
        engine=args.engine,
        processes=not args.inline,
        protocol=args.protocol,
    )
    if args.json:
        print(_json.dumps(result, indent=2, sort_keys=True))
        return 0
    print("service sweep: {} sessions/point, engine {}".format(
        args.sessions, args.engine))
    print("{:>8} {:>6} {:>12} {:>10} {:>10} {:>10} {:>9}".format(
        "workers", "load", "offered/s", "done/s", "p50us", "p99us", "rejected"))
    for row in result["worker_points"]:
        closed = row["closed_loop"]
        print("{:>8} {:>6} {:>12} {:>10} {:>10} {:>10} {:>9}".format(
            row["workers"], "cap", "-", closed["sessions_per_s"],
            closed["p50_us"], closed["p99_us"], 0))
        for point in row["load_points"]:
            print("{:>8} {:>5.1f}x {:>12} {:>10} {:>10} {:>10} {:>9}".format(
                row["workers"], point["load_factor"], point["offered_rate"],
                point["sessions_per_s"], point["p50_us"], point["p99_us"],
                point["rejected"]))
    return 0


def cmd_bench_fork(args):
    """Run the fork-scale eager-vs-CoW sweep from the CLI."""
    import json as _json

    from repro.workloads.forkscale import fork_parity_observables, measure_fork_point

    points = []
    for live in args.live:
        for mode in args.modes:
            if mode == "eager" and live > args.eager_max:
                continue
            points.append(measure_fork_point(
                mode, live, state_keys=args.state_keys, trace_heap=args.heap))
    parity_ok = None
    if not args.no_parity:
        cow = fork_parity_observables("cow")
        eager = fork_parity_observables("eager")
        parity_ok = cow == eager
        if not parity_ok:
            print("pfctl: CoW vs eager observables diverged", file=sys.stderr)
            return 1
    if args.json:
        print(_json.dumps({
            "state_keys": args.state_keys,
            "parity": parity_ok,
            "points": points,
        }, indent=2, sort_keys=True))
        return 0
    print("fork scale: warm parent with {} STATE keys".format(args.state_keys))
    header = "{:>6} {:>8} {:>12} {:>12} {:>12}".format(
        "mode", "live", "us/fork", "forks/s", "state MiB")
    if args.heap:
        header += " {:>12}".format("heap MiB")
    print(header)
    for point in points:
        line = "{:>6} {:>8} {:>12.2f} {:>12.1f} {:>12.2f}".format(
            point["mode"], point["live"], point["us_per_fork"],
            point["forks_per_sec"], point["state_bytes"] / 2**20)
        if args.heap:
            line += " {:>12.2f}".format(point["heap_bytes"] / 2**20)
        print(line)
    if parity_ok is not None:
        print("CoW vs eager verdict/log/stats parity: OK")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(prog="pfctl", description=__doc__.split("\n\n")[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("parse", help="validate a rules file")
    p.add_argument("file")
    p.add_argument("--keep-going", action="store_true", help="report every bad line")
    p.set_defaults(func=cmd_parse)

    p = sub.add_parser("fmt", help="print normalized rules")
    p.add_argument("file")
    p.set_defaults(func=cmd_fmt)

    p = sub.add_parser("list", help="print the chain view")
    p.add_argument("file")
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=cmd_list)

    p = sub.add_parser("save", help="emit pftables-save serialization")
    p.add_argument("file")
    p.set_defaults(func=cmd_save)

    p = sub.add_parser("suggest", help="generate T1 rules from a JSON LOG trace")
    p.add_argument("log")
    p.add_argument("--threshold", type=int, default=100)
    p.set_defaults(func=cmd_suggest)

    p = sub.add_parser("lint", help="static checks against the standard world")
    p.add_argument("file")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("audit", help="run the E1-E9 exploits against the rules")
    p.add_argument("file")
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser(
        "counters", help="drive a benign workload; print live chain counters")
    p.add_argument("file", nargs="?", default=None)
    group = p.add_mutually_exclusive_group()
    group.add_argument("--json", action="store_true",
                       help="export the metrics registry as JSON")
    group.add_argument("--prometheus", action="store_true",
                       help="export the metrics registry as Prometheus text")
    p.add_argument("--service", type=int, default=None, metavar="N",
                   help="instead of the benign workload, run N generated "
                        "sessions through a metered 2-worker service pool "
                        "and include the pf_service_wire_* data-plane "
                        "family (default rules: R1-R12 + safe_open)")
    p.add_argument("--no-dcache", action="store_true",
                   help="disable fast-path name resolution (every walk "
                        "cold); the pf_dcache_* line then reports zeros")
    p.set_defaults(func=cmd_counters)

    p = sub.add_parser(
        "explain", help="pf-trace: show why a mediation was allowed or dropped")
    p.add_argument("file")
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--open", metavar="PATH",
                       help="trace opening PATH in the standard world")
    group.add_argument("--exploit", metavar="EID",
                       help="trace one of the E1-E9 exploits (e.g. E3)")
    group.add_argument("--codegen", action="store_true",
                       help="print the JITTED engine's generated per-chain "
                            "decision functions for this rule file")
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser(
        "bench-scale",
        help="shard the macro-replay workload across N workers and "
             "report throughput vs the serial engine")
    p.add_argument("file", nargs="?", default=None,
                   help="rules file (default: the generated full rule base)")
    p.add_argument("--workers", type=lambda s: [int(n) for n in s.split(",")],
                   default=[1, 2, 4], metavar="N[,N...]",
                   help="worker counts to sweep (default 1,2,4)")
    p.add_argument("--sessions", type=int, default=4,
                   help="independent workload lineages to record (default 4)")
    p.add_argument("--loops", type=int, default=20,
                   help="iterations per session (default 20)")
    p.add_argument("--profile", choices=("mixed", "null"), default="mixed")
    p.add_argument("--engine", default="JITTED",
                   help="engine preset for every worker (default JITTED)")
    p.add_argument("--inline", action="store_true",
                   help="run shards sequentially in-process instead of "
                        "spawning OS workers (debugging)")
    p.add_argument("--json", action="store_true",
                   help="emit the sweep as JSON instead of a table")
    p.set_defaults(func=cmd_bench_scale)

    p = sub.add_parser(
        "serve",
        help="run the live mediation service over a generated session "
             "stream and report throughput, tail latency, and backpressure")
    p.add_argument("file", nargs="?", default=None,
                   help="rules file (default: R1-R12 + safe_open)")
    p.add_argument("--workers", type=int, default=2,
                   help="worker processes (default 2)")
    p.add_argument("--sessions", type=int, default=100,
                   help="sessions to generate (default 100)")
    p.add_argument("--rate", type=float, default=None,
                   help="open-loop offered load, sessions/s "
                        "(default: closed loop)")
    p.add_argument("--max-pending", type=int, default=64,
                   help="open-loop admission queue bound (default 64)")
    p.add_argument("--seed", type=int, default=0x5EA5,
                   help="stream seed (default 0x5EA5)")
    p.add_argument("--engine", default="JITTED",
                   help="engine preset for every worker (default JITTED)")
    p.add_argument("--tables", metavar="ARTIFACT", default=None,
                   help="flat-table artifact file (from compile-tables) "
                        "shipped to every worker for zero-warmup start")
    p.add_argument("--inline", action="store_true",
                   help="run sessions in-process instead of spawning "
                        "OS workers (debugging / serial reference)")
    p.add_argument("--protocol", choices=list(PROTOCOLS),
                   default=DEFAULT_PROTOCOL,
                   help="worker wire protocol: batched binary frames or "
                        "the per-session pickle compatibility path "
                        "(default %(default)s)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "compile-tables",
        help="AOT-compile a rules file into the TABLED flat-table "
             "artifact (or --check an existing artifact for staleness)")
    p.add_argument("file", nargs="?", default=None,
                   help="rules file (default: the generated full rule base)")
    p.add_argument("-o", "--output", default=None,
                   help="write the artifact here instead of stdout")
    p.add_argument("--check", metavar="ARTIFACT", default=None,
                   help="validate ARTIFACT against the rules instead of "
                        "compiling (exit 4 when stale)")
    p.set_defaults(func=cmd_compile_tables)

    p = sub.add_parser(
        "bench-service",
        help="sweep the service over worker counts and offered-load "
             "factors; report sustained throughput and p50/p99 latency")
    p.add_argument("--workers", type=lambda s: [int(n) for n in s.split(",")],
                   default=[1, 2, 4], metavar="N[,N...]",
                   help="worker counts to sweep (default 1,2,4)")
    p.add_argument("--loads", type=lambda s: [float(n) for n in s.split(",")],
                   default=[0.5, 1.0, 2.0], metavar="F[,F...]",
                   help="open-loop load factors x closed-loop capacity "
                        "(default 0.5,1.0,2.0)")
    p.add_argument("--sessions", type=int, default=200,
                   help="sessions per measurement point (default 200)")
    p.add_argument("--seed", type=int, default=0x5EA5,
                   help="stream seed (default 0x5EA5)")
    p.add_argument("--engine", default="JITTED",
                   help="engine preset for every worker (default JITTED)")
    p.add_argument("--inline", action="store_true",
                   help="inline runners instead of OS workers")
    p.add_argument("--protocol", choices=list(PROTOCOLS),
                   default=DEFAULT_PROTOCOL,
                   help="worker wire protocol to sweep under "
                        "(default %(default)s)")
    p.add_argument("--json", action="store_true",
                   help="emit the sweep as JSON instead of a table")
    p.set_defaults(func=cmd_bench_service)

    p = sub.add_parser(
        "bench-fork",
        help="fork a warm pre-fork parent at scale and report eager-copy "
             "vs copy-on-write state propagation")
    p.add_argument("--live", type=lambda s: [int(n) for n in s.split(",")],
                   default=[1000, 10000], metavar="N[,N...]",
                   help="live-children scales to sweep (default 1000,10000)")
    p.add_argument("--modes", type=lambda s: s.split(","), default=["cow", "eager"],
                   metavar="MODE[,MODE]",
                   help="fork state modes to measure (default cow,eager)")
    p.add_argument("--state-keys", type=int, default=8192,
                   help="warm parent STATE entries (default 8192)")
    p.add_argument("--eager-max", type=int, default=10000,
                   help="largest scale to measure eager at (a 100k eager "
                        "storm holds ~40 GB of replicas; default 10000)")
    p.add_argument("--heap", action="store_true",
                   help="also run the (untimed) tracemalloc heap pass")
    p.add_argument("--no-parity", action="store_true",
                   help="skip the CoW-vs-eager observable parity check")
    p.add_argument("--json", action="store_true",
                   help="emit the sweep as JSON instead of a table")
    p.set_defaults(func=cmd_bench_fork)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except errors.KernelError as exc:
        print("pfctl: {}".format(exc.message), file=sys.stderr)
        return 1
    except OSError as exc:
        print("pfctl: {}".format(exc), file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
