"""Standard world construction: an Ubuntu-10.04-flavoured filesystem.

Tests, examples, and benchmarks all start from the same small "distro"
image: system directories with reference-policy labels, a root user, an
untrusted local user (uid 1000, label ``user_t``) who owns ``/home/user``
and can write the sticky ``/tmp`` — which is exactly what makes those
locations adversary-accessible.
"""

from __future__ import annotations

from repro.kernel import Kernel
from repro.security.selinux import reference_policy

#: The unprivileged local adversary used across scenarios.
ADVERSARY_UID = 1000


def build_world(enforcing_mac=True):
    """Create a kernel with the standard filesystem and policy.

    Returns the :class:`repro.kernel.Kernel`; callers spawn their own
    processes.
    """
    kernel = Kernel(policy=reference_policy(enforcing=enforcing_mac))
    fs_layout(kernel)
    kernel.adversaries.register_uid(ADVERSARY_UID)
    return kernel


def fs_layout(kernel):
    """Populate the standard directory tree and system files."""
    k = kernel
    k.mkdirs("/bin", label="bin_t")
    k.mkdirs("/usr/bin", label="bin_t")
    k.mkdirs("/usr/sbin", label="bin_t")
    k.mkdirs("/lib", label="lib_t")
    k.mkdirs("/usr/lib", label="lib_t")
    k.mkdirs("/usr/share", label="usr_t")
    k.mkdirs("/etc", label="etc_t")
    k.mkdirs("/var", label="var_t")
    k.mkdirs("/var/www", label="httpd_sys_content_t")
    k.mkdirs("/var/www/html", label="httpd_sys_content_t")
    k.mkdirs("/var/run", label="var_t")
    k.mkdirs("/var/run/dbus", label="system_dbusd_var_run_t")
    k.mkdirs("/tmp", mode=0o1777, label="tmp_t")
    k.mkdirs("/home", label="user_home_dir_t")
    k.mkdirs("/home/user", uid=ADVERSARY_UID, mode=0o755, label="user_home_t")

    # System binaries and libraries referenced by the paper's rules.
    for path in (
        "/bin/sh",
        "/bin/bash",
        "/bin/dbus-daemon",
        "/usr/bin/apache2",
        "/usr/bin/php5",
        "/usr/bin/python2.7",
        "/usr/bin/java",
        "/usr/bin/icecat",
        "/usr/bin/dstat",
        "/usr/sbin/sshd",
    ):
        k.add_file(path, b"\x7fELF", mode=0o755, label="bin_t")
    for path in (
        "/lib/ld-2.15.so",
        "/lib/libc.so.6",
        "/lib/libdbus-1.so.3",
        "/lib/libssl.so",
        "/usr/lib/libphp5.so",
    ):
        k.add_file(path, b"\x7fELF", mode=0o755, label="lib_t")

    # Sensitive system files.
    k.add_file("/etc/passwd", b"root:x:0:0:/root:/bin/sh\nuser:x:1000:1000:/home/user:/bin/sh\n", label="etc_t")
    k.add_file("/etc/shadow", b"root:$6$secret\n", mode=0o600, label="shadow_t")
    k.add_file("/etc/ld.so.conf", b"/lib\n/usr/lib\n", label="etc_t")

    # Web content.
    k.add_file("/var/www/html/index.html", b"<html>hello</html>", label="httpd_sys_content_t")
    return kernel


def spawn_root_shell(kernel, comm="sh"):
    return kernel.spawn(comm, uid=0, label="unconfined_t", binary_path="/bin/sh")


def spawn_adversary(kernel, comm="attacker"):
    """The untrusted local user's process."""
    return kernel.spawn(comm, uid=ADVERSARY_UID, label="user_t", binary_path="/bin/sh", cwd="/home/user")
