"""Baseline defences the paper compares against.

Two families:

- **Program defences** — the ``open`` variants of
  :mod:`repro.programs.libc` (Figure 4's baselines: ``O_NOFOLLOW``,
  lstat/open, the full race dance, Chari's ``safe_open``).
- **System-only defences** (this package) — kernel mechanisms with *no
  process context*, which §2.2 argues are "fundamentally limited ...
  prone to false positives or negatives" (citing Cai et al. [7]):

  - :class:`repro.baselines.raceguard.RaceGuard` — RaceGuard-style
    TOCTTOU detection [11]: track each process's recent check and deny
    a use that resolves differently, for *every* check/use pair in
    *every* program;
  - :class:`repro.baselines.openwall.OpenwallSymlinkPolicy` — the
    classic protected-symlinks sysctl: restrict following links in
    sticky world-writable directories by owner, for *every* process.

Each is an LSM module (they run in the authorization layer, like their
real counterparts — not in the Process Firewall).  The comparison bench
shows both stop their target attack **and** break a legitimate
workload that the context-aware firewall rules leave alone.
"""

from repro.baselines.openwall import OpenwallSymlinkPolicy
from repro.baselines.raceguard import RaceGuard

__all__ = ["OpenwallSymlinkPolicy", "RaceGuard"]
