"""Openwall/protected-symlinks system-only link policy.

The classic hardening (Openwall patch, later the
``fs.protected_symlinks`` sysctl): in a sticky world-writable directory
(``/tmp``), a symlink may only be followed when the link's owner equals
the follower's fsuid or the directory's owner.

System-wide and context-free, so it over-blocks: Chari et al.'s
analysis (adopted by the paper's safe-open rules) permits following an
adversary's link into the adversary's *own* files — common with
user-managed spools and sockets — but this policy denies it whenever a
different user follows.  The firewall rules express the finer invariant
because they can compare the link's owner against the *target's* owner.
"""

from __future__ import annotations

from repro import errors
from repro.security.lsm import Op


class OpenwallSymlinkPolicy:
    """LSM module enforcing sticky-directory symlink restrictions."""

    def __init__(self):
        self.denials = 0

    def authorize(self, operation):
        if operation.op not in (Op.LNK_FILE_READ, Op.LINK_READ):
            return
        link = operation.obj
        if link is None:
            return
        sticky_dir = operation.extra.get("sticky_parent")
        if sticky_dir is None:
            return  # the policy only covers sticky world-writable dirs
        follower = operation.proc.creds.euid
        if link.uid == follower:
            return
        if link.uid == sticky_dir.uid:
            return
        self.denials += 1
        raise errors.EACCES(
            "protected_symlinks: uid {} may not follow link owned by {}".format(follower, link.uid)
        )
