"""The baseline comparison matrix (shared by bench and runner).

One symlink attack plus two benign workloads that *look* like attacks
to context-free mechanisms, run under each defence.
"""

from __future__ import annotations

from repro import errors
from repro.baselines.openwall import OpenwallSymlinkPolicy
from repro.baselines.raceguard import RaceGuard
from repro.firewall.engine import ProcessFirewall
from repro.rulesets.default import safe_open_pf_rules
from repro.vfs.file import OpenFlags
from repro.world import build_world, spawn_adversary, spawn_root_shell

DEFENSES = ["none", "raceguard", "openwall", "process firewall"]


def build_defended_world(defense):
    kernel = build_world()
    if defense == "raceguard":
        kernel.lsm.register(RaceGuard())
    elif defense == "openwall":
        kernel.lsm.register(OpenwallSymlinkPolicy())
    elif defense == "process firewall":
        firewall = kernel.attach_firewall(ProcessFirewall())
        firewall.install_all(safe_open_pf_rules())
    elif defense != "none":
        raise errors.EINVAL("unknown defense {!r}".format(defense))
    return kernel


def symlink_attack_succeeds(kernel):
    """Planted /tmp link into /etc/passwd, followed by root."""
    victim, adversary = spawn_root_shell(kernel), spawn_adversary(kernel)
    kernel.sys.symlink(adversary, "/etc/passwd", "/tmp/trap")
    try:
        kernel.sys.open(victim, "/tmp/trap")
        return True
    except errors.EACCES:
        return False


def benign_sharing_works(kernel):
    """Root reads a user's own file through the user's own link."""
    root, user = spawn_root_shell(kernel), spawn_adversary(kernel)
    kernel.add_file("/tmp/users-own", b"theirs", uid=1000, mode=0o644)
    kernel.sys.symlink(user, "/tmp/users-own", "/tmp/users-link")
    try:
        kernel.sys.open(root, "/tmp/users-link")
        return True
    except errors.EACCES:
        return False


def benign_rotation_works(kernel):
    """stat, trusted rename, open — a legitimate identity change."""
    reader = spawn_root_shell(kernel, "reader")
    rotator = spawn_root_shell(kernel, "logrotate")
    kernel.add_file("/var/app.log", b"old", uid=0, mode=0o644)
    kernel.sys.stat(reader, "/var/app.log")
    kernel.sys.rename(rotator, "/var/app.log", "/var/app.log.1")
    fd = kernel.sys.open(rotator, "/var/app.log", flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY, mode=0o644)
    kernel.sys.close(rotator, fd)
    try:
        kernel.sys.open(reader, "/var/app.log")
        return True
    except errors.EACCES:
        return False


def comparison_matrix():
    """Rows of (defense, attack_succeeds, sharing_ok, rotation_ok)."""
    rows = []
    for defense in DEFENSES:
        rows.append(
            (
                defense,
                symlink_attack_succeeds(build_defended_world(defense)),
                benign_sharing_works(build_defended_world(defense)),
                benign_rotation_works(build_defended_world(defense)),
            )
        )
    return rows
