"""RaceGuard-style system-only TOCTTOU defence (Cowan et al. [11]).

The mechanism: remember, per process, the object identity each pathname
resolved to at "check"-shaped syscalls (stat/lstat/access); when a
"use"-shaped syscall (open) resolves the same pathname to a *different*
object, deny it.  No process context: it cannot know which check/use
pairs belong together, so it applies the invariant to **every** pair in
**every** program.

That is exactly the shape Cai et al. proved unsound: programs that
legitimately expect a name to be rebound between a stat and an open
(log rotation, atomic-rename config updates, editors) trip it.  The
comparison bench demonstrates the false positive; the Process
Firewall's T2 rules — scoped to the vulnerable program's specific
check/use entrypoints — do not fire on those programs at all.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro import errors
from repro.security.lsm import Op

#: Operations treated as a "check" of a pathname.
CHECK_OPS = frozenset({Op.FILE_GETATTR})
#: Operations treated as a "use" of a pathname.
USE_OPS = frozenset({Op.FILE_OPEN})


class RaceGuard:
    """LSM module: deny uses whose object changed since the check."""

    def __init__(self, window=64):
        #: (pid, path) -> (dev, ino) remembered at check time.
        self._checked = {}  # type: Dict[Tuple[int, str], Tuple[int, int]]
        #: Bound on remembered checks per process (the real system used
        #: a small per-process cache).
        self.window = window
        self.denials = 0

    def _key(self, operation):
        return (operation.proc.pid, operation.path)

    def authorize(self, operation):
        if operation.obj is None or operation.path is None:
            return
        identity = (operation.obj.device, operation.obj.ino)
        if operation.op in CHECK_OPS:
            self._remember(operation, identity)
            return
        if operation.op in USE_OPS:
            remembered = self._checked.pop(self._key(operation), None)
            if remembered is not None and remembered != identity:
                self.denials += 1
                raise errors.EACCES(
                    "raceguard: {} rebound between check and use".format(operation.path)
                )

    def _remember(self, operation, identity):
        pid = operation.proc.pid
        mine = [key for key in self._checked if key[0] == pid]
        if len(mine) >= self.window:
            self._checked.pop(mine[0], None)
        self._checked[self._key(operation)] = identity
