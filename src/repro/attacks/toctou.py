"""TOCTTOU races (CWE-362), scheduled deterministically.

Three variants from §2.1, each using the cooperative scheduler to place
the adversary's namespace mutation exactly inside the victim's
check/use window:

- the classic ``access``/``open`` race of a setuid mail-style helper;
- the ``lstat``/``open`` symlink-swap of Figure 1(a) lines 3-6;
- Kirch's **cryogenic sleep**: the adversary waits for the checked
  inode's number to recycle, defeating ``(dev, ino)`` comparisons;
- the D-Bus ``bind``/``chmod`` race (E6, rules R5/R6).

The firewall defence is template T2: record the resource identity at
the "check" entrypoint in the process ``STATE``, and drop the "use"
when the identity changed.
"""

from __future__ import annotations

from repro import errors
from repro.attacks.base import AttackScenario
from repro.programs.base import Program
from repro.programs.dbus import DbusDaemon
from repro.programs.libc import SafetyViolation, open_nolink
from repro.rulesets.default import safe_open_pf_rules, toctou_rules
from repro.sched.scheduler import Scheduler
from repro.vfs.file import OpenFlags
from repro.world import spawn_adversary

MAILDIR_FILE = "/tmp/user-mbox"

#: The mail helper's check and use call sites.
EPT_ACCESS_CHECK = 0x5510
EPT_OPEN_USE = 0x5544


class MailHelper(Program):
    """A setuid-root helper appending to a user-supplied mailbox path.

    It uses ``access(2)`` to ask "may the *real* user write this?" and
    then opens with root privilege — the canonical non-atomic pair.
    """

    BINARY = "/usr/bin/mail-helper"

    def deliver(self, path, data=b"mail\n"):
        """Generator threadlet: one yield between check and use."""
        with self.frame(EPT_ACCESS_CHECK, "access_check"):
            self.sys.access(self.proc, path, "w")
        yield  # <-- the race window
        with self.frame(EPT_OPEN_USE, "open_use"):
            fd = self.sys.open(self.proc, path, flags=OpenFlags.O_WRONLY | OpenFlags.O_APPEND)
        self.sys.write(self.proc, fd, data)
        self.sys.close(self.proc, fd)
        return fd


class AccessOpenRace(AttackScenario):
    """The adversary swaps their mailbox for a link to ``/etc/passwd``
    inside the access/open window; the setuid victim appends to the
    password file.  Blocked by T2 rules keyed on the helper's
    entrypoints."""

    name = "setuid access/open TOCTTOU race"
    attack_class = "toctou_race"
    reference = "CWE-362"
    program = "mail helper"

    def rules(self):
        return toctou_rules(
            "/usr/bin/mail-helper", EPT_ACCESS_CHECK, "FILE_GETATTR", EPT_OPEN_USE, "FILE_OPEN"
        ) + safe_open_pf_rules()

    def _setup(self, kernel):
        kernel.add_file("/usr/bin/mail-helper", b"\x7fELF", mode=0o755, label="bin_t")
        self.victim = kernel.spawn(
            "mail-helper", uid=1000, label="unconfined_t", binary_path="/usr/bin/mail-helper"
        )
        self.victim.creds.euid = 0  # setuid root
        self.helper = MailHelper(kernel, self.victim)
        self.adversary = spawn_adversary(kernel)
        self.passwd_before = kernel.lookup("/etc/passwd").data

    def _adversary_swap(self):
        sys = self.kernel.sys
        fd = sys.open(self.adversary, MAILDIR_FILE, flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY, mode=0o666)
        sys.close(self.adversary, fd)
        yield  # victim's access() check happens here
        sys.unlink(self.adversary, MAILDIR_FILE)
        sys.symlink(self.adversary, "/etc/passwd", MAILDIR_FILE)

    def _attack(self):
        sched = Scheduler(policy="scripted", script=["adversary", "victim", "adversary", "victim"])
        sched.add("adversary", self._adversary_swap())
        sched.add("victim", self.helper.deliver(MAILDIR_FILE))
        sched.run()
        victim_error = sched.get("victim").error
        if isinstance(victim_error, errors.PFDenied):
            raise victim_error
        if victim_error is not None:
            raise victim_error
        return self.kernel.lookup("/etc/passwd").data != self.passwd_before

    def _benign(self):
        sys = self.kernel.sys
        fd = sys.open(self.adversary, MAILDIR_FILE, flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY, mode=0o666)
        sys.close(self.adversary, fd)
        sched = Scheduler()
        sched.add("victim", self.helper.deliver(MAILDIR_FILE))
        sched.run()
        if sched.get("victim").error is not None:
            raise sched.get("victim").error
        return self.kernel.lookup(MAILDIR_FILE).data.endswith(b"mail\n")


class LstatOpenSymlinkSwap(AttackScenario):
    """Figure 1(a) lines 3-6: ``open_nolink`` raced by a symlink swap.

    The per-component ``safe_open`` firewall rules close it: the swap
    happens *before* the open's walk, so the walk itself traverses the
    adversary's link and is dropped atomically."""

    name = "lstat/open symlink-swap race"
    attack_class = "toctou_race"
    reference = "Figure 1a"
    program = "open_nolink caller"

    VICTIM_FILE = "/tmp/work-file"

    def rules(self):
        return safe_open_pf_rules()

    def _setup(self, kernel):
        self.victim = kernel.spawn("worker", uid=0, label="unconfined_t", binary_path="/bin/sh")
        self.adversary = spawn_adversary(kernel)
        self.leaked = None

    def _victim_steps(self):
        sys = self.kernel.sys
        st = sys.lstat(self.victim, self.VICTIM_FILE)
        if st.is_symlink():
            raise SafetyViolation("link detected")
        yield  # the window
        fd = sys.open(self.victim, self.VICTIM_FILE)
        self.leaked = sys.read(self.victim, fd)
        sys.close(self.victim, fd)

    def _adversary_steps(self):
        sys = self.kernel.sys
        fd = sys.open(self.adversary, self.VICTIM_FILE, flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY, mode=0o666)
        sys.close(self.adversary, fd)
        yield  # victim lstats the innocent file here
        sys.unlink(self.adversary, self.VICTIM_FILE)
        sys.symlink(self.adversary, "/etc/shadow", self.VICTIM_FILE)

    def _attack(self):
        sched = Scheduler(policy="scripted", script=["adversary", "victim", "adversary", "victim"])
        sched.add("adversary", self._adversary_steps())
        sched.add("victim", self._victim_steps())
        sched.run()
        victim_error = sched.get("victim").error
        if victim_error is not None:
            raise victim_error
        return self.leaked is not None and b"secret" in self.leaked

    def _benign(self):
        sys = self.kernel.sys
        fd = sys.open(self.adversary, self.VICTIM_FILE, flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY, mode=0o666)
        sys.write(self.adversary, fd, b"innocent")
        sys.close(self.adversary, fd)
        sched = Scheduler()
        sched.add("victim", self._victim_steps())
        sched.run()
        if sched.get("victim").error is not None:
            raise sched.get("victim").error
        return self.leaked == b"innocent"


#: The spooler's check and use call sites.
EPT_SPOOL_CHECK = 0x6620
EPT_SPOOL_OPEN = 0x6648


class Spooler(Program):
    """A root spooler doing the lstat/open/fstat identity dance."""

    BINARY = "/usr/sbin/spoold"


class CryogenicSleepRace(AttackScenario):
    """Kirch's cryogenic sleep (§2.1): the adversary recycles the
    checked inode's *number*, so even the ``fstat`` identity comparison
    passes while the object is a different file.

    Inode-number state (template T2) is structurally blind here — the
    numbers *match*.  The firewall defence that works evaluates the
    invariant at the atomic use point: the spooler's open entrypoint
    must never touch an adversary-writable resource, and the planted
    file is adversary-owned no matter what number it recycled."""

    name = "cryogenic-sleep inode recycling race"
    attack_class = "toctou_race"
    reference = "Kirch 2000"
    program = "open_nolink+fstat caller"

    VICTIM_FILE = "/tmp/spool-file"
    PLANT_FILE = "/tmp/planted-by-adversary"

    def rules(self):
        return [
            "pftables -A input -i {ept:#x} -p /usr/sbin/spoold -o FILE_OPEN "
            "-m ADVERSARY --writable -j DROP".format(ept=EPT_SPOOL_OPEN)
        ]

    def _setup(self, kernel):
        kernel.mkdirs("/usr/sbin", label="bin_t")
        kernel.add_file("/usr/sbin/spoold", b"\x7fELF", mode=0o755, label="bin_t")
        self.victim = kernel.spawn("spoold", uid=0, label="unconfined_t", binary_path="/usr/sbin/spoold")
        self.spooler = Spooler(kernel, self.victim)
        self.adversary = spawn_adversary(kernel)
        self.check_passed = False
        self.opened_generation = None
        self.checked_generation = None

    def _victim_steps(self):
        sys = self.kernel.sys
        with self.spooler.frame(EPT_SPOOL_CHECK, "spool_check"):
            lbuf = sys.lstat(self.victim, self.VICTIM_FILE)
        if lbuf.is_symlink():
            raise SafetyViolation("link detected")
        self.checked_generation = lbuf.st_generation
        yield  # cryogenic sleep: SIGSTOP'ed by the adversary
        with self.spooler.frame(EPT_SPOOL_OPEN, "spool_open"):
            fd = sys.open(self.victim, self.VICTIM_FILE)
        fbuf = sys.fstat(self.victim, fd)
        sys.close(self.victim, fd)
        if not fbuf.same_file(lbuf):
            raise SafetyViolation("race detected")
        self.check_passed = True
        self.opened_generation = fbuf.st_generation

    def _adversary_steps(self):
        sys = self.kernel.sys
        fd = sys.open(self.adversary, self.VICTIM_FILE, flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY, mode=0o666)
        sys.close(self.adversary, fd)
        yield  # victim lstats; records (dev, ino)
        # Free the checked inode's number ...
        sys.unlink(self.adversary, self.VICTIM_FILE)
        # ... wait for it to recycle into a file the adversary controls
        # (eager recycling: the very next create reuses it) ...
        fd = sys.open(self.adversary, self.PLANT_FILE, flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY, mode=0o666)
        sys.write(self.adversary, fd, b"adversary content")
        sys.close(self.adversary, fd)
        # ... and hard-link it back under the checked name.
        sys.link(self.adversary, self.PLANT_FILE, self.VICTIM_FILE)

    def _attack(self):
        sched = Scheduler(policy="scripted", script=["adversary", "victim", "adversary", "victim"])
        sched.add("adversary", self._adversary_steps())
        sched.add("victim", self._victim_steps())
        sched.run()
        victim_error = sched.get("victim").error
        if victim_error is not None:
            raise victim_error
        # Attack goal: the identity check passed yet the object differs
        # (generation proves the inode number was recycled).
        return self.check_passed and self.opened_generation != self.checked_generation

    def _benign(self):
        sys = self.kernel.sys
        fd = sys.open(self.victim, self.VICTIM_FILE, flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY, mode=0o600)
        sys.close(self.victim, fd)
        sched = Scheduler()
        sched.add("victim", self._victim_steps())
        sched.run()
        if sched.get("victim").error is not None:
            raise sched.get("victim").error
        return self.check_passed and self.opened_generation == self.checked_generation


class DbusBindChmodRace(AttackScenario):
    """E6 — unpatched: dbus-daemon binds its socket then ``chmod``\\ s
    it; an adversary swaps the path in between and the mode change
    applies to a resource of their choosing (here: a link to
    ``/etc/shadow``, making it world-readable).  Rules R5/R6 record the
    bound inode and drop a setattr on anything else."""

    name = "E6: dbus-daemon bind/chmod TOCTTOU"
    attack_class = "toctou_race"
    reference = "unpatched"
    program = "dbus-daemon"

    # A session bus in a world-writable, non-sticky directory (the
    # sticky bit on /tmp would stop the adversary's unlink before the
    # race even started; plenty of real shared directories lack it).
    SOCKET = "/var/tmp/dbus-session-socket"

    def rules(self):
        # R5/R6 as shipped, rebased onto the session daemon's state key,
        # plus the FILE_SETATTR companion the generator emits for the
        # same template (chmod-through-a-swapped-path reaches a file
        # object, not a socket).
        return [
            "pftables -A input -i 0x3c750 -p /bin/dbus-daemon -o SOCKET_BIND "
            "-j STATE --set --key 0xbeef --value C_INO",
            "pftables -A input -i 0x3c786 -p /bin/dbus-daemon -o SOCKET_SETATTR "
            "-m STATE --key 0xbeef --cmp C_INO --nequal -j DROP",
            "pftables -A input -i 0x3c786 -p /bin/dbus-daemon -o FILE_SETATTR "
            "-m STATE --key 0xbeef --cmp C_INO --nequal -j DROP",
        ]

    def _setup(self, kernel):
        kernel.mkdirs("/var/tmp", mode=0o777, label="tmp_t")
        self.victim = kernel.spawn(
            "dbus-daemon", uid=0, label="system_dbusd_t", binary_path="/bin/dbus-daemon"
        )
        self.daemon = DbusDaemon(kernel, self.victim, socket_path=self.SOCKET)
        self.adversary = spawn_adversary(kernel)

    def _victim_steps(self):
        self.daemon.bind_socket(label=None)
        yield  # the bind->chmod window
        self.daemon.chmod_socket(mode=0o666)

    def _adversary_steps(self):
        sys = self.kernel.sys
        yield  # let the daemon bind first
        sys.unlink(self.adversary, self.SOCKET)
        sys.symlink(self.adversary, "/etc/shadow", self.SOCKET)

    def _attack(self):
        sched = Scheduler(policy="scripted", script=["victim", "adversary", "adversary", "victim"])
        sched.add("victim", self._victim_steps())
        sched.add("adversary", self._adversary_steps())
        sched.run()
        victim_error = sched.get("victim").error
        if victim_error is not None:
            raise victim_error
        shadow = self.kernel.lookup("/etc/shadow")
        return bool(shadow.mode & 0o044)  # world/group-readable now?

    def _benign(self):
        self.daemon.bind_socket(label=None)
        self.daemon.chmod_socket(mode=0o666)
        sock = self.kernel.lookup(self.SOCKET, follow=False)
        return sock.mode & 0o777 == 0o666
