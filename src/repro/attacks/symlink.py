"""Link following (CWE-59): planted symlinks in shared directories.

E9's shape: a root-privileged script creates its scratch file in
``/tmp`` with a plain ``O_CREAT`` open; an adversary pre-plants a
symlink at that name and the root write lands on the link target.  The
system-wide ``safe_open`` firewall rules block traversal of
adversary-owned links into files the adversary does not own."""

from __future__ import annotations

from repro.attacks.base import AttackScenario
from repro.programs.base import Program
from repro.programs.shell import ShellScript
from repro.rulesets.default import safe_open_pf_rules
from repro.world import spawn_adversary

SCRATCH = "/tmp/net-sched.lock"


class InitScriptSymlinkClobber(AttackScenario):
    """E9 — previously unknown: an Ubuntu init script's unsafe create."""

    name = "E9: init script symlink-follow file clobber"
    attack_class = "link_following"
    reference = "unknown (found by PF, assigned a CVE)"
    program = "init script"

    TARGET = "/etc/passwd"

    def rules(self):
        return safe_open_pf_rules()

    def _setup(self, kernel):
        self.victim = kernel.spawn("init-script", uid=0, label="init_t", binary_path="/bin/bash")
        self.script = ShellScript(kernel, self.victim)
        self.adversary = spawn_adversary(kernel)
        self.original = kernel.lookup(self.TARGET).data

    def _attack(self):
        self.kernel.sys.symlink(self.adversary, self.TARGET, SCRATCH)
        self.script.redirect_to(SCRATCH)
        clobbered = self.kernel.lookup(self.TARGET).data != self.original
        return clobbered

    def _benign(self):
        # No planted link: the script creates and writes its file.
        self.script.redirect_to(SCRATCH)
        created = self.kernel.lookup(SCRATCH, follow=False)
        return created is not None and created.data == b"started\n"


class HardlinkClobber(AttackScenario):
    """Hard-link variant of link following (CWE-62).

    No symlink is ever traversed, so link rules cannot fire: the
    adversary *hard-links* a high-integrity file under the name the
    victim scribbles on.  Table 2's second row applies — for link
    following the **unsafe** resource is the adversary-*inaccessible*
    one: the scratch entrypoint should only ever touch scratch-labeled
    objects, and a hard link carries the target's label with it, so a
    T1 rule pinning the call site to tmp labels drops the clobber.
    """

    name = "hard-link clobber of a system file"
    attack_class = "link_following"
    reference = "CWE-62"
    program = "statusd"

    SCRATCH_NAME = "/var/tmp/statusd.scratch"
    EPT_SCRATCH = 0x7A10

    class _StatusDaemon(Program):
        BINARY = "/usr/sbin/statusd"

        def write_scratch(self, data=b"status\n"):
            from repro.vfs.file import OpenFlags

            with self.frame(HardlinkClobber.EPT_SCRATCH, "scratch_write"):
                fd = self.sys.open(
                    self.proc,
                    HardlinkClobber.SCRATCH_NAME,
                    flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY | OpenFlags.O_TRUNC,
                    mode=0o666,
                )
            self.sys.write(self.proc, fd, data)
            self.sys.close(self.proc, fd)

    def rules(self):
        from repro.rulesets.default import restrict_entrypoint_rule

        return [
            restrict_entrypoint_rule(
                "/usr/sbin/statusd",
                self.EPT_SCRATCH,
                ("tmp_t", "user_tmp_t"),
                op="FILE_OPEN",
            )
        ]

    def _setup(self, kernel):
        # Non-sticky world-writable dir (hard links in sticky /tmp would
        # already fail the "protected_hardlinks"-era unlink checks).
        kernel.mkdirs("/var/tmp", mode=0o777, label="tmp_t")
        kernel.add_file("/usr/sbin/statusd", b"\x7fELF", mode=0o755, label="bin_t")
        # The target must be adversary-*linkable*: world-readable suffices
        # for link(2); pick a config file the adversary can read.
        kernel.add_file("/etc/app.conf", b"trusted=1\n", uid=0, mode=0o644, label="etc_t")
        self.victim = kernel.spawn("statusd", uid=0, label="unconfined_t", binary_path="/usr/sbin/statusd")
        self.daemon = self._StatusDaemon(kernel, self.victim)
        self.adversary = spawn_adversary(kernel)

    def _attack(self):
        self.kernel.sys.link(self.adversary, "/etc/app.conf", self.SCRATCH_NAME)
        self.daemon.write_scratch()
        return self.kernel.lookup("/etc/app.conf").data != b"trusted=1\n"

    def _benign(self):
        self.daemon.write_scratch()
        # Second run reuses the (now adversary-writable-looking? no —
        # root-owned 0666-masked) scratch; it must keep working.
        self.daemon.write_scratch()
        return self.kernel.lookup(self.SCRATCH_NAME).data == b"status\n"


class SetuidTempfileLinkFollow(AttackScenario):
    """The §2 running example: a setuid program reads its config from
    ``/tmp`` and is redirected to ``/etc/shadow`` — a secrecy attack
    (the victim leaks what it reads)."""

    name = "setuid /tmp read redirected to /etc/shadow"
    attack_class = "link_following"
    reference = "paper §2"
    program = "setuid tool"

    TMPFILE = "/tmp/tool-state"

    def rules(self):
        return safe_open_pf_rules()

    def _setup(self, kernel):
        self.victim = kernel.spawn("setuid-tool", uid=1000, label="unconfined_t", binary_path="/bin/sh")
        self.victim.creds.euid = 0
        self.script = ShellScript(kernel, self.victim)
        self.adversary = spawn_adversary(kernel)

    def _attack(self):
        self.kernel.sys.symlink(self.adversary, "/etc/shadow", self.TMPFILE)
        fd = self.kernel.sys.open(self.victim, self.TMPFILE)
        leaked = self.kernel.sys.read(self.victim, fd)
        self.kernel.sys.close(self.victim, fd)
        return b"secret" in leaked

    def _benign(self):
        # The victim's own state file round-trips fine.
        self.script.redirect_to(self.TMPFILE, data=b"state=1\n")
        fd = self.kernel.sys.open(self.victim, self.TMPFILE)
        data = self.kernel.sys.read(self.victim, fd)
        self.kernel.sys.close(self.victim, fd)
        return data == b"state=1\n"
