"""The attack taxonomy: Tables 1 and 2 of the paper.

Table 1 gives per-class CVE counts (static data, reproduced verbatim);
Table 2 gives, for each class, the safe/unsafe resource properties and
the process context a defence needs.  The scenario classes in this
package each reference their taxonomy row, and the Table 2 benchmark
checks that the *implemented* scenarios consume exactly the context the
paper says is necessary.
"""

from __future__ import annotations


class AttackClass:
    """One row of Tables 1+2.

    Attributes:
        name: attack class name as printed.
        cwe: Common Weakness Enumeration id.
        cve_pre2007 / cve_2007_2012: Table 1's CVE counts.
        safe_resource / unsafe_resource: Table 2 columns 1-2.
        process_context: Table 2 column 4 — what the firewall must see.
    """

    __slots__ = (
        "name",
        "cwe",
        "cve_pre2007",
        "cve_2007_2012",
        "safe_resource",
        "unsafe_resource",
        "process_context",
    )

    def __init__(self, name, cwe, cve_pre2007, cve_2007_2012, safe_resource, unsafe_resource, process_context):
        self.name = name
        self.cwe = cwe
        self.cve_pre2007 = cve_pre2007
        self.cve_2007_2012 = cve_2007_2012
        self.safe_resource = safe_resource
        self.unsafe_resource = unsafe_resource
        self.process_context = process_context


_HIGH = "adversary inaccessible (high integrity, high secrecy)"
_LOW = "adversary accessible (low integrity, low secrecy)"

ATTACK_CLASSES = {
    "untrusted_search_path": AttackClass(
        "Untrusted Search Path", "CWE-426", 109, 329, _HIGH, _LOW, ("entrypoint",)
    ),
    "untrusted_library": AttackClass(
        "Untrusted Library Load", "CWE-426", 97, 91, _HIGH, _LOW, ("entrypoint",)
    ),
    "file_ipc_squat": AttackClass(
        "File/IPC squat", "CWE-283", 13, 9, _HIGH, _LOW, ("entrypoint",)
    ),
    "directory_traversal": AttackClass(
        "Directory Traversal", "CWE-22", 1057, 1514, _LOW, _HIGH, ("entrypoint",)
    ),
    "php_file_inclusion": AttackClass(
        "PHP File Inclusion", "CWE-98", 1112, 1020, _HIGH, _LOW, ("entrypoint",)
    ),
    "link_following": AttackClass(
        "Link Following", "CWE-59", 480, 357, _LOW, _HIGH, ("entrypoint",)
    ),
    "toctou_race": AttackClass(
        "TOCTTOU Races",
        "CWE-362",
        17,
        14,
        'same as previous "check"/"use"',
        'different from previous "check"/"use"',
        ("entrypoint", "syscall_trace"),
    ),
    "signal_race": AttackClass(
        "Signal Races",
        "CWE-479",
        9,
        1,
        "no signal (blocked)",
        "adversary delivers signal",
        ("syscall_trace", "in_signal_handler"),
    ),
}

#: Table 1 footer: share of all CVEs in each period.
CVE_SHARE = {"<2007": 0.1240, "2007-12": 0.0941}


def table1_rows():
    """Rows in the paper's print order for the Table 1 bench."""
    order = [
        "untrusted_search_path",
        "untrusted_library",
        "file_ipc_squat",
        "directory_traversal",
        "php_file_inclusion",
        "link_following",
        "toctou_race",
        "signal_race",
    ]
    return [ATTACK_CLASSES[key] for key in order]
