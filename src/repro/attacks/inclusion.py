"""PHP local file inclusion (E4, CWE-98).

A Joomla!-style component splices an unfiltered request parameter into
an ``include`` pathname.  Rule R4 pins the interpreter's include
entrypoint to files labeled ``httpd_user_script_exec_t`` — one rule
covering every badly-written component at once (the paper cites 82
Joomla! component CVEs in 2010 alone)."""

from __future__ import annotations

from repro.attacks.base import AttackScenario
from repro.programs.php import PhpInterpreter
from repro.rulesets.default import RULES_R1_R12
from repro.world import spawn_adversary

JOOMLA_DIR = "/var/www/html/components/com_gcalendar"


class JoomlaFileInclusion(AttackScenario):
    """E4 — CVE-2010-0972 (gCalendar component LFI)."""

    name = "E4: Joomla! gCalendar PHP file inclusion"
    attack_class = "php_file_inclusion"
    reference = "CVE-2010-0972"
    program = "Joomla! gCalendar"

    def rules(self):
        return [RULES_R1_R12[3]]  # R4

    def _setup(self, kernel):
        kernel.mkdirs(JOOMLA_DIR, label="httpd_user_script_exec_t")
        kernel.add_file(
            JOOMLA_DIR + "/gcalendar_view.php", b"<?php render_calendar(); ?>",
            label="httpd_user_script_exec_t",
        )
        self.victim = kernel.spawn("php5", uid=0, label="httpd_t", binary_path="/usr/bin/php5")
        self.php = PhpInterpreter(kernel, self.victim)
        self.adversary = spawn_adversary(kernel)

    def _attack(self):
        # The adversary stages "code" in a location they control (a /tmp
        # upload, a log file, a session file ... any low-integrity file).
        sys = self.kernel.sys
        fd = sys.open(self.adversary, "/tmp/evil_payload", flags=0x41, mode=0o644)
        sys.write(self.adversary, fd, b"<?php system($_GET['cmd']); ?>")
        sys.close(self.adversary, fd)
        # controller=../../../../../tmp/evil_payload%00
        source = self.php.run_component(
            JOOMLA_DIR, "", "../../../../../../tmp/evil_payload\x00"
        )
        return b"system(" in source

    def _benign(self):
        source = self.php.run_component(JOOMLA_DIR, "", "gcalendar_view")
        return b"render_calendar" in source
