"""Directory traversal (CWE-22) against the web server.

The adversary is *remote* here: they control the request URL, not the
filesystem.  The server concatenates the URL under its DocumentRoot and
the kernel's physical ``..`` resolution walks right out of it.  The
defence is a T1-style rule pinning the serving entrypoint to web
content labels — while the *authentication* entrypoint of the very same
process keeps its access to ``/etc/shadow`` (the paper's motivating
two-context example)."""

from __future__ import annotations

from repro.attacks.base import AttackScenario
from repro.programs.apache import EPT_SERVE_OPEN, ApacheServer
from repro.rulesets.default import restrict_entrypoint_rule


class ApacheDirectoryTraversal(AttackScenario):
    """``GET /../../../../etc/passwd`` against a naive static server."""

    name = "Apache directory traversal"
    attack_class = "directory_traversal"
    reference = "CWE-22"
    program = "Apache"

    EVIL_URL = "/../../../../etc/passwd"

    def rules(self):
        return [
            restrict_entrypoint_rule(
                "/usr/bin/apache2",
                EPT_SERVE_OPEN,
                ("httpd_sys_content_t", "httpd_user_content_t"),
                op="FILE_OPEN",
            )
        ]

    def _setup(self, kernel):
        self.victim = kernel.spawn("apache2", uid=0, label="httpd_t", binary_path="/usr/bin/apache2")
        self.server = ApacheServer(kernel, self.victim)

    def _attack(self):
        response = self.server.serve(self.EVIL_URL)
        return response.status == 200 and b"root:" in response.body

    def _benign(self):
        ok_page = self.server.serve("/index.html")
        # The auth entrypoint must still reach the shadow file — same
        # process, different context (no false positive).
        authed = self.server.authenticate("root", "secret")
        return ok_page.status == 200 and b"hello" in ok_page.body and authed


class ApacheTraversalFilteredStillLeaks(AttackScenario):
    """Input filtering helps but is deployment-fragile: with filtering
    on, the plain ``..`` probe fails, yet an adversary with *local*
    write access plants a symlink inside the DocumentRoot and leaks the
    target without any ``..`` in the URL.  Shows why the paper argues
    resource-side enforcement beats name filtering (§7)."""

    name = "Apache traversal via planted symlink (filter bypass)"
    attack_class = "directory_traversal"
    reference = "CWE-22"
    program = "Apache"

    def rules(self):
        return [
            restrict_entrypoint_rule(
                "/usr/bin/apache2",
                EPT_SERVE_OPEN,
                ("httpd_sys_content_t", "httpd_user_content_t"),
                op="FILE_OPEN",
            )
        ]

    def _setup(self, kernel):
        self.victim = kernel.spawn("apache2", uid=0, label="httpd_t", binary_path="/usr/bin/apache2")
        self.server = ApacheServer(kernel, self.victim, filter_traversal=True)
        # A writable upload area inside the document root.
        kernel.mkdirs("/var/www/html/uploads", uid=1000, mode=0o755, label="httpd_user_content_t")

    def _attack(self):
        filtered = self.server.serve("/../../../../etc/passwd")
        if filtered.status != 400:
            return False  # the filter itself failed; not this scenario
        self.kernel.add_symlink("/var/www/html/uploads/avatar.png", "/etc/passwd", uid=1000)
        response = self.server.serve("/uploads/avatar.png")
        return response.status == 200 and b"root:" in response.body

    def _benign(self):
        return self.server.serve("/index.html").status == 200
