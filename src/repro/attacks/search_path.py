"""Untrusted search path / untrusted library load scenarios.

Covers Table 4's E1 (Apache RUNPATH), E2 (dstat Python path), E3
(libdbus environment), E7 (java config search) and E8 (Icecat insecure
environment).  The common shape: a trusted process resolves a *name*
through a search path that an adversary can extend or reorder, and the
first hit wins.
"""

from __future__ import annotations

from repro.attacks.base import AttackScenario
from repro.programs.dbus import DbusDaemon, LibDbusClient
from repro.programs.java import JavaRuntime
from repro.programs.ld_so import DynamicLinker
from repro.programs.python_interp import PythonInterpreter
from repro.rulesets.default import RULES_R1_R12
from repro.world import ADVERSARY_UID, spawn_adversary


class ApacheRunpathLibrary(AttackScenario):
    """E1 — CVE-2006-1564: module binaries installed with an insecure
    ``RUNPATH`` pointing into ``/tmp/svn``, so ``ld.so`` loads an
    adversary-planted shared object.  Blocked by rule R1."""

    name = "E1: Apache untrusted library load (insecure RUNPATH)"
    attack_class = "untrusted_library"
    reference = "CVE-2006-1564"
    program = "Apache"

    TROJAN_DIR = "/tmp/svn"
    LIBRARY = "mod_ssl.so"

    def rules(self):
        return [RULES_R1_R12[0]]  # R1

    def _setup(self, kernel):
        # The legitimate module, in a trusted location.
        kernel.mkdirs("/usr/lib/apache2", label="httpd_modules_t")
        kernel.add_file("/usr/lib/apache2/" + self.LIBRARY, b"\x7fELF legit", mode=0o755, label="httpd_modules_t")
        self.victim = kernel.spawn("apache2", uid=0, label="httpd_t", binary_path="/usr/bin/apache2")
        # The insecure RUNPATH baked in by the buggy installer, searched
        # before the default directories.
        self.linker = DynamicLinker(kernel, self.victim, runpath=(self.TROJAN_DIR, "/usr/lib/apache2"))
        self.adversary = spawn_adversary(kernel)

    def _plant(self):
        sys = self.kernel.sys
        sys.mkdir(self.adversary, self.TROJAN_DIR, mode=0o755)
        fd = sys.open(self.adversary, self.TROJAN_DIR + "/" + self.LIBRARY, flags=0x41, mode=0o755)  # O_CREAT|O_WRONLY
        sys.write(self.adversary, fd, b"\x7fELF trojan")
        sys.close(self.adversary, fd)

    def _attack(self):
        self._plant()
        path, _image = self.linker.load_library(self.LIBRARY)
        return path.startswith(self.TROJAN_DIR)

    def _benign(self):
        # No trojan planted: the loader must still find the real module.
        path, _image = self.linker.load_library(self.LIBRARY)
        return path == "/usr/lib/apache2/" + self.LIBRARY


class IcecatEnvironmentLibrary(AttackScenario):
    """E8 — previously unknown: GNU Icecat's launcher exported an
    insecure environment variable putting the working directory on the
    library search path.  Blocked silently by rule R1 (the paper found
    it in the denial logs)."""

    name = "E8: Icecat untrusted library (insecure environment)"
    attack_class = "untrusted_library"
    reference = "unknown (found by PF)"
    program = "Icecat"

    LIBRARY = "libssl.so"

    def rules(self):
        return [RULES_R1_R12[0]]  # R1

    def _setup(self, kernel):
        self.victim = kernel.spawn(
            "icecat",
            uid=0,
            label="unconfined_t",
            binary_path="/usr/bin/icecat",
            cwd="/tmp",
            env={"LD_LIBRARY_PATH": "/tmp"},  # the launcher's bug
        )
        self.linker = DynamicLinker(kernel, self.victim)
        self.adversary = spawn_adversary(kernel)

    def _attack(self):
        sys = self.kernel.sys
        fd = sys.open(self.adversary, "/tmp/" + self.LIBRARY, flags=0x41, mode=0o755)
        sys.write(self.adversary, fd, b"\x7fELF trojan")
        sys.close(self.adversary, fd)
        path, _image = self.linker.load_library(self.LIBRARY)
        return path.startswith("/tmp/")

    def _benign(self):
        path, _image = self.linker.load_library(self.LIBRARY)
        return path == "/lib/" + self.LIBRARY


class DstatModulePath(AttackScenario):
    """E2 — CVE-2009-4081: dstat's module search path included the
    working directory, enabling a Trojan-horse Python module.  Blocked
    by rule R2."""

    name = "E2: dstat untrusted Python module path"
    attack_class = "untrusted_search_path"
    reference = "CVE-2009-4081"
    program = "dstat"

    MODULE = "dstat_disk"

    def rules(self):
        return [RULES_R1_R12[1]]  # R2

    def _setup(self, kernel):
        kernel.mkdirs("/usr/share/dstat", label="usr_t")
        kernel.add_file("/usr/share/dstat/{}.py".format(self.MODULE), b"# real plugin", label="usr_t")
        # dstat (root) runs from an adversary-writable directory.
        self.victim = kernel.spawn(
            "dstat", uid=0, label="unconfined_t", binary_path="/usr/bin/python2.7", cwd="/tmp"
        )
        self.interp = PythonInterpreter(
            kernel, self.victim, cwd_path="/tmp", sys_path=["", "/usr/share/dstat"]
        )
        self.adversary = spawn_adversary(kernel)

    def _attack(self):
        sys = self.kernel.sys
        fd = sys.open(self.adversary, "/tmp/{}.py".format(self.MODULE), flags=0x41, mode=0o644)
        sys.write(self.adversary, fd, b"import os; os.system('evil')")
        sys.close(self.adversary, fd)
        path, _source = self.interp.import_module(self.MODULE)
        return path.startswith("/tmp/")

    def _benign(self):
        path, _source = self.interp.import_module(self.MODULE)
        return path == "/usr/share/dstat/{}.py".format(self.MODULE)


class LibDbusEnvironmentSocket(AttackScenario):
    """E3 — CVE-2012-3524: libdbus honoured
    ``DBUS_SYSTEM_BUS_ADDRESS`` even inside setuid binaries, letting the
    invoking user point a privileged client at their own socket.
    Blocked by rule R3 for every vulnerable setuid program at once."""

    name = "E3: libdbus untrusted bus address (setuid)"
    attack_class = "untrusted_search_path"
    reference = "CVE-2012-3524"
    program = "libdbus"

    FAKE_BUS = "/tmp/fake_bus"

    def rules(self):
        return [RULES_R1_R12[2]]  # R3

    def _setup(self, kernel):
        # The real system bus.
        self.dbus_proc = kernel.spawn(
            "dbus-daemon", uid=0, label="system_dbusd_t", binary_path="/bin/dbus-daemon"
        )
        DbusDaemon(kernel, self.dbus_proc).setup()
        # The adversary's impostor bus in /tmp.
        self.adversary = spawn_adversary(kernel)
        kernel.sys.bind(self.adversary, self.FAKE_BUS, mode=0o777)
        # The victim: a setuid-root binary launched by the adversary,
        # environment included.
        self.victim = kernel.spawn(
            "setuid-tool", uid=ADVERSARY_UID, label="unconfined_t", binary_path="/bin/sh",
            env={"DBUS_SYSTEM_BUS_ADDRESS": self.FAKE_BUS},
        )
        self.victim.creds.euid = 0  # setuid bit took effect at exec
        self.client = LibDbusClient(kernel, self.victim)

    def _attack(self):
        listener_pid = self.client.connect()
        return listener_pid == self.adversary.pid

    def _benign(self):
        # Without a hostile environment the client reaches the real bus.
        self.victim.env.pop("DBUS_SYSTEM_BUS_ADDRESS", None)
        listener_pid = self.client.connect()
        return listener_pid == self.dbus_proc.pid


class ShellPathHijack(AttackScenario):
    """The original CWE-426: a root shell with ``.`` on ``$PATH`` runs
    the adversary's trojan instead of the system binary.  Blocked by a
    T1 rule pinning the shell's exec entrypoint to trusted binaries."""

    name = "root shell PATH hijack (dot on PATH)"
    attack_class = "untrusted_search_path"
    reference = "CWE-426"
    program = "bash"

    def rules(self):
        from repro.programs.shell import EPT_PATH_EXEC

        return [
            "pftables -A input -i {ept:#x} -p /bin/bash -o FILE_EXEC -d ~{{SYSHIGH}} -j DROP".format(
                ept=EPT_PATH_EXEC
            )
        ]

    def _setup(self, kernel):
        from repro.programs.shell import ShellScript

        self.victim = kernel.spawn(
            "bash", uid=0, label="unconfined_t", binary_path="/bin/bash", cwd="/tmp",
            env={"PATH": ".:/usr/bin:/bin"},
        )
        self.shell = ShellScript(kernel, self.victim)
        self.shell.cwd_path = "/tmp"
        kernel.add_file("/usr/bin/netstat", b"\x7fELF real", mode=0o755, label="bin_t")
        self.adversary = spawn_adversary(kernel)

    def _attack(self):
        sys = self.kernel.sys
        fd = sys.open(self.adversary, "/tmp/netstat", flags=0x41, mode=0o755)
        sys.write(self.adversary, fd, b"#!/bin/sh evil")
        sys.close(self.adversary, fd)
        path, child = self.shell.run_command("netstat")
        return path.startswith("/tmp/")

    def _benign(self):
        path, child = self.shell.run_command("netstat")
        return path == "/usr/bin/netstat"


class JavaConfigSearch(AttackScenario):
    """E7 — unpatched for 2+ years: ``java`` loads configuration found
    relative to the working directory before the system copy.  Blocked
    by rule R7 (generated from the known vulnerability)."""

    name = "E7: java untrusted configuration search path"
    attack_class = "untrusted_search_path"
    reference = "unpatched"
    program = "java"

    def rules(self):
        return [RULES_R1_R12[6]]  # R7

    def _setup(self, kernel):
        kernel.mkdirs("/etc/java", label="etc_t")
        kernel.add_file("/etc/java/jvm.cfg", b"-server KNOWN\n", label="etc_t")
        self.victim = kernel.spawn(
            "java", uid=0, label="unconfined_t", binary_path="/usr/bin/java", cwd="/tmp"
        )
        self.java = JavaRuntime(kernel, self.victim, cwd_path="/tmp")
        self.adversary = spawn_adversary(kernel)

    def _attack(self):
        sys = self.kernel.sys
        fd = sys.open(self.adversary, "/tmp/jvm.cfg", flags=0x41, mode=0o644)
        sys.write(self.adversary, fd, b"-agentpath:/tmp/evil.so\n")
        sys.close(self.adversary, fd)
        path, _data = self.java.load_config()
        return path.startswith("/tmp/")

    def _benign(self):
        path, _data = self.java.load_config()
        return path == "/etc/java/jvm.cfg"
