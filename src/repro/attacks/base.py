"""Scenario framework.

A scenario owns its whole lifecycle: it builds a fresh world per run
(so attack and benign runs never contaminate each other), optionally
attaches a firewall with the scenario's rules, executes either the
exploit or the legitimate workload, and reports an
:class:`AttackResult`.
"""

from __future__ import annotations

from repro import errors
from repro.firewall.engine import EngineConfig, ProcessFirewall
from repro.world import build_world


class AttackResult:
    """Outcome of one scenario run.

    Attributes:
        succeeded: the adversary achieved the attack goal.
        blocked: a Process Firewall DROP stopped the attempt.
        denied: some non-firewall denial (DAC/MAC) stopped it.
        detail: human-readable explanation.
    """

    __slots__ = ("succeeded", "blocked", "denied", "detail")

    def __init__(self, succeeded, blocked=False, denied=False, detail=""):
        self.succeeded = succeeded
        self.blocked = blocked
        self.denied = denied
        self.detail = detail

    def __repr__(self):  # pragma: no cover - debugging aid
        state = "succeeded" if self.succeeded else ("blocked" if self.blocked else "failed")
        return "<AttackResult {} {}>".format(state, self.detail)


class AttackScenario:
    """Base class for all attack scenarios.

    Subclasses set the class attributes and implement ``_setup``,
    ``_attack`` and ``_benign``.
    """

    #: Scenario name (e.g. "E1: Apache RUNPATH library load").
    name = "abstract"
    #: Key into :data:`repro.attacks.taxonomy.ATTACK_CLASSES`.
    attack_class = ""
    #: CVE / BID reference, or "unpatched" / "unknown" per Table 4.
    reference = ""
    #: The victim program, for Table 4 rendering.
    program = ""
    #: Most scenarios' exploits succeed on a stock kernel; invariants-
    #: style scenarios (e.g. "SIGKILL is never blocked") set this False.
    expect_success_without_pf = True

    def __init__(self):
        self.kernel = None
        self.firewall = None

    # ------------------------------------------------------------------
    # subclass interface
    # ------------------------------------------------------------------

    def rules(self):
        """pftables lines that block this scenario (Table 5 subset)."""
        raise NotImplementedError

    def _setup(self, kernel):
        """Create processes/files; store them on ``self``."""
        raise NotImplementedError

    def _attack(self):
        """Run the exploit; return True when the adversary's goal held.

        Firewall denials (:class:`repro.errors.PFDenied`) propagate —
        the framework classifies them.
        """
        raise NotImplementedError

    def _benign(self):
        """Run the legitimate workload; return True when it worked."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def build(self, with_firewall, config=None, extra_rules=(), instrument=None):
        """Build a fresh world (and firewall) for one run.

        ``instrument``, when given, is called with the firewall after
        rules are installed but before ``_setup`` — the hook the
        observability tooling (``pfctl explain --exploit``, the
        differential harness) uses to enable tracing or metrics
        without subclass cooperation.
        """
        kernel = build_world()
        self.kernel = kernel
        self.firewall = None
        if with_firewall:
            firewall = ProcessFirewall(config or EngineConfig.optimized())
            kernel.attach_firewall(firewall)
            firewall.install_all(list(self.rules()) + list(extra_rules))
            self.firewall = firewall
            if instrument is not None:
                instrument(firewall)
        self._setup(kernel)
        return kernel

    def run(self, with_firewall=False, config=None, instrument=None):
        """Execute the exploit; returns an :class:`AttackResult`."""
        self.build(with_firewall, config=config, instrument=instrument)
        try:
            succeeded = self._attack()
        except errors.PFDenied as exc:
            return AttackResult(False, blocked=True, detail=exc.message)
        except errors.KernelError as exc:
            return AttackResult(False, denied=True, detail="{}: {}".format(exc.errno_name, exc.message))
        detail = "attack goal reached" if succeeded else "attack goal not reached"
        # Some victims absorb the denial internally (a web server maps
        # EACCES to a 403); a firewall drop during the attempt still
        # counts as "blocked by the PF".
        blocked = (
            not succeeded and self.firewall is not None and self.firewall.stats.drops > 0
        )
        return AttackResult(bool(succeeded), blocked=blocked, detail=detail)

    def run_benign(self, with_firewall=True, config=None, instrument=None):
        """Execute the legitimate workload; returns True when unharmed.

        A :class:`PFDenied` here is a false positive — the thing the
        paper's rule-generation methodology is designed to avoid.
        """
        self.build(with_firewall, config=config, instrument=instrument)
        return bool(self._benign())
