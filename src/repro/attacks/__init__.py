"""Resource-access attack scenarios.

Every attack class of the paper's Table 2 has a runnable scenario here,
and :mod:`repro.attacks.exploits` instantiates the nine concrete
exploits of Table 4 (E1-E9).  Each scenario supports:

- ``run(with_firewall=False)`` — the exploit must **succeed** on a
  stock kernel;
- ``run(with_firewall=True)`` — the exploit must be **blocked** by the
  scenario's rules;
- ``run_benign(with_firewall=True)`` — the program's legitimate
  function must keep working (no false positives, the paper's hard
  requirement §4.1).
"""

from repro.attacks.base import AttackResult, AttackScenario
from repro.attacks.taxonomy import ATTACK_CLASSES, AttackClass

__all__ = ["AttackResult", "AttackScenario", "ATTACK_CLASSES", "AttackClass"]
