"""Signal-handler races (E5, CWE-479).

CVE-2006-5051: a second handled signal delivered while sshd's
non-reentrant handler runs corrupts shared state.  The system-wide
rules R9-R12 track handler entry/exit in the process ``STATE`` and drop
delivery of any *handled, blockable* signal while a handler is running
— unblockable signals (SIGKILL) still pass, so the defence cannot be
used to shield a process from termination."""

from __future__ import annotations

from repro.attacks.base import AttackScenario
from repro.proc import signals as sig
from repro.programs.sshd import Sshd
from repro.rulesets.default import SIGNAL_RULE_TEXTS


class SshdSignalRace(AttackScenario):
    """E5 — openssh non-reentrant signal handler race."""

    name = "E5: openssh non-reentrant signal handler race"
    attack_class = "signal_race"
    reference = "CVE-2006-5051"
    program = "openssh"

    def rules(self):
        return SIGNAL_RULE_TEXTS

    def _setup(self, kernel):
        self.victim = kernel.spawn("sshd", uid=0, label="sshd_t", binary_path="/usr/sbin/sshd")
        self.sshd = Sshd(kernel, self.victim)
        self.sshd.install_handlers()

    def _attack(self):
        kernel = self.kernel
        # The login-grace timeout fires: SIGALRM enters its handler.
        kernel.sys.kill(self.victim, self.victim.pid, sig.SIGALRM)
        self.sshd.note_handler_entry()
        # While the (slow, non-reentrant) handler runs, the adversary's
        # connection teardown triggers SIGTERM.
        try:
            kernel.sys.kill(self.victim, self.victim.pid, sig.SIGTERM)
            self.sshd.note_handler_entry()
        finally:
            corrupted = self.sshd.corrupted
        # Unwind whatever handlers are active.
        while self.victim.signals.in_handler:
            self.sshd.finish_handler()
        return corrupted

    def _benign(self):
        kernel = self.kernel
        # Sequential signals with proper returns must both be handled.
        kernel.sys.kill(self.victim, self.victim.pid, sig.SIGALRM)
        self.sshd.note_handler_entry()
        self.sshd.finish_handler()
        kernel.sys.kill(self.victim, self.victim.pid, sig.SIGTERM)
        self.sshd.note_handler_entry()
        self.sshd.finish_handler()
        return self.sshd.handler_entries == 2 and not self.sshd.corrupted


class SigreturnResetsState(AttackScenario):
    """Companion scenario: after a clean ``sigreturn``, delivery works
    again (rule R12's reset) — and SIGKILL is never droppable even
    mid-handler (the SIGNAL_MATCH unblockable carve-out)."""

    name = "signal rules reset on sigreturn; SIGKILL unaffected"
    attack_class = "signal_race"
    reference = "rules R9-R12"
    program = "any"
    expect_success_without_pf = False

    def rules(self):
        return SIGNAL_RULE_TEXTS

    def _setup(self, kernel):
        self.victim = kernel.spawn("daemon", uid=0, label="unconfined_t", binary_path="/bin/sh")
        kernel.sys.sigaction(self.victim, sig.SIGUSR1, handler_pc=0x9000)
        kernel.sys.sigaction(self.victim, sig.SIGUSR2, handler_pc=0x9100)

    def _attack(self):
        kernel = self.kernel
        # Enter a handler, then SIGKILL: must terminate despite rules.
        kernel.sys.kill(self.victim, self.victim.pid, sig.SIGUSR1)
        killer = kernel.spawn("killer", uid=0, label="unconfined_t", binary_path="/bin/sh")
        kernel.sys.kill(killer, self.victim.pid, sig.SIGKILL)
        # "Attack" goal inverted: returns True if SIGKILL was blocked,
        # i.e. the defence introduced a protection-abuse hole.
        return self.victim.alive

    def _benign(self):
        kernel = self.kernel
        kernel.sys.kill(self.victim, self.victim.pid, sig.SIGUSR1)
        kernel.sys.sigreturn(self.victim)
        kernel.sys.kill(self.victim, self.victim.pid, sig.SIGUSR2)
        handled = self.victim.signals.in_handler
        kernel.sys.sigreturn(self.victim)
        return handled
