"""File / IPC squatting (CWE-283).

The adversary *pre-creates* the name a victim is about to use, so the
victim's data lands in (or is served from) an adversary-controlled
resource.  Two variants: a report file squat (secrecy: the victim
writes secrets into an adversary-readable file) and a UNIX-socket squat
(the victim client talks to an impostor service)."""

from __future__ import annotations

from repro.attacks.base import AttackScenario
from repro.programs.base import Program
from repro.vfs.file import OpenFlags
from repro.world import spawn_adversary

#: The report daemon's write-open call site.
EPT_REPORT_OPEN = 0x7710

REPORT_PATH = "/tmp/nightly-report"


class ReportService(Program):
    """A root service that drops a sensitive report into /tmp."""

    BINARY = "/usr/sbin/reportd"

    def write_report(self, data=b"secret-findings\n"):
        with self.frame(EPT_REPORT_OPEN, "emit_report"):
            fd = self.sys.open(
                self.proc, REPORT_PATH, flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY | OpenFlags.O_TRUNC,
                mode=0o600,
            )
        self.sys.write(self.proc, fd, data)
        self.sys.close(self.proc, fd)


class FileSquatReport(AttackScenario):
    """The adversary squats the report name with a world-readable file;
    the victim's ``O_CREAT`` open silently reuses it and the secret
    leaks.  Blocked by dropping writes to adversary-readable resources
    at the report entrypoint (Table 2 rows 1-2: the unsafe resource is
    the adversary-accessible one)."""

    name = "file squat on /tmp report"
    attack_class = "file_ipc_squat"
    reference = "CWE-283"
    program = "reportd"

    def rules(self):
        return [
            "pftables -A input -i {ept:#x} -p /usr/sbin/reportd -o FILE_OPEN "
            "-m ADVERSARY --readable -j DROP".format(ept=EPT_REPORT_OPEN)
        ]

    def _setup(self, kernel):
        kernel.mkdirs("/usr/sbin", label="bin_t")
        kernel.add_file("/usr/sbin/reportd", b"\x7fELF", mode=0o755, label="bin_t")
        self.victim = kernel.spawn("reportd", uid=0, label="unconfined_t", binary_path="/usr/sbin/reportd")
        self.service = ReportService(kernel, self.victim)
        self.adversary = spawn_adversary(kernel)

    def _attack(self):
        sys = self.kernel.sys
        # Squat: adversary-owned, adversary-readable.
        fd = sys.open(self.adversary, REPORT_PATH, flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY, mode=0o666)
        sys.close(self.adversary, fd)
        self.service.write_report()
        # Can the adversary read the secret?
        fd = sys.open(self.adversary, REPORT_PATH)
        data = sys.read(self.adversary, fd)
        sys.close(self.adversary, fd)
        return b"secret-findings" in data

    def _benign(self):
        self.service.write_report()
        inode = self.kernel.lookup(REPORT_PATH)
        return inode.uid == 0 and inode.data == b"secret-findings\n"


class SocketSquat(AttackScenario):
    """IPC squat: the adversary binds the agent socket name first, so a
    privileged client hands its requests to the impostor.  Blocked by a
    T1 rule pinning the client's connect to trusted socket labels."""

    name = "UNIX-socket squat on agent socket"
    attack_class = "file_ipc_squat"
    reference = "CWE-283"
    program = "agent client"

    SOCKET = "/tmp/agent.sock"
    EPT_CONNECT = 0x8890

    class _AgentClient(Program):
        BINARY = "/usr/bin/agent-client"

    def rules(self):
        # The client may only talk to sockets it (root) owns; a squat in
        # /tmp is adversary-writable and gets dropped.
        return [
            "pftables -A input -i {ept:#x} -p /usr/bin/agent-client "
            "-o UNIX_STREAM_SOCKET_CONNECT -m ADVERSARY --writable -j DROP".format(ept=self.EPT_CONNECT)
        ]

    def _setup(self, kernel):
        kernel.add_file("/usr/bin/agent-client", b"\x7fELF", mode=0o755, label="bin_t")
        self.victim = kernel.spawn(
            "agent-client", uid=0, label="unconfined_t", binary_path="/usr/bin/agent-client"
        )
        self.client = self._AgentClient(kernel, self.victim)
        self.adversary = spawn_adversary(kernel)
        self.real_agent = kernel.spawn("agent", uid=0, label="unconfined_t", binary_path="/bin/sh")

    def _connect(self):
        with self.client.frame(self.EPT_CONNECT, "agent_connect"):
            return self.kernel.sys.connect(self.victim, self.SOCKET)

    def _attack(self):
        self.kernel.sys.bind(self.adversary, self.SOCKET, mode=0o777)
        return self._connect() == self.adversary.pid

    def _benign(self):
        self.kernel.sys.bind(self.real_agent, self.SOCKET, mode=0o600)
        return self._connect() == self.real_agent.pid
