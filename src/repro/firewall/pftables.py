"""The ``pftables`` rule language (paper Table 3).

Grammar::

    pftables [-t table] [-I|-A|-D chain [position]] rule_spec
    rule_spec : [def_match] [list of match] [target]
    def_match : -s process_label -d object_label
              : -i entry_point -o lsm_operation -p program [-b binary]
    match     : -m match_mod_name [match_mod_options]
    target    : -j target_mod_name [target_mod_options]

Every rule printed in the paper's Table 5 (R1-R12 and the T1/T2
templates) parses with this module; ``tests/firewall/test_pftables.py``
locks that in verbatim.
"""

from __future__ import annotations

import shlex
from typing import List, Optional

from repro import errors
from repro.firewall import matches as mm
from repro.firewall import targets as tg
from repro.firewall.rule import Rule

#: Verdict / side-effect target names that are NOT user-chain jumps.
_KNOWN_TARGETS = {"DROP", "ACCEPT", "RETURN", "STATE", "LOG"}


class ParsedRule:
    """Outcome of parsing one pftables line."""

    __slots__ = ("action", "table", "chain", "position", "rule", "text")

    def __init__(self, action, table, chain, position, rule, text):
        self.action = action  # "insert" | "append" | "delete"
        self.table = table
        self.chain = chain
        self.position = position
        self.rule = rule
        self.text = text


def _strip_quotes(token):
    if len(token) >= 2 and token[0] == token[-1] and token[0] in "'\"":
        return token[1:-1]
    return token


class _TokenStream:
    def __init__(self, tokens):
        self._tokens = tokens
        self._i = 0

    def done(self):
        return self._i >= len(self._tokens)

    def peek(self):
        return self._tokens[self._i] if not self.done() else None

    def next(self):
        if self.done():
            raise errors.EINVAL("unexpected end of pftables rule")
        token = self._tokens[self._i]
        self._i += 1
        return token


def _parse_state_match(stream):
    key = cmp_value = None
    equal = True
    while not stream.done() and stream.peek().startswith("--"):
        opt = stream.next()
        if opt == "--key":
            key = _strip_quotes(stream.next())
        elif opt == "--cmp":
            cmp_value = _strip_quotes(stream.next())
        elif opt == "--equal":
            equal = True
        elif opt == "--nequal":
            equal = False
        else:
            raise errors.EINVAL("STATE match: unknown option {!r}".format(opt))
    if key is None or cmp_value is None:
        raise errors.EINVAL("STATE match requires --key and --cmp")
    return mm.StateMatch(key, cmp_value, equal=equal)


def _parse_compare_match(stream):
    v1 = v2 = None
    equal = True
    while not stream.done() and stream.peek().startswith("--"):
        opt = stream.next()
        if opt == "--v1":
            v1 = _strip_quotes(stream.next())
        elif opt == "--v2":
            v2 = _strip_quotes(stream.next())
        elif opt == "--equal":
            equal = True
        elif opt == "--nequal":
            equal = False
        else:
            raise errors.EINVAL("COMPARE match: unknown option {!r}".format(opt))
    if v1 is None or v2 is None:
        raise errors.EINVAL("COMPARE match requires --v1 and --v2")
    return mm.CompareMatch(v1, v2, equal=equal)


def _parse_syscall_args_match(stream):
    arg_index = value = None
    equal = True
    while not stream.done() and stream.peek().startswith("--"):
        opt = stream.next()
        if opt == "--arg":
            arg_index = stream.next()
        elif opt == "--equal":
            equal = True
            value = _strip_quotes(stream.next())
        elif opt == "--nequal":
            equal = False
            value = _strip_quotes(stream.next())
        else:
            raise errors.EINVAL("SYSCALL_ARGS match: unknown option {!r}".format(opt))
    if arg_index is None or value is None:
        raise errors.EINVAL("SYSCALL_ARGS match requires --arg and --equal/--nequal VALUE")
    return mm.SyscallArgsMatch(arg_index, value, equal=equal)


def _parse_adversary_match(stream):
    writable = readable = None
    while not stream.done() and stream.peek().startswith("--"):
        opt = stream.next()
        if opt == "--writable":
            writable = True
        elif opt == "--not-writable":
            writable = False
        elif opt == "--readable":
            readable = True
        elif opt == "--not-readable":
            readable = False
        else:
            raise errors.EINVAL("ADVERSARY match: unknown option {!r}".format(opt))
    if writable is None and readable is None:
        raise errors.EINVAL("ADVERSARY match requires an accessibility option")
    return mm.AdversaryMatch(writable=writable, readable=readable)


def _parse_script_match(stream):
    file = line = None
    while not stream.done() and stream.peek().startswith("--"):
        opt = stream.next()
        if opt == "--file":
            file = _strip_quotes(stream.next())
        elif opt == "--line":
            line = stream.next()
        else:
            raise errors.EINVAL("SCRIPT match: unknown option {!r}".format(opt))
    if file is None:
        raise errors.EINVAL("SCRIPT match requires --file")
    return mm.ScriptMatch(file, line=line)


_MATCH_PARSERS = {
    "STATE": _parse_state_match,
    "COMPARE": _parse_compare_match,
    "SIGNAL_MATCH": lambda stream: mm.SignalMatch(),
    "SYSCALL_ARGS": _parse_syscall_args_match,
    "ADVERSARY": _parse_adversary_match,
    "SCRIPT": _parse_script_match,
}


def _parse_state_target(stream):
    key = value = None
    while not stream.done() and stream.peek().startswith("--"):
        opt = stream.next()
        if opt == "--set":
            continue
        if opt == "--key":
            key = _strip_quotes(stream.next())
        elif opt == "--value":
            value = _strip_quotes(stream.next())
        else:
            raise errors.EINVAL("STATE target: unknown option {!r}".format(opt))
    if key is None or value is None:
        raise errors.EINVAL("STATE target requires --key and --value")
    return tg.StateTarget(key, value)


def _parse_log_target(stream):
    prefix = ""
    level = "info"
    while not stream.done() and stream.peek().startswith("--"):
        opt = stream.next()
        if opt == "--prefix":
            prefix = _strip_quotes(stream.next())
        elif opt == "--level":
            level = _strip_quotes(stream.next())
        else:
            raise errors.EINVAL("LOG target: unknown option {!r}".format(opt))
    try:
        return tg.LogTarget(prefix=prefix, level=level)
    except ValueError as exc:
        raise errors.EINVAL("LOG target: {}".format(exc))


def parse_rule(text):
    """Parse one pftables line into a :class:`ParsedRule`."""
    tokens = shlex.split(text, posix=False)
    if not tokens:
        raise errors.EINVAL("empty pftables rule")
    if tokens[0] == "pftables":
        tokens = tokens[1:]
    stream = _TokenStream(tokens)

    table = "filter"
    action = "append"
    chain = None
    position = None  # type: Optional[int]

    op_match = None
    subject = None
    object_ = None
    program = None
    entrypoint_offset = None
    custom = []  # type: List[mm.MatchModule]
    target = None

    while not stream.done():
        flag = stream.next()
        if flag == "-t":
            table = stream.next()
        elif flag in ("-I", "-A", "-D"):
            action = {"-I": "insert", "-A": "append", "-D": "delete"}[flag]
            chain = stream.next().lower()
            if "/" in chain:  # the paper's "create/input" shorthand
                chain = chain.split("/")[0]
            if action == "insert":
                position = 0
                nxt = stream.peek()
                if nxt is not None and nxt.isdigit():
                    position = int(stream.next()) - 1
        elif flag == "-s":
            subject = mm.SubjectMatch(stream.next())
        elif flag == "-d":
            object_ = mm.ObjectMatch(stream.next())
        elif flag in ("-p", "-b"):
            program = stream.next()
        elif flag == "-i":
            entrypoint_offset = int(stream.next(), 0)
        elif flag == "-o":
            op_match = mm.OpMatch(stream.next())
        elif flag == "-m":
            name = stream.next().upper()
            parser = _MATCH_PARSERS.get(name)
            if parser is None:
                raise errors.EINVAL("unknown match module {!r}".format(name))
            custom.append(parser(stream))
        elif flag == "-j":
            name = stream.next()
            upper = name.upper()
            if upper == "DROP":
                target = tg.DropTarget()
            elif upper == "ACCEPT":
                target = tg.AcceptTarget()
            elif upper == "RETURN":
                target = tg.ReturnTarget()
            elif upper == "STATE":
                target = _parse_state_target(stream)
            elif upper == "LOG":
                target = _parse_log_target(stream)
            else:
                target = tg.JumpTarget(name)
        else:
            raise errors.EINVAL("unknown pftables flag {!r}".format(flag))

    if target is None:
        raise errors.EINVAL("pftables rule has no target (-j)")

    # Assemble matches cheap-to-expensive: operation, subject,
    # entrypoint/program, object, then custom modules.
    ordered = []  # type: List[mm.MatchModule]
    if op_match is not None:
        ordered.append(op_match)
    if subject is not None:
        ordered.append(subject)
    if program is not None and entrypoint_offset is not None:
        ordered.append(mm.EntrypointMatch(program, entrypoint_offset))
    elif program is not None:
        ordered.append(mm.ProgramMatch(program))
    elif entrypoint_offset is not None:
        raise errors.EINVAL("-i requires -p/-b to name the image")
    if object_ is not None:
        ordered.append(object_)
    ordered.extend(custom)

    if chain is None:
        # No -I/-A: route by operation, defaulting to the input chain.
        if op_match is not None and op_match.op.value == "SYSCALL_BEGIN":
            chain = "syscallbegin"
        else:
            chain = "input"

    rule = Rule(ordered, target, text=text.strip())
    return ParsedRule(action, table, chain, position, rule, text.strip())


def pftables(firewall, text):
    """Parse and apply one pftables line against a firewall instance.

    Returns the installed :class:`Rule` (or the removed one for ``-D``).
    """
    parsed = parse_rule(text)
    if parsed.table == "mangle" and isinstance(parsed.rule.target, tg.DropTarget):
        raise errors.EINVAL("DROP is a filter-table verdict; mangle rules may only mark")
    base = firewall.rules
    if parsed.action == "delete":
        chain_obj = base.table(parsed.table).chain(parsed.chain)
        for existing in chain_obj:
            if existing.text == parsed.rule.text or existing.render() == parsed.rule.render():
                base.remove(parsed.table, parsed.chain, existing)
                return existing
        raise errors.EINVAL("no matching rule to delete in {!r}".format(parsed.chain))
    position = parsed.position if parsed.action == "insert" else None
    return base.install(parsed.table, parsed.chain, parsed.rule, position=position)
