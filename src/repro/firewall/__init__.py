"""The Process Firewall — the paper's primary contribution.

An iptables-style rule engine interposed on the system-call interface
*after* access-control authorization (Figure 2).  It evaluates
attack-specific invariants expressed over:

- **process context** — the program entrypoint (user-stack PC relative
  to the binary load base), the per-process ``STATE`` dictionary
  (syscall-trace state), and signal-handler state;
- **resource context** — resource identity (dev/ino), SELinux object
  label, DAC owner, symlink-target owner, and adversary accessibility.

Key engineering features reproduced from the paper:

- lazy context retrieval with a per-field bitmask (§4.2);
- context caching across hook invocations within one syscall (§4.2);
- entrypoint-specific chains replacing linear rule scans (§4.3);
- per-process traversal state, so the engine is reentrant without
  disabling interrupts (§5.1);
- deny-only rules with a default allow (§4.1), making rule order within
  a chain irrelevant for decisions;
- the ``pftables`` rule language with extensible match/target/context
  modules (§5.2).
"""

from repro.firewall.context import ContextField, ContextFrame
from repro.firewall.engine import EngineConfig, EngineStats, ProcessFirewall
from repro.firewall.rule import Chain, Rule, RuleBase
from repro.firewall.pftables import parse_rule, pftables

__all__ = [
    "ContextField",
    "ContextFrame",
    "EngineConfig",
    "EngineStats",
    "ProcessFirewall",
    "Chain",
    "Rule",
    "RuleBase",
    "parse_rule",
    "pftables",
]
