"""Ahead-of-time flat decision tables: the TABLED engine rung.

The JITTED rung (:mod:`repro.firewall.codegen`) removed interpretive
overhead by exec-compiling each ``(op, entrypoint)`` dispatch tuple at
first use.  What remains is *predicate execution itself* — every
mediation still runs each rule's label-membership and constant-compare
tests — plus a per-worker warmup: every spawn-context service worker
re-derives all of that from rule text at startup.  This module removes
both, the way SFIP precomputes per-syscall security checks into flat
per-state transition tables:

1. **Whole-rule-base AOT compilation.**  :func:`compile_tables`
   enumerates every reachable ``(op, entrypoint)`` state of the
   installed rule base and *simulates* the interpreted walk over each
   state's dispatch tuple.  Predicate chains whose operands are rule
   constants (label sets, entrypoint keys, program paths, adversary
   flags) collapse into a small decision DAG per state: internal nodes
   consult one context field through ``engine.ensure`` and branch on
   its value; terminals carry the precomputed verdict, the
   ``rules_evaluated`` delta, and the matched rule.  At mediation time
   a state evaluates in O(path length) dict probes — no per-rule code
   at all.

2. **Per-edge JITTED fallback for dynamic paths.**  A rule that needs
   runtime-only context (``STATE``/``COMPARE``/``SIGNAL_MATCH``/
   ``SCRIPT`` matches, context-atom ``SYSCALL_ARGS`` operands, or
   ``STATE``/``LOG``/``JUMP`` targets) cannot be precomputed — but the
   *paths that never reach it* still can.  Simulation places a
   fallback terminal exactly where the interpreted walk would first
   touch dynamic context; only mediations that land on it delegate to
   the generated function the JITTED rung would run
   (:class:`~repro.firewall.codegen._ChainStep`), so the two rungs
   share one fallback path and one set of counters
   (``stats.tables_fallbacks`` counts the delegations).  Delegation is
   exact because no terminal bookkeeping happens before it and repeat
   ``engine.ensure`` consults are observably idempotent.  Notably,
   constant-operand ``SYSCALL_ARGS`` matches compile into *projected*
   branch nodes (branch on ``args[i]`` after one ``SYSCALL_ARGS``
   consult), so a rule like R12's ``--arg 0 --equal NR_sigreturn -j
   STATE`` only falls back on the rare matching syscall — the common
   miss is a static terminal.

3. **A serialized artifact.**  :func:`serialize_tables` emits the
   compiled program as versioned JSON keyed by a SHA-256 digest of the
   canonical rule text (:func:`repro.firewall.persist.save_rules`) and
   a snapshot of the policy TCB sets the verdicts were baked against.
   :func:`load_tables` rejects any mismatch with
   :class:`repro.errors.PFTablesStale` — a stale artifact is an error,
   never a silent downgrade — and otherwise rebuilds the program
   without re-running the simulation, which is what lets service
   workers (``repro.service``) start at zero compile warmup.

Exactness is the contract, pinned by the TABLED differential suite:
each decision DAG is built by *simulating the interpreted walk*, so a
concrete mediation consults exactly the context fields, in exactly the
order, that the interpreted/JITTED walk would — ``cache_hits``,
``context_collections``, ``rescache_*`` and ``decision_unsafe``
bookkeeping all happen inside the same ``engine.ensure`` calls.  Label
branches enumerate the row's label universe (rule operands plus the
TCB sets); every label outside it provably behaves like the default
branch.  Because verdict targets (DROP/ACCEPT/RETURN) end traversal
and dynamic rules end simulation at a fallback terminal, at most one
rule can match per static path, so terminals carry a single matched-
rule reference.

A :class:`TableProgram` is pinned to one ``RuleBase.stamp`` identity
*and* the TCB-set identities it compiled against; the engine rebuilds
it when either changes, so stale tables can never answer a mediation.
"""

from __future__ import annotations

import hashlib
import json

from repro import errors
from repro.firewall import targets as tg
from repro.firewall.codegen import _ChainStep
from repro.firewall.context import ContextField
from repro.firewall.matches import (
    AdversaryMatch,
    EntrypointMatch,
    ObjectMatch,
    OpMatch,
    ProgramMatch,
    SubjectMatch,
    SyscallArgsMatch,
)
from repro.firewall.persist import save_rules
from repro.firewall.rule import _op_accepts
from repro.security.lsm import Op

#: Artifact schema version; bumped on any incompatible layout change.
ARTIFACT_VERSION = 1

#: Artifact format marker (the JSON ``format`` key).
ARTIFACT_FORMAT = "pf-tables"

#: Terminal-verdict sentinel: this decision path needs runtime context
#: a flat table cannot encode — delegate to the JITTED generated
#: function for the same dispatch tuple.
FALLBACK = "__pf_tables_fallback__"

#: The (shared) fallback terminal.  Its ``rules_evaluated`` delta is
#: zero and it names no rule: all bookkeeping belongs to the delegated
#: JITTED function, which replays the walk from the chain head —
#: observably idempotent because no terminal side effect has happened
#: yet and repeat ``engine.ensure`` consults change nothing.
_FALLBACK_NODE = (None, FALLBACK, 0, None, None)

#: Simulation token: the object label is ``None`` (no labeled object),
#: which fails every ``-d`` spec regardless of negation.
_OBJ_NONE = "\x00obj-none"

#: Simulation token: a field value outside the row's branch universe.
_DEFAULT = "\x00default"

#: Runtime branch key for a projected syscall argument that does not
#: exist (``SYSCALL_ARGS`` collected as ``None``, or the index is past
#: the end) — the interpreted match fails without resolving its
#: operand, so the key routes to the all-specs-fail child.
_ARG_MISSING = "\x00arg-missing"

#: JSON-key encodings for non-string branch values.
_KEY_ENCODE = {None: "\x00N", True: "\x00T", False: "\x00F"}
_KEY_DECODE = {v: k for k, v in _KEY_ENCODE.items()}


def rules_digest(firewall):
    """SHA-256 hex digest of the firewall's canonical rule text.

    The artifact staleness key: :func:`serialize_tables` stamps it into
    the artifact and :func:`load_tables` recomputes it against the live
    rule base — byte-identical ``save_rules`` output is the only rule
    state an artifact may be applied to.
    """
    return hashlib.sha256(save_rules(firewall).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# row compilation: classify, then simulate the interpreted walk
# ---------------------------------------------------------------------------


def _classify_rules(rules, op, ept_key):
    """Static evaluation plan for one dispatch tuple.

    Returns ``[(rule, prims, verdict), ...]`` where ``prims`` is the
    rule's match list lowered, in evaluation order, to constant-operand
    primitives.  Primitives:

    - ``("fail",)`` — a compile-time-false predicate (an ``-o`` or
      ``-i`` constant that cannot match this state); the rule is
      visited but never matches.
    - ``("label", field, spec_index)`` — label-set membership, indexed
      into the row's per-field spec list (see :func:`_field_specs`).
    - ``("equal", field, expected)`` — constant equality on a scalar
      context field (program path, adversary flag).
    - ``("argeq", arg_index, expected, equal)`` — a constant-operand
      ``SYSCALL_ARGS`` predicate; lowered by the simulation to a
      *projected* branch on ``args[arg_index]``.
    - ``("dynamic",)`` — the first match that needs runtime-only
      context (``STATE``/``COMPARE``/``SIGNAL_MATCH``/``SCRIPT`` or a
      context-atom operand).  Lowering stops here: the interpreted
      walk short-circuits matches in order, so every path on which an
      earlier primitive fails is still fully static, and only paths
      that *reach* this match fall back.

    ``verdict`` is the precomputed terminal verdict, or
    :data:`FALLBACK` for dynamic targets (``STATE``/``LOG`` mutate
    observable state; ``JUMP`` re-enters the interpreted walker) — a
    rule whose predicates all pass statically then delegates exactly
    at its match point.
    """
    plans = []
    for rule in rules:
        prims = []
        for match in rule.matches:
            kind = type(match)
            if kind is OpMatch:
                # Dispatch tuples are already op-filtered; keep a
                # constant-false guard for the (defensive) case of an
                # alias mismatch.
                if not _op_accepts(match.op, op):
                    prims.append(("fail",))
            elif kind is EntrypointMatch:
                # Bucket selection pinned the entrypoint head for this
                # state; the match is a compile-time constant.  The
                # prologue's ensure() already did the bookkeeping, and
                # repeat ensure calls are observably idempotent.
                if match.chain_key() != ept_key:
                    prims.append(("fail",))
            elif kind is SubjectMatch:
                prims.append(("label", ContextField.SUBJECT_LABEL, match.spec))
            elif kind is ObjectMatch:
                prims.append(("label", ContextField.OBJECT_LABEL, match.spec))
            elif kind is ProgramMatch:
                prims.append(("equal", ContextField.PROGRAM, match.program))
            elif kind is AdversaryMatch:
                if match.writable is not None:
                    prims.append(("equal", ContextField.ADV_WRITABLE, match.writable))
                if match.readable is not None:
                    prims.append(("equal", ContextField.ADV_READABLE, match.readable))
            elif kind is SyscallArgsMatch and match.value.atom is None:
                expected = match.value.literal
                if isinstance(expected, str) and expected.startswith("NR_"):
                    expected = expected[3:]
                prims.append(("argeq", match.arg_index, expected, match.equal))
            else:
                prims.append(("dynamic",))
                break
        tkind = type(rule.target)
        if tkind is tg.DropTarget:
            verdict = tg.DROP
        elif tkind is tg.AcceptTarget:
            verdict = tg.ACCEPT
        elif tkind is tg.ReturnTarget:
            verdict = tg.RETURN
        else:
            verdict = FALLBACK
        plans.append((rule, prims, verdict))
    return plans


def _index_label_prims(plans):
    """Rewrite label/argeq prims to spec indexes; return spec lists.

    Simulation tokens for a branched field are outcome fingerprints —
    one bool per spec consulting that field anywhere in the row — so
    each prim needs a stable index into that spec list.  Projected
    syscall-argument predicates are keyed by the pseudo-field
    ``(ContextField.SYSCALL_ARGS, arg_index)``; their specs are
    ``(expected, equal)`` pairs.
    """
    field_specs = {}
    for i, (rule, prims, verdict) in enumerate(plans):
        lowered = []
        for prim in prims:
            if prim[0] == "label":
                specs = field_specs.setdefault(prim[1], [])
                lowered.append(("label", prim[1], len(specs)))
                specs.append(prim[2])
            elif prim[0] == "argeq":
                pseudo = (ContextField.SYSCALL_ARGS, prim[1])
                specs = field_specs.setdefault(pseudo, [])
                lowered.append(("argeq", pseudo, len(specs)))
                specs.append((prim[2], prim[3]))
            else:
                lowered.append(prim)
        plans[i] = (rule, lowered, verdict)
    return field_specs


def _label_domain(field, specs, tcb):
    """Branch universe and fingerprint function for one label field.

    The universe is every label a spec names plus the TCB set — any
    label outside it is in no spec's set and not in the TCB, so its
    fingerprint equals the default sentinel's and the default branch
    covers it exactly.
    """
    universe = set(tcb)
    for spec in specs:
        universe.update(spec.labels)

    def fingerprint(label):
        return tuple(spec.member(label, tcb) for spec in specs)

    return sorted(universe), fingerprint


class _RowBuilder:
    """Simulates the interpreted walk over one dispatch tuple.

    Produces the row's decision DAG: branch nodes are
    ``(field, branches, default)`` tuples — ``field`` is either a
    :class:`ContextField` or the ``(SYSCALL_ARGS, arg_index)``
    pseudo-field of a projected syscall-argument branch — terminals
    are ``(None, verdict, rules_evaluated_delta, hit_rule, ret_rule)``.
    ``hit_rule`` is the matched rule (``hits``/``rule_matched``
    bookkeeping); ``ret_rule`` is what traversal returns — the same
    rule for DROP/ACCEPT, ``None`` for a RETURN match (the chain
    yields CONTINUE).  Paths that reach dynamic context end at the
    shared :data:`_FALLBACK_NODE` terminal.  Nodes are memoized on
    (position, consulted context), so equivalent subtrees are shared
    and the serialized artifact stays compact.
    """

    def __init__(self, plans, field_specs, tcb_subjects, tcb_objects):
        self.plans = plans
        self.field_specs = field_specs
        self.tcb = {
            ContextField.SUBJECT_LABEL: tcb_subjects,
            ContextField.OBJECT_LABEL: tcb_objects,
        }
        self._memo = {}

    def build(self):
        """The row's root node."""
        return self._node(0, 0, {})

    def _env_key(self, env):
        # repr keys: pseudo-fields (tuples) and ContextFields must sort
        # in one sequence; repr is unique and stable for both.
        return tuple(sorted(
            ((repr(field), token) for field, token in env.items()),
            key=lambda item: item[0],
        ))

    def _node(self, i, j, env):
        key = (i, j, self._env_key(env))
        node = self._memo.get(key)
        if node is None:
            node = self._memo[key] = self._simulate(i, j, env)
        return node

    def _simulate(self, i, j, env):
        plans = self.plans
        if i == len(plans):
            # Fell off the end: every rule was visited, none matched.
            return (None, tg.CONTINUE, len(plans), None, None)
        rule, prims, verdict = plans[i]
        while j < len(prims):
            prim = prims[j]
            kind = prim[0]
            if kind == "fail":
                return self._node(i + 1, 0, env)
            if kind == "dynamic":
                # The interpreted walk would evaluate a runtime-only
                # match here; everything up to this point replayed
                # statically, so delegate the rest of the chain.
                return _FALLBACK_NODE
            field = prim[1]
            if field not in env:
                return self._branch(i, j, env, field)
            token = env[field]
            if kind == "label":
                if token is _OBJ_NONE or not token[prim[2]]:
                    return self._node(i + 1, 0, env)
            elif kind == "argeq":
                if not token[prim[2]]:
                    return self._node(i + 1, 0, env)
            else:  # equal: _DEFAULT never equals a concrete operand
                if token != prim[2]:
                    return self._node(i + 1, 0, env)
            j += 1
        # Every predicate passed: rule i matches.  A dynamic target
        # delegates exactly here; verdict targets end traversal;
        # RETURN ends the chain with CONTINUE.  (At most one rule can
        # match per static path — nothing continues past here.)
        if verdict is FALLBACK:
            return _FALLBACK_NODE
        if verdict == tg.RETURN:
            return (None, tg.CONTINUE, i + 1, rule, None)
        return (None, verdict, i + 1, rule, rule)

    def _branch(self, i, j, env, field):
        """First consult of ``field`` along this path: a branch node.

        The branch is created at the exact (rule, predicate) position
        where the interpreted walk would first call ``engine.ensure``
        for the field, so runtime consult order — and with it every
        cache/collection counter — replays the interpreted walk.
        """
        if type(field) is tuple:
            # Projected syscall-argument branch: one SYSCALL_ARGS
            # consult, then branch on args[arg_index].  The domain is
            # every constant operand naming this index; any other
            # value fails every --equal spec and passes every --nequal
            # spec, exactly the _DEFAULT fingerprint.  A missing
            # argument fails every spec (the interpreted match returns
            # False before comparing).
            specs = self.field_specs[field]

            def fingerprint(actual):
                return tuple(
                    (actual == expected) if equal else (actual != expected)
                    for expected, equal in specs
                )

            default = self._with(i, j, env, field, fingerprint(_DEFAULT))
            branches = {}
            for value in sorted({expected for expected, _eq in specs}, key=repr):
                child = self._with(i, j, env, field, fingerprint(value))
                if child is not default:
                    branches[value] = child
            missing = self._with(i, j, env, field, (False,) * len(specs))
            if missing is not default:
                branches[_ARG_MISSING] = missing
            return (field, branches, default)
        if field in (ContextField.SUBJECT_LABEL, ContextField.OBJECT_LABEL):
            specs = self.field_specs[field]
            universe, fingerprint = _label_domain(field, specs, self.tcb[field])
            default = self._with(i, j, env, field, fingerprint(_DEFAULT))
            branches = {}
            for label in universe:
                child = self._with(i, j, env, field, fingerprint(label))
                if child is not default:
                    branches[label] = child
            if field is ContextField.OBJECT_LABEL:
                # A label-less object fails every -d spec.
                child = self._with(i, j, env, field, _OBJ_NONE)
                if child is not default:
                    branches[None] = child
            return (field, branches, default)
        if field is ContextField.PROGRAM:
            expected = sorted(
                {p[2] for _r, prims, _v in self.plans for p in prims
                 if p[0] == "equal" and p[1] is field}
            )
            default = self._with(i, j, env, field, _DEFAULT)
            branches = {}
            for program in expected:
                child = self._with(i, j, env, field, program)
                if child is not default:
                    branches[program] = child
            return (field, branches, default)
        # Adversary flags: the collected value is True/False/None.
        default = self._with(i, j, env, field, _DEFAULT)  # covers None
        branches = {}
        for value in (True, False):
            child = self._with(i, j, env, field, value)
            if child is not default:
                branches[value] = child
        return (field, branches, default)

    def _with(self, i, j, env, field, token):
        extended = dict(env)
        extended[field] = token
        return self._node(i, j, extended)


def compile_row(engine, chain, op, ept_key):
    """Compile one ``(op, entrypoint)`` state of ``chain``.

    Returns the row's decision DAG root node; paths that need runtime
    context end at :data:`_FALLBACK_NODE` terminals.
    """
    rules = chain.dispatch(op, ept_key)
    if not rules:
        return (None, tg.CONTINUE, 0, None, None)
    plans = _classify_rules(list(rules), op, ept_key)
    field_specs = _index_label_prims(plans)
    builder = _RowBuilder(
        plans, field_specs, engine.tcb_subjects(), engine.tcb_objects()
    )
    return builder.build()


def _row_has_fallback(root):
    """Whether any decision path of ``root`` delegates to JITTED."""
    stack = [root]
    seen = set()
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if node[0] is None:
            if node[1] is FALLBACK:
                return True
        else:
            stack.append(node[2])
            stack.extend(node[1].values())
    return False


# ---------------------------------------------------------------------------
# runtime: steps, plans, program
# ---------------------------------------------------------------------------


class TabledStep:
    """One chain visit in a TABLED traversal plan.

    Holds the per-entrypoint row table plus a
    :class:`~repro.firewall.codegen._ChainStep` that compiles the
    JITTED function for any decision path ending at a
    :data:`_FALLBACK_NODE` terminal — table misses run the exact code
    (and feed the exact counters) the JITTED rung would.
    """

    __slots__ = (
        "program", "table", "chain", "op", "is_mangle", "chain_name",
        "wanted", "rows", "fns", "jit", "engine", "ensure", "run",
    )

    def __init__(self, program, table, chain, op, is_mangle):
        self.program = program
        self.table = table
        self.chain = chain
        self.op = op
        self.is_mangle = is_mangle
        self.chain_name = chain.name
        #: Prebound hot-path references: a step lives exactly as long
        #: as its program, which is pinned to one firewall.
        self.engine = program.firewall
        self.ensure = program.firewall.ensure
        wanted = False
        if chain.by_entrypoint:
            ept_ops = chain.ept_ops
            wanted = (
                ept_ops is None
                or op in ept_ops
                or (op is Op.LINK_READ and Op.LNK_FILE_READ in ept_ops)
            )
        #: Whether this (chain, op) can ever select an entrypoint
        #: bucket — the interpreted walk's stack-unwind gate.
        self.wanted = wanted
        #: entrypoint key -> decision DAG root.  The canonical row
        #: representation: what serialization, ``row_counts`` and the
        #: differential describe/inspect paths read.
        self.rows = {}
        #: entrypoint key -> specialized evaluator closure, built
        #: lazily from the DAG at first evaluation (a runtime detail:
        #: the artifact never sees these).
        self.fns = {}
        #: The JITTED twin of this step, for fallback paths.
        self.jit = _ChainStep(program, table, chain, op, is_mangle)
        #: What :meth:`TableProgram.traverse` calls.  Starts as the
        #: full :meth:`evaluate`; once the ``None`` row's closure is
        #: built on a step that can never select an entrypoint bucket
        #: (``wanted`` is false ⇒ the key is always ``None``), the
        #: closure itself takes over — zero per-visit dispatch.
        self.run = self.evaluate

    def keys(self):
        """Every entrypoint key this step can be evaluated under."""
        keys = [None]
        if self.wanted:
            keys.extend(sorted(self.chain.by_entrypoint))
        return keys

    def compile_all(self):
        """Materialize every reachable row (the AOT path)."""
        for key in self.keys():
            if key not in self.rows:
                self.rows[key] = compile_row(
                    self.program.firewall, self.chain, self.op, key
                )

    def evaluate(self, operation, frame):
        """Evaluate this chain visit; returns ``(verdict, rule)``.

        Mirrors the interpreted/JITTED walk exactly: the entrypoint is
        resolved through ``engine.ensure`` only when some bucket rule
        could handle this op, static paths replay the simulated consult
        order, and fallback terminals run the JITTED generated function
        (with no table-side bookkeeping applied first — the delegate
        replays the chain from the head, which is observably idempotent
        because repeat ``ensure`` consults change nothing).
        """
        ept_key = None
        if self.wanted:
            entries = self.ensure(ContextField.ENTRYPOINT, operation, frame)
            if entries and entries[0] in self.chain.by_entrypoint:
                ept_key = entries[0]
        fn = self.fns.get(ept_key)
        if fn is None:
            fn = self._entry(ept_key)
        return fn(operation, frame)

    def _entry(self, ept_key):
        """Build (and memoize) the evaluator closure for one row."""
        node = self.rows.get(ept_key)
        if node is None:
            node = self.rows[ept_key] = compile_row(
                self.engine, self.chain, self.op, ept_key
            )
        fn = self.fns[ept_key] = self._specialize(node, ept_key, {})
        if not self.wanted and ept_key is None:
            self.run = fn
        return fn

    def _specialize(self, node, ept_key, memo):
        """Lower one DAG node to a closure; shared nodes share closures.

        Specialization folds every constant the interpretive walk would
        re-discover per mediation — the branch dict, the default child,
        terminal verdict/delta/rule, the preallocated result tuple —
        into cell variables, so a mediation runs one small closure per
        consulted field plus a straight-line terminal.  Observable
        behaviour is exactly the DAG walk's; the differential suites
        pin it.
        """
        fn = memo.get(id(node))
        if fn is not None:
            return fn
        stats = self.engine.stats
        if node[0] is None:
            if node[1] is FALLBACK:
                jit = self.jit

                def fn(operation, frame):
                    stats.tables_fallbacks += 1
                    delegate = jit.fns.get(ept_key)
                    if delegate is None:
                        delegate = jit.compile(ept_key)
                    return delegate(operation, frame)
            else:
                delta = node[2]
                rule = node[3]
                result = (node[1], node[4])
                if rule is not None:

                    def fn(operation, frame):
                        stats.tables_hits += 1
                        stats.rules_evaluated += delta
                        rule.hits += 1
                        frame.rule_matched = True
                        return result
                elif delta:

                    def fn(operation, frame):
                        stats.tables_hits += 1
                        stats.rules_evaluated += delta
                        return result
                else:

                    def fn(operation, frame):
                        stats.tables_hits += 1
                        return result
        else:
            field = node[0]
            ensure = self.ensure
            entries = {
                value: self._branch_entry(child, ept_key, memo)
                for value, child in node[1].items()
            }
            lookup = entries.get
            default_entry = self._branch_entry(node[2], ept_key, memo)
            if type(field) is tuple:
                args_field, index = field
                missing_entry = entries.get(_ARG_MISSING, default_entry)

                def fn(operation, frame):
                    args = ensure(args_field, operation, frame)
                    if args is None or index >= len(args):
                        entry = missing_entry
                    else:
                        try:
                            entry = lookup(args[index], default_entry)
                        except TypeError:
                            # Unhashable argument: equals no constant
                            # operand, so it has the default fingerprint.
                            entry = default_entry
                    sub, result, delta, rule = entry
                    if sub is not None:
                        return sub(operation, frame)
                    stats.tables_hits += 1
                    if delta:
                        stats.rules_evaluated += delta
                    if rule is not None:
                        rule.hits += 1
                        frame.rule_matched = True
                    return result
            else:

                def fn(operation, frame):
                    sub, result, delta, rule = lookup(
                        ensure(field, operation, frame), default_entry
                    )
                    if sub is not None:
                        return sub(operation, frame)
                    stats.tables_hits += 1
                    if delta:
                        stats.rules_evaluated += delta
                    if rule is not None:
                        rule.hits += 1
                        frame.rule_matched = True
                    return result
        memo[id(node)] = fn
        return fn

    def _branch_entry(self, child, ept_key, memo):
        """Lower one branch outcome to a ``(sub, result, delta, rule)`` cell.

        Static terminals bake verdict/delta/rule straight into the
        parent's lookup values — the common leaf level costs one
        closure call per chain visit with a shared bookkeeping
        epilogue instead of a second call per terminal.  Everything
        else (nested branches, fallback terminals) keeps its own
        closure in the ``sub`` slot; observables are identical either
        way.
        """
        if child[0] is None and child[1] is not FALLBACK:
            return (None, (child[1], child[4]), child[2], child[3])
        return (self._specialize(child, ept_key, memo), None, 0, None)


class _TabledPlan:
    """The ordered chain visits one operation walks, mangle then filter."""

    __slots__ = ("steps", "filter_start")

    def __init__(self, steps, filter_start):
        self.steps = steps
        #: Index of the first filter-table step: a mangle ``ACCEPT``
        #: jumps here (stop mangle, proceed to filter).
        self.filter_start = filter_start


class TableProgram:
    """The compiled flat-table program for one rule-base stamp.

    Built by :meth:`ProcessFirewall.table_program` (lazily, rows on
    demand), by :func:`compile_tables` (eagerly, the AOT path), or by
    :func:`load_tables` (decoded from a serialized artifact — no
    simulation).  Pinned to one ``RuleBase.stamp`` identity and the
    TCB-set snapshot the verdicts were baked against; the engine
    rebuilds on any mismatch.
    """

    __slots__ = (
        "firewall", "stamp", "sources", "tcb_subjects", "tcb_objects",
        "loaded", "_plans",
    )

    def __init__(self, firewall):
        self.firewall = firewall
        #: The rule-base identity this program was compiled against.
        self.stamp = firewall.rules.stamp
        #: Generated fallback source (shared shape with JitProgram so
        #: codegen's _ChainStep can host fallback compilation here).
        self.sources = {}
        #: TCB snapshots the static verdicts were computed under.
        self.tcb_subjects = firewall.tcb_subjects()
        self.tcb_objects = firewall.tcb_objects()
        #: True when this program was decoded from an artifact rather
        #: than compiled in-process (the zero-warmup path).
        self.loaded = False
        self._plans = {}

    def plan(self, op):
        """The (memoized) traversal plan for one operation kind."""
        plan = self._plans.get(op)
        if plan is None:
            plan = self._plans[op] = self._build_plan(op)
        return plan

    def _build_plan(self, op):
        firewall = self.firewall
        steps = []
        filter_start = 0
        for table_name in ("mangle", "filter"):
            table = firewall.rules.tables[table_name]
            if table_name == "filter":
                filter_start = len(steps)
            for chain_name in firewall._chains_for(op):
                chain = table.chains.get(chain_name)
                if chain is None or not len(chain):
                    continue
                relevant = chain.relevant_ops
                if (
                    relevant is not None
                    and op not in relevant
                    and not (op is Op.LINK_READ and Op.LNK_FILE_READ in relevant)
                ):
                    continue
                steps.append(TabledStep(self, table, chain, op, table_name == "mangle"))
        return _TabledPlan(tuple(steps), filter_start)

    def compile_all(self, ops=None):
        """Materialize every reachable row for ``ops`` (default: all).

        The whole-rule-base AOT enumeration: after this, no mediation
        under the current stamp compiles anything.  Returns ``self``.
        """
        for op in (ops if ops is not None else list(Op)):
            for step in self.plan(op).steps:
                step.compile_all()
        return self

    def traverse(self, operation, frame):
        """Drop-in for ``ProcessFirewall._traverse`` on the tabled path.

        Same chain order, same per-process traversal bookkeeping, same
        ``(verdict, rule)`` protocol as
        :meth:`repro.firewall.codegen.JitProgram.traverse` — but each
        chain visit is a flat table probe (or its JITTED fallback).
        """
        plan = self.plan(operation.op)
        steps = plan.steps
        proc = operation.proc
        i = 0
        n = len(steps)
        while i < n:
            step = steps[i]
            i += 1
            if proc is not None:
                proc.pf_traversal.append(step.chain_name)
            try:
                verdict, rule = step.run(operation, frame)
            finally:
                if proc is not None:
                    proc.pf_traversal.pop()
            if verdict == tg.DROP:
                return (verdict, rule)
            if verdict == tg.ACCEPT:
                if not step.is_mangle:
                    return (verdict, rule)
                i = plan.filter_start
        return (tg.CONTINUE, None)

    def row_counts(self):
        """``(static, fallback)`` row totals over materialized plans.

        A *fallback* row is one whose decision DAG contains at least
        one :data:`_FALLBACK_NODE` terminal (some path delegates to the
        JITTED function); a *static* row decides every mediation from
        the flat table alone.
        """
        static = fallback = 0
        for plan in self._plans.values():
            for step in plan.steps:
                for node in step.rows.values():
                    if _row_has_fallback(node):
                        fallback += 1
                    else:
                        static += 1
        return static, fallback


# ---------------------------------------------------------------------------
# module API: compile / describe / serialize / load
# ---------------------------------------------------------------------------


def compile_tables(firewall):
    """AOT-compile the whole rule base; attach and return the program.

    The eager twin of the engine's lazy ``table_program()``: every
    reachable ``(op, entrypoint)`` row is materialized now, so the
    program is ready to serialize and mediations never compile.
    """
    program = TableProgram(firewall).compile_all()
    firewall.attach_tables(program)
    if firewall.metrics.enabled:
        static, fallback = program.row_counts()
        firewall.metrics.inc("pf_tables_rows_total", {"kind": "static"}, static)
        firewall.metrics.inc("pf_tables_rows_total", {"kind": "fallback"}, fallback)
    return program


def describe_tables(program):
    """Human/JSON summary of a compiled program (``pfctl compile-tables``)."""
    static, fallback = program.row_counts()
    ops = sorted(op.name for op, plan in program._plans.items() if plan.steps)
    return {
        "rule_digest": rules_digest(program.firewall),
        "static_rows": static,
        "fallback_rows": fallback,
        "ops": ops,
        "loaded_from_artifact": program.loaded,
    }


def _encode_key(value):
    """Branch key -> JSON object key (labels are strings already).

    ``None``/``True``/``False`` and integers (syscall-argument
    operands) need explicit encodings — JSON object keys are strings,
    and ``True == 1`` would otherwise collide.
    """
    if value is None or value is True or value is False:
        return _KEY_ENCODE[value]
    if isinstance(value, int):
        return "\x00i{}".format(value)
    return value


def _decode_key(text):
    """Inverse of :func:`_encode_key`."""
    decoded = _KEY_DECODE.get(text)
    if decoded is not None or text in _KEY_DECODE:
        return decoded
    if text.startswith("\x00i"):
        return int(text[2:])
    return text


def _encode_field(field):
    """Branch field -> artifact string (projected fields get an index)."""
    if type(field) is tuple:
        return "{}[{}]".format(field[0].name, field[1])
    return field.name


def _decode_field(text):
    """Inverse of :func:`_encode_field`."""
    if text.endswith("]") and "[" in text:
        name, _, index = text.partition("[")
        return (ContextField[name], int(index[:-1]))
    return ContextField[text]


def _encode_ept(ept_key):
    """Entrypoint key -> JSON object key (``"-"`` for the preamble row)."""
    if ept_key is None:
        return "-"
    return "{}|{:#x}".format(ept_key[0], ept_key[1])


def _decode_ept(text):
    """Inverse of :func:`_encode_ept`."""
    if text == "-":
        return None
    program, _, offset = text.rpartition("|")
    return (program, int(offset, 16))


class _NodeInterner:
    """Flattens shared decision DAGs into an id-referenced node list."""

    def __init__(self, rule_coord):
        self.rule_coord = rule_coord
        self.nodes = []
        self._ids = {}

    def intern(self, node):
        """Node -> id, children first (decode replays the list in order)."""
        node_id = self._ids.get(id(node))
        if node_id is not None:
            return node_id
        if node[0] is None:
            rule = node[3]
            record = [
                "t", node[1], node[2],
                None if rule is None else self.rule_coord[id(rule)],
                node[4] is not None,
            ]
        else:
            branches = {
                _encode_key(value): self.intern(child)
                for value, child in sorted(
                    node[1].items(), key=lambda item: repr(item[0])
                )
            }
            record = ["b", _encode_field(node[0]), branches, self.intern(node[2])]
        node_id = self._ids[id(node)] = len(self.nodes)
        self.nodes.append(record)
        return node_id


def _rule_coordinates(firewall):
    """``id(rule) -> (table, chain, index)`` over the installed base."""
    coords = {}
    for table_name, table in firewall.rules.tables.items():
        for chain_name, chain in table.chains.items():
            for index, rule in enumerate(chain.rules):
                coords[id(rule)] = (table_name, chain_name, index)
    return coords


def serialize_tables(program):
    """Serialize a compiled :class:`TableProgram` to artifact text.

    The artifact is self-checking: it carries the schema version, the
    SHA-256 digest of the canonical rule text, and the TCB snapshots
    its verdicts were baked against; :func:`load_tables` verifies all
    three.  Rules are referenced by ``(table, chain, index)``
    coordinates and re-resolved against the live rule base at load, so
    the artifact holds no code and no pickled state — plain JSON.
    """
    firewall = program.firewall
    coords = _rule_coordinates(firewall)
    interner = _NodeInterner(coords)
    plans = {}
    for op, plan in sorted(program._plans.items(), key=lambda item: item[0].name):
        steps = []
        for step in plan.steps:
            rows = {}
            for key in sorted(step.rows, key=repr):
                rows[_encode_ept(key)] = interner.intern(step.rows[key])
            steps.append({
                "table": step.table.name,
                "chain": step.chain_name,
                "rows": rows,
            })
        plans[op.name] = steps
    static, fallback = program.row_counts()
    return json.dumps(
        {
            "format": ARTIFACT_FORMAT,
            "version": ARTIFACT_VERSION,
            "rule_digest": rules_digest(firewall),
            "tcb_subjects": sorted(program.tcb_subjects),
            "tcb_objects": sorted(program.tcb_objects),
            "static_rows": static,
            "fallback_rows": fallback,
            "plans": plans,
            "nodes": interner.nodes,
        },
        sort_keys=True,
    )


def _decode_nodes(records, firewall):
    """Rebuild runtime node tuples from the flat artifact node list."""
    tables = firewall.rules.tables
    nodes = []
    for record in records:
        if record[0] == "t":
            if record[1] == FALLBACK:
                # Re-intern the shared fallback terminal so runtime
                # identity checks (``verdict is FALLBACK``) hold for
                # loaded programs too.
                nodes.append(_FALLBACK_NODE)
                continue
            coord = record[3]
            rule = None
            if coord is not None:
                table_name, chain_name, index = coord
                try:
                    rule = tables[table_name].chains[chain_name].rules[index]
                except (KeyError, IndexError):
                    raise errors.PFTablesStale(
                        "tables artifact references rule {}/{}[{}] absent from "
                        "the live base".format(table_name, chain_name, index)
                    )
            nodes.append((None, record[1], record[2], rule, rule if record[4] else None))
        else:
            branches = {
                _decode_key(key): nodes[child_id]
                for key, child_id in record[2].items()
            }
            nodes.append((_decode_field(record[1]), branches, nodes[record[3]]))
    return nodes


def load_tables(firewall, text):
    """Restore a serialized artifact against the live rule base.

    Verifies the format marker, schema version, rule-text digest, and
    TCB snapshots before touching anything; any mismatch raises
    :class:`repro.errors.PFTablesStale` (a stale artifact must fail
    loudly, never silently mediate).  On success the decoded
    :class:`TableProgram` is attached to the firewall and returned —
    no row simulation runs, which is the zero-warmup property service
    workers rely on.
    """
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise errors.PFTablesStale("tables artifact is not valid JSON: {}".format(exc))
    if not isinstance(payload, dict) or payload.get("format") != ARTIFACT_FORMAT:
        raise errors.PFTablesStale("not a pf-tables artifact")
    if payload.get("version") != ARTIFACT_VERSION:
        raise errors.PFTablesStale(
            "tables artifact version {} != supported {}".format(
                payload.get("version"), ARTIFACT_VERSION
            )
        )
    digest = rules_digest(firewall)
    if payload.get("rule_digest") != digest:
        raise errors.PFTablesStale(
            "tables artifact digest {} does not match live rules {} "
            "(rule text changed since compile-tables)".format(
                str(payload.get("rule_digest"))[:12], digest[:12]
            )
        )
    if sorted(firewall.tcb_subjects()) != payload.get("tcb_subjects") or sorted(
        firewall.tcb_objects()
    ) != payload.get("tcb_objects"):
        raise errors.PFTablesStale(
            "tables artifact was compiled under a different MAC policy "
            "(TCB snapshot mismatch)"
        )

    program = TableProgram(firewall)
    nodes = _decode_nodes(payload["nodes"], firewall)
    for op_name, step_records in payload["plans"].items():
        op = Op[op_name]
        plan = program.plan(op)
        if len(plan.steps) != len(step_records):
            raise errors.PFTablesStale(
                "tables artifact plan shape for {} does not match the live "
                "rule base".format(op_name)
            )
        for step, record in zip(plan.steps, step_records):
            if step.table.name != record["table"] or step.chain_name != record["chain"]:
                raise errors.PFTablesStale(
                    "tables artifact chain order for {} does not match the "
                    "live rule base".format(op_name)
                )
            for key_text, node_id in record["rows"].items():
                step.rows[_decode_ept(key_text)] = nodes[node_id]
    program.loaded = True
    firewall.attach_tables(program)
    if firewall.metrics.enabled:
        static, fallback = program.row_counts()
        firewall.metrics.inc("pf_tables_rows_total", {"kind": "static"}, static)
        firewall.metrics.inc("pf_tables_rows_total", {"kind": "fallback"}, fallback)
    return program
