"""Rule-base persistence and listing (pftables-save / -restore / -L).

The paper envisions OS distributors shipping rule bases in application
packages (§6.3.2); that requires a durable text format.  This module
provides the iptables-save-shaped equivalent::

    *filter
    :input
    :signal_chain
    -A input -o FILE_OPEN -d shadow_t -j DROP
    -A signal_chain -m SIGNAL_MATCH ... -j DROP
    COMMIT
    *mangle
    COMMIT

plus a human-oriented listing with per-rule hit counters
(``pftables -L -v``).
"""

from __future__ import annotations

from typing import List

from repro import errors
from repro.firewall.pftables import pftables
from repro.firewall.rule import RuleBase, TABLES


def save_rules(firewall):
    """Serialize the installed rule base to restorable text."""
    lines = []  # type: List[str]
    for table_name in TABLES:
        table = firewall.rules.table(table_name)
        lines.append("*{}".format(table_name))
        for chain_name in sorted(table.chains):
            lines.append(":{}".format(chain_name))
        for chain_name in sorted(table.chains):
            for rule in table.chains[chain_name]:
                lines.append("-A {} {}".format(chain_name, rule.render()))
        lines.append("COMMIT")
    return "\n".join(lines) + "\n"


def load_rules(firewall, text, flush=True):
    """Restore a rule base from :func:`save_rules` output.

    Returns the number of rules installed.  Unknown directives raise
    :class:`repro.errors.EINVAL`, and a corrupt file must not
    half-apply: parsing happens in a first pass, then installation runs
    against a *staged* rule base that is only left in place when every
    line applied cleanly.  Failures that surface at install time (e.g.
    a ``DROP`` rule in the mangle table, which only the apply step
    rejects) therefore leave the previous rules untouched.  The
    engine's ``stats`` and ``log_records`` are never modified — a
    restore replaces policy, not history.
    """
    table = "filter"
    planned = []  # pftables lines
    declared = []  # (table, chain) declarations
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#") or line == "COMMIT":
            continue
        if line.startswith("*"):
            table = line[1:]
            if table not in TABLES:
                raise errors.EINVAL("unknown table {!r} in saved rules".format(table))
            continue
        if line.startswith(":"):
            # Chain declaration: created up front (like
            # iptables-restore), so empty user chains survive a
            # save/load round-trip.
            declared.append((table, line[1:].strip()))
            continue
        if line.startswith("-A "):
            planned.append("pftables -t {} {}".format(table, line))
            continue
        raise errors.EINVAL("unparseable saved-rules line: {!r}".format(line))

    original = firewall.rules
    staging = RuleBase()
    if not flush:
        # Keep the existing rules ahead of the loaded ones.  The Rule
        # objects themselves are shared with the original base — they
        # are immutable at install time, so grafting them into the
        # staging chains (and reindexing) cannot disturb the original
        # should the swap be rolled back.
        for table_name in TABLES:
            src_table = original.table(table_name)
            dst_table = staging.table(table_name)
            for chain_name, chain in src_table.chains.items():
                if not len(chain) and chain.builtin:
                    continue
                dst_chain = dst_table.chain(chain_name, create=True)
                dst_chain.rules.extend(chain.rules)
                dst_chain._reindex()
        staging.recompute_required_fields()
    for table_name, chain_name in declared:
        staging.table(table_name).chain(chain_name, create=True)

    firewall.rules = staging
    try:
        for line in planned:
            pftables(firewall, line)
    except Exception:
        firewall.rules = original
        raise
    return len(planned)


def list_rules(firewall, verbose=False):
    """Render the rule base for humans (``pftables -L [-v]``).

    With ``verbose``, every rule shows its live hit counter.  When the
    firewall's metrics registry additionally holds data (it was enabled
    while a workload ran), the listing upgrades to the full
    ``iptables -L -v`` shape: chain headers gain traversal counts and
    rules gain drop counts, all read live from
    ``firewall.metrics`` — see ``docs/OBSERVABILITY.md``.
    """
    metrics = getattr(firewall, "metrics", None)
    lines = []
    for table_name in TABLES:
        table = firewall.rules.table(table_name)
        populated = [name for name in sorted(table.chains) if len(table.chains[name])]
        if not populated and table_name != "filter":
            continue
        lines.append("Table: {}".format(table_name))
        for chain_name in sorted(table.chains):
            chain = table.chains[chain_name]
            if not len(chain) and not chain.builtin:
                continue
            policy = "ACCEPT" if chain.builtin else "-"
            header = "Chain {} (policy {})".format(chain_name, policy)
            if verbose and metrics is not None:
                traversals = metrics.value(
                    "pf_chain_traversals_total",
                    {"table": table_name, "chain": chain_name},
                )
                if traversals:
                    header += "  [{} traversals]".format(traversals)
            lines.append(header)
            for i, rule in enumerate(chain, 1):
                prefix = "{:>4}  ".format(i)
                if verbose:
                    prefix += "[{:>6} hits]  ".format(rule.hits)
                    if metrics is not None:
                        drops = metrics.value(
                            "pf_rule_drops_total",
                            {"table": table_name, "chain": chain_name, "rule": rule.text},
                        )
                        if drops:
                            prefix += "[{:>4} drops]  ".format(drops)
                lines.append(prefix + rule.render())
    return "\n".join(lines)
