"""Target modules: what happens when a rule matches.

Verdict targets (``DROP``/``ACCEPT``) end traversal; side-effect targets
(``STATE``, ``LOG``) continue it; ``JUMP`` transfers to a user chain
(like iptables jumps, §5.1).
"""

from __future__ import annotations

from repro.firewall.context import ContextField
from repro.firewall.values import Value
from repro.obs.audit import INFO, severity_level, severity_name

#: Traversal verdicts returned by Target.execute.
DROP = "DROP"
ACCEPT = "ACCEPT"
CONTINUE = "CONTINUE"
JUMP = "JUMP"
RETURN = "RETURN"


class Target:
    """Base class for target modules."""

    required_fields = ContextField(0)

    def execute(self, engine, operation, frame):  # pragma: no cover - interface
        raise NotImplementedError

    def render(self):  # pragma: no cover - interface
        raise NotImplementedError


class DropTarget(Target):
    """``-j DROP`` — deny the resource access."""

    def execute(self, engine, operation, frame):
        return (DROP, None)

    def render(self):
        return "-j DROP"


class AcceptTarget(Target):
    """``-j ACCEPT`` — allow, ending traversal."""

    def execute(self, engine, operation, frame):
        return (ACCEPT, None)

    def render(self):
        return "-j ACCEPT"


class ReturnTarget(Target):
    """``-j RETURN`` — return from the current user chain."""

    def execute(self, engine, operation, frame):
        return (RETURN, None)

    def render(self):
        return "-j RETURN"


class StateTarget(Target):
    """``-j STATE --set`` — record a key/value in the process dictionary.

    This is the stateful half of the TOCTTOU template (record the inode
    at the "check" call) and of the signal rules (mark handler entry and
    exit).  The backing store is the ``task_struct`` extension
    ``proc.pf_state`` (§5.1).
    """

    def __init__(self, key, value):
        self.key = Value(key)
        self.value = Value(value)

    @property
    def required_fields(self):
        fields = ContextField(0)
        for value in (self.key, self.value):
            if value.required_field is not None:
                fields |= value.required_field
        return fields

    def execute(self, engine, operation, frame):
        key = self.key.resolve(engine, operation, frame)
        value = self.value.resolve(engine, operation, frame)
        pf = operation.proc.pf
        # CoW write: a map shared with fork relatives is copied here,
        # once, and only our side diverges.
        pf.state[key] = value
        # The process dictionary changed: this traversal is not
        # memoizable, and any verdict this process memoized earlier
        # could now be answered differently by a STATE match.
        frame.decision_unsafe = True
        pf.decision_invalidate()
        return (CONTINUE, None)

    def render(self):
        return "-j STATE --set --key {} --value {}".format(
            self.key.atom or self.key.literal, self.value.atom or self.value.literal
        )


class LogTarget(Target):
    """``-j LOG`` — emit a JSON-shaped record of the access (§5.2).

    The record carries the context rule generation needs: entrypoint,
    object label, resource id, and adversary accessibility.  Collecting
    those fields is exactly why trace-gathering runs are slower than
    enforcement runs.
    """

    required_fields = (
        ContextField.ENTRYPOINT
        | ContextField.PROGRAM
        | ContextField.OBJECT_LABEL
        | ContextField.RESOURCE_ID
        | ContextField.ADV_WRITABLE
        | ContextField.ADV_READABLE
    )

    def __init__(self, prefix="", level="info"):
        self.prefix = prefix
        #: Audit severity the record is emitted at (``--level``);
        #: normalized to the numeric scale at install time so a bad
        #: name fails the rule install, not the mediation.
        self.level = severity_level(level)

    def execute(self, engine, operation, frame):
        # A log record is an externally visible side effect — never
        # memoize a traversal that emitted one.
        frame.decision_unsafe = True
        entries = engine.ensure(ContextField.ENTRYPOINT, operation, frame)
        record = {
            "prefix": self.prefix,
            "time": engine.kernel.clock.now() if engine.kernel else 0,
            "pid": operation.proc.pid,
            "comm": operation.proc.comm,
            "program": engine.ensure(ContextField.PROGRAM, operation, frame),
            "entrypoint": list(entries[0]) if entries else None,
            "op": operation.op.value,
            "path": operation.path,
            "object_label": engine.ensure(ContextField.OBJECT_LABEL, operation, frame),
            "resource_id": engine.ensure(ContextField.RESOURCE_ID, operation, frame),
            "adv_writable": engine.ensure(ContextField.ADV_WRITABLE, operation, frame),
            "adv_readable": engine.ensure(ContextField.ADV_READABLE, operation, frame),
        }
        # Interpreted programs also log the script-level call site, so
        # rule generation can emit -m SCRIPT rules.
        if getattr(operation.proc, "script_stack", None) is not None:
            script_entries = engine.ensure(ContextField.SCRIPT_ENTRYPOINT, operation, frame)
            record["script"] = list(script_entries[0]) if script_entries else None
        engine.audit.emit(record, severity=self.level, kind="log")
        return (CONTINUE, None)

    def render(self):
        text = "-j LOG"
        if self.prefix:
            text += " --prefix {}".format(self.prefix)
        if self.level != INFO:
            text += " --level {}".format(severity_name(self.level))
        return text


class JumpTarget(Target):
    """``-j <chain>`` — jump to a user-defined chain."""

    def __init__(self, chain_name):
        self.chain_name = chain_name.lower()

    def execute(self, engine, operation, frame):
        return (JUMP, self.chain_name)

    def render(self):
        return "-j {}".format(self.chain_name.upper())
