"""The Process Firewall engine: the rule-processing loop of Figure 3.

Invoked by the kernel after DAC + MAC authorization for every mediated
operation.  The engine builds its "packet" on demand from context
modules, walks the applicable chains, and raises
:class:`repro.errors.PFDenied` when a ``DROP`` rule matches.  The
default verdict is allow (§4.1: deny-only rules + default allow).

Engine optimizations are individually switchable so Table 6's columns
are directly expressible:

====================  ==========================================
Column                :class:`EngineConfig` preset
====================  ==========================================
DISABLED              ``EngineConfig.disabled()``
BASE / FULL           ``EngineConfig.unoptimized()``
CONCACHE              ``EngineConfig.concache()``
LAZYCON               ``EngineConfig.lazycon()``
EPTSPC                ``EngineConfig.optimized()`` (the default)
COMPILED              ``EngineConfig.compiled()``
JITTED                ``EngineConfig.jitted()``
TABLED                ``EngineConfig.tabled()``
====================  ==========================================

(BASE vs FULL differ by rule-base size, not engine configuration.)

The COMPILED rung extends the paper's ladder: chains pre-compile flat
per-``(op, entrypoint)`` dispatch tuples at first use (invalidated on
every rule mutation), and a per-process **negative-decision cache**
memoizes default-allow verdicts whose traversal consulted nothing
resource- or call-dependent — see ``docs/INTERNALS.md``.

The JITTED rung goes one further: the dispatch tuples are compiled
into flat Python decision functions with rule constants bound in the
closure (:mod:`repro.firewall.codegen`), and expensive per-inode
context fields (object label, adversary accessibility) are memoized in
a VFS-invalidated resource-context cache
(:mod:`repro.firewall.rescache`).  Traced or metered mediations fall
back to the interpreted walker, so observability semantics are
unchanged.

The TABLED rung tops the ladder: the whole rule base is ahead-of-time
compiled into flat per-``(op, entrypoint)`` decision tables
(:mod:`repro.firewall.tables`) — constant-operand predicate chains
collapse into dict-probed decision DAGs, dynamic rows delegate to the
JITTED generated functions, and the compiled program serializes to a
digest-checked artifact that service workers load instead of
compiling.  See ``docs/COMPILATION.md`` for the full ladder.

The engine also hosts the :mod:`repro.obs` observability layer:
decision traces (opt-in via :meth:`ProcessFirewall.enable_tracing`),
the metrics registry (:attr:`ProcessFirewall.metrics`, disabled by
default), and the bounded audit ring
(:attr:`ProcessFirewall.audit`, always on — it replaces the old
unbounded ``log_records`` list).  With tracing off and metrics
disabled the hot path pays only ``is None`` / boolean checks; the
differential harness pins that enabling them changes no verdict.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict

from repro import errors
from repro.deprecation import warn_once
from repro.firewall import targets as tg
from repro.firewall.context import _DECISION_STABLE_INT, ContextField, ContextFrame
from repro.firewall.codegen import JitProgram
from repro.firewall.tables import TableProgram
from repro.firewall.modules.registry import collect_field
from repro.firewall.rescache import (
    _RESCACHE_FIELDS_INT,
    HIT as RESCACHE_HIT,
    INVALIDATE as RESCACHE_INVALIDATE,
    ResourceContextCache,
)
from repro.firewall.rule import RuleBase, _op_accepts
from repro.obs.audit import WARNING, AuditRing
from repro.obs.metrics import (
    PHASE_CACHE_PROBE,
    PHASE_CHAIN_WALK,
    PHASE_CONTEXT,
    MetricsRegistry,
)
from repro.obs.trace import (
    FIELD_CACHED,
    FIELD_COLLECTED,
    STAGE_DECISION_CACHE,
    STAGE_FAST_PATH,
    RuleEval,
    Tracer,
)
from repro.security.lsm import Op

#: Maximum user-chain jump depth, like iptables' traversal limits.
MAX_CHAIN_DEPTH = 16

#: Syscall names whose execution mutates VFS or adversary-visible state.
#: :meth:`ProcessFirewall.mediate_batch` never amortizes across a record
#: of one of these: the record is mediated individually and acts as a
#: run barrier, so any verdict the batch pre-proved before the mutation
#: is never reused after it (``docs/INTERNALS.md`` "Batched mediation").
MUTATING_SYSCALLS = frozenset((
    "bind", "chdir", "chmod", "chown", "connect", "execve", "exit",
    "fork", "kill", "link", "mkdir", "mmap", "relabel", "remount",
    "rename", "rmdir", "seteuid", "setuid", "sigaction", "sigprocmask",
    "sigreturn", "symlink", "unlink", "write",
))

#: ``open(2)`` flag bits that make an open record mutating (create,
#: truncate, or any write mode).
_OPEN_WRITE_BITS = 0x1 | 0x2 | 0x40 | 0x200 | 0x400  # WRONLY|RDWR|CREAT|TRUNC|APPEND


def record_mutates(operation):
    """Whether a mediated record's *syscall* mutates shared state.

    Used by :meth:`ProcessFirewall.mediate_batch` to bound its
    amortization runs: mediation itself never writes to the VFS, but
    the syscall a record belongs to may, and a batch caller interleaves
    execution with mediation.  Conservative by construction — read-only
    opens are recognized by their flag bits; everything in
    :data:`MUTATING_SYSCALLS` (and any ``FILE_CREATE`` operation)
    counts as mutating.
    """
    syscall = operation.syscall
    if syscall in MUTATING_SYSCALLS:
        return True
    if operation.op is Op.FILE_CREATE:
        return True
    if syscall == "open":
        for arg in operation.args:
            if isinstance(arg, int) and arg & _OPEN_WRITE_BITS:
                return True
    return False


class EngineConfig:
    """Feature switches for the engine optimizations (paper §4.2-4.3)."""

    __slots__ = (
        "enabled",
        "context_cache",
        "lazy_context",
        "entrypoint_chains",
        "compiled_dispatch",
        "decision_cache",
        "global_traversal_state",
        "jit_codegen",
        "resource_cache",
        "table_dispatch",
    )

    def __init__(
        self,
        enabled=True,
        context_cache=True,
        lazy_context=True,
        entrypoint_chains=True,
        compiled_dispatch=False,
        decision_cache=False,
        global_traversal_state=False,
        jit_codegen=False,
        resource_cache=False,
        table_dispatch=False,
    ):
        self.enabled = enabled
        self.context_cache = context_cache
        self.lazy_context = lazy_context
        self.entrypoint_chains = entrypoint_chains
        #: Walk precompiled per-(op, entrypoint) dispatch tuples
        #: instead of re-filtering/merging rule lists per mediation.
        self.compiled_dispatch = compiled_dispatch
        #: Memoize default-allow verdicts per process for traversals
        #: that touched no resource- or call-dependent context.
        self.decision_cache = decision_cache
        #: Ablation: emulate iptables' global traversal state, which
        #: requires disabling preemption/interrupts per invocation
        #: (counted in ``stats.irq_disables``) instead of the paper's
        #: per-process state (§5.1).
        self.global_traversal_state = global_traversal_state
        #: Walk chains through generated flat decision functions
        #: (:mod:`repro.firewall.codegen`).  Requires (and the preset
        #: sets) ``entrypoint_chains`` + ``compiled_dispatch``; traced
        #: or metered mediations fall back to the interpreted walker.
        self.jit_codegen = jit_codegen
        #: Memoize expensive per-inode context fields in the
        #: VFS-invalidated resource-context cache
        #: (:mod:`repro.firewall.rescache`).
        self.resource_cache = resource_cache
        #: Walk chains through ahead-of-time compiled flat decision
        #: tables (:mod:`repro.firewall.tables`); rows with dynamic
        #: context predicates delegate to the JITTED generated
        #: functions.  Traced or metered mediations fall back to the
        #: interpreted walker, exactly like ``jit_codegen``.
        self.table_dispatch = table_dispatch

    # ---- Table 6 column presets ----

    @classmethod
    def disabled(cls):
        """DISABLED: the firewall is attached but mediates nothing."""
        return cls(enabled=False)

    @classmethod
    def unoptimized(cls):
        """FULL: every optimization off — eager context, linear scan."""
        return cls(context_cache=False, lazy_context=False, entrypoint_chains=False)

    @classmethod
    def concache(cls):
        """FULL + context caching."""
        return cls(context_cache=True, lazy_context=False, entrypoint_chains=False)

    @classmethod
    def lazycon(cls):
        """CONCACHE + lazy context retrieval."""
        return cls(context_cache=True, lazy_context=True, entrypoint_chains=False)

    @classmethod
    def optimized(cls):
        """EPTSPC: all paper optimizations (the shipping default)."""
        return cls()

    @classmethod
    def compiled(cls):
        """COMPILED: EPTSPC + compiled dispatch + decision cache."""
        return cls(compiled_dispatch=True, decision_cache=True)

    @classmethod
    def jitted(cls):
        """JITTED: COMPILED + rule codegen + resource-context cache."""
        return cls(
            compiled_dispatch=True,
            decision_cache=True,
            jit_codegen=True,
            resource_cache=True,
        )

    @classmethod
    def tabled(cls):
        """TABLED: JITTED + ahead-of-time flat decision tables."""
        return cls(
            compiled_dispatch=True,
            decision_cache=True,
            jit_codegen=True,
            resource_cache=True,
            table_dispatch=True,
        )

    @classmethod
    def preset(cls, name):
        """Resolve a Table 6 column name to its configuration.

        Accepts the column spellings used across the benchmarks and the
        parallel-replay driver (``"JITTED"``, ``"compiled"``, ...);
        raises ``ValueError`` for unknown names so a typo in a worker
        payload fails loudly instead of silently running EPTSPC.
        """
        presets = {
            "DISABLED": cls.disabled,
            "FULL": cls.unoptimized,
            "BASE": cls.unoptimized,
            "CONCACHE": cls.concache,
            "LAZYCON": cls.lazycon,
            "EPTSPC": cls.optimized,
            "COMPILED": cls.compiled,
            "JITTED": cls.jitted,
            "TABLED": cls.tabled,
        }
        factory = presets.get(str(name).upper())
        if factory is None:
            raise ValueError("unknown engine preset {!r} (expected one of {})".format(
                name, "/".join(sorted(presets))))
        return factory()

    def clone(self, **overrides):
        """Copy this configuration, overriding selected switches."""
        values = {name: getattr(self, name) for name in self.__slots__}
        values.update(overrides)
        return EngineConfig(**values)


class EngineStats:
    """Flat counters exposed to the benchmark harness.

    The aggregate view; per-rule / per-chain / per-table breakdowns
    live in the firewall's :class:`repro.obs.metrics.MetricsRegistry`.
    """

    def __init__(self):
        self.invocations = 0
        self.rules_evaluated = 0
        self.drops = 0
        self.accepts = 0
        self.context_collections = {}  # type: Dict[str, int]
        self.context_cost = 0
        #: Context-collection work actually avoided by the per-process
        #: context cache: counted at lookup time, the first time a rule
        #: (or the eager collector) reads an absorbed field — never for
        #: fields the cache carried but nothing consulted.
        self.cache_hits = 0
        #: Whole traversals short-circuited by the negative-decision
        #: cache (COMPILED configurations only).
        self.decision_cache_hits = 0
        #: Resource-context cache outcomes (JITTED configurations
        #: only): collections avoided, collections performed through
        #: the cache, and entries discarded on a validity mismatch.
        self.rescache_hits = 0
        self.rescache_misses = 0
        self.rescache_invalidations = 0
        self.irq_disables = 0
        #: Flat-table dispatch outcomes (TABLED configurations only):
        #: chain steps answered by a static decision table, and steps
        #: that delegated to the embedded JITTED fallback function
        #: because a row carries dynamic context predicates.
        self.tables_hits = 0
        self.tables_fallbacks = 0

    #: Scalar counters, in declaration order; ``context_collections``
    #: (a per-field dict) is handled separately by the snapshot/merge
    #: helpers below.
    SCALAR_FIELDS = (
        "invocations",
        "rules_evaluated",
        "drops",
        "accepts",
        "context_cost",
        "cache_hits",
        "decision_cache_hits",
        "rescache_hits",
        "rescache_misses",
        "rescache_invalidations",
        "irq_disables",
        "tables_hits",
        "tables_fallbacks",
    )

    def reset(self):
        """Zero every counter (the engine's other memos are untouched —
        resetting statistics must not change decisions, and the memos
        are invalidated by rule-base stamps, not by this method)."""
        self.__init__()

    def as_dict(self):
        """JSON-ready snapshot of every counter.

        The transport format for crossing a process boundary (the
        parallel replay workers ship these back to the driver);
        :meth:`from_dict` inverts it and :meth:`merge` folds snapshots
        together.
        """
        out = {name: getattr(self, name) for name in self.SCALAR_FIELDS}
        out["context_collections"] = dict(self.context_collections)
        return out

    @classmethod
    def from_dict(cls, payload):
        """Rebuild a stats object from an :meth:`as_dict` snapshot."""
        stats = cls()
        for name in cls.SCALAR_FIELDS:
            setattr(stats, name, payload.get(name, 0))
        stats.context_collections = dict(payload.get("context_collections", {}))
        return stats

    def merge(self, other):
        """Fold another stats object (or snapshot dict) into this one.

        Pure counter addition, so the operation is associative and
        commutative: merging per-shard stats in any order yields the
        same totals.  Returns ``self`` for chaining.
        """
        if isinstance(other, dict):
            other = EngineStats.from_dict(other)
        for name in self.SCALAR_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for field, count in other.context_collections.items():
            self.context_collections[field] = self.context_collections.get(field, 0) + count
        return self


class ProcessFirewall:
    """The firewall proper: rule base + engine + statistics.

    Observability attachments:

    - :attr:`stats` — flat :class:`EngineStats` counters (always on).
    - :attr:`audit` — bounded :class:`repro.obs.audit.AuditRing`; the
      ``-j LOG`` target and drop notifications land here.
      :attr:`log_records` remains as the historical view of the
      ``"log"`` channel.
    - :attr:`metrics` — :class:`repro.obs.metrics.MetricsRegistry`
      (call ``firewall.metrics.enable()`` to start counting).
    - :attr:`tracer` — ``None`` until :meth:`enable_tracing`; then a
      :class:`repro.obs.trace.Tracer` recording one
      :class:`~repro.obs.trace.DecisionTrace` per mediation.
    """

    def __init__(self, config=None, audit_capacity=4096):
        self.config = config or EngineConfig.optimized()
        self.rules = RuleBase()
        self.kernel = None  # set by Kernel.attach_firewall
        self.stats = EngineStats()
        #: Bounded audit ring (replaces the unbounded log_records list).
        self.audit = AuditRing(capacity=audit_capacity)
        #: Per-rule/per-chain counters and phase timers; disabled by
        #: default so the hot path pays one boolean test per site.
        self.metrics = MetricsRegistry()
        #: Decision tracer; ``None`` (the default) disables tracing.
        self.tracer = None
        #: Shared traversal stack used only in the iptables-emulation
        #: ablation (global_traversal_state).
        self._shared_traversal = []
        #: Compiled rule program (jit_codegen); rebuilt whenever the
        #: rule-base stamp identity changes.
        self._jit = None
        #: Flat-table program (table_dispatch); rebuilt on stamp or
        #: TCB-set change, or replaced wholesale by a loaded artifact
        #: (:func:`repro.firewall.tables.load_tables`).
        self._tables = None
        #: The MAC policy object the current table program was last
        #: validated against — collapses the per-mediation TCB check
        #: to one identity test until the policy is swapped.
        self._tables_policy = None
        #: VFS-invalidated memo of per-inode context fields
        #: (resource_cache configurations only).
        self._rescache = ResourceContextCache() if self.config.resource_cache else None
        #: Memo of relevant top-level chains per op, keyed by rule-base
        #: stamp (hot-path optimization for the op-index skip).  The
        #: stamp, not the bare version, so an atomically swapped rule
        #: base (persist restore) can never alias a stale memo.
        self._chain_memo = {}
        self._chain_memo_stamp = None

    # ------------------------------------------------------------------
    # policy plumbing
    # ------------------------------------------------------------------

    def tcb_subjects(self):
        """Subject labels the MAC policy treats as trusted (SYSHIGH)."""
        policy = self.kernel.adversaries.policy if self.kernel else None
        return policy.tcb_subjects if policy is not None else frozenset()

    def tcb_objects(self):
        """Object labels the MAC policy treats as trusted (SYSHIGH)."""
        policy = self.kernel.adversaries.policy if self.kernel else None
        return policy.tcb_objects if policy is not None else frozenset()

    def install(self, rule_text):
        """Install one ``pftables`` rule line (convenience wrapper)."""
        # Lazy on purpose (circular: pftables imports engine types), and
        # cold — installs happen at setup, never per mediation.
        from repro.firewall.pftables import pftables  # hot-import: ok

        return pftables(self, rule_text)

    def install_all(self, rule_texts):
        """Install a sequence of ``pftables`` lines; returns the rules."""
        return [self.install(text) for text in rule_texts]

    def flush(self):
        """Remove every rule and reset the engine's observable history.

        Installs a fresh :class:`RuleBase` (a new ``uid`` ⇒ a new
        ``stamp``), zeroes :attr:`stats`, clears the audit ring, the
        metrics registry's values, and any retained traces.  The
        installed-chain memo is dropped eagerly, and per-process
        decision caches — which the engine cannot enumerate — are
        neutralized by the stamp change: any entry recorded under the
        old rule base can no longer match
        (``tests/firewall/test_flush_invalidation.py`` pins both).
        """
        self.rules = RuleBase()
        self.stats.reset()
        self.audit.clear()
        self.metrics.reset()
        if self.tracer is not None:
            self.tracer.clear()
        self._chain_memo = {}
        self._chain_memo_stamp = None
        self._jit = None
        self._tables = None
        self._tables_policy = None
        if self._rescache is not None:
            self._rescache.clear()

    def jit_program(self):
        """The compiled rule program for the current rule base.

        Lazily (re)built: a :class:`repro.firewall.codegen.JitProgram`
        is pinned to one ``RuleBase.stamp`` identity, so any rule
        mutation — including an atomically swapped restore — orphans
        the old program along with the generated code it holds.
        """
        jit = self._jit
        if jit is None or jit.stamp is not self.rules.stamp:
            jit = self._jit = JitProgram(self)
        return jit

    def table_program(self):
        """The flat-table program for the current rule base.

        Pinned to both the ``RuleBase.stamp`` identity *and* the
        MAC-policy TCB label sets: table rows branch over precomputed
        label-membership fingerprints whose universes fold the TCB in,
        so a policy swap must orphan the tables even when the rules
        themselves are untouched.  The steady-state cost is two
        identity tests (rule stamp, last-validated policy object); a
        policy swap falls through to the snapshot comparison —
        identity-first on the label sets, with an equality fallback.
        """
        program = self._tables
        if program is not None and program.stamp is self.rules.stamp:
            kernel = self.kernel
            policy = kernel.adversaries.policy if kernel is not None else None
            if policy is self._tables_policy:
                # The policy object this program last validated
                # against; the label-set snapshots it captured are
                # still the ones that policy holds.
                return program
            if policy is None:
                if not program.tcb_subjects and not program.tcb_objects:
                    self._tables_policy = policy
                    return program
            elif (
                program.tcb_subjects is policy.tcb_subjects
                and program.tcb_objects is policy.tcb_objects
            ) or (
                program.tcb_subjects == policy.tcb_subjects
                and program.tcb_objects == policy.tcb_objects
            ):
                self._tables_policy = policy
                return program
        else:
            kernel = self.kernel
            policy = kernel.adversaries.policy if kernel is not None else None
        program = self._tables = TableProgram(self)
        self._tables_policy = policy
        return program

    def attach_tables(self, program):
        """Adopt an externally built/loaded :class:`TableProgram`.

        Called by :func:`repro.firewall.tables.compile_tables` and
        :func:`~repro.firewall.tables.load_tables` after they validate
        the program against this firewall's live rule base; the next
        mediation dispatches through it without compiling anything.
        """
        self._tables = program

    # ------------------------------------------------------------------
    # observability plumbing
    # ------------------------------------------------------------------

    @property
    def log_records(self):
        """The ``-j LOG`` records, as the plain list it historically was.

        A snapshot of the audit ring's ``"log"`` channel: indexable,
        iterable, JSON-serializable — but bounded by the ring's
        capacity, unlike the unbounded list it replaces.  Appending to
        the returned list does not store anything; emit through
        :attr:`audit` instead.

        Deprecated (warns once per interpreter): read
        ``firewall.audit.records(kind="log")`` directly.
        """
        warn_once("ProcessFirewall.log_records",
                  'firewall.audit.records(kind="log")')
        return self.audit.records(kind="log")

    def enable_tracing(self, capacity=256):
        """Start recording one decision trace per mediation.

        Returns the installed :class:`repro.obs.trace.Tracer` (an
        existing tracer is kept, so repeated calls are idempotent).
        Tracing changes no verdict, counter, or log record — only what
        is additionally *recorded*; the observability differential
        harness pins this.
        """
        if self.tracer is None:
            self.tracer = Tracer(capacity=capacity)
        return self.tracer

    def disable_tracing(self):
        """Stop tracing and drop the tracer (and its retained traces)."""
        self.tracer = None

    # ------------------------------------------------------------------
    # context retrieval (lazy, bitmask-guarded — §4.2)
    # ------------------------------------------------------------------

    def ensure(self, field, operation, frame):
        """Return the context value, collecting it if not yet present.

        A context module hitting malformed process memory (EFAULT)
        yields ``None`` rather than failing the mediation — paper §4.4:
        the engine "aborts evaluation of malformed context without
        itself exiting or functioning incorrectly", at the cost of the
        malformed process's own protection.

        Every lookup also feeds two kinds of bookkeeping: a field that
        is not decision-stable poisons the negative-decision cache for
        this traversal, and the first read of a field absorbed from the
        per-process context cache counts one ``cache_hits`` (the
        collection the cache actually avoided).  When tracing is on,
        the first use of a field is recorded on the frame's trace as
        ``collected`` or ``cached``; when metrics are enabled, the
        collection is timed into the ``context`` phase.
        """
        bits = field.value
        if bits & _DECISION_STABLE_INT:
            if field is ContextField.ENTRYPOINT:
                frame.used_entrypoint = True
        else:
            frame.decision_unsafe = True
        if frame.mask & bits:
            if frame.cached_mask & bits:
                frame.cached_mask &= ~bits
                self.stats.cache_hits += 1
                trace = frame.trace
                if trace is not None:
                    trace.note_field(field.name, FIELD_CACHED)
                if self.metrics.enabled:
                    self.metrics.inc(
                        "pf_context_cache_hits_total", {"field": field.name}
                    )
            return frame.get(field)
        rescache = self._rescache
        if rescache is not None and bits & _RESCACHE_FIELDS_INT:
            obj = operation.obj
            if (
                obj is not None
                and self.kernel is not None
                and getattr(obj, "ino", None) is not None
            ):
                outcome, value = rescache.fetch(field, operation, self)
                metered = self.metrics.enabled
                if outcome == RESCACHE_HIT:
                    self.stats.rescache_hits += 1
                    frame.put(field, value)
                    trace = frame.trace
                    if trace is not None:
                        trace.note_field(field.name, FIELD_CACHED)
                    if metered:
                        self.metrics.inc("pf_rescache_total", {"result": outcome})
                    return value
                if outcome == RESCACHE_INVALIDATE:
                    self.stats.rescache_invalidations += 1
                else:
                    self.stats.rescache_misses += 1
                if metered:
                    self.metrics.inc("pf_rescache_total", {"result": outcome})
                value = self._collect_checked(field, operation, frame)
                rescache.store(field, operation, self, value)
                return value
        return self._collect_checked(field, operation, frame)

    def _collect_checked(self, field, operation, frame):
        """Collect one field with trace/metrics bookkeeping and the
        EFAULT degrade-to-``None`` discipline of :meth:`ensure`."""
        trace = frame.trace
        if trace is not None:
            trace.note_field(field.name, FIELD_COLLECTED)
        metrics = self.metrics
        if metrics.enabled:
            started = perf_counter()
            try:
                return collect_field(field, operation, self.kernel, frame, self.stats)
            except errors.EFAULT:
                frame.put(field, None)
                return None
            finally:
                metrics.observe_phase(PHASE_CONTEXT, perf_counter() - started)
                metrics.inc("pf_context_collections_total", {"field": field.name})
        try:
            return collect_field(field, operation, self.kernel, frame, self.stats)
        except errors.EFAULT:
            frame.put(field, None)
            return None

    # ------------------------------------------------------------------
    # the main loop (Figure 3)
    # ------------------------------------------------------------------

    def mediate(self, operation):
        """Evaluate the rule base; raise :class:`PFDenied` on DROP.

        The pipeline stages (named as in ``docs/INTERNALS.md`` and in
        trace records): *fast_path* (op-index skip), *decision_cache*
        (COMPILED's memoized default-allows), *context* (frame build +
        field collection), *chain_walk* (mangle then filter), and
        *verdict*.
        """
        if not self.config.enabled:
            return
        self.stats.invocations += 1
        metrics = self.metrics
        metered = metrics.enabled
        tracer = self.tracer
        trace = tracer.begin(operation) if tracer is not None else None
        if metered:
            metrics.inc("pf_mediations_total", {"op": operation.op.value})

        if self.config.entrypoint_chains and not self._relevant_chains(operation.op):
            # Fast path: no installed chain can match this operation.
            # Safe because the base is deny-only with default allow —
            # skipping non-matching rules cannot change the verdict.
            self.stats.accepts += 1
            if trace is not None:
                trace.enter_stage(STAGE_FAST_PATH)
                trace.finish("ALLOW")
            if metered:
                metrics.inc("pf_fast_path_total")
                metrics.inc("pf_verdicts_total", {"verdict": "allow"})
            return

        if self.config.global_traversal_state:
            # iptables-style: traversal state is global, so the walk
            # must run with "interrupts disabled" (counted, not real).
            # The push/pop pair brackets the whole slow path in
            # try/finally: a DROP (PFDenied) or a mid-walk error must
            # not leak an entry in the shared stack.
            self.stats.irq_disables += 1
            self._shared_traversal.append(operation)
            try:
                return self._mediate_slow(operation, trace, metrics, metered)
            finally:
                self._shared_traversal.pop()
        return self._mediate_slow(operation, trace, metrics, metered)

    def mediate_batch(self, operations):
        """Mediate a sequence of operations; returns per-record verdicts.

        The batched single-worker fast path used by the parallel replay
        driver (:mod:`repro.parallel.batch`).  The contract is strict:
        calling this must be *observably identical* to the per-call
        loop — ``mediate(op)`` catching :class:`~repro.errors.PFDenied`
        for each record — in verdicts, :class:`EngineStats`, audit
        records, metrics, and every cache the engine maintains.  The
        returned list holds ``"allow"`` or ``"drop"`` per record, in
        order; nothing is raised.

        Amortization applies only to **runs**: maximal stretches of
        consecutive records sharing ``(op kind, subject process)`` in
        which no record's syscall mutates VFS or adversary state
        (:func:`record_mutates`).  Two run shapes skip the per-record
        engine prologue:

        - *fast-path runs* — no installed chain is relevant to the op
          kind, so one chain-memo probe proves the default allow for
          the whole run;
        - *decision-cached runs* — the subject's negative-decision
          cache already holds an unconditional (subject-keyed) allow
          for ``(op, subject label)`` under the current rule-base
          stamp, so one probe covers the run.

        Runs that miss both probes still amortize per **syscall-seq
        group** (records emitted by one syscall invocation): the first
        record of each group is mediated per-call — the one
        context-collection prologue — and when that mediation resolves
        to a decision-cache hit, the group's remaining records are
        proven to repeat it exactly (same subject, same stack, same
        per-seq context-cache frame), so their counters are applied
        without re-running the prologue
        (:meth:`_mediate_run_cached`).  Everything else — traced or
        metered mediations, the global-traversal ablation,
        configurations without entrypoint chains or the context cache,
        and every mutating record — falls back to ``mediate()`` record
        by record (see ``docs/INTERNALS.md`` "Batched mediation" for
        the invalidation rules).
        """
        verdicts = []
        config = self.config
        if not config.enabled:
            # mediate() is a no-op when the engine is disabled.
            return ["allow"] * len(operations)
        batchable = (
            self.tracer is None
            and not self.metrics.enabled
            and not config.global_traversal_state
            and config.entrypoint_chains
        )
        stats = self.stats
        n = len(operations)
        i = 0
        while i < n:
            operation = operations[i]
            if batchable and not record_mutates(operation):
                kind = operation.op
                proc = operation.proc
                j = i + 1
                while (
                    j < n
                    and operations[j].op is kind
                    and operations[j].proc is proc
                    and not record_mutates(operations[j])
                ):
                    j += 1
                k = j - i
                if k >= 2:
                    if not self._relevant_chains(kind):
                        # One op-index probe proves the whole run.
                        stats.invocations += k
                        stats.accepts += k
                        verdicts.extend(["allow"] * k)
                        i = j
                        continue
                    if config.decision_cache and proc is not None:
                        dentries = proc.pf.decision_probe(self.rules.stamp)
                        if (
                            dentries is not None
                            and dentries.get((kind, proc.label)) is True
                        ):
                            # One cache probe proves the whole run.
                            stats.invocations += k
                            stats.decision_cache_hits += k
                            stats.accepts += k
                            verdicts.extend(["allow"] * k)
                            i = j
                            continue
                        if config.context_cache:
                            self._mediate_run_cached(operations, i, j, verdicts)
                            i = j
                            continue
            try:
                self.mediate(operation)
            except errors.PFDenied:
                verdicts.append("drop")
            else:
                verdicts.append("allow")
            i += 1
        return verdicts

    def _mediate_run_cached(self, operations, start, end, verdicts):
        """Mediate one non-mutating run, amortizing decision-cache hits.

        Called by :meth:`mediate_batch` for a run (same op kind, same
        subject, no mutating syscalls) under a decision-cache +
        context-cache configuration.  The run is processed in
        **syscall-seq groups**: records sharing ``syscall_seq`` were
        emitted by the same syscall invocation, so between them the
        subject's stack, label, and per-seq context-cache frame cannot
        change.  The group's first record runs through ``mediate()``
        untouched; if exactly one decision-cache hit resulted and the
        cache entry for ``(op, label)`` is still present under the
        current stamp, every remaining record in the group would
        retrace that hit verbatim, so its counters are applied
        directly:

        - subject-keyed entry (``True``): probe, hit, allow — no frame;
        - entrypoint-keyed entry (head set): frame rebuilt from the
          per-seq context cache (one absorbed ``ENTRYPOINT`` read →
          ``cache_hits``), same head, same membership, allow.

        Any other outcome — a drop, a full walk, a stale cache — keeps
        mediating per-call, so behavior stays byte-identical to the
        per-call loop (pinned by the batch differential suite).
        """
        stats = self.stats
        idx = start
        while idx < end:
            operation = operations[idx]
            seq = operation.extra.get("syscall_seq")
            group_end = idx + 1
            if seq is not None:
                while (
                    group_end < end
                    and operations[group_end].extra.get("syscall_seq") == seq
                ):
                    group_end += 1
            hits_before = stats.decision_cache_hits
            try:
                self.mediate(operation)
            except errors.PFDenied:
                verdicts.append("drop")
                idx += 1
                continue
            verdicts.append("allow")
            idx += 1
            rest = group_end - idx
            if rest <= 0 or stats.decision_cache_hits != hits_before + 1:
                continue
            proc = operation.proc
            dentries = proc.pf.decision_probe(self.rules.stamp)
            if dentries is None:
                continue
            known = dentries.get((operation.op, proc.label))
            if known is True:
                stats.invocations += rest
                stats.decision_cache_hits += rest
                stats.accepts += rest
                verdicts.extend(["allow"] * rest)
                idx = group_end
            elif isinstance(known, (set, frozenset)):
                stats.invocations += rest
                stats.cache_hits += rest
                stats.decision_cache_hits += rest
                stats.accepts += rest
                verdicts.extend(["allow"] * rest)
                idx = group_end

    def _mediate_slow(self, operation, trace, metrics, metered):
        """Post-fast-path mediation: cache probe, context, walk, verdict.

        Factored out of :meth:`mediate` so the shared-traversal push of
        the ``global_traversal_state`` ablation brackets every exit —
        including the ``PFDenied`` raise — with its balancing pop.
        """
        frame = None
        proc = operation.proc
        seq = operation.extra.get("syscall_seq")

        # Negative-decision cache probe: a previous traversal of the
        # same (op, subject label[, entrypoint head]) under this exact
        # rule base proved the default-allow verdict depends on nothing
        # else — skip the walk entirely.  An entrypoint-independent hit
        # needs no context frame at all; an entrypoint-keyed one only
        # needs the (per-syscall-cached) stack unwind.
        dkey = stamp = None
        if self.config.decision_cache and proc is not None:
            probe_started = perf_counter() if metered else 0.0
            if trace is not None:
                trace.enter_stage(STAGE_DECISION_CACHE)
            stamp = self.rules.stamp
            dkey = (operation.op, proc.label)
            # A stale or absent cache is not rebuilt here: allocation
            # waits for the first recordable verdict, so uncacheable
            # workloads (and short-lived forks) pay only this probe.
            # The probe view may be fork-shared — reads only; the
            # memoization below goes through decision_writable().
            dentries = proc.pf.decision_probe(stamp)
            if dentries is not None:
                known = dentries.get(dkey)
                if known is not None:
                    if known is True:
                        self.stats.decision_cache_hits += 1
                        self.stats.accepts += 1
                        if trace is not None:
                            trace.decision_cache = "hit"
                            trace.finish("ALLOW")
                        if metered:
                            metrics.observe_phase(
                                PHASE_CACHE_PROBE, perf_counter() - probe_started
                            )
                            metrics.inc("pf_decision_cache_total", {"result": "hit"})
                            metrics.inc("pf_verdicts_total", {"verdict": "allow"})
                        return
                    frame = self._new_frame(proc, seq, trace)
                    entries = self.ensure(ContextField.ENTRYPOINT, operation, frame)
                    if (entries[0] if entries else None) in known:
                        self.stats.decision_cache_hits += 1
                        self.stats.accepts += 1
                        if trace is not None:
                            trace.decision_cache = "hit-entrypoint"
                            trace.finish("ALLOW")
                        if metered:
                            metrics.observe_phase(
                                PHASE_CACHE_PROBE, perf_counter() - probe_started
                            )
                            metrics.inc("pf_decision_cache_total", {"result": "hit"})
                            metrics.inc("pf_verdicts_total", {"verdict": "allow"})
                        self._writeback_context(proc, seq, frame)
                        return
            if trace is not None:
                trace.decision_cache = "miss"
            if metered:
                metrics.observe_phase(PHASE_CACHE_PROBE, perf_counter() - probe_started)
                metrics.inc("pf_decision_cache_total", {"result": "miss"})

        if frame is None:
            frame = self._new_frame(proc, seq, trace)

        if not self.config.lazy_context:
            # Eager collection of every field any installed rule uses.
            needed = self.rules.required_fields
            for field in ContextField:
                if needed & field:
                    if frame.has(field):
                        bits = field.value
                        if frame.cached_mask & bits:
                            # The cache saved this eager collection.
                            frame.cached_mask &= ~bits
                            self.stats.cache_hits += 1
                            if trace is not None:
                                trace.note_field(field.name, FIELD_CACHED)
                        continue
                    if trace is not None:
                        trace.note_field(field.name, FIELD_COLLECTED)
                    try:
                        if metered:
                            started = perf_counter()
                            try:
                                collect_field(field, operation, self.kernel, frame, self.stats)
                            finally:
                                metrics.observe_phase(PHASE_CONTEXT, perf_counter() - started)
                                metrics.inc(
                                    "pf_context_collections_total", {"field": field.name}
                                )
                        else:
                            collect_field(field, operation, self.kernel, frame, self.stats)
                    except errors.EFAULT:
                        frame.put(field, None)

        walk_started = perf_counter() if metered else 0.0
        try:
            config = self.config
            if trace is None and not metered:
                if config.table_dispatch:
                    # TABLED: ahead-of-time flat decision tables, with
                    # per-row JITTED fallback for dynamic predicates.
                    verdict, rule = self.table_program().traverse(operation, frame)
                elif config.jit_codegen:
                    # JITTED: flat generated decision functions.
                    verdict, rule = self.jit_program().traverse(operation, frame)
                else:
                    verdict, rule = self._traverse(operation, frame)
            else:
                # Traced or metered mediations take the interpreted
                # walker, where per-rule trace records and phase timers
                # live.  Every compiled rung bypasses identically here,
                # so instrumented runs never drift between presets.
                if metered and config.table_dispatch:
                    metrics.inc("pf_tables_total", {"result": "bypass"})
                verdict, rule = self._traverse(operation, frame)
        finally:
            if metered:
                metrics.observe_phase(PHASE_CHAIN_WALK, perf_counter() - walk_started)
            self._writeback_context(proc, seq, frame)

        if verdict == tg.DROP:
            self.stats.drops += 1
            if trace is not None:
                trace.finish("DROP", rule)
            if metered:
                metrics.inc("pf_verdicts_total", {"verdict": "drop"})
            self.audit.emit(
                {
                    "time": self.kernel.clock.now() if self.kernel else 0,
                    "pid": proc.pid if proc is not None else None,
                    "comm": proc.comm if proc is not None else None,
                    "op": operation.op.value,
                    "syscall": operation.syscall,
                    "path": operation.path,
                    "rule": rule.text,
                },
                severity=WARNING,
                kind="drop",
            )
            raise errors.PFDenied("rule matched: {}".format(rule.text), rule=rule)
        self.stats.accepts += 1
        if trace is not None:
            trace.finish("ALLOW")
        if metered:
            metrics.inc("pf_verdicts_total", {"verdict": "allow"})

        if (
            dkey is not None
            and verdict == tg.CONTINUE
            and not frame.rule_matched
            and not frame.decision_unsafe
        ):
            # Clean default allow: no rule matched, nothing resource-
            # or call-dependent was consulted.  Memoize, keyed on the
            # entrypoint head only when the traversal looked at it.
            # decision_writable() allocates on the first recordable
            # verdict under this stamp and breaks any fork share, so
            # the mutation below never leaks into a relative.
            wentries = proc.pf.decision_writable(stamp)
            if frame.used_entrypoint:
                entries = frame.get(ContextField.ENTRYPOINT)
                head = entries[0] if entries else None
                known = wentries.get(dkey)
                if known is None:
                    wentries[dkey] = {head}
                elif known is not True and len(known) < 1024:
                    known.add(head)
            else:
                wentries[dkey] = True

    def _new_frame(self, proc, seq, trace=None):
        """Fresh context frame, pre-seeded from the per-process cache."""
        frame = ContextFrame()
        frame.trace = trace
        if self.config.context_cache and seq is not None and proc is not None:
            cache = proc.pf.context_cache
            if cache is not None and cache[0] == seq:
                frame.absorb_cached(cache[1])
        return frame

    def _writeback_context(self, proc, seq, frame):
        """Refresh the per-process context cache after a mediation."""
        if (
            self.config.context_cache
            and seq is not None
            and proc is not None
            and frame.scoped_dirty
        ):
            # Replace-on-write: fork relatives may hold the old tuple,
            # which stays valid for them (their seq can never collide —
            # the kernel's syscall seq is monotonic).
            proc.pf.context_cache = (seq, frame.syscall_scoped_values())

    def _chains_for(self, op):
        """Built-in chain names a given operation is routed through."""
        if op is Op.SYSCALL_BEGIN:
            return ("syscallbegin",)
        if op is Op.FILE_CREATE:
            return ("create", "input")
        return ("input",)

    def _relevant_chains(self, op):
        """Top-level chains that could match ``op`` (op-index skip).

        Memoized per rule-base version: the result only changes when
        rules are installed or removed.
        """
        stamp = self.rules.stamp
        if self._chain_memo_stamp != stamp:
            self._chain_memo = {}
            self._chain_memo_stamp = stamp
        cached = self._chain_memo.get(op)
        if cached is not None:
            return cached
        out = []
        for table_name in ("mangle", "filter"):
            table = self.rules.tables[table_name]
            for chain_name in self._chains_for(op):
                chain = table.chains.get(chain_name)
                if chain is None or not len(chain):
                    continue
                ops = chain.relevant_ops
                if ops is not None and op not in ops:
                    if not (op is Op.LINK_READ and Op.LNK_FILE_READ in ops):
                        continue
                out.append(chain)
        self._chain_memo[op] = out
        return out

    def _traverse(self, operation, frame):
        """Walk mangle first (marking), then filter (verdicts).

        The mangle table mirrors iptables' mark-then-filter idiom: its
        rules annotate (``STATE``/``LOG``) and may ``ACCEPT`` to skip
        further mangle rules, but cannot ``DROP`` — verdicts belong to
        the filter table (enforced at install time).
        """
        proc = operation.proc
        metered = self.metrics.enabled
        for table_name in ("mangle", "filter"):
            table = self.rules.tables[table_name]
            for chain_name in self._chains_for(operation.op):
                chain = table.chains.get(chain_name)
                if chain is None or not len(chain):
                    continue
                if (
                    self.config.entrypoint_chains
                    and chain.relevant_ops is not None
                    and operation.op not in chain.relevant_ops
                    and not (operation.op is Op.LINK_READ and Op.LNK_FILE_READ in chain.relevant_ops)
                ):
                    continue
                if metered:
                    self.metrics.inc(
                        "pf_chain_traversals_total",
                        {"table": table_name, "chain": chain_name},
                    )
                if proc is not None:
                    proc.pf_traversal.append(chain_name)
                try:
                    verdict, rule = self._walk_chain(table, chain, operation, frame, depth=0)
                finally:
                    if proc is not None:
                        proc.pf_traversal.pop()
                if verdict == tg.DROP:
                    return verdict, rule
                if verdict == tg.ACCEPT:
                    if table_name == "filter":
                        return verdict, rule
                    break  # mangle ACCEPT: stop mangle, proceed to filter
        return (tg.CONTINUE, None)

    def _walk_chain(self, table, chain, operation, frame, depth):
        """Evaluate one chain (and any user-chain jumps) for an operation."""
        if depth > MAX_CHAIN_DEPTH:
            raise errors.EINVAL("chain jump depth exceeded in {!r}".format(chain.name))

        op = operation.op
        prefiltered = False
        if self.config.entrypoint_chains:
            if self.config.compiled_dispatch:
                # COMPILED: one flat, already op-filtered tuple per
                # (op, entrypoint) shape — no merging, no per-rule op
                # compare.  The entrypoint is only resolved (a stack
                # unwind) when some bucket rule could handle this op,
                # and only keys actually installed reach dispatch(), so
                # the memo stays bounded.
                ept_key = None
                if chain.by_entrypoint:
                    ept_ops = chain.ept_ops
                    wanted = (
                        ept_ops is None
                        or op in ept_ops
                        or (op is Op.LINK_READ and Op.LNK_FILE_READ in ept_ops)
                    )
                    if wanted:
                        entries = self.ensure(ContextField.ENTRYPOINT, operation, frame)
                        if entries and entries[0] in chain.by_entrypoint:
                            ept_key = entries[0]
                sequences = (chain.dispatch(op, ept_key),)
                prefiltered = True
            else:
                # §4.3: non-entrypoint rules first (narrowed to those
                # whose -o could match), then only the bucket for the
                # current entrypoint — and only when some bucket rule
                # handles this operation at all (otherwise the stack
                # unwind is skipped).
                sequences = [chain.preamble_for(op)]
                if chain.by_entrypoint:
                    ept_ops = chain.ept_ops
                    wanted = (
                        ept_ops is None
                        or op in ept_ops
                        or (op is Op.LINK_READ and Op.LNK_FILE_READ in ept_ops)
                    )
                    if wanted:
                        entries = self.ensure(ContextField.ENTRYPOINT, operation, frame)
                        if entries:
                            bucket = chain.by_entrypoint.get(entries[0])
                            if bucket:
                                sequences.append(bucket)
        else:
            sequences = [chain.rules]

        trace = frame.trace
        visit = trace.begin_chain(table.name, chain.name) if trace is not None else None
        metrics = self.metrics
        metered = metrics.enabled

        for sequence in sequences:
            for rule in sequence:
                self.stats.rules_evaluated += 1
                if metered:
                    metrics.inc(
                        "pf_rules_evaluated_total",
                        {"table": table.name, "chain": chain.name},
                    )
                if not prefiltered:
                    rule_op = rule.op
                    if rule_op is not None and rule_op is not op:
                        # Inline header compare, before any method
                        # dispatch (the LNK_FILE_READ/LINK_READ alias is
                        # normalized at parse time; only the raw-enum
                        # alias remains).
                        if not (op is Op.LINK_READ and rule_op is Op.LNK_FILE_READ):
                            if visit is not None:
                                visit.rules.append(RuleEval(
                                    rule.text, "miss",
                                    failed_match="-o {}".format(rule_op.value),
                                ))
                            continue
                if visit is None:
                    if not self._rule_matches(rule, operation, frame):
                        continue
                else:
                    failed = self._first_failing_match(rule, operation, frame)
                    if failed is not None:
                        visit.rules.append(RuleEval(
                            rule.text, "miss", failed_match=failed.render()
                        ))
                        continue
                rule.hits += 1
                frame.rule_matched = True
                if metered:
                    metrics.inc(
                        "pf_rule_hits_total",
                        {"table": table.name, "chain": chain.name, "rule": rule.text},
                    )
                verdict, arg = rule.target.execute(self, operation, frame)
                if visit is not None:
                    visit.rules.append(RuleEval(
                        rule.text, "matched",
                        target=rule.target.render(), verdict=verdict,
                    ))
                if verdict in (tg.DROP, tg.ACCEPT):
                    if metered and verdict == tg.DROP:
                        metrics.inc(
                            "pf_rule_drops_total",
                            {"table": table.name, "chain": chain.name, "rule": rule.text},
                        )
                    return (verdict, rule)
                if verdict == tg.RETURN:
                    return (tg.CONTINUE, None)
                if verdict == tg.JUMP:
                    sub = table.chain(arg, create=True)
                    sub_verdict, sub_rule = self._walk_chain(table, sub, operation, frame, depth + 1)
                    if sub_verdict in (tg.DROP, tg.ACCEPT):
                        return (sub_verdict, sub_rule)
                # CONTINUE: fall through to the next rule.
        return (tg.CONTINUE, None)

    def _rule_matches(self, rule, operation, frame):
        """Whether every match module of ``rule`` accepts the operation."""
        for match in rule.matches:
            if not match.matches(self, operation, frame):
                return False
        return True

    def _first_failing_match(self, rule, operation, frame):
        """Traced twin of :meth:`_rule_matches`.

        Evaluates the same predicates in the same order with the same
        early exit, but returns the first *failing* match module (or
        ``None`` on a full match) so traces can name the predicate
        that killed each miss.
        """
        for match in rule.matches:
            if not match.matches(self, operation, frame):
                return match
        return None
