"""The Process Firewall engine: the rule-processing loop of Figure 3.

Invoked by the kernel after DAC + MAC authorization for every mediated
operation.  The engine builds its "packet" on demand from context
modules, walks the applicable chains, and raises
:class:`repro.errors.PFDenied` when a ``DROP`` rule matches.  The
default verdict is allow (§4.1: deny-only rules + default allow).

Engine optimizations are individually switchable so Table 6's columns
are directly expressible:

====================  ==========================================
Column                :class:`EngineConfig` preset
====================  ==========================================
DISABLED              ``EngineConfig.disabled()``
BASE / FULL           ``EngineConfig.unoptimized()``
CONCACHE              ``EngineConfig.concache()``
LAZYCON               ``EngineConfig.lazycon()``
EPTSPC                ``EngineConfig.optimized()`` (the default)
COMPILED              ``EngineConfig.compiled()``
====================  ==========================================

(BASE vs FULL differ by rule-base size, not engine configuration.)

The COMPILED rung extends the paper's ladder: chains pre-compile flat
per-``(op, entrypoint)`` dispatch tuples at first use (invalidated on
every rule mutation), and a per-process **negative-decision cache**
memoizes default-allow verdicts whose traversal consulted nothing
resource- or call-dependent — see ``docs/INTERNALS.md``.
"""

from __future__ import annotations

from typing import Dict

from repro import errors
from repro.firewall import targets as tg
from repro.firewall.context import _DECISION_STABLE_INT, ContextField, ContextFrame
from repro.firewall.modules.registry import collect_field
from repro.firewall.rule import RuleBase, _op_accepts
from repro.security.lsm import Op

#: Maximum user-chain jump depth, like iptables' traversal limits.
MAX_CHAIN_DEPTH = 16


class EngineConfig:
    """Feature switches for the engine optimizations (paper §4.2-4.3)."""

    __slots__ = (
        "enabled",
        "context_cache",
        "lazy_context",
        "entrypoint_chains",
        "compiled_dispatch",
        "decision_cache",
        "global_traversal_state",
    )

    def __init__(
        self,
        enabled=True,
        context_cache=True,
        lazy_context=True,
        entrypoint_chains=True,
        compiled_dispatch=False,
        decision_cache=False,
        global_traversal_state=False,
    ):
        self.enabled = enabled
        self.context_cache = context_cache
        self.lazy_context = lazy_context
        self.entrypoint_chains = entrypoint_chains
        #: Walk precompiled per-(op, entrypoint) dispatch tuples
        #: instead of re-filtering/merging rule lists per mediation.
        self.compiled_dispatch = compiled_dispatch
        #: Memoize default-allow verdicts per process for traversals
        #: that touched no resource- or call-dependent context.
        self.decision_cache = decision_cache
        #: Ablation: emulate iptables' global traversal state, which
        #: requires disabling preemption/interrupts per invocation
        #: (counted in ``stats.irq_disables``) instead of the paper's
        #: per-process state (§5.1).
        self.global_traversal_state = global_traversal_state

    # ---- Table 6 column presets ----

    @classmethod
    def disabled(cls):
        return cls(enabled=False)

    @classmethod
    def unoptimized(cls):
        """FULL: every optimization off — eager context, linear scan."""
        return cls(context_cache=False, lazy_context=False, entrypoint_chains=False)

    @classmethod
    def concache(cls):
        """FULL + context caching."""
        return cls(context_cache=True, lazy_context=False, entrypoint_chains=False)

    @classmethod
    def lazycon(cls):
        """CONCACHE + lazy context retrieval."""
        return cls(context_cache=True, lazy_context=True, entrypoint_chains=False)

    @classmethod
    def optimized(cls):
        """EPTSPC: all paper optimizations (the shipping default)."""
        return cls()

    @classmethod
    def compiled(cls):
        """COMPILED: EPTSPC + compiled dispatch + decision cache."""
        return cls(compiled_dispatch=True, decision_cache=True)

    def clone(self, **overrides):
        values = {name: getattr(self, name) for name in self.__slots__}
        values.update(overrides)
        return EngineConfig(**values)


class EngineStats:
    """Counters exposed to the benchmark harness."""

    def __init__(self):
        self.invocations = 0
        self.rules_evaluated = 0
        self.drops = 0
        self.accepts = 0
        self.context_collections = {}  # type: Dict[str, int]
        self.context_cost = 0
        #: Context-collection work actually avoided by the per-process
        #: context cache: counted at lookup time, the first time a rule
        #: (or the eager collector) reads an absorbed field — never for
        #: fields the cache carried but nothing consulted.
        self.cache_hits = 0
        #: Whole traversals short-circuited by the negative-decision
        #: cache (COMPILED configurations only).
        self.decision_cache_hits = 0
        self.irq_disables = 0

    def reset(self):
        self.__init__()


class ProcessFirewall:
    """The firewall proper: rule base + engine + statistics."""

    def __init__(self, config=None):
        self.config = config or EngineConfig.optimized()
        self.rules = RuleBase()
        self.kernel = None  # set by Kernel.attach_firewall
        self.stats = EngineStats()
        self.log_records = []
        #: Shared traversal stack used only in the iptables-emulation
        #: ablation (global_traversal_state).
        self._shared_traversal = []
        #: Memo of relevant top-level chains per op, keyed by rule-base
        #: stamp (hot-path optimization for the op-index skip).  The
        #: stamp, not the bare version, so an atomically swapped rule
        #: base (persist restore) can never alias a stale memo.
        self._chain_memo = {}
        self._chain_memo_stamp = None

    # ------------------------------------------------------------------
    # policy plumbing
    # ------------------------------------------------------------------

    def tcb_subjects(self):
        policy = self.kernel.adversaries.policy if self.kernel else None
        return policy.tcb_subjects if policy is not None else frozenset()

    def tcb_objects(self):
        policy = self.kernel.adversaries.policy if self.kernel else None
        return policy.tcb_objects if policy is not None else frozenset()

    def install(self, rule_text):
        """Install one ``pftables`` rule line (convenience wrapper)."""
        from repro.firewall.pftables import pftables

        return pftables(self, rule_text)

    def install_all(self, rule_texts):
        return [self.install(text) for text in rule_texts]

    def flush(self):
        self.rules = RuleBase()
        self.stats.reset()
        self.log_records = []

    # ------------------------------------------------------------------
    # context retrieval (lazy, bitmask-guarded — §4.2)
    # ------------------------------------------------------------------

    def ensure(self, field, operation, frame):
        """Return the context value, collecting it if not yet present.

        A context module hitting malformed process memory (EFAULT)
        yields ``None`` rather than failing the mediation — paper §4.4:
        the engine "aborts evaluation of malformed context without
        itself exiting or functioning incorrectly", at the cost of the
        malformed process's own protection.

        Every lookup also feeds two kinds of bookkeeping: a field that
        is not decision-stable poisons the negative-decision cache for
        this traversal, and the first read of a field absorbed from the
        per-process context cache counts one ``cache_hits`` (the
        collection the cache actually avoided).
        """
        bits = field.value
        if bits & _DECISION_STABLE_INT:
            if field is ContextField.ENTRYPOINT:
                frame.used_entrypoint = True
        else:
            frame.decision_unsafe = True
        if frame.mask & bits:
            if frame.cached_mask & bits:
                frame.cached_mask &= ~bits
                self.stats.cache_hits += 1
            return frame.get(field)
        try:
            return collect_field(field, operation, self.kernel, frame, self.stats)
        except errors.EFAULT:
            frame.put(field, None)
            return None

    # ------------------------------------------------------------------
    # the main loop (Figure 3)
    # ------------------------------------------------------------------

    def mediate(self, operation):
        """Evaluate the rule base; raise :class:`PFDenied` on DROP."""
        if not self.config.enabled:
            return
        self.stats.invocations += 1

        if self.config.entrypoint_chains and not self._relevant_chains(operation.op):
            # Fast path: no installed chain can match this operation.
            # Safe because the base is deny-only with default allow —
            # skipping non-matching rules cannot change the verdict.
            self.stats.accepts += 1
            return

        if self.config.global_traversal_state:
            # iptables-style: traversal state is global, so the walk
            # must run with "interrupts disabled" (counted, not real).
            self.stats.irq_disables += 1
            self._shared_traversal.append(operation)

        frame = None
        proc = operation.proc
        seq = operation.extra.get("syscall_seq")

        # Negative-decision cache probe: a previous traversal of the
        # same (op, subject label[, entrypoint head]) under this exact
        # rule base proved the default-allow verdict depends on nothing
        # else — skip the walk entirely.  An entrypoint-independent hit
        # needs no context frame at all; an entrypoint-keyed one only
        # needs the (per-syscall-cached) stack unwind.
        dentries = dkey = stamp = None
        if self.config.decision_cache and proc is not None:
            stamp = self.rules.stamp
            dcache = proc.pf_decision_cache
            dkey = (operation.op, proc.label)
            # A stale or absent cache is not rebuilt here: allocation
            # waits for the first recordable verdict, so uncacheable
            # workloads (and short-lived forks) pay only this probe.
            if dcache is not None and dcache[0] is stamp:
                dentries = dcache[1]
                known = dentries.get(dkey)
                if known is not None:
                    if known is True:
                        self.stats.decision_cache_hits += 1
                        self.stats.accepts += 1
                        if self.config.global_traversal_state:
                            self._shared_traversal.pop()
                        return
                    frame = self._new_frame(proc, seq)
                    entries = self.ensure(ContextField.ENTRYPOINT, operation, frame)
                    if (entries[0] if entries else None) in known:
                        self.stats.decision_cache_hits += 1
                        self.stats.accepts += 1
                        self._writeback_context(proc, seq, frame)
                        if self.config.global_traversal_state:
                            self._shared_traversal.pop()
                        return

        if frame is None:
            frame = self._new_frame(proc, seq)

        if not self.config.lazy_context:
            # Eager collection of every field any installed rule uses.
            needed = self.rules.required_fields
            for field in ContextField:
                if needed & field:
                    if frame.has(field):
                        bits = field.value
                        if frame.cached_mask & bits:
                            # The cache saved this eager collection.
                            frame.cached_mask &= ~bits
                            self.stats.cache_hits += 1
                        continue
                    try:
                        collect_field(field, operation, self.kernel, frame, self.stats)
                    except errors.EFAULT:
                        frame.put(field, None)

        try:
            verdict, rule = self._traverse(operation, frame)
        finally:
            self._writeback_context(proc, seq, frame)
            if self.config.global_traversal_state:
                self._shared_traversal.pop()

        if verdict == tg.DROP:
            self.stats.drops += 1
            raise errors.PFDenied("rule matched: {}".format(rule.text), rule=rule)
        self.stats.accepts += 1

        if (
            dkey is not None
            and verdict == tg.CONTINUE
            and not frame.rule_matched
            and not frame.decision_unsafe
        ):
            # Clean default allow: no rule matched, nothing resource-
            # or call-dependent was consulted.  Memoize, keyed on the
            # entrypoint head only when the traversal looked at it.
            if dentries is None:
                # First recordable verdict under this rule-base stamp:
                # (re)build the per-task cache now (also covers a STATE
                # target having nulled it mid-traversal — impossible
                # here, since a fired target sets rule_matched).
                dentries = {}
                proc.pf_decision_cache = (stamp, dentries)
            if frame.used_entrypoint:
                entries = frame.get(ContextField.ENTRYPOINT)
                head = entries[0] if entries else None
                known = dentries.get(dkey)
                if known is None:
                    dentries[dkey] = {head}
                elif known is not True and len(known) < 1024:
                    known.add(head)
            else:
                dentries[dkey] = True

    def _new_frame(self, proc, seq):
        """Fresh context frame, pre-seeded from the per-process cache."""
        frame = ContextFrame()
        if self.config.context_cache and seq is not None and proc is not None:
            cache = proc.pf_context_cache
            if cache is not None and cache[0] == seq:
                frame.absorb_cached(cache[1])
        return frame

    def _writeback_context(self, proc, seq, frame):
        """Refresh the per-process context cache after a mediation."""
        if (
            self.config.context_cache
            and seq is not None
            and proc is not None
            and frame.scoped_dirty
        ):
            proc.pf_context_cache = (seq, frame.syscall_scoped_values())

    def _chains_for(self, op):
        if op is Op.SYSCALL_BEGIN:
            return ("syscallbegin",)
        if op is Op.FILE_CREATE:
            return ("create", "input")
        return ("input",)

    def _relevant_chains(self, op):
        """Top-level chains that could match ``op`` (op-index skip).

        Memoized per rule-base version: the result only changes when
        rules are installed or removed.
        """
        stamp = self.rules.stamp
        if self._chain_memo_stamp != stamp:
            self._chain_memo = {}
            self._chain_memo_stamp = stamp
        cached = self._chain_memo.get(op)
        if cached is not None:
            return cached
        out = []
        for table_name in ("mangle", "filter"):
            table = self.rules.tables[table_name]
            for chain_name in self._chains_for(op):
                chain = table.chains.get(chain_name)
                if chain is None or not len(chain):
                    continue
                ops = chain.relevant_ops
                if ops is not None and op not in ops:
                    if not (op is Op.LINK_READ and Op.LNK_FILE_READ in ops):
                        continue
                out.append(chain)
        self._chain_memo[op] = out
        return out

    def _traverse(self, operation, frame):
        """Walk mangle first (marking), then filter (verdicts).

        The mangle table mirrors iptables' mark-then-filter idiom: its
        rules annotate (``STATE``/``LOG``) and may ``ACCEPT`` to skip
        further mangle rules, but cannot ``DROP`` — verdicts belong to
        the filter table (enforced at install time).
        """
        proc = operation.proc
        for table_name in ("mangle", "filter"):
            table = self.rules.tables[table_name]
            for chain_name in self._chains_for(operation.op):
                chain = table.chains.get(chain_name)
                if chain is None or not len(chain):
                    continue
                if (
                    self.config.entrypoint_chains
                    and chain.relevant_ops is not None
                    and operation.op not in chain.relevant_ops
                    and not (operation.op is Op.LINK_READ and Op.LNK_FILE_READ in chain.relevant_ops)
                ):
                    continue
                if proc is not None:
                    proc.pf_traversal.append(chain_name)
                try:
                    verdict, rule = self._walk_chain(table, chain, operation, frame, depth=0)
                finally:
                    if proc is not None:
                        proc.pf_traversal.pop()
                if verdict == tg.DROP:
                    return verdict, rule
                if verdict == tg.ACCEPT:
                    if table_name == "filter":
                        return verdict, rule
                    break  # mangle ACCEPT: stop mangle, proceed to filter
        return (tg.CONTINUE, None)

    def _walk_chain(self, table, chain, operation, frame, depth):
        if depth > MAX_CHAIN_DEPTH:
            raise errors.EINVAL("chain jump depth exceeded in {!r}".format(chain.name))

        op = operation.op
        prefiltered = False
        if self.config.entrypoint_chains:
            if self.config.compiled_dispatch:
                # COMPILED: one flat, already op-filtered tuple per
                # (op, entrypoint) shape — no merging, no per-rule op
                # compare.  The entrypoint is only resolved (a stack
                # unwind) when some bucket rule could handle this op,
                # and only keys actually installed reach dispatch(), so
                # the memo stays bounded.
                ept_key = None
                if chain.by_entrypoint:
                    ept_ops = chain.ept_ops
                    wanted = (
                        ept_ops is None
                        or op in ept_ops
                        or (op is Op.LINK_READ and Op.LNK_FILE_READ in ept_ops)
                    )
                    if wanted:
                        entries = self.ensure(ContextField.ENTRYPOINT, operation, frame)
                        if entries and entries[0] in chain.by_entrypoint:
                            ept_key = entries[0]
                sequences = (chain.dispatch(op, ept_key),)
                prefiltered = True
            else:
                # §4.3: non-entrypoint rules first (narrowed to those
                # whose -o could match), then only the bucket for the
                # current entrypoint — and only when some bucket rule
                # handles this operation at all (otherwise the stack
                # unwind is skipped).
                sequences = [chain.preamble_for(op)]
                if chain.by_entrypoint:
                    ept_ops = chain.ept_ops
                    wanted = (
                        ept_ops is None
                        or op in ept_ops
                        or (op is Op.LINK_READ and Op.LNK_FILE_READ in ept_ops)
                    )
                    if wanted:
                        entries = self.ensure(ContextField.ENTRYPOINT, operation, frame)
                        if entries:
                            bucket = chain.by_entrypoint.get(entries[0])
                            if bucket:
                                sequences.append(bucket)
        else:
            sequences = [chain.rules]

        for sequence in sequences:
            for rule in sequence:
                self.stats.rules_evaluated += 1
                if not prefiltered:
                    rule_op = rule.op
                    if rule_op is not None and rule_op is not op:
                        # Inline header compare, before any method
                        # dispatch (the LNK_FILE_READ/LINK_READ alias is
                        # normalized at parse time; only the raw-enum
                        # alias remains).
                        if not (op is Op.LINK_READ and rule_op is Op.LNK_FILE_READ):
                            continue
                if not self._rule_matches(rule, operation, frame):
                    continue
                rule.hits += 1
                frame.rule_matched = True
                verdict, arg = rule.target.execute(self, operation, frame)
                if verdict in (tg.DROP, tg.ACCEPT):
                    return (verdict, rule)
                if verdict == tg.RETURN:
                    return (tg.CONTINUE, None)
                if verdict == tg.JUMP:
                    sub = table.chain(arg, create=True)
                    sub_verdict, sub_rule = self._walk_chain(table, sub, operation, frame, depth + 1)
                    if sub_verdict in (tg.DROP, tg.ACCEPT):
                        return (sub_verdict, sub_rule)
                # CONTINUE: fall through to the next rule.
        return (tg.CONTINUE, None)

    def _rule_matches(self, rule, operation, frame):
        for match in rule.matches:
            if not match.matches(self, operation, frame):
                return False
        return True
