"""The Process Firewall engine: the rule-processing loop of Figure 3.

Invoked by the kernel after DAC + MAC authorization for every mediated
operation.  The engine builds its "packet" on demand from context
modules, walks the applicable chains, and raises
:class:`repro.errors.PFDenied` when a ``DROP`` rule matches.  The
default verdict is allow (§4.1: deny-only rules + default allow).

Engine optimizations are individually switchable so Table 6's columns
are directly expressible:

====================  ==========================================
Column                :class:`EngineConfig` preset
====================  ==========================================
DISABLED              ``EngineConfig.disabled()``
BASE / FULL           ``EngineConfig.unoptimized()``
CONCACHE              ``EngineConfig.concache()``
LAZYCON               ``EngineConfig.lazycon()``
EPTSPC                ``EngineConfig.optimized()`` (the default)
====================  ==========================================

(BASE vs FULL differ by rule-base size, not engine configuration.)
"""

from __future__ import annotations

from typing import Dict

from repro import errors
from repro.firewall import targets as tg
from repro.firewall.context import ContextField, ContextFrame
from repro.firewall.modules.registry import collect_field
from repro.firewall.rule import RuleBase
from repro.security.lsm import Op

#: Maximum user-chain jump depth, like iptables' traversal limits.
MAX_CHAIN_DEPTH = 16


class EngineConfig:
    """Feature switches for the engine optimizations (paper §4.2-4.3)."""

    __slots__ = ("enabled", "context_cache", "lazy_context", "entrypoint_chains", "global_traversal_state")

    def __init__(
        self,
        enabled=True,
        context_cache=True,
        lazy_context=True,
        entrypoint_chains=True,
        global_traversal_state=False,
    ):
        self.enabled = enabled
        self.context_cache = context_cache
        self.lazy_context = lazy_context
        self.entrypoint_chains = entrypoint_chains
        #: Ablation: emulate iptables' global traversal state, which
        #: requires disabling preemption/interrupts per invocation
        #: (counted in ``stats.irq_disables``) instead of the paper's
        #: per-process state (§5.1).
        self.global_traversal_state = global_traversal_state

    # ---- Table 6 column presets ----

    @classmethod
    def disabled(cls):
        return cls(enabled=False)

    @classmethod
    def unoptimized(cls):
        """FULL: every optimization off — eager context, linear scan."""
        return cls(context_cache=False, lazy_context=False, entrypoint_chains=False)

    @classmethod
    def concache(cls):
        """FULL + context caching."""
        return cls(context_cache=True, lazy_context=False, entrypoint_chains=False)

    @classmethod
    def lazycon(cls):
        """CONCACHE + lazy context retrieval."""
        return cls(context_cache=True, lazy_context=True, entrypoint_chains=False)

    @classmethod
    def optimized(cls):
        """EPTSPC: all optimizations (the shipping default)."""
        return cls()

    def clone(self, **overrides):
        values = {name: getattr(self, name) for name in self.__slots__}
        values.update(overrides)
        return EngineConfig(**values)


class EngineStats:
    """Counters exposed to the benchmark harness."""

    def __init__(self):
        self.invocations = 0
        self.rules_evaluated = 0
        self.drops = 0
        self.accepts = 0
        self.context_collections = {}  # type: Dict[str, int]
        self.context_cost = 0
        self.cache_hits = 0
        self.irq_disables = 0

    def reset(self):
        self.__init__()


class ProcessFirewall:
    """The firewall proper: rule base + engine + statistics."""

    def __init__(self, config=None):
        self.config = config or EngineConfig.optimized()
        self.rules = RuleBase()
        self.kernel = None  # set by Kernel.attach_firewall
        self.stats = EngineStats()
        self.log_records = []
        #: Shared traversal stack used only in the iptables-emulation
        #: ablation (global_traversal_state).
        self._shared_traversal = []
        #: Memo of relevant top-level chains per op, keyed by rule-base
        #: version (hot-path optimization for the op-index skip).
        self._chain_memo = {}
        self._chain_memo_version = -1

    # ------------------------------------------------------------------
    # policy plumbing
    # ------------------------------------------------------------------

    def tcb_subjects(self):
        policy = self.kernel.adversaries.policy if self.kernel else None
        return policy.tcb_subjects if policy is not None else frozenset()

    def tcb_objects(self):
        policy = self.kernel.adversaries.policy if self.kernel else None
        return policy.tcb_objects if policy is not None else frozenset()

    def install(self, rule_text):
        """Install one ``pftables`` rule line (convenience wrapper)."""
        from repro.firewall.pftables import pftables

        return pftables(self, rule_text)

    def install_all(self, rule_texts):
        return [self.install(text) for text in rule_texts]

    def flush(self):
        self.rules = RuleBase()
        self.stats.reset()
        self.log_records = []

    # ------------------------------------------------------------------
    # context retrieval (lazy, bitmask-guarded — §4.2)
    # ------------------------------------------------------------------

    def ensure(self, field, operation, frame):
        """Return the context value, collecting it if not yet present.

        A context module hitting malformed process memory (EFAULT)
        yields ``None`` rather than failing the mediation — paper §4.4:
        the engine "aborts evaluation of malformed context without
        itself exiting or functioning incorrectly", at the cost of the
        malformed process's own protection.
        """
        if frame.has(field):
            return frame.get(field)
        try:
            return collect_field(field, operation, self.kernel, frame, self.stats)
        except errors.EFAULT:
            frame.put(field, None)
            return None

    # ------------------------------------------------------------------
    # the main loop (Figure 3)
    # ------------------------------------------------------------------

    def mediate(self, operation):
        """Evaluate the rule base; raise :class:`PFDenied` on DROP."""
        if not self.config.enabled:
            return
        self.stats.invocations += 1

        if self.config.entrypoint_chains and not self._relevant_chains(operation.op):
            # Fast path: no installed chain can match this operation.
            # Safe because the base is deny-only with default allow —
            # skipping non-matching rules cannot change the verdict.
            self.stats.accepts += 1
            return

        if self.config.global_traversal_state:
            # iptables-style: traversal state is global, so the walk
            # must run with "interrupts disabled" (counted, not real).
            self.stats.irq_disables += 1
            self._shared_traversal.append(operation)

        frame = ContextFrame()
        proc = operation.proc
        seq = operation.extra.get("syscall_seq")

        if self.config.context_cache and seq is not None and proc is not None:
            cache = proc.pf_context_cache
            if cache is not None and cache[0] == seq:
                frame.absorb_cached(cache[1])
                self.stats.cache_hits += len(cache[1])

        if not self.config.lazy_context:
            # Eager collection of every field any installed rule uses.
            needed = self.rules.required_fields
            for field in ContextField:
                if needed & field and not frame.has(field):
                    try:
                        collect_field(field, operation, self.kernel, frame, self.stats)
                    except errors.EFAULT:
                        frame.put(field, None)

        try:
            verdict, rule = self._traverse(operation, frame)
        finally:
            if (
                self.config.context_cache
                and seq is not None
                and proc is not None
                and frame.scoped_dirty
            ):
                proc.pf_context_cache = (seq, frame.syscall_scoped_values())
            if self.config.global_traversal_state:
                self._shared_traversal.pop()

        if verdict == tg.DROP:
            self.stats.drops += 1
            raise errors.PFDenied("rule matched: {}".format(rule.text), rule=rule)
        self.stats.accepts += 1

    def _chains_for(self, op):
        if op is Op.SYSCALL_BEGIN:
            return ("syscallbegin",)
        if op is Op.FILE_CREATE:
            return ("create", "input")
        return ("input",)

    def _relevant_chains(self, op):
        """Top-level chains that could match ``op`` (op-index skip).

        Memoized per rule-base version: the result only changes when
        rules are installed or removed.
        """
        if self._chain_memo_version != self.rules.version:
            self._chain_memo = {}
            self._chain_memo_version = self.rules.version
        cached = self._chain_memo.get(op)
        if cached is not None:
            return cached
        out = []
        for table_name in ("mangle", "filter"):
            table = self.rules.tables[table_name]
            for chain_name in self._chains_for(op):
                chain = table.chains.get(chain_name)
                if chain is None or not len(chain):
                    continue
                ops = chain.relevant_ops
                if ops is not None and op not in ops:
                    if not (op is Op.LINK_READ and Op.LNK_FILE_READ in ops):
                        continue
                out.append(chain)
        self._chain_memo[op] = out
        return out

    def _traverse(self, operation, frame):
        """Walk mangle first (marking), then filter (verdicts).

        The mangle table mirrors iptables' mark-then-filter idiom: its
        rules annotate (``STATE``/``LOG``) and may ``ACCEPT`` to skip
        further mangle rules, but cannot ``DROP`` — verdicts belong to
        the filter table (enforced at install time).
        """
        proc = operation.proc
        for table_name in ("mangle", "filter"):
            table = self.rules.tables[table_name]
            for chain_name in self._chains_for(operation.op):
                chain = table.chains.get(chain_name)
                if chain is None or not len(chain):
                    continue
                if (
                    self.config.entrypoint_chains
                    and chain.relevant_ops is not None
                    and operation.op not in chain.relevant_ops
                    and not (operation.op is Op.LINK_READ and Op.LNK_FILE_READ in chain.relevant_ops)
                ):
                    continue
                if proc is not None:
                    proc.pf_traversal.append(chain_name)
                try:
                    verdict, rule = self._walk_chain(table, chain, operation, frame, depth=0)
                finally:
                    if proc is not None:
                        proc.pf_traversal.pop()
                if verdict == tg.DROP:
                    return verdict, rule
                if verdict == tg.ACCEPT:
                    if table_name == "filter":
                        return verdict, rule
                    break  # mangle ACCEPT: stop mangle, proceed to filter
        return (tg.CONTINUE, None)

    def _walk_chain(self, table, chain, operation, frame, depth):
        if depth > MAX_CHAIN_DEPTH:
            raise errors.EINVAL("chain jump depth exceeded in {!r}".format(chain.name))

        if self.config.entrypoint_chains:
            # §4.3: non-entrypoint rules first (narrowed to those whose
            # -o could match), then only the bucket for the current
            # entrypoint — and only when some bucket rule handles this
            # operation at all (otherwise the stack unwind is skipped).
            sequences = [chain.preamble_for(operation.op)]
            if chain.by_entrypoint:
                ept_ops = chain.ept_ops
                wanted = (
                    ept_ops is None
                    or operation.op in ept_ops
                    or (operation.op is Op.LINK_READ and Op.LNK_FILE_READ in ept_ops)
                )
                if wanted:
                    entries = self.ensure(ContextField.ENTRYPOINT, operation, frame)
                    if entries:
                        bucket = chain.by_entrypoint.get(entries[0])
                        if bucket:
                            sequences.append(bucket)
        else:
            sequences = [chain.rules]

        op = operation.op
        for sequence in sequences:
            for rule in sequence:
                self.stats.rules_evaluated += 1
                rule_op = rule.op
                if rule_op is not None and rule_op is not op:
                    # Inline header compare, before any method dispatch
                    # (the LNK_FILE_READ/LINK_READ alias is normalized
                    # at parse time; only the raw-enum alias remains).
                    if not (op is Op.LINK_READ and rule_op is Op.LNK_FILE_READ):
                        continue
                if not self._rule_matches(rule, operation, frame):
                    continue
                rule.hits += 1
                verdict, arg = rule.target.execute(self, operation, frame)
                if verdict in (tg.DROP, tg.ACCEPT):
                    return (verdict, rule)
                if verdict == tg.RETURN:
                    return (tg.CONTINUE, None)
                if verdict == tg.JUMP:
                    sub = table.chain(arg, create=True)
                    sub_verdict, sub_rule = self._walk_chain(table, sub, operation, frame, depth + 1)
                    if sub_verdict in (tg.DROP, tg.ACCEPT):
                        return (sub_verdict, sub_rule)
                # CONTINUE: fall through to the next rule.
        return (tg.CONTINUE, None)

    def _rule_matches(self, rule, operation, frame):
        for match in rule.matches:
            if not match.matches(self, operation, frame):
                return False
        return True
