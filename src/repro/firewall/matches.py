"""Match modules: default matches plus the extensible ``-m`` modules.

Default matches (paper Table 3) cover the five context values a rule's
``def_match`` can name: process label (``-s``), object label (``-d``),
entrypoint (``-i`` + ``-p``), LSM operation (``-o``) and program binary
(``-p``/``-b``).  Custom modules mirror the paper's: ``STATE``,
``COMPARE``, ``SIGNAL_MATCH``, ``SYSCALL_ARGS``.
"""

from __future__ import annotations

from repro.firewall.context import ContextField
from repro.firewall.values import Value
from repro.security.lsm import Op

#: The keyword denoting the SELinux TCB set (paper §5.2).
SYSHIGH = "SYSHIGH"


class LabelSpec:
    """A label set operand: ``tmp_t``, ``{a|b}``, ``~{a|b}``, ``SYSHIGH``.

    ``SYSHIGH`` expands to the policy's TCB set at match time, so the
    same rule text works across deployments with different policies —
    the portability property §6.3 relies on.
    """

    __slots__ = ("labels", "negated", "syshigh")

    def __init__(self, labels, negated=False, syshigh=False):
        self.labels = frozenset(labels)
        self.negated = negated
        self.syshigh = syshigh

    @classmethod
    def parse(cls, text):
        """Parse ``label``, ``{a|b}``, ``~{a|b}``, ``SYSHIGH``, ``~{SYSHIGH}``."""
        negated = text.startswith("~")
        if negated:
            text = text[1:]
        if text.startswith("{") and text.endswith("}"):
            parts = [p.strip() for p in text[1:-1].split("|") if p.strip()]
        else:
            parts = [text.strip()]
        syshigh = SYSHIGH in parts
        labels = frozenset(p for p in parts if p != SYSHIGH)
        return cls(labels, negated=negated, syshigh=syshigh)

    def member(self, label, tcb_set):
        inside = label in self.labels or (self.syshigh and label in tcb_set)
        return inside != self.negated

    def render(self):
        parts = sorted(self.labels) + ([SYSHIGH] if self.syshigh else [])
        body = parts[0] if len(parts) == 1 and not self.negated else "{" + "|".join(parts) + "}"
        return ("~" if self.negated else "") + body

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<LabelSpec {}>".format(self.render())


class MatchModule:
    """Base class for all matches (default and ``-m`` modules)."""

    #: Context fields this match needs, for lazy retrieval planning.
    required_fields = ContextField(0)

    def matches(self, engine, operation, frame):  # pragma: no cover - interface
        raise NotImplementedError

    def render(self):  # pragma: no cover - interface
        raise NotImplementedError


class OpMatch(MatchModule):
    """``-o`` — restrict to one LSM operation."""

    def __init__(self, op):
        self.op = op if isinstance(op, Op) else Op.from_name(op)

    def matches(self, engine, operation, frame):
        if self.op is Op.LNK_FILE_READ:
            return operation.op in (Op.LNK_FILE_READ, Op.LINK_READ)
        return operation.op is self.op

    def render(self):
        return "-o {}".format(self.op.value)


class SubjectMatch(MatchModule):
    """``-s`` — process (subject) label."""

    required_fields = ContextField.SUBJECT_LABEL

    def __init__(self, spec):
        self.spec = spec if isinstance(spec, LabelSpec) else LabelSpec.parse(spec)

    def matches(self, engine, operation, frame):
        label = engine.ensure(ContextField.SUBJECT_LABEL, operation, frame)
        return self.spec.member(label, engine.tcb_subjects())

    def render(self):
        return "-s {}".format(self.spec.render())


class ObjectMatch(MatchModule):
    """``-d`` — resource (object) label."""

    required_fields = ContextField.OBJECT_LABEL

    def __init__(self, spec):
        self.spec = spec if isinstance(spec, LabelSpec) else LabelSpec.parse(spec)

    def matches(self, engine, operation, frame):
        label = engine.ensure(ContextField.OBJECT_LABEL, operation, frame)
        if label is None:
            return False
        return self.spec.member(label, engine.tcb_objects())

    def render(self):
        return "-d {}".format(self.spec.render())


class EntrypointMatch(MatchModule):
    """``-i`` + ``-p`` — the resource-requesting call site.

    Matches when the innermost resolvable frame of the process's user
    stack lies at ``offset`` within the image loaded from ``program``.
    Offsets are base-relative, so the match is ASLR-stable (§5.2).
    """

    required_fields = ContextField.ENTRYPOINT

    def __init__(self, program, offset):
        self.program = program
        self.offset = offset

    def matches(self, engine, operation, frame):
        entries = engine.ensure(ContextField.ENTRYPOINT, operation, frame)
        if not entries:
            return False
        path, rel_pc = entries[0]
        return path == self.program and rel_pc == self.offset

    def render(self):
        return "-p {} -i {:#x}".format(self.program, self.offset)

    def chain_key(self):
        """The entrypoint-chain index key (§4.3)."""
        return (self.program, self.offset)


class ProgramMatch(MatchModule):
    """``-p``/``-b`` without ``-i`` — restrict to a program binary."""

    required_fields = ContextField.PROGRAM

    def __init__(self, program):
        self.program = program

    def matches(self, engine, operation, frame):
        return engine.ensure(ContextField.PROGRAM, operation, frame) == self.program

    def render(self):
        return "-p {}".format(self.program)


class StateMatch(MatchModule):
    """``-m STATE`` — compare a key in the per-process dictionary.

    Used by the TOCTTOU template (compare the inode recorded at the
    "check" call to the one at the "use" call) and the signal-race rules
    (key ``'sig'`` tracks in-handler state).  A missing key never
    matches: the invariant only applies once the earlier call recorded
    its state.
    """

    def __init__(self, key, cmp_value, equal=True):
        self.key = Value(key)
        self.cmp_value = Value(cmp_value)
        self.equal = equal

    @property
    def required_fields(self):
        fields = ContextField(0)
        for value in (self.key, self.cmp_value):
            if value.required_field is not None:
                fields |= value.required_field
        return fields

    def matches(self, engine, operation, frame):
        # Reads the mutable process dictionary directly (no ensure()
        # call), so it must poison the negative-decision cache itself.
        frame.decision_unsafe = True
        key = self.key.resolve(engine, operation, frame)
        state = operation.proc.pf.state
        if key not in state:
            return False
        stored = state[key]
        current = self.cmp_value.resolve(engine, operation, frame)
        return (stored == current) if self.equal else (stored != current)

    def render(self):
        flag = "--equal" if self.equal else "--nequal"
        return "-m STATE --key {} --cmp {} {}".format(
            self.key.atom or self.key.literal, self.cmp_value.atom or self.cmp_value.literal, flag
        )


class CompareMatch(MatchModule):
    """``-m COMPARE`` — compare two runtime values (rule R8).

    Unresolvable operands (e.g. a dangling link's target owner) never
    match, keeping the rule free of false positives at the cost of a
    false negative — the paper's stated trade (§4.1).
    """

    def __init__(self, v1, v2, equal=True):
        self.v1 = Value(v1)
        self.v2 = Value(v2)
        self.equal = equal

    @property
    def required_fields(self):
        fields = ContextField(0)
        for value in (self.v1, self.v2):
            if value.required_field is not None:
                fields |= value.required_field
        return fields

    def matches(self, engine, operation, frame):
        a = self.v1.resolve(engine, operation, frame)
        b = self.v2.resolve(engine, operation, frame)
        if a is None or b is None:
            return False
        return (a == b) if self.equal else (a != b)

    def render(self):
        flag = "--equal" if self.equal else "--nequal"
        return "-m COMPARE --v1 {} --v2 {} {}".format(
            self.v1.atom or self.v1.literal, self.v2.atom or self.v2.literal, flag
        )


class SignalMatch(MatchModule):
    """``-m SIGNAL_MATCH`` — delivery of a catchable, handled signal.

    Paper rule R10: "if ... signal to be delivered has a handler and is
    not unblockable".
    """

    required_fields = ContextField.SIGNAL_INFO

    def matches(self, engine, operation, frame):
        info = engine.ensure(ContextField.SIGNAL_INFO, operation, frame)
        if info is None:
            return False
        return info["handled"] and not info["unblockable"]

    def render(self):
        return "-m SIGNAL_MATCH"


class SyscallArgsMatch(MatchModule):
    """``-m SYSCALL_ARGS`` — match a positional syscall argument (R12)."""

    required_fields = ContextField.SYSCALL_ARGS

    def __init__(self, arg_index, value, equal=True):
        self.arg_index = int(str(arg_index), 0)
        self.value = Value(value)
        self.equal = equal

    def matches(self, engine, operation, frame):
        args = engine.ensure(ContextField.SYSCALL_ARGS, operation, frame)
        if args is None or self.arg_index >= len(args):
            return False
        expected = self.value.resolve(engine, operation, frame)
        if isinstance(expected, str) and expected.startswith("NR_"):
            expected = expected[3:]
        actual = args[self.arg_index]
        return (actual == expected) if self.equal else (actual != expected)

    def render(self):
        flag = "--equal" if self.equal else "--nequal"
        return "-m SYSCALL_ARGS --arg {} {} {}".format(self.arg_index, flag, self.value.atom or self.value.literal)


class ScriptMatch(MatchModule):
    """``-m SCRIPT`` — interpreter-level entrypoint (extension).

    The native ``-i`` entrypoint for an interpreted program is always
    the same opcode handler inside the interpreter binary; this match
    pins the *script* file (and optionally line) whose call actually
    requested the resource, using the kernel-side interpreter backtrace
    of paper §4.4.
    """

    required_fields = ContextField.SCRIPT_ENTRYPOINT

    def __init__(self, file, line=None):
        self.file = file
        self.line = None if line is None else int(str(line), 0)

    def matches(self, engine, operation, frame):
        entries = engine.ensure(ContextField.SCRIPT_ENTRYPOINT, operation, frame)
        if not entries:
            return False
        path, line = entries[0]
        if path != self.file:
            return False
        return self.line is None or line == self.line

    def render(self):
        parts = ["-m SCRIPT --file {}".format(self.file)]
        if self.line is not None:
            parts.append("--line {}".format(self.line))
        return " ".join(parts)


class AdversaryMatch(MatchModule):
    """``-m ADVERSARY`` — adversary accessibility of the resource.

    Not in the paper's printed rule set but implied by Table 2's
    resource contexts; used by generated rules that predicate directly
    on integrity rather than on label sets.
    """

    def __init__(self, writable=None, readable=None):
        self.writable = writable
        self.readable = readable

    @property
    def required_fields(self):
        fields = ContextField(0)
        if self.writable is not None:
            fields |= ContextField.ADV_WRITABLE
        if self.readable is not None:
            fields |= ContextField.ADV_READABLE
        return fields

    def matches(self, engine, operation, frame):
        if self.writable is not None:
            if engine.ensure(ContextField.ADV_WRITABLE, operation, frame) != self.writable:
                return False
        if self.readable is not None:
            if engine.ensure(ContextField.ADV_READABLE, operation, frame) != self.readable:
                return False
        return True

    def render(self):
        parts = ["-m ADVERSARY"]
        if self.writable is not None:
            parts.append("--writable" if self.writable else "--not-writable")
        if self.readable is not None:
            parts.append("--readable" if self.readable else "--not-readable")
        return " ".join(parts)
