"""Rule codegen: specialize chains into flat Python decision functions.

The COMPILED column removed per-mediation list merging and op compares
by walking one precomputed tuple per ``(op, entrypoint)`` traversal
shape (``Chain.dispatch``).  What remains on that path is *interpretive*
overhead: a virtual ``matches()`` dispatch per predicate, a
``LabelSpec.member`` call per label test, and attribute traffic
(``self.spec``, ``engine.stats``, ``rule.target``) re-resolved on every
evaluation.  This module removes that layer the way SFIP flattens
security automata: at first use, each dispatch tuple is compiled —
via ``compile()``/``exec`` of *generated source* — into one closure
whose free variables are the rule constants themselves.

Specialization decisions, pinned by the differential suites:

- Label sets, entrypoint keys, rule and target objects are bound as
  closure cells of the generated function (``_factory`` parameters), so
  a predicate is a ``LOAD_DEREF`` + ``in``/``!=`` — no dict lookups, no
  method dispatch.
- Predicates are emitted **in rule-match order** with the same early
  exit (a ``while True:``/``break`` block per rule), so lazy context
  collection happens in exactly the interpreted order and
  ``stats.context_collections`` stays byte-identical.
- Context fields are read through ``engine.ensure`` exactly once per
  mediation (memoized in a sentinel-guarded local): repeat ``ensure``
  calls are observably idempotent, so hoisting repeats changes no
  counter.
- ``-o`` predicates vanish: ``Chain.dispatch`` already op-filtered the
  tuple (the interpreted walk evaluates them too, but they are
  side-effect-free and always true there).
- Match modules without a specialized emitter (``STATE``, ``COMPARE``,
  ``SIGNAL_MATCH``, ``SYSCALL_ARGS``, ``SCRIPT``, and any subclass)
  fall back to a bound ``match.matches`` call — correct by
  construction, just not flattened.
- ``JUMP`` targets re-enter the engine's interpreted
  ``_walk_chain`` at depth 1: user chains are cold by definition here,
  and reusing the walker keeps depth limiting and RETURN semantics in
  one place.

A :class:`JitProgram` caches compiled functions per ``(op, entrypoint)``
step and is keyed to one ``RuleBase.stamp`` identity — any rule
mutation orphans the whole program (the engine rebuilds on next use),
so stale code can never run.  Traced or metered mediations never enter
generated code at all: the engine falls back to the interpreted walker,
which is the only place per-rule trace records and phase timers exist.

Generated source is kept (``JitProgram.sources``) and dumpable via
:func:`dump_codegen` / ``pfctl explain --codegen``.
"""

from __future__ import annotations

from repro.firewall import targets as tg
from repro.firewall.context import ContextField
from repro.firewall.matches import (
    AdversaryMatch,
    EntrypointMatch,
    ObjectMatch,
    OpMatch,
    ProgramMatch,
    SubjectMatch,
    SyscallArgsMatch,
)
from repro.firewall.rule import _op_accepts
from repro.security.lsm import Op

#: Sentinel marking a context-field local as not yet ensured.
_UNSET = object()

#: Context-field locals: one per specializable lazy field.
_FIELD_LOCALS = {
    ContextField.SUBJECT_LABEL: "_sub",
    ContextField.OBJECT_LABEL: "_obj",
    ContextField.ENTRYPOINT: "_ept",
    ContextField.PROGRAM: "_prog",
    ContextField.ADV_WRITABLE: "_advw",
    ContextField.ADV_READABLE: "_advr",
    ContextField.SYSCALL_ARGS: "_args",
}


class _ConstPool:
    """Constants bound into the generated closure, by identity."""

    __slots__ = ("names", "values", "_index")

    def __init__(self, fixed):
        self.names = [name for name, _ in fixed]
        self.values = [value for _, value in fixed]
        self._index = {}

    def bind(self, value):
        """Return the parameter name holding ``value`` (interned by id)."""
        key = id(value)
        name = self._index.get(key)
        if name is None:
            name = "_k{}".format(len(self.names))
            self._index[key] = name
            self.names.append(name)
            self.values.append(value)
        return name


class _Emitter:
    """Accumulates generated source for one chain function."""

    def __init__(self, pool):
        self.pool = pool
        self.body = []
        self.locals_used = []

    def line(self, indent, text):
        self.body.append(" " * indent + text)

    def use_local(self, name):
        if name not in self.locals_used:
            self.locals_used.append(name)

    def lazy_field(self, indent, field):
        """Emit the sentinel-guarded ensure for ``field``; return its local."""
        local = _FIELD_LOCALS[field]
        self.use_local(local)
        fname = self.pool.bind(field)
        self.line(indent, "if {} is _UNSET:".format(local))
        self.line(indent + 4, "{} = _ens({}, operation, frame)".format(local, fname))
        return local

    def lazy_tcb(self, indent, subjects):
        """Emit the lazy TCB-set fetch; return its local name."""
        local = "_ts" if subjects else "_to"
        getter = "_tcbs" if subjects else "_tcbo"
        self.use_local(local)
        self.line(indent, "if {} is _UNSET:".format(local))
        self.line(indent + 4, "{} = {}()".format(local, getter))
        return local


def _membership_fail_expr(emitter, indent, spec, value_var, subjects):
    """Expression true when ``spec.member(value, tcb)`` is False."""
    parts = []
    if spec.labels:
        parts.append("{} in {}".format(value_var, emitter.pool.bind(spec.labels)))
    if spec.syshigh:
        tcb_local = emitter.lazy_tcb(indent, subjects)
        parts.append("{} in {}".format(value_var, tcb_local))
    inside = " or ".join(parts) if parts else "False"
    if spec.negated:
        return inside if len(parts) <= 1 else "({})".format(inside)
    return "not ({})".format(inside)


def _emit_predicate(emitter, indent, match, op):
    """Emit the fail-fast test(s) for one match module.

    Each emitted test ``break``s out of the rule block on failure,
    mirroring ``_rule_matches``'s early exit; emission order follows
    ``rule.matches`` order so context collection is interpreted-order.
    """
    kind = type(match)
    if kind is OpMatch:
        # Chain.dispatch already filtered on op; the predicate is a
        # compile-time constant here.
        if not _op_accepts(match.op, op):
            emitter.line(indent, "break")
        return
    if kind is SubjectMatch:
        local = emitter.lazy_field(indent, ContextField.SUBJECT_LABEL)
        fail = _membership_fail_expr(emitter, indent, match.spec, local, True)
        emitter.line(indent, "if {}:".format(fail))
        emitter.line(indent + 4, "break")
        return
    if kind is ObjectMatch:
        local = emitter.lazy_field(indent, ContextField.OBJECT_LABEL)
        emitter.line(indent, "if {} is None:".format(local))
        emitter.line(indent + 4, "break")
        fail = _membership_fail_expr(emitter, indent, match.spec, local, False)
        emitter.line(indent, "if {}:".format(fail))
        emitter.line(indent + 4, "break")
        return
    if kind is EntrypointMatch:
        local = emitter.lazy_field(indent, ContextField.ENTRYPOINT)
        key = emitter.pool.bind(match.chain_key())
        emitter.line(indent, "if not {}:".format(local))
        emitter.line(indent + 4, "break")
        emitter.line(indent, "if {}[0] != {}:".format(local, key))
        emitter.line(indent + 4, "break")
        return
    if kind is ProgramMatch:
        local = emitter.lazy_field(indent, ContextField.PROGRAM)
        emitter.line(indent, "if {} != {!r}:".format(local, match.program))
        emitter.line(indent + 4, "break")
        return
    if kind is AdversaryMatch:
        if match.writable is not None:
            local = emitter.lazy_field(indent, ContextField.ADV_WRITABLE)
            emitter.line(indent, "if {} != {!r}:".format(local, match.writable))
            emitter.line(indent + 4, "break")
        if match.readable is not None:
            local = emitter.lazy_field(indent, ContextField.ADV_READABLE)
            emitter.line(indent, "if {} != {!r}:".format(local, match.readable))
            emitter.line(indent + 4, "break")
        return
    if kind is SyscallArgsMatch and match.value.atom is None:
        # Literal operand: hoist Value.resolve and the NR_ strip to
        # compile time (atom-valued operands need frame context and
        # take the fallback below).
        local = emitter.lazy_field(indent, ContextField.SYSCALL_ARGS)
        expected = match.value.literal
        if isinstance(expected, str) and expected.startswith("NR_"):
            expected = expected[3:]
        emitter.line(
            indent, "if {} is None or {} >= len({}):".format(local, match.arg_index, local)
        )
        emitter.line(indent + 4, "break")
        comparison = "!=" if match.equal else "=="
        emitter.line(
            indent,
            "if {}[{}] {} {!r}:".format(local, match.arg_index, comparison, expected),
        )
        emitter.line(indent + 4, "break")
        return
    # Unspecialized module (STATE/COMPARE/SIGNAL_MATCH/SCRIPT,
    # atom-valued SYSCALL_ARGS, or any subclass): bound-method fallback.
    name = emitter.pool.bind(match.matches)
    emitter.line(indent, "if not {}(_eng, operation, frame):".format(name))
    emitter.line(indent + 4, "break")


def _emit_rule(emitter, index, rule, op):
    """Emit one rule's ``while True:`` block (predicates + target)."""
    rname = emitter.pool.bind(rule)
    tname = emitter.pool.bind(rule.target.execute)
    text = (rule.text or "<anonymous>").replace("\n", " ")
    emitter.line(8, "# rule {}: {}".format(index, text))
    emitter.line(8, "while True:")
    emitter.line(12, "_stats.rules_evaluated += 1")
    for match in rule.matches:
        _emit_predicate(emitter, 12, match, op)
    emitter.line(12, "{}.hits += 1".format(rname))
    emitter.line(12, "frame.rule_matched = True")
    emitter.line(12, "_v, _a = {}(_eng, operation, frame)".format(tname))
    emitter.line(12, "if _v == {!r} or _v == {!r}:".format(tg.DROP, tg.ACCEPT))
    emitter.line(16, "return (_v, {})".format(rname))
    emitter.line(12, "if _v == {!r}:".format(tg.RETURN))
    emitter.line(16, "return ({!r}, None)".format(tg.CONTINUE))
    emitter.line(12, "if _v == {!r}:".format(tg.JUMP))
    emitter.line(16, "_sv, _sr = _walk(_tbl, _tchain(_a, True), operation, frame, 1)")
    emitter.line(16, "if _sv == {!r} or _sv == {!r}:".format(tg.DROP, tg.ACCEPT))
    emitter.line(20, "return (_sv, _sr)")
    emitter.line(12, "break")


def compile_chain(engine, table, chain, op, ept_key):
    """Compile one ``(op, entrypoint)`` dispatch tuple of ``chain``.

    Returns ``(fn, source)``: ``fn(operation, frame)`` evaluates the
    flat rule sequence exactly as the interpreted
    ``ProcessFirewall._walk_chain`` would at depth 0 with compiled
    dispatch, returning the same ``(verdict, rule)`` pairs and feeding
    the same ``stats`` counters.  ``source`` is the generated text,
    retained for ``pfctl explain --codegen``.
    """
    rules = chain.dispatch(op, ept_key)
    pool = _ConstPool(
        [
            ("_UNSET", _UNSET),
            ("_ens", engine.ensure),
            ("_eng", engine),
            ("_stats", engine.stats),
            ("_walk", engine._walk_chain),
            ("_tbl", table),
            ("_tchain", table.chain),
            ("_tcbs", engine.tcb_subjects),
            ("_tcbo", engine.tcb_objects),
        ]
    )
    emitter = _Emitter(pool)
    for index, rule in enumerate(rules):
        _emit_rule(emitter, index, rule, op)

    ept_text = "-" if ept_key is None else "{}+{:#x}".format(ept_key[0], ept_key[1])
    lines = [
        "# pf-jit: table={} chain={} op={} ept={}".format(
            table.name, chain.name, op.value, ept_text
        ),
        "def _factory({}):".format(", ".join(pool.names)),
        "    def _chain(operation, frame):",
    ]
    for local in emitter.locals_used:
        lines.append("        {} = _UNSET".format(local))
    lines.extend(emitter.body)
    lines.append("        return ({!r}, None)".format(tg.CONTINUE))
    lines.append("    return _chain")
    source = "\n".join(lines) + "\n"

    filename = "<pf-jit:{}/{}:{}:{}>".format(table.name, chain.name, op.value, ept_text)
    namespace = {}
    exec(compile(source, filename, "exec"), namespace)
    fn = namespace["_factory"](*pool.values)
    return fn, source


class _ChainStep:
    """One chain visit in a traversal plan; compiles per entrypoint key."""

    __slots__ = ("program", "table", "chain", "op", "is_mangle", "chain_name", "wanted", "fns")

    def __init__(self, program, table, chain, op, is_mangle):
        self.program = program
        self.table = table
        self.chain = chain
        self.op = op
        self.is_mangle = is_mangle
        self.chain_name = chain.name
        wanted = False
        if chain.by_entrypoint:
            ept_ops = chain.ept_ops
            wanted = (
                ept_ops is None
                or op in ept_ops
                or (op is Op.LINK_READ and Op.LNK_FILE_READ in ept_ops)
            )
        #: Whether this (chain, op) can ever select an entrypoint
        #: bucket — mirrors the interpreted walk's unwind gate.
        self.wanted = wanted
        self.fns = {}

    def function(self, operation, frame):
        """The compiled function for this mediation's entrypoint key.

        Resolves the entrypoint through ``engine.ensure`` only when some
        bucket rule could handle this op (same gate, same bookkeeping —
        ``frame.used_entrypoint`` — as the interpreted walk).
        """
        ept_key = None
        if self.wanted:
            engine = self.program.firewall
            entries = engine.ensure(ContextField.ENTRYPOINT, operation, frame)
            if entries and entries[0] in self.chain.by_entrypoint:
                ept_key = entries[0]
        fn = self.fns.get(ept_key)
        if fn is None:
            fn = self.compile(ept_key)
        return fn

    def compile(self, ept_key):
        """Compile (and memoize) the function for one entrypoint key."""
        fn, source = compile_chain(
            self.program.firewall, self.table, self.chain, self.op, ept_key
        )
        self.fns[ept_key] = fn
        self.program.sources[(self.table.name, self.chain_name, self.op, ept_key)] = source
        return fn


class _TraversalPlan:
    """The ordered chain steps one operation walks, mangle then filter."""

    __slots__ = ("steps", "filter_start")

    def __init__(self, steps, filter_start):
        self.steps = steps
        #: Index of the first filter-table step: a mangle ``ACCEPT``
        #: jumps here (stop mangle, proceed to filter).
        self.filter_start = filter_start


class JitProgram:
    """Compiled decision functions for one rule-base stamp.

    Built lazily by :meth:`ProcessFirewall.jit_program`; discarded
    whole when ``rules.stamp`` changes identity (install, remove,
    flush, atomic restore), so generated code can never outlive the
    rules it inlines.  Per-``op`` traversal plans and per-``(op,
    entrypoint)`` functions compile at first use, like the dispatch
    memo they wrap.
    """

    __slots__ = ("firewall", "stamp", "sources", "_plans")

    def __init__(self, firewall):
        self.firewall = firewall
        #: The rule-base identity this program was compiled against.
        self.stamp = firewall.rules.stamp
        #: (table, chain, op, ept_key) -> generated source text.
        self.sources = {}
        self._plans = {}

    def plan(self, op):
        """The (memoized) traversal plan for one operation kind."""
        plan = self._plans.get(op)
        if plan is None:
            plan = self._plans[op] = self._build_plan(op)
        return plan

    def _build_plan(self, op):
        firewall = self.firewall
        steps = []
        filter_start = 0
        for table_name in ("mangle", "filter"):
            table = firewall.rules.tables[table_name]
            if table_name == "filter":
                filter_start = len(steps)
            for chain_name in firewall._chains_for(op):
                chain = table.chains.get(chain_name)
                if chain is None or not len(chain):
                    continue
                relevant = chain.relevant_ops
                if (
                    relevant is not None
                    and op not in relevant
                    and not (op is Op.LINK_READ and Op.LNK_FILE_READ in relevant)
                ):
                    continue
                steps.append(_ChainStep(self, table, chain, op, table_name == "mangle"))
        return _TraversalPlan(tuple(steps), filter_start)

    def traverse(self, operation, frame):
        """Drop-in for ``ProcessFirewall._traverse`` on the jitted path.

        Same chain order, same per-process traversal bookkeeping, same
        ``(verdict, rule)`` protocol — but each chain body is a
        compiled flat function instead of the interpreted rule loop.
        """
        plan = self.plan(operation.op)
        steps = plan.steps
        proc = operation.proc
        i = 0
        n = len(steps)
        while i < n:
            step = steps[i]
            i += 1
            if proc is not None:
                proc.pf_traversal.append(step.chain_name)
            try:
                verdict, rule = step.function(operation, frame)(operation, frame)
            finally:
                if proc is not None:
                    proc.pf_traversal.pop()
            if verdict == tg.DROP:
                return (verdict, rule)
            if verdict == tg.ACCEPT:
                if not step.is_mangle:
                    return (verdict, rule)
                i = plan.filter_start
        return (tg.CONTINUE, None)


def dump_codegen(firewall, ops=None):
    """Force-compile every reachable traversal shape; return the source.

    Compiles the ``(op, entrypoint)`` grid for every operation in
    ``ops`` (default: all LSM operations) whose plan is non-empty —
    the entrypoint-independent shape plus one per installed bucket key
    — and returns the concatenated generated source, stably ordered.
    Backs ``pfctl explain --codegen``.
    """
    program = firewall.jit_program()
    if ops is None:
        ops = list(Op)
    for op in ops:
        for step in program.plan(op).steps:
            keys = [None]
            if step.wanted:
                keys.extend(sorted(step.chain.by_entrypoint))
            for key in keys:
                if key not in step.fns:
                    step.compile(key)
    chunks = [program.sources[key] for key in sorted(program.sources, key=repr)]
    return "\n".join(chunks)
