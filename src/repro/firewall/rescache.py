"""Resource-context cache: memoized per-inode context fields.

Adversary accessibility (``ADV_WRITABLE`` / ``ADV_READABLE``) is the
most expensive resource context the engine collects: every lookup walks
the DAC adversary population *and* the MAC policy's permission tables
(:class:`repro.security.adversary.AdversaryModel`).  Yet for a fixed
inode, a fixed caller identity, and a fixed system state the answer
never changes — mediating ``stat("/etc/passwd")`` ten thousand times
recomputes the same conjunction ten thousand times.

This module memoizes those fields (plus the resource's label) per
``(device, ino)`` in a per-firewall cache.  Correctness comes from an
explicit *validity tuple* captured at store time and recomputed at
fetch time:

- ``inode.generation`` — inode-number recycling (the cryogenic-sleep
  path) can never serve a prior tenant's entry;
- ``inode.meta_gen`` — bumped by every metadata mutation routed through
  :mod:`repro.vfs` (chmod / chown / relabel / unlink / rename);
- ``AdversaryModel.epoch`` — bumped when the known-UID population
  grows (a new user is a new potential adversary for everyone);
- ``FileSystem.mount_generation`` — bumped by mount-table changes;
- the rule base ``stamp`` — rule mutations drop every entry, keeping
  cache lifetime aligned with the engine's other memos.

Per-process inputs (the caller's EUID and subject label) are part of
the *sub-key*, not the validity tuple, so processes with different
identities share one entry per inode without aliasing each other's
answers.  The engine counts outcomes into ``stats.rescache_*`` and the
``pf_rescache_total{result=hit|miss|invalidate}`` metric family.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.firewall.context import ContextField

#: Fields this cache may serve (plain-int mask for the hot-path test).
RESCACHE_FIELDS = (
    ContextField.OBJECT_LABEL | ContextField.ADV_WRITABLE | ContextField.ADV_READABLE
)

#: Plain-int view of :data:`RESCACHE_FIELDS` for ``mask & bits`` tests.
_RESCACHE_FIELDS_INT = int(RESCACHE_FIELDS)

#: Fields whose value depends on the calling process's identity, keyed
#: per ``(euid, subject label)`` inside an entry.
_PER_PROCESS_FIELDS = frozenset(
    (ContextField.ADV_WRITABLE, ContextField.ADV_READABLE)
)

#: Fetch outcomes, also used as the ``result`` metric label.
HIT = "hit"
MISS = "miss"
INVALIDATE = "invalidate"

_MISSING = object()


class ResourceContextCache:
    """Per-firewall memo of expensive per-inode context fields.

    One entry per ``(device, ino)``; each entry is a validity tuple
    plus a value map.  The cache never *pushes* invalidations — every
    fetch recomputes the validity tuple from live state and discards
    the entry on mismatch (reported as :data:`INVALIDATE` so the
    engine can count it).  Eviction is wholesale: when ``capacity``
    distinct inodes are cached, the next insert clears everything —
    the steady-state working set of a mediation-heavy workload is tiny
    compared to any sane capacity, so precision is not worth per-entry
    LRU bookkeeping on this path.
    """

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity=4096):
        self.capacity = capacity
        #: (device, ino) -> [validity_tuple, {sub_key: value}]
        self._entries = {}  # type: Dict[Tuple[int, int], list]

    def __len__(self):
        return len(self._entries)

    def clear(self):
        """Drop every entry (rule flush / explicit reset)."""
        self._entries.clear()

    @staticmethod
    def _validity(inode, engine):
        """The live validity tuple for ``inode`` under ``engine``.

        The system-wide half (adversary epoch, mount generation) comes
        from the kernel's shared :class:`repro.vfs.dcache.GenerationSources`
        — the same stamp plumbing the dentry/walk caches poll — so the
        two cache layers can never drift apart on what "the system
        changed" means.
        """
        kernel = engine.kernel
        return (
            inode.generation,
            inode.meta_gen,
            engine.rules.stamp,
        ) + kernel.generations.shared_stamp()

    @staticmethod
    def _sub_key(field, proc):
        """Entry-internal key: per-process for adversary fields."""
        if field in _PER_PROCESS_FIELDS:
            return (field, proc.creds.euid, proc.label)
        return field

    def fetch(self, field, operation, engine):
        """Probe the cache; returns ``(outcome, value)``.

        ``outcome`` is :data:`HIT` (``value`` is the memoized answer),
        :data:`MISS` (no entry, or entry lacks this field/identity), or
        :data:`INVALIDATE` (an entry existed but its validity tuple no
        longer matches live state; it has been discarded).  On MISS and
        INVALIDATE the caller collects normally and calls :meth:`store`.
        """
        inode = operation.obj
        key = (inode.device, inode.ino)
        entry = self._entries.get(key)
        if entry is None:
            return (MISS, None)
        if entry[0] != self._validity(inode, engine):
            del self._entries[key]
            return (INVALIDATE, None)
        value = entry[1].get(self._sub_key(field, operation.proc), _MISSING)
        if value is _MISSING:
            return (MISS, None)
        return (HIT, value)

    def store(self, field, operation, engine, value):
        """Record a freshly collected value under the live validity."""
        inode = operation.obj
        key = (inode.device, inode.ino)
        validity = self._validity(inode, engine)
        entry = self._entries.get(key)
        if entry is None or entry[0] != validity:
            if entry is None and len(self._entries) >= self.capacity:
                self._entries.clear()
            entry = self._entries[key] = [validity, {}]
        entry[1][self._sub_key(field, operation.proc)] = value
