"""Rules, chains, and the rule base.

Mirrors iptables structure (paper §5): a firewall holds *tables*
("filter", "mangle"), each table holds built-in chains (``input``,
``output``, ``syscallbegin``, ``create``) plus user chains; each chain
is an ordered rule list.

Chains additionally carry the **entrypoint index** of §4.3: at install
time rules with an ``-i`` entrypoint match are grouped by
``(program, offset)``; rules without one form the *preamble*, "matched
before jumping to entrypoint-specific chains".  Because the rule base is
deny-only with a default allow, this reorganization cannot change any
decision (§4.3: "This simple traversal arrangement is possible because
we have only deny rules followed by a default allow rule").
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro import errors
from repro.firewall.context import ContextField
from repro.firewall.matches import EntrypointMatch, MatchModule, OpMatch
from repro.firewall.targets import Target
from repro.security.lsm import Op

#: Built-in chain names.
BUILTIN_CHAINS = ("input", "output", "syscallbegin", "create")

#: Table names, as in the paper's rule language (Table 3).
TABLES = ("filter", "mangle")


def _op_accepts(rule_op, op):
    """Whether a rule's ``-o`` filter covers ``op``.

    ``None`` matches every operation; the only alias is the paper's
    ``LINK_READ`` name for ``LNK_FILE_READ`` (normalized at parse time,
    so only the raw-enum direction remains).
    """
    if rule_op is None or rule_op is op:
        return True
    return op is Op.LINK_READ and rule_op is Op.LNK_FILE_READ


class Rule:
    """One firewall rule: a match list plus a target.

    Attributes:
        matches: every :class:`MatchModule` (default + custom) in cheap-
            to-expensive evaluation order.
        target: the :class:`Target`.
        text: original ``pftables`` text, for round-trips and logs.
    """

    __slots__ = ("matches", "target", "text", "comment", "op", "hits")

    def __init__(self, matches, target, text="", comment=""):
        self.matches = list(matches)
        self.target = target
        self.text = text or self.render()
        self.comment = comment
        #: Cached ``-o`` filter for the engine's inline pre-check (the
        #: equivalent of iptables' cheap header-field compare).
        self.op = self.op_filter()
        #: Times this rule fully matched (iptables' packet counter);
        #: surfaced by ``pftables -L -v``-style listings and usable as
        #: a rule-generation signal.
        self.hits = 0

    @property
    def required_fields(self):
        fields = ContextField(0)
        for match in self.matches:
            fields |= match.required_fields
        fields |= self.target.required_fields
        return fields

    def entrypoint_key(self):
        """``(program, offset)`` when this rule is entrypoint-specific."""
        for match in self.matches:
            if isinstance(match, EntrypointMatch):
                return match.chain_key()
        return None

    def op_filter(self):
        """The rule's ``-o`` operation, if any (for fast pre-filtering)."""
        for match in self.matches:
            if isinstance(match, OpMatch):
                return match.op
        return None

    def render(self):
        parts = [m.render() for m in self.matches] + [self.target.render()]
        return " ".join(parts)

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<Rule {}>".format(self.text)


class Chain:
    """An ordered rule list with an optional entrypoint index."""

    def __init__(self, name, builtin=False):
        self.name = name
        self.builtin = builtin
        self.rules = []  # type: List[Rule]
        #: §4.3 index: preamble rules (no entrypoint) in order, then a
        #: per-entrypoint bucket.  Rebuilt on every mutation.
        self.preamble = []  # type: List[Rule]
        self.by_entrypoint = {}  # type: Dict[Tuple[str, int], List[Rule]]
        #: Operations any rule in this chain can match (None = all);
        #: lets the optimized engine skip the chain outright.
        self.relevant_ops = set()  # type: Optional[set]
        #: Preamble rules indexed by their -o operation; key None holds
        #: rules that match any operation.  Used by the optimized walk.
        self.preamble_by_op = {}  # type: Dict[Optional[object], List[Rule]]
        #: Operations the entrypoint buckets could match (None = all).
        self.ept_ops = set()  # type: Optional[set]
        #: Compiled dispatch lists: ``(op, entrypoint_key)`` -> flat
        #: rule tuple, filled lazily and discarded on every reindex.
        #: Key ``(op, None)`` holds the op-filtered preamble alone;
        #: ``(op, (program, offset))`` holds preamble + that bucket,
        #: both already narrowed to rules whose ``-o`` covers ``op``.
        self._compiled = {}  # type: Dict[Tuple[object, object], tuple]

    def insert(self, rule, position=0):
        self.rules.insert(position, rule)
        self._reindex()

    def append(self, rule):
        self.rules.append(rule)
        self._reindex()

    def delete(self, rule):
        self.rules.remove(rule)
        self._reindex()

    def flush(self):
        self.rules = []
        self._reindex()

    def _reindex(self):
        self.preamble = []
        self.by_entrypoint = {}
        self.preamble_by_op = {}
        self._compiled = {}
        ops = set()
        ept_ops = set()
        for rule in self.rules:
            key = rule.entrypoint_key()
            rule_op = rule.op_filter()
            if key is None:
                self.preamble.append(rule)
                self.preamble_by_op.setdefault(rule_op, []).append(rule)
            else:
                self.by_entrypoint.setdefault(key, []).append(rule)
                if ept_ops is not None:
                    if rule_op is None:
                        ept_ops = None
                    else:
                        ept_ops.add(rule_op)
            if rule_op is None:
                ops = None  # a rule without -o matches any operation
            elif ops is not None:
                ops.add(rule_op)
        self.relevant_ops = ops
        self.ept_ops = ept_ops

    def preamble_for(self, op):
        """Preamble rules that could match ``op``, preserving order.

        Order preservation matters only between a rule and the wildcard
        rules; within the deny-only + side-effect discipline the merge
        below keeps the original relative order.
        """
        specific = self.preamble_by_op.get(op, [])
        wildcard = self.preamble_by_op.get(None, [])
        if not wildcard:
            return specific
        if not specific:
            return wildcard
        merged = [rule for rule in self.preamble if rule in specific or rule in wildcard]
        return merged

    def dispatch(self, op, ept_key=None):
        """Flat, precompiled rule tuple for one ``(op, entrypoint)`` pair.

        The first lookup for a key materializes the list — preamble
        rules whose ``-o`` covers ``op`` in order, followed by the
        matching rules of the ``ept_key`` bucket — and memoizes it;
        every later mediation of the same shape iterates one tuple with
        no merging, no membership tests, and no per-rule op checks.
        The memo dies with the next reindex, so installs/deletes can
        never serve stale dispatch lists.  Callers pass ``ept_key``
        only for keys present in :attr:`by_entrypoint`, keeping the
        memo bounded by (ops seen) × (installed entrypoints + 1).
        """
        key = (op, ept_key)
        seq = self._compiled.get(key)
        if seq is None:
            rules = [rule for rule in self.preamble if _op_accepts(rule.op, op)]
            if ept_key is not None:
                rules.extend(
                    rule
                    for rule in self.by_entrypoint.get(ept_key, ())
                    if _op_accepts(rule.op, op)
                )
            seq = tuple(rules)
            self._compiled[key] = seq
        return seq

    def __len__(self):
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)


class Table:
    """One firewall table holding built-in and user chains."""

    def __init__(self, name):
        self.name = name
        self.chains = {c: Chain(c, builtin=True) for c in BUILTIN_CHAINS}

    def chain(self, name, create=False):
        name = name.lower()
        if name not in self.chains:
            if not create:
                raise errors.EINVAL("no chain {!r} in table {!r}".format(name, self.name))
            self.chains[name] = Chain(name)
        return self.chains[name]

    def all_rules(self):
        for chain in self.chains.values():
            for rule in chain:
                yield rule


class RuleBase:
    """All tables of one firewall instance."""

    #: Monotonic instance ids — two distinct rule bases must never
    #: share a memo stamp even when their mutation counts coincide
    #: (e.g. flush + reinstall, or an atomically swapped restore).
    _uids = itertools.count()

    def __init__(self):
        self.tables = {name: Table(name) for name in TABLES}
        #: Union of context fields used by any installed rule — the set
        #: the unoptimized (non-lazy) engine collects eagerly per hook.
        self.required_fields = ContextField(0)
        #: Bumped on every mutation; engines key their memos off it.
        self.version = 0
        #: Unique per-instance id; memo stamps are ``(uid, version)``.
        self.uid = next(RuleBase._uids)
        #: Identity + mutation stamp for engine/per-task memo keys.
        #: A plain attribute reassigned on every mutation, so the hot
        #: path can compare by object identity (``is``) — the tuple
        #: object only changes when the rule base does.
        self.stamp = (self.uid, 0)

    def table(self, name="filter"):
        try:
            return self.tables[name]
        except KeyError:
            raise errors.EINVAL("no table {!r}".format(name))

    def recompute_required_fields(self):
        fields = ContextField(0)
        for table in self.tables.values():
            for rule in table.all_rules():
                fields |= rule.required_fields
        self.required_fields = fields
        return fields

    def rule_count(self):
        return sum(len(chain) for table in self.tables.values() for chain in table.chains.values())

    def install(self, table, chain, rule, position=None, create_chain=True):
        """Insert (position given) or append a rule, then reindex."""
        chain_obj = self.table(table).chain(chain, create=create_chain)
        if position is None:
            chain_obj.append(rule)
        else:
            chain_obj.insert(rule, position)
        self.recompute_required_fields()
        self.version += 1
        self.stamp = (self.uid, self.version)
        return rule

    def remove(self, table, chain, rule):
        self.table(table).chain(chain).delete(rule)
        self.recompute_required_fields()
        self.version += 1
        self.stamp = (self.uid, self.version)
