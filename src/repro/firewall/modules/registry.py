"""The context-module registry.

Each module implements ``collect(operation, kernel) -> value``.  Modules
touching process memory (the entrypoint module) must be defensive: a
forged or corrupted user stack aborts collection gracefully, yielding an
empty value — per the paper §4.4, a malicious process "only affects its
own protection".
"""

from __future__ import annotations

from typing import Dict

from repro import errors
from repro.firewall.context import ContextField
from repro.proc import signals as sig


class ContextModule:
    """One registered context retriever.

    Attributes:
        field: the :class:`ContextField` this module produces.
        collect: callable ``(operation, kernel) -> value``.
        cost: abstract cost units, surfaced in engine statistics so the
            benchmarks can attribute where collection time goes.
    """

    __slots__ = ("field", "collect", "cost", "name")

    def __init__(self, field, collect, cost=1, name=""):
        self.field = field
        self.collect = collect
        self.cost = cost
        self.name = name or field.name.lower()


# ----------------------------------------------------------------------
# collectors
# ----------------------------------------------------------------------


def _subject_label(operation, kernel):
    return operation.proc.label


def _object_label(operation, kernel):
    return getattr(operation.obj, "label", None)


def _resource_id(operation, kernel):
    obj = operation.obj
    if obj is None:
        signum = operation.extra.get("signum")
        return ("signal", signum) if signum is not None else None
    return (obj.device, obj.ino)


def _program(operation, kernel):
    binary = operation.proc.binary
    return binary.path if binary is not None else None


def _entrypoint(operation, kernel):
    """Unwind the user stack into ``((image_path, rel_pc), ...)``.

    Innermost frame first.  Frames that do not map into any image
    (forged PCs) are skipped; a corrupted stack aborts the unwind and
    yields whatever was recovered — never an exception (paper §4.4).
    """
    proc = operation.proc
    try:
        frames = proc.stack.unwind()
    except errors.EFAULT:
        return ()
    entries = []
    for frame in frames:
        entry = frame.entrypoint()
        if entry is not None:
            entries.append(entry)
    return tuple(entries)


def _adv_writable(operation, kernel):
    if operation.obj is None:
        return False
    return kernel.adversaries.is_low_integrity(operation.proc, operation.obj)


def _adv_readable(operation, kernel):
    if operation.obj is None:
        return False
    return kernel.adversaries.is_low_secrecy(operation.proc, operation.obj)


def _dac_owner(operation, kernel):
    return getattr(operation.obj, "uid", None)


def _tgt_dac_owner(operation, kernel):
    """Owner of the inode a traversed symlink points at (rule R8)."""
    resolver = operation.extra.get("link_target_resolver")
    if resolver is None:
        return None
    target = resolver()
    return None if target is None else target.uid


def _signal_info(operation, kernel):
    signum = operation.extra.get("signum")
    if signum is None:
        return None
    disposition = operation.extra.get("disposition")
    handled = bool(disposition is not None and disposition.is_handled)
    return {
        "signum": signum,
        "handled": handled,
        "unblockable": signum in sig.UNBLOCKABLE_SIGNALS,
        "sender_pid": operation.extra.get("sender_pid"),
    }


def _syscall_args(operation, kernel):
    return operation.args


def _obj_identity(operation, kernel):
    """Kernel-internal object identity: ``(dev, ino, generation)``.

    Extension beyond the paper's printed ``C_INO``: because the firewall
    runs in the kernel it can bind state to an identity that survives
    inode-number recycling (real kernels would use the in-memory inode
    pointer or ``i_generation``).  T2 rules keyed on this identity
    remain sound under the cryogenic-sleep attack, where number-based
    comparison is defeated.
    """
    obj = operation.obj
    if obj is None:
        signum = operation.extra.get("signum")
        return ("signal", signum) if signum is not None else None
    return (obj.device, obj.ino, obj.generation)


def _script_entrypoint(operation, kernel):
    """Unwind the interpreter (script-level) stack, innermost first.

    Returns ``((script_path, line), ...)`` — empty for native programs
    or when the script stack is corrupted (same degrade-to-nothing
    discipline as the native unwinder, paper §4.4).
    """
    stack = getattr(operation.proc, "script_stack", None)
    if stack is None:
        return ()
    try:
        frames = stack.unwind()
    except errors.EFAULT:
        return ()
    return tuple(frame.entrypoint() for frame in frames)


#: field -> module.  Costs reflect the paper's observation that the
#: entrypoint module dominates (1735 of 2451 module LOC; stack unwinds
#: and memory introspection are the expensive part).
CONTEXT_MODULES = {
    ContextField.SUBJECT_LABEL: ContextModule(ContextField.SUBJECT_LABEL, _subject_label, cost=1),
    ContextField.OBJECT_LABEL: ContextModule(ContextField.OBJECT_LABEL, _object_label, cost=1),
    ContextField.RESOURCE_ID: ContextModule(ContextField.RESOURCE_ID, _resource_id, cost=1),
    ContextField.PROGRAM: ContextModule(ContextField.PROGRAM, _program, cost=1),
    ContextField.ENTRYPOINT: ContextModule(ContextField.ENTRYPOINT, _entrypoint, cost=8),
    ContextField.ADV_WRITABLE: ContextModule(ContextField.ADV_WRITABLE, _adv_writable, cost=4),
    ContextField.ADV_READABLE: ContextModule(ContextField.ADV_READABLE, _adv_readable, cost=4),
    ContextField.DAC_OWNER: ContextModule(ContextField.DAC_OWNER, _dac_owner, cost=1),
    ContextField.TGT_DAC_OWNER: ContextModule(ContextField.TGT_DAC_OWNER, _tgt_dac_owner, cost=4),
    ContextField.SIGNAL_INFO: ContextModule(ContextField.SIGNAL_INFO, _signal_info, cost=1),
    ContextField.SYSCALL_ARGS: ContextModule(ContextField.SYSCALL_ARGS, _syscall_args, cost=1),
    ContextField.SCRIPT_ENTRYPOINT: ContextModule(ContextField.SCRIPT_ENTRYPOINT, _script_entrypoint, cost=6),
    ContextField.OBJ_IDENTITY: ContextModule(ContextField.OBJ_IDENTITY, _obj_identity, cost=1),
}  # type: Dict[ContextField, ContextModule]


def collect_field(field, operation, kernel, frame, stats=None):
    """Run the module for ``field`` and record the value in ``frame``."""
    module = CONTEXT_MODULES[field]
    value = module.collect(operation, kernel)
    frame.put(field, value)
    if stats is not None:
        stats.context_collections[field.name] = stats.context_collections.get(field.name, 0) + 1
        stats.context_cost += module.cost
    return value
