"""Context modules: one per context field (paper §4.2).

"Each context module retrieves one context field value."  Modules are
registered in :data:`CONTEXT_MODULES`; the engine triggers a module only
when a rule being evaluated needs its field (lazy retrieval) or, in the
unoptimized FULL configuration, eagerly for every field any installed
rule uses.
"""

from repro.firewall.modules.registry import CONTEXT_MODULES, ContextModule, collect_field

__all__ = ["CONTEXT_MODULES", "ContextModule", "collect_field"]
