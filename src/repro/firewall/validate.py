"""Static rule-base linting (distributor QA).

Shipping rules in packages (§6.3.2) needs package-build-time checks:

- **shadowed rules** — a rule can never fire because an earlier rule in
  the same chain with the same match set already decides;
- **unknown labels** — ``-s``/``-d`` operands naming types the deployed
  policy does not define (typo'd label = silently dead rule, or worse,
  a ``~{...}`` negation that matches everything);
- **missing programs** — ``-p`` operands naming binaries not present in
  the target world (stale entrypoint rules after a package rename);
- **unreachable user chains** — defined but never jumped to.

Findings are advisory (the engine runs any valid base); ``pfctl lint``
surfaces them.
"""

from __future__ import annotations

from typing import List

from repro import errors
from repro.firewall import targets as tg
from repro.firewall.matches import EntrypointMatch, ObjectMatch, ProgramMatch, SubjectMatch


class Finding:
    """One lint result."""

    __slots__ = ("kind", "chain", "rule_text", "detail")

    def __init__(self, kind, chain, rule_text, detail):
        self.kind = kind
        self.chain = chain
        self.rule_text = rule_text
        self.detail = detail

    def render(self):
        return "[{}] chain {}: {} ({})".format(self.kind, self.chain, self.detail, self.rule_text)

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<Finding {}>".format(self.render())


def _match_signature(rule):
    return tuple(sorted(match.render() for match in rule.matches))


def _labels_of(rule):
    labels = set()
    for match in rule.matches:
        if isinstance(match, (SubjectMatch, ObjectMatch)):
            labels.update(match.spec.labels)
    return labels


def _programs_of(rule):
    programs = set()
    for match in rule.matches:
        if isinstance(match, EntrypointMatch):
            programs.add(match.program)
        elif isinstance(match, ProgramMatch):
            programs.add(match.program)
    return programs


def lint_rulebase(firewall, policy=None, kernel=None):
    """Lint an installed rule base; returns a list of Findings."""
    findings = []  # type: List[Finding]
    jumped_to = set()
    known_types = set(policy.types) if policy is not None else None

    for table in firewall.rules.tables.values():
        for chain in table.chains.values():
            decided = {}  # match signature -> first deciding rule text
            for rule in chain:
                signature = _match_signature(rule)
                if signature in decided:
                    findings.append(
                        Finding(
                            "shadowed",
                            chain.name,
                            rule.text,
                            "never reached; decided earlier by: {}".format(decided[signature]),
                        )
                    )
                elif isinstance(rule.target, (tg.DropTarget, tg.AcceptTarget)):
                    decided[signature] = rule.text

                if isinstance(rule.target, tg.JumpTarget):
                    jumped_to.add(rule.target.chain_name)

                if known_types is not None:
                    for label in _labels_of(rule):
                        if label not in known_types:
                            findings.append(
                                Finding("unknown-label", chain.name, rule.text,
                                        "label {!r} not in policy".format(label))
                            )

                if kernel is not None:
                    for program in _programs_of(rule):
                        try:
                            kernel.walker.resolve(program)
                        except errors.KernelError:
                            findings.append(
                                Finding("missing-program", chain.name, rule.text,
                                        "no such binary {!r} in the target world".format(program))
                            )

    for table in firewall.rules.tables.values():
        for chain in table.chains.values():
            if not chain.builtin and len(chain) and chain.name not in jumped_to:
                findings.append(
                    Finding("unreachable-chain", chain.name, "",
                            "user chain has rules but nothing jumps to it")
                )
    return findings


def render_findings(findings):
    if not findings:
        return "lint: clean"
    return "\n".join(finding.render() for finding in findings)
