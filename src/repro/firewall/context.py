"""Context fields, the context bitmask, and per-operation frames.

The paper §4.2: "The Process Firewall associates each context field with
a bit in a context bit mask that shows which context field values have
already been collected."  A :class:`ContextFrame` is that bitmask plus
the collected values for one mediated operation; fields whose scope is
``"syscall"`` may be reused across operations within the same syscall
when context caching is enabled.
"""

from __future__ import annotations

import enum
from typing import Dict


class ContextField(enum.IntFlag):
    """Every kind of context a rule can require (bitmask members)."""

    SUBJECT_LABEL = 1 << 0
    OBJECT_LABEL = 1 << 1
    RESOURCE_ID = 1 << 2
    PROGRAM = 1 << 3
    ENTRYPOINT = 1 << 4
    ADV_WRITABLE = 1 << 5
    ADV_READABLE = 1 << 6
    DAC_OWNER = 1 << 7
    TGT_DAC_OWNER = 1 << 8
    SIGNAL_INFO = 1 << 9
    SYSCALL_ARGS = 1 << 10
    SCRIPT_ENTRYPOINT = 1 << 11
    OBJ_IDENTITY = 1 << 12


#: Fields that stay valid for the whole syscall (process-derived), and
#: may therefore be cached across multiple hook invocations (§4.2: "the
#: process call stack used to find program entrypoints is valid
#: throughout a single system call, but multiple resource requests may
#: be made, e.g., in pathname resolution").
SYSCALL_SCOPED = (
    ContextField.SUBJECT_LABEL
    | ContextField.PROGRAM
    | ContextField.ENTRYPOINT
    | ContextField.SYSCALL_ARGS
    | ContextField.SCRIPT_ENTRYPOINT
)


def field_scope(field):
    """Return "syscall" or "operation" for a context field."""
    return "syscall" if field & SYSCALL_SCOPED else "operation"


#: Fields whose value is a pure function of the process identity for a
#: fixed rule base: the subject label and entrypoint are part of the
#: decision-cache key, and the program only changes on ``execve`` (which
#: invalidates the per-task cache).  A traversal that consulted *only*
#: these fields is eligible for the negative-decision cache; touching
#: anything else (object labels, resource ids, adversary accessibility,
#: syscall arguments, signal info, script frames) makes the verdict
#: resource- or call-dependent and therefore uncacheable.
DECISION_STABLE = (
    ContextField.SUBJECT_LABEL
    | ContextField.PROGRAM
    | ContextField.ENTRYPOINT
)

#: Plain-int view of the syscall-scoped mask (hot-path comparisons use
#: int arithmetic; IntFlag operator dispatch is measurably slower).
_SYSCALL_SCOPED_INT = int(SYSCALL_SCOPED)

#: Plain-int view of the decision-stable mask (see above).
_DECISION_STABLE_INT = int(DECISION_STABLE)

#: The same set as a frozenset for hot-path membership tests.
_SYSCALL_SCOPED_FIELDS = frozenset(
    field for field in ContextField if int(field) & _SYSCALL_SCOPED_INT
)


class ContextFrame:
    """Collected context for one mediated operation.

    Attributes:
        mask: bitwise OR (plain int) of the collected field bits.
        values: field -> collected value.
    """

    __slots__ = (
        "mask",
        "values",
        "scoped_dirty",
        "cached_mask",
        "decision_unsafe",
        "used_entrypoint",
        "rule_matched",
        "trace",
    )

    def __init__(self):
        self.mask = 0
        self.values = {}  # type: Dict[ContextField, object]
        #: True when a syscall-scoped field was collected *this frame*
        #: (as opposed to absorbed from the cache) — tells the engine
        #: whether the per-process cache needs rewriting.
        self.scoped_dirty = False
        #: Bits absorbed from the per-process context cache that have
        #: not yet been *used* — `engine.ensure` clears a bit (and
        #: counts one cache hit) the first time a rule actually reads
        #: the field, so absorbed-but-unread fields never inflate the
        #: CONCACHE accounting.
        self.cached_mask = 0
        #: Decision-cache bookkeeping for this traversal: set when any
        #: non-decision-stable field was consulted, when a STATE
        #: match/target touched the process dictionary, or when a
        #: side-effect target fired.
        self.decision_unsafe = False
        #: True when the traversal consulted the entrypoint — the
        #: memoized verdict must then be keyed on the entrypoint head.
        self.used_entrypoint = False
        #: True when any rule fully matched (its target executed);
        #: such traversals are never memoized, so side effects and hit
        #: counters replay faithfully.
        self.rule_matched = False
        #: The :class:`repro.obs.trace.DecisionTrace` recording this
        #: mediation, or ``None`` (the default) when tracing is off.
        #: Carried on the frame so the chain walk and ``ensure`` can
        #: reach it without widening their signatures.
        self.trace = None

    def has(self, field):
        # ``field.value`` keeps the arithmetic on plain ints: IntFlag's
        # reflected operators would otherwise hijack ``int op IntFlag``
        # and pay enum-member construction on every call.
        return bool(self.mask & field.value)

    def get(self, field):
        return self.values[field]

    def put(self, field, value):
        bits = field.value
        self.mask |= bits
        if bits & _SYSCALL_SCOPED_INT:
            self.scoped_dirty = True
        self.values[field] = value

    def absorb_cached(self, cached_values):
        """Seed this frame with syscall-scoped values from the cache."""
        mask = self.mask
        absorbed = 0
        values = self.values
        for field, value in cached_values.items():
            bits = field.value
            mask |= bits
            absorbed |= bits
            values[field] = value
        self.mask = mask
        self.cached_mask |= absorbed

    def syscall_scoped_values(self):
        """Extract the fields eligible for cross-operation caching."""
        if not self.mask & _SYSCALL_SCOPED_INT:
            return {}
        return {
            field: value
            for field, value in self.values.items()
            if field in _SYSCALL_SCOPED_FIELDS
        }
