"""Copy-on-write per-process firewall state (the scale substrate).

The paper's ``task_struct`` extensions (§5.1) give every process three
pieces of firewall-private state: the ``STATE`` dictionary the
stateful rules read and write, the COMPILED engine's negative-decision
cache, and the per-syscall context cache.  ``fork(2)`` must carry all
three to the child — STATE invariants recorded by a parent (the
TOCTTOU check identity, the in-handler flag) protect the forked worker
too, and a warm decision cache is exactly as valid in the child as in
the parent (its entries are pure functions of label/program/
entrypoint, all preserved across fork).

Eagerly *copying* them, however, is what the LSM-overhead literature
identifies as the dominating cost at scale: fixed per-process state
work multiplied by process count.  A pre-fork server model at 100k+
sessions pays the parent's whole state size again on every fork, for
state the child will usually never write.

This module provides the structural-sharing substrate instead, in the
style of :mod:`repro.firewall.rescache`'s generation discipline:

- :class:`CowMap` — a dict-shaped map whose backing storage is shared
  between fork relatives until the **first mutation** on either side,
  at which point the writer breaks the share with one shallow copy and
  owns its storage from then on.  Every mutation bumps a per-map
  ``generation`` stamp, so caches keyed on map content can validate
  with one integer compare instead of a deep compare.
- :class:`ProcState` — the per-process bundle (``state`` CowMap,
  decision cache, context cache) with an O(1) :meth:`ProcState.fork`
  and the same copy-on-first-mutation contract for the decision
  cache's entries.  The eager-copy behaviour survives as
  ``fork(eager=True)``: it is the measured baseline of
  ``benchmarks/bench_fork_scale.py`` and the reference side of the
  fork/exec differential suite, never the default.

Sharing is tracked per holder, not by refcounting: ``fork`` marks both
sides shared, and a holder that mutates copies once and is private
thereafter.  A parent that forked ten thousand children therefore pays
one copy on its next write — not ten thousand — and children that
never write pay nothing at all.

Module-level counters (:func:`substrate_stats`) record fork and
copy-break totals so benchmarks and tests can assert the sharing
actually happened (a CoW substrate that silently copies eagerly would
still pass every differential test).
"""

from __future__ import annotations

from collections.abc import MutableMapping
from typing import Dict, Optional, Tuple

#: Substrate event counters, keyed by event name.  Single-threaded by
#: construction (each simulated kernel — and each parallel replay
#: worker — lives in its own interpreter), so plain ints suffice.
_STATS = {
    "cow_forks": 0,
    "eager_forks": 0,
    "state_copies": 0,
    "decision_copies": 0,
    "releases": 0,
}


def substrate_stats():
    """Snapshot of the substrate counters (forks and copy breaks).

    ``cow_forks`` / ``eager_forks`` count :meth:`ProcState.fork` calls
    by mode; ``state_copies`` counts :class:`CowMap` share breaks;
    ``decision_copies`` counts decision-cache share breaks;
    ``releases`` counts :meth:`ProcState.release` reaps.  The
    fork-scale benchmark reports these next to its timings so a
    regression to eager copying is visible as numbers, not just as a
    slower curve.
    """
    return dict(_STATS)


def reset_substrate_stats():
    """Zero the substrate counters (benchmark/test isolation)."""
    for key in _STATS:
        _STATS[key] = 0


class CowMap(MutableMapping):
    """A dict-shaped map with fork-time structural sharing.

    Reads delegate straight to the backing dict.  Mutations first
    check the ``_shared`` flag: a shared map copies its backing dict
    once (``generation`` is carried over and then bumped like any
    mutation), clears the flag, and mutates its private copy.
    :meth:`fork` is O(1): the child references the same backing dict
    and **both** sides are marked shared, so whichever writes first
    pays the copy.

    The ``generation`` stamp increments on every mutation (including
    :meth:`clear` and the implicit unshare-copy), giving observers a
    rescache-style validity token: equal generations on the same
    lineage imply equal content.
    """

    __slots__ = ("_data", "_shared", "generation")

    def __init__(self, data=None):
        self._data = dict(data) if data else {}
        self._shared = False
        self.generation = 0

    # ---- sharing protocol ----

    @property
    def shared(self):
        """True while the backing dict may be referenced by a relative."""
        return self._shared

    def fork(self):
        """O(1) child map: share the backing dict, mark both sides."""
        child = CowMap.__new__(CowMap)
        child._data = self._data
        child._shared = True
        child.generation = self.generation
        self._shared = True
        return child

    def copy_eager(self):
        """Independent deep-enough copy (the eager-fork baseline).

        Shallow per-entry, like the share break: stored values are
        the resolved scalars of the STATE target (inode numbers,
        labels, literals), so one dict copy is the faithful eager
        semantics.
        """
        child = CowMap.__new__(CowMap)
        child._data = dict(self._data)
        child._shared = False
        child.generation = self.generation
        return child

    def _unshare(self):
        if self._shared:
            self._data = dict(self._data)
            self._shared = False
            _STATS["state_copies"] += 1

    # ---- mapping protocol (reads stay on the shared dict) ----

    def __getitem__(self, key):
        return self._data[key]

    def __contains__(self, key):
        return key in self._data

    def __iter__(self):
        return iter(self._data)

    def __len__(self):
        return len(self._data)

    def get(self, key, default=None):
        """Read with default, without the mixin's exception round-trip."""
        return self._data.get(key, default)

    def __setitem__(self, key, value):
        self._unshare()
        self._data[key] = value
        self.generation += 1

    def __delitem__(self, key):
        self._unshare()
        del self._data[key]
        self.generation += 1

    def clear(self):
        """Drop every entry; a shared map just walks away from the dict."""
        if self._shared:
            self._data = {}
            self._shared = False
        else:
            self._data.clear()
        self.generation += 1

    def __eq__(self, other):
        if isinstance(other, CowMap):
            return self._data == other._data
        if isinstance(other, dict):
            return self._data == other
        return NotImplemented

    def __ne__(self, other):
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    __hash__ = None  # mutable mapping

    def __repr__(self):  # pragma: no cover - debugging aid
        return "CowMap({!r}{})".format(self._data, ", shared" if self._shared else "")


def _copy_decision_entries(entries):
    """Element-wise copy of negative-decision entries.

    Values are ``True`` (subject-keyed allow) or a mutable set of
    entrypoint heads; the sets must be copied too or a child's
    ``known.add(head)`` would leak into every fork relative.
    """
    return {
        key: (value if value is True else set(value))
        for key, value in entries.items()
    }


class ProcState:
    """The per-process firewall state bundle, fork-shareable as a unit.

    Holds the three ``task_struct`` extensions the engine reads per
    mediation:

    - :attr:`state` — the ``STATE`` match/target dictionary, a
      :class:`CowMap`;
    - the negative-decision cache — ``(rule-base stamp, {(op, label):
      True | {entrypoint heads}})``, stored unpacked in slots so the
      hot probe is two attribute loads and one ``is`` compare;
    - :attr:`context_cache` — the per-syscall context cache
      ``(syscall_seq, {field: value})``; replaced wholesale on
      writeback, so plain reference sharing is already copy-safe (a
      stale seq can never match: the kernel's seq is monotonic).

    The decision cache follows the same share-then-break protocol as
    :class:`CowMap`, but the break is element-wise
    (:func:`_copy_decision_entries`) because entry values include
    mutable head sets.
    """

    __slots__ = ("state", "context_cache", "_dstamp", "_dentries", "_dshared")

    def __init__(self):
        self.state = CowMap()
        self.context_cache = None  # type: Optional[Tuple[int, Dict]]
        self._dstamp = None
        self._dentries = None  # type: Optional[Dict]
        self._dshared = False

    # ---- negative-decision cache ----

    def decision_probe(self, stamp):
        """Entries for reading, or ``None`` when absent/stale.

        Identity compare against the live rule-base ``stamp``, exactly
        like the engine's inline probe before this module existed: a
        rule mutation (new stamp object) silently orphans the entries.
        Callers must treat the returned dict as read-only — it may be
        shared with fork relatives; writes go through
        :meth:`decision_writable`.
        """
        return self._dentries if self._dstamp is stamp else None

    def decision_writable(self, stamp):
        """Entries safe to mutate under ``stamp``, allocating or
        breaking shares as needed.

        Stale or absent caches are replaced by a fresh empty dict
        (allocation waits for the first recordable verdict, so
        uncacheable workloads and short-lived forks never allocate);
        a shared cache is element-wise copied once and owned from then
        on.
        """
        if self._dstamp is not stamp:
            self._dstamp = stamp
            self._dentries = {}
            self._dshared = False
        elif self._dshared:
            self._dentries = _copy_decision_entries(self._dentries)
            self._dshared = False
            _STATS["decision_copies"] += 1
        return self._dentries

    def decision_invalidate(self):
        """Drop the decision cache (STATE target fired, or execve)."""
        self._dstamp = None
        self._dentries = None
        self._dshared = False

    @property
    def decision_cache(self):
        """The cache as the historical ``(stamp, entries)`` tuple view."""
        if self._dstamp is None:
            return None
        return (self._dstamp, self._dentries)

    @decision_cache.setter
    def decision_cache(self, value):
        if value is None:
            self.decision_invalidate()
        else:
            self._dstamp, self._dentries = value
            self._dshared = False

    @property
    def decision_shared(self):
        """True while the decision entries may be shared with a relative."""
        return self._dshared

    # ---- lifecycle ----

    def fork(self, eager=False):
        """Child state for ``fork(2)``.

        Default (CoW): O(1) — the child references the parent's state
        map and decision entries, both sides marked shared; the first
        writer on either side breaks the share.  ``eager=True`` is the
        deep-copy baseline (what a non-sharing implementation would
        do): pay the whole copy now, own everything immediately.  Both
        modes are observably identical to the engine — the fork/exec
        differential suite pins that — differing only in when the copy
        happens (and whether it happens at all for write-free
        children).
        """
        child = ProcState.__new__(ProcState)
        if eager:
            child.state = self.state.copy_eager()
            child._dstamp = self._dstamp
            child._dentries = (
                None if self._dentries is None
                else _copy_decision_entries(self._dentries)
            )
            child._dshared = False
            _STATS["eager_forks"] += 1
        else:
            child.state = self.state.fork()
            child._dstamp = self._dstamp
            child._dentries = self._dentries
            if self._dentries is not None:
                child._dshared = True
                self._dshared = True
            else:
                child._dshared = False
            _STATS["cow_forks"] += 1
        child.context_cache = self.context_cache
        return child

    def execve_reset(self):
        """``execve(2)``: a new program starts with empty firewall state.

        STATE invariants describe call sites of the old image; the
        decision cache is keyed on the old program's entrypoints; the
        context cache holds the old stack's unwind.  All three drop.
        A shared map is simply abandoned (the relatives keep it).
        """
        self.state = CowMap()
        self.context_cache = None
        self.decision_invalidate()

    def release(self):
        """Reap path: drop every reference this bundle holds.

        Called when a process leaves the census for good (session
        close in service mode, explicit reap).  A shared map or
        decision cache is simply walked away from — fork relatives
        keep theirs — so after release this bundle pins no storage
        regardless of how many relatives once shared it.  Counted in
        ``substrate_stats()['releases']`` so churn tests can assert
        reaps actually happened rather than processes merely going
        out of scope.
        """
        self.state = CowMap()
        self.context_cache = None
        self.decision_invalidate()
        _STATS["releases"] += 1

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<ProcState state={} decision={}>".format(
            len(self.state), "none" if self._dentries is None else len(self._dentries)
        )
