"""Rule-language value atoms.

Match and target module arguments may reference runtime context by atom
name (paper §5.2: "Match and target modules in a rule can refer to a
context in their arguments (e.g., C_INO for inode number); this is
replaced by the actual context value at runtime").
"""

from __future__ import annotations

from repro.firewall.context import ContextField

#: atom name -> (required field, extractor over the collected value)
_ATOMS = {
    "C_INO": (ContextField.RESOURCE_ID, lambda rid: None if rid is None else rid[1]),
    "C_DEV_INO": (ContextField.RESOURCE_ID, lambda rid: rid),
    # Extension: recycling-proof kernel identity (dev, ino, generation).
    "C_OBJ": (ContextField.OBJ_IDENTITY, lambda identity: identity),
    "C_DAC_OWNER": (ContextField.DAC_OWNER, lambda uid: uid),
    "C_TGT_DAC_OWNER": (ContextField.TGT_DAC_OWNER, lambda uid: uid),
    "C_LABEL": (ContextField.OBJECT_LABEL, lambda label: label),
    "C_SUBJECT": (ContextField.SUBJECT_LABEL, lambda label: label),
    "C_PROGRAM": (ContextField.PROGRAM, lambda path: path),
}


def is_atom(token):
    return isinstance(token, str) and token in _ATOMS


class Value:
    """A literal or context-atom argument to a match/target module."""

    __slots__ = ("literal", "atom")

    def __init__(self, token):
        if is_atom(token):
            self.atom = token
            self.literal = None
        else:
            self.atom = None
            self.literal = _coerce(token)

    @property
    def required_field(self):
        """The :class:`ContextField` needed to resolve this value."""
        if self.atom is None:
            return None
        return _ATOMS[self.atom][0]

    def resolve(self, engine, operation, frame):
        """Produce the runtime value (collecting context on demand)."""
        if self.atom is None:
            return self.literal
        field, extract = _ATOMS[self.atom]
        return extract(engine.ensure(field, operation, frame))

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<Value {}>".format(self.atom or repr(self.literal))


def _coerce(token):
    """Interpret numeric-looking rule tokens as integers."""
    if isinstance(token, str):
        stripped = token.strip("'\"")
        try:
            return int(stripped, 0)
        except ValueError:
            return stripped
    return token
