"""Virtual filesystem substrate.

Implements the namespace semantics that resource access attacks depend on:

- an inode table with **inode-number recycling** (needed to express the
  "cryogenic sleep" TOCTTOU variant, where a freed inode number is reused
  by the adversary to defeat dev/ino comparison checks);
- a directory tree with hard links, symbolic links, sockets and FIFOs;
- a **component-wise path walker** (:mod:`repro.vfs.namei`) that emits one
  resource-access event per component, so per-component protections such as
  ``safe_open`` and the paper's symlink rules can mediate every step.
"""

from repro.vfs.inode import FileType, Inode, InodeTable
from repro.vfs.filesystem import FileSystem
from repro.vfs.file import OpenFile, OpenFlags
from repro.vfs.stat import StatResult
from repro.vfs.namei import PathWalker, WalkEvent, WalkStep

__all__ = [
    "FileType",
    "Inode",
    "InodeTable",
    "FileSystem",
    "OpenFile",
    "OpenFlags",
    "StatResult",
    "PathWalker",
    "WalkEvent",
    "WalkStep",
]
