"""Stat results returned by ``stat``/``lstat``/``fstat``.

A :class:`StatResult` is a point-in-time snapshot: it records the inode's
identity and attributes at the moment of the call and does **not** track
later changes.  Programs that compare two snapshots (the classic
``lstat``/``open``/``fstat`` dance of Figure 1a) therefore race exactly
the way real programs do.
"""

from __future__ import annotations

from repro.vfs.inode import FileType, S_ISUID


class StatResult:
    """Immutable snapshot of an inode's metadata."""

    __slots__ = ("st_dev", "st_ino", "st_mode", "st_uid", "st_gid", "st_nlink", "st_size", "st_type", "st_label", "st_generation")

    def __init__(self, inode):
        self.st_dev = inode.device
        self.st_ino = inode.ino
        self.st_mode = inode.mode
        self.st_uid = inode.uid
        self.st_gid = inode.gid
        self.st_nlink = inode.nlink
        self.st_size = len(inode.data) if inode.data else 0
        self.st_type = inode.itype
        self.st_label = inode.label
        self.st_generation = inode.generation

    def is_symlink(self):
        """``S_ISLNK`` equivalent."""
        return self.st_type is FileType.LNK

    def is_dir(self):
        return self.st_type is FileType.DIR

    def is_regular(self):
        return self.st_type is FileType.REG

    def is_setuid(self):
        return bool(self.st_mode & S_ISUID)

    def identity(self):
        """The ``(dev, ino)`` pair used in check/use comparisons."""
        return (self.st_dev, self.st_ino)

    def same_file(self, other):
        """Compare identities the way Figure 1a's lines 8-9 do.

        Intentionally compares only ``(dev, ino)`` — not generation — so
        that inode recycling can defeat it, as in the paper.
        """
        return self.st_dev == other.st_dev and self.st_ino == other.st_ino

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<StatResult dev={} ino={} type={} uid={}>".format(
            self.st_dev, self.st_ino, self.st_type.value, self.st_uid
        )
