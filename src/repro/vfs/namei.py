"""Component-wise pathname resolution (the kernel's ``namei``).

The walker resolves one component at a time, physically following
symbolic links with a loop limit, and reports **every step** to an
observer callback.  The kernel wires that observer to LSM + Process
Firewall mediation, which is how per-component defences (the paper's
``safe_open_PF`` and rule R8) see each link traversal rather than only
the final object.

Semantics reproduced from Linux:

- ``..`` in the root directory stays at the root;
- ``..`` is resolved *physically* against the directory reached so far
  (after symlink expansion), not lexically against the input string —
  this is what makes ``../../etc/passwd`` directory-traversal inputs
  effective when programs concatenate strings instead of walking;
- a symlink in a non-final component is always followed; the final
  component is followed unless the caller passes ``follow_final=False``
  (``O_NOFOLLOW`` / ``lstat``);
- at most ``max_symlinks`` expansions per resolution, then ``ELOOP``.

Fast path: when a :class:`repro.vfs.dcache.Dcache` is attached, the
walker memoizes whole resolutions and **replays the recorded steps to
the observer** on a hit — mediation order, counts, and deny points are
byte-identical to a cold walk, only the directory probing, step
allocation, and prefix-string work is skipped.  The cold walk itself
is kept lean: ``WalkStep.prefix`` strings are computed lazily (only
when an observer, audit, or trace actually reads them) and step
objects are pooled across observer-less error walks.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional

from repro import errors


class WalkEvent(enum.Enum):
    """What happened at one step of a path walk."""

    LOOKUP = "lookup"  # searched a directory for a component
    SYMLINK_FOLLOW = "symlink_follow"  # read a symlink body and followed it
    FINAL = "final"  # reached the terminal object


class WalkStep:
    """One mediated step of a resolution.

    Attributes:
        event: the :class:`WalkEvent` kind.
        inode: the inode involved (directory searched, link read, or the
            final object).
        name: the component name being resolved at this step.
        prefix: the canonical path of ``inode`` (best effort, for audit).
            Computed lazily from the recorded component tuple on first
            read and cached — walks whose steps nobody inspects (no
            observer, no audit, no trace) never pay the string build.
        depth: 0-based count of components consumed so far.
    """

    __slots__ = ("event", "inode", "name", "depth", "_parts", "_prefix")

    def __init__(self, event, inode, name, parts, depth):
        self.event = event
        self.inode = inode
        self.name = name
        self.depth = depth
        self._parts = parts
        self._prefix = None

    @property
    def prefix(self):
        """Canonical path of :attr:`inode`, built on first access."""
        prefix = self._prefix
        if prefix is None:
            prefix = self._prefix = "/" + "/".join(self._parts)
        return prefix

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<WalkStep {} {!r} at {!r} ino={}>".format(
            self.event.value, self.name, self.prefix, self.inode.ino
        )


class ResolvedPath:
    """Result of a resolution.

    Attributes:
        inode: the final inode, or ``None`` when resolving for create and
            the final entry does not exist.
        parent: the directory holding the final entry.
        name: the final component name ("" when the path was "/").
        path: canonical path of the final object.
        steps: every :class:`WalkStep` taken, in order.
        symlinks_followed: number of link expansions performed.
    """

    __slots__ = ("inode", "parent", "name", "path", "steps", "symlinks_followed")

    def __init__(self, inode, parent, name, path, steps, symlinks_followed):
        self.inode = inode
        self.parent = parent
        self.name = name
        self.path = path
        self.steps = steps
        self.symlinks_followed = symlinks_followed


def split_path(path):
    """Split a path string into components, dropping empty and ``.``."""
    if not isinstance(path, str) or not path:
        raise errors.EINVAL("empty pathname")
    if len(path) > 4096:
        raise errors.ENAMETOOLONG(path[:32] + "...")
    return [c for c in path.split("/") if c not in ("", ".")]


#: Upper bound on pooled :class:`WalkStep` objects per walker.
_STEP_POOL_MAX = 128


class PathWalker:
    """Resolves paths against a :class:`repro.vfs.FileSystem`.

    With ``dcache`` attached (a :class:`repro.vfs.dcache.Dcache`),
    component lookups go through the dentry cache and whole
    resolutions are memoized + replayed; without it (or with
    ``dcache.enabled`` false) every walk runs cold.
    """

    def __init__(self, fs, max_symlinks=40, dcache=None):
        self.fs = fs
        self.max_symlinks = max_symlinks
        self.dcache = dcache
        self._step_pool = []  # type: List[WalkStep]

    # ------------------------------------------------------------------
    # step free-list
    # ------------------------------------------------------------------

    def _new_step(self, event, inode, name, parts, depth):
        """Allocate a step, reusing a pooled object when available."""
        pool = self._step_pool
        if pool:
            step = pool.pop()
            step.event = event
            step.inode = inode
            step.name = name
            step.depth = depth
            step._parts = parts
            step._prefix = None
            return step
        return WalkStep(event, inode, name, parts, depth)

    def _recycle_steps(self, steps):
        """Return steps to the pool.

        Only called for walks whose steps provably escaped to nobody:
        observer-less walks that ended in an error (the caller sees
        the exception, never the step list).  Inode references are
        dropped so the pool pins nothing.
        """
        pool = self._step_pool
        while steps and len(pool) < _STEP_POOL_MAX:
            step = steps.pop()
            step.inode = None
            step._parts = ()
            step._prefix = None
            pool.append(step)

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------

    def resolve(
        self,
        path,
        cwd=None,
        follow_final=True,
        want_parent=False,
        observer=None,  # type: Optional[Callable[[WalkStep], None]]
    ):
        """Resolve ``path`` to a :class:`ResolvedPath`.

        Args:
            path: the pathname; absolute, or relative to ``cwd``.
            cwd: the starting directory inode for relative paths.
            follow_final: follow a symlink in the terminal position.
            want_parent: stop at the parent directory; the final entry
                need not exist (used by create/unlink/rename/bind).
            observer: callback invoked with each :class:`WalkStep`; may
                raise (e.g. :class:`repro.errors.PFDenied`) to abort the
                walk — this is the mediation hook.  Replayed hits invoke
                it with the recorded steps in the recorded order.

        Raises:
            ENOENT / ENOTDIR / ELOOP per POSIX semantics.
        """
        dcache = self.dcache
        if dcache is None or not dcache.enabled or not isinstance(path, str) or not path:
            return self._resolve_cold(path, cwd, follow_final, want_parent, observer)
        if path.startswith("/"):
            key = (path, follow_final, want_parent)
        elif cwd is not None:
            key = (path, follow_final, want_parent, cwd.ino, cwd.generation)
        else:
            return self._resolve_cold(path, cwd, follow_final, want_parent, observer)
        hit = dcache.walk_fetch(key)
        if hit is not None:
            steps = hit.steps
            if observer is not None:
                for step in steps:
                    observer(step)
            return ResolvedPath(
                hit.inode, hit.parent, hit.name, hit.path, list(steps), hit.symlinks_followed
            )
        resolved = self._resolve_cold(path, cwd, follow_final, want_parent, observer)
        dcache.walk_store(key, resolved)
        return resolved

    def _lookup(self, current, name):
        """One component lookup, dentry-cached when a dcache is attached."""
        dcache = self.dcache
        if dcache is not None and dcache.enabled:
            return dcache.lookup(self.fs, current, name)
        return self.fs.lookup(current, name)

    def _resolve_cold(self, path, cwd, follow_final, want_parent, observer):
        """The full component-by-component walk (the pre-dcache path)."""
        try:
            return self._walk(path, cwd, follow_final, want_parent, observer)
        except errors.KernelError:
            raise

    def _walk(self, path, cwd, follow_final, want_parent, observer):
        components = split_path(path)
        absolute = path.startswith("/")
        if absolute:
            current = self.fs.root
            ancestry = []  # parents of `current`, for ".."
            prefix_parts = []  # type: List[str]
        else:
            if cwd is None:
                raise errors.EINVAL("relative path with no cwd")
            current = cwd
            ancestry = []
            prefix_parts = ["<cwd>"]

        steps = []  # type: List[WalkStep]
        followed = 0
        depth = 0
        new_step = self._new_step

        def emit(event, inode, name):
            step = new_step(event, inode, name, tuple(prefix_parts), depth)
            steps.append(step)
            if observer is not None:
                observer(step)

        # Work queue of remaining components; symlink targets are spliced
        # in at the front.
        remaining = list(components)

        try:
            while remaining:
                name = remaining.pop(0)
                is_final = not remaining

                if name == "..":
                    if ancestry:
                        current = ancestry.pop()
                        prefix_parts.pop()
                    # ".." at the root stays at the root
                    continue

                if not current.is_dir:
                    raise errors.ENOTDIR("/" + "/".join(prefix_parts))

                if want_parent and is_final:
                    emit(WalkEvent.LOOKUP, current, name)
                    try:
                        child = self._lookup(current, name)
                    except errors.ENOENT:
                        child = None
                    full = "/" + "/".join(prefix_parts + [name])
                    return ResolvedPath(child, current, name, full, steps, followed)

                emit(WalkEvent.LOOKUP, current, name)
                child = self._lookup(current, name)
                depth += 1

                if child.is_symlink and (not is_final or follow_final):
                    followed += 1
                    if followed > self.max_symlinks:
                        raise errors.ELOOP("/" + "/".join(prefix_parts + [name]))
                    emit(WalkEvent.SYMLINK_FOLLOW, child, name)
                    target = child.symlink_target or ""
                    target_components = split_path(target) if target else []
                    if target.startswith("/"):
                        current = self.fs.root
                        ancestry = []
                        prefix_parts = []
                    remaining = target_components + remaining
                    continue

                if child.is_symlink and is_final and not follow_final:
                    # Terminal symlink with nofollow: hand it back as-is.
                    prefix_parts.append(name)
                    emit(WalkEvent.FINAL, child, name)
                    return ResolvedPath(
                        child, current, name, "/" + "/".join(prefix_parts), steps, followed
                    )

                ancestry.append(current)
                prefix_parts.append(name)
                current = child
        except errors.KernelError:
            if observer is None:
                # Nobody saw these steps (no observer; the caller gets
                # the exception, not the list) — pool them.
                self._recycle_steps(steps)
            raise

        # Path fully consumed (e.g. "/", "a/..", or a trailing symlink
        # that expanded to nothing).
        emit(WalkEvent.FINAL, current, prefix_parts[-1] if prefix_parts else "/")
        parent = ancestry[-1] if ancestry else self.fs.root
        name = prefix_parts[-1] if prefix_parts else ""
        return ResolvedPath(current, parent, name, "/" + "/".join(prefix_parts), steps, followed)
