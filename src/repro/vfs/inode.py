"""Inodes and the inode table.

The inode table hands out inode numbers from a free list so that numbers
are **recycled** once an inode is both unlinked and no longer open.  This
mirrors real filesystems and is load-bearing for the reproduction: Olaf
Kirch's "cryogenic sleep" attack (paper §2.1) relies on an adversary
recycling a checked inode's number between a victim's ``lstat`` and
``open``.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from repro import errors


class FileType(enum.Enum):
    """Inode types, mirroring the ``S_IF*`` constants we need."""

    REG = "reg"
    DIR = "dir"
    LNK = "lnk"
    SOCK = "sock"
    FIFO = "fifo"
    CHR = "chr"


#: Permission-bit constants (subset of POSIX mode bits).
S_ISUID = 0o4000
S_ISGID = 0o2000
S_ISVTX = 0o1000  # sticky bit, honoured on world-writable directories


class Inode:
    """A single filesystem object.

    Attributes:
        ino: inode number, unique among *live* inodes on the device but
            recyclable after release.
        generation: bumped every time the number is reused, so tests can
            tell a recycled inode from the original even when ``ino``
            collides (real kernels expose this via ``i_generation``).
        itype: the :class:`FileType`.
        uid / gid / mode: DAC ownership and permission bits.
        label: SELinux-style type label (e.g. ``"etc_t"``).
        nlink: number of directory entries referencing this inode.
        opens: number of open file descriptions referencing this inode.
        meta_gen: security-metadata generation, bumped by every
            mutation that can change who may access this object
            (chmod / chown / relabel / link changes).  Consumed by the
            engine's resource-context cache
            (:mod:`repro.firewall.rescache`) as an invalidation signal.
    """

    __slots__ = (
        "ino",
        "generation",
        "meta_gen",
        "itype",
        "uid",
        "gid",
        "mode",
        "label",
        "nlink",
        "opens",
        "data",
        "symlink_target",
        "children",
        "device",
        "ctime",
        "mtime",
        "bound_socket",
    )

    def __init__(self, ino, itype, uid=0, gid=0, mode=0o644, label="unlabeled_t", device=0, generation=0, now=0):
        self.ino = ino
        self.generation = generation
        self.meta_gen = 0
        self.itype = itype
        self.uid = uid
        self.gid = gid
        self.mode = mode
        self.label = label
        self.nlink = 0
        self.opens = 0
        self.data = b""
        self.symlink_target = None  # type: Optional[str]
        self.children = {} if itype is FileType.DIR else None  # type: Optional[Dict[str, int]]
        self.device = device
        self.ctime = now
        self.mtime = now
        self.bound_socket = None  # set by the socket layer when bound

    @property
    def is_dir(self):
        return self.itype is FileType.DIR

    @property
    def is_symlink(self):
        return self.itype is FileType.LNK

    @property
    def is_setuid(self):
        return bool(self.mode & S_ISUID)

    @property
    def is_setgid(self):
        return bool(self.mode & S_ISGID)

    @property
    def is_sticky(self):
        return bool(self.mode & S_ISVTX)

    def bump_meta(self):
        """Invalidate cached security conclusions about this object.

        Called by every VFS mutation that can change an access answer
        (chmod / chown / relabel / unlink / rename).  Cheap enough to
        over-call: a bump only costs cached-context recomputation.
        """
        self.meta_gen += 1

    def identity(self):
        """Return the ``(device, ino)`` pair programs compare after stat.

        Deliberately excludes ``generation``: the whole point of the
        cryogenic-sleep attack is that ``(dev, ino)`` comparison is not
        sufficient, which only manifests if identity is number-based.
        """
        return (self.device, self.ino)

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<Inode #{} {} label={} uid={} mode={:o}>".format(
            self.ino, self.itype.value, self.label, self.uid, self.mode
        )


class InodeTable:
    """Allocates, tracks, and recycles inodes for one device.

    Inode numbers come from a monotonically increasing counter unless the
    free list is non-empty, in which case the lowest freed number is
    reused first (eager recycling makes the cryogenic-sleep race easy to
    script deterministically).
    """

    def __init__(self, device=0, first_ino=2, clock=None):
        self.device = device
        self._next_ino = first_ino
        self._free = []  # sorted list of recycled numbers
        self._live = {}  # type: Dict[int, Inode]
        self._generation = {}  # ino -> times this number has been used
        self._clock = clock

    def _now(self):
        return self._clock.now() if self._clock is not None else 0

    def __len__(self):
        return len(self._live)

    def alloc(self, itype, uid=0, gid=0, mode=0o644, label="unlabeled_t"):
        """Create a new inode, reusing a freed number when available."""
        if self._free:
            ino = self._free.pop(0)
        else:
            ino = self._next_ino
            self._next_ino += 1
        gen = self._generation.get(ino, 0) + 1
        self._generation[ino] = gen
        inode = Inode(
            ino,
            itype,
            uid=uid,
            gid=gid,
            mode=mode,
            label=label,
            device=self.device,
            generation=gen,
            now=self._now(),
        )
        self._live[ino] = inode
        return inode

    def get(self, ino):
        """Look up a live inode by number, raising ``ENOENT`` if freed."""
        try:
            return self._live[ino]
        except KeyError:
            raise errors.ENOENT("stale inode {}".format(ino))

    def is_live(self, ino):
        return ino in self._live

    def link_added(self, inode):
        inode.nlink += 1

    def link_removed(self, inode):
        """Drop a directory entry reference; release if fully dead."""
        if inode.nlink <= 0:
            raise errors.EINVAL("nlink underflow on inode {}".format(inode.ino))
        inode.nlink -= 1
        self._maybe_release(inode)

    def opened(self, inode):
        inode.opens += 1

    def closed(self, inode):
        if inode.opens <= 0:
            raise errors.EINVAL("open-count underflow on inode {}".format(inode.ino))
        inode.opens -= 1
        self._maybe_release(inode)

    def _maybe_release(self, inode):
        """Free the inode number once no links and no opens remain.

        This is the recycling point: as long as any process holds the file
        open the number stays pinned, which is exactly the property the
        paper's ``open_race`` defence (extra ``lstat`` while holding the
        fd) depends on.
        """
        if inode.nlink == 0 and inode.opens == 0 and inode.ino in self._live:
            del self._live[inode.ino]
            self._free.append(inode.ino)
            self._free.sort()
