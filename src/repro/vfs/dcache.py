"""Fast-path name resolution: dentry cache + walk-replay cache.

Every syscall in this reproduction re-resolves its pathname
component-by-component in :class:`repro.vfs.namei.PathWalker` — the
kernel-side cost the paper's lmbench rows (Table 6) charge to resource
access.  Linux amortizes that with the dcache/RCU-walk split; this
module is our analogue, built the same way
:mod:`repro.firewall.rescache` amortizes resource-context collection:

**cache the walk, never the verdict.**

Two caches, one invariant:

- :class:`DentryCache` — per-filesystem ``(dir_ino, name) ->
  child inode`` map with negative entries, invalidated *precisely*:
  every namespace mutation (`create`/`link`/`unlink`/`rmdir`/`rename`)
  drops exactly the entry it obsoletes
  (:meth:`repro.vfs.filesystem.FileSystem._namespace_changed`), and
  ``remount`` clears wholesale.

- :class:`WalkCache` — whole-resolution memo keyed
  ``(path, follow_final, want_parent, start)`` holding the final
  :class:`~repro.vfs.namei.ResolvedPath` *plus* its recorded step
  list, valid only under the generation stamp captured at record time
  (:meth:`GenerationSources.walk_stamp`: VFS namespace generation,
  mount generation, adversary epoch).  On a hit the walker **replays
  every recorded step to the observer**, so LSM + Process Firewall
  mediation order, counts, and deny points are byte-identical to a
  cold walk — per-component defenses (rule R8, ``safe_open_PF``) see
  every ``LOOKUP``/``SYMLINK_FOLLOW``, and a ``PFDenied`` raised
  mid-replay aborts exactly where the cold walk would.  Verdicts are
  never memoized: DAC, MAC, and firewall rules re-run live on every
  hit, which is why a ``chmod`` needs no invalidation at all.

What *does* invalidate (the full matrix lives in ``docs/DCACHE.md``):
``create``/``link``/``unlink``/``rmdir``/``rename``/``symlink`` bump
``FileSystem.ns_gen`` and drop their dentry entry; ``relabel`` bumps
``ns_gen``; ``remount`` bumps ``mount_generation`` and clears both
caches; registering a new adversary UID bumps the adversary epoch.
Any stamp change drops every cached walk before the next fetch.

Counters are plain ints (zero-overhead when nobody reads them),
surfaced by ``pfctl counters`` and exportable into a metrics registry
as the ``pf_dcache_total{cache=...,result=...}`` family via
:meth:`Dcache.publish`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro import errors
from repro.vfs.namei import ResolvedPath

_MISSING = object()

#: A cached negative dentry ("this name does not exist here").
_NEGATIVE = None


class GenerationSources:
    """The system-wide invalidation stamps, shared with ``rescache``.

    One object owns the references the caches poll: the filesystem
    (namespace + mount generations) and the adversary model (epoch).
    :mod:`repro.firewall.rescache` consumes :meth:`shared_stamp` for
    its per-inode validity tuples; the walk cache consumes
    :meth:`walk_stamp`.  Collecting them here keeps the two caches'
    lifetimes aligned by construction instead of by convention.
    """

    __slots__ = ("fs", "adversaries")

    def __init__(self, fs, adversaries=None):
        self.fs = fs
        self.adversaries = adversaries

    def walk_stamp(self):
        """Validity stamp for memoized resolutions.

        ``(ns_gen, mount_generation, adversary epoch)`` — any namespace
        mutation, mount-table change, or adversary-population growth
        yields a fresh tuple, dropping every cached walk.
        """
        fs = self.fs
        adversaries = self.adversaries
        return (
            fs.ns_gen,
            fs.mount_generation,
            adversaries.epoch if adversaries is not None else 0,
        )

    def shared_stamp(self):
        """The stamp components the resource-context cache also needs.

        ``(adversary epoch, mount_generation)`` — the system-wide half
        of :meth:`repro.firewall.rescache.ResourceContextCache._validity`;
        the per-inode half (``generation``/``meta_gen``) stays with the
        inode.
        """
        adversaries = self.adversaries
        return (
            adversaries.epoch if adversaries is not None else 0,
            self.fs.mount_generation,
        )


class DentryCache:
    """``(dir_ino, name) -> child inode`` with negative entries.

    Entries are invalidated *precisely*: the filesystem mutation hooks
    call :meth:`invalidate` with exactly the ``(dir_ino, name)`` pair
    they changed, so an unrelated create never disturbs a hot entry.
    Storing the child inode object (conceptually its ``child_ino``)
    makes a hit a single dict probe; the object can never be a
    recycled tenant because recycling requires the last unlink, and
    that unlink dropped this entry first.  Eviction is wholesale at
    ``capacity`` distinct keys, like the resource-context cache —
    steady-state working sets are tiny compared to any sane capacity.
    """

    __slots__ = ("capacity", "hits", "neg_hits", "misses", "invalidations", "_entries")

    def __init__(self, capacity=8192):
        self.capacity = capacity
        self.hits = 0
        self.neg_hits = 0
        self.misses = 0
        self.invalidations = 0
        #: (dir_ino, name) -> child Inode, or ``_NEGATIVE`` for ENOENT.
        self._entries = {}  # type: Dict[Tuple[int, str], object]

    def __len__(self):
        return len(self._entries)

    def clear(self):
        """Drop every entry (remount / explicit reset)."""
        self._entries.clear()

    def invalidate(self, dir_ino, name):
        """Drop the entry for one directory slot, if cached."""
        if self._entries.pop((dir_ino, name), _MISSING) is not _MISSING:
            self.invalidations += 1

    def lookup(self, fs, dir_inode, name):
        """Cached :meth:`repro.vfs.filesystem.FileSystem.lookup`.

        Positive hit returns the child inode; negative hit raises the
        same ``ENOENT`` the filesystem would; a miss delegates to the
        filesystem and stores the answer (negative answers included).
        Semantics — including ``.`` and the ``ENOTDIR`` check — match
        ``fs.lookup`` exactly.
        """
        if not dir_inode.is_dir:
            raise errors.ENOTDIR("lookup in non-directory inode {}".format(dir_inode.ino))
        if name == ".":
            return dir_inode
        key = (dir_inode.ino, name)
        entry = self._entries.get(key, _MISSING)
        if entry is _MISSING:
            self.misses += 1
            if len(self._entries) >= self.capacity:
                self._entries.clear()
            try:
                child = fs.lookup(dir_inode, name)
            except errors.ENOENT:
                self._entries[key] = _NEGATIVE
                raise
            self._entries[key] = child
            return child
        if entry is _NEGATIVE:
            self.neg_hits += 1
            raise errors.ENOENT("no entry {!r} in inode {}".format(name, dir_inode.ino))
        self.hits += 1
        return entry


class WalkCache:
    """Whole-resolution memo: key -> recorded :class:`ResolvedPath`.

    All entries share one validity stamp (captured when the cache was
    last cleared); the first fetch after any stamp change clears the
    cache wholesale.  This is coarser than the dentry cache's per-key
    precision but exactly as safe, and it keeps a hit down to one
    stamp compare plus one dict probe.  Only *successful* resolutions
    are memoized — error walks re-run cold, which trivially preserves
    their observable behavior.
    """

    __slots__ = ("capacity", "hits", "misses", "invalidations", "_stamp", "_entries")

    def __init__(self, capacity=4096):
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._stamp = None  # type: Optional[Tuple[int, int, int]]
        self._entries = {}  # type: Dict[tuple, ResolvedPath]

    def __len__(self):
        return len(self._entries)

    def clear(self):
        """Drop every entry and forget the stamp."""
        self._entries.clear()
        self._stamp = None

    def _revalidate(self, stamp):
        """Adopt ``stamp``, clearing entries recorded under an old one."""
        if stamp != self._stamp:
            if self._entries:
                self.invalidations += 1
                self._entries.clear()
            self._stamp = stamp

    def fetch(self, key, stamp):
        """Return the memoized resolution for ``key`` or ``None``."""
        self._revalidate(stamp)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(self, key, stamp, resolved):
        """Memoize a successful resolution under the live stamp.

        The cache keeps its own :class:`ResolvedPath` with the step
        list frozen to a tuple, so neither the original caller nor a
        replay consumer can mutate the recorded walk.
        """
        self._revalidate(stamp)
        if len(self._entries) >= self.capacity:
            self._entries.clear()
        self._entries[key] = ResolvedPath(
            resolved.inode,
            resolved.parent,
            resolved.name,
            resolved.path,
            tuple(resolved.steps),
            resolved.symlinks_followed,
        )


class Dcache:
    """The bundle a kernel wires under its walker: both caches + stamps.

    ``enabled`` is the runtime knob (``Session(dcache=False)``,
    ``pfctl counters --no-dcache``): when off, the walker takes the
    cold path unconditionally.  Invalidation hooks stay live even
    while disabled, so re-enabling can never serve an entry recorded
    before a mutation.
    """

    __slots__ = ("generations", "dentries", "walks", "enabled")

    def __init__(self, generations, enabled=True, walk_capacity=4096, dentry_capacity=8192):
        self.generations = generations
        self.dentries = DentryCache(capacity=dentry_capacity)
        self.walks = WalkCache(capacity=walk_capacity)
        self.enabled = enabled

    # ------------------------------------------------------------------
    # walker-facing surface
    # ------------------------------------------------------------------

    def lookup(self, fs, dir_inode, name):
        """Dentry-cached directory lookup (see :meth:`DentryCache.lookup`)."""
        return self.dentries.lookup(fs, dir_inode, name)

    def walk_fetch(self, key):
        """Probe the walk cache under the live generation stamp."""
        return self.walks.fetch(key, self.generations.walk_stamp())

    def walk_store(self, key, resolved):
        """Memoize a successful resolution under the live stamp."""
        self.walks.store(key, self.generations.walk_stamp(), resolved)

    # ------------------------------------------------------------------
    # invalidation surface (filesystem mutation hooks)
    # ------------------------------------------------------------------

    def dentry_invalidate(self, dir_ino, name):
        """Precise invalidation for one changed directory entry."""
        self.dentries.invalidate(dir_ino, name)

    def clear(self):
        """Wholesale reset of both caches (remount / explicit flush)."""
        self.dentries.clear()
        self.walks.clear()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def counters(self):
        """Counter snapshot as ``{(cache, result): value}`` rows."""
        return {
            ("dentry", "hit"): self.dentries.hits,
            ("dentry", "negative_hit"): self.dentries.neg_hits,
            ("dentry", "miss"): self.dentries.misses,
            ("dentry", "invalidate"): self.dentries.invalidations,
            ("walk", "hit"): self.walks.hits,
            ("walk", "miss"): self.walks.misses,
            ("walk", "invalidate"): self.walks.invalidations,
        }

    def publish(self, registry):
        """One-shot export into a metrics registry.

        Adds the current counter values as the
        ``pf_dcache_total{cache=...,result=...}`` family plus
        ``pf_dcache_entries{cache=...}`` gauges.  One-shot: calling it
        twice adds twice — export once per registry snapshot (the
        ``pfctl counters`` pattern), exactly like merging any other
        counter source.
        """
        for (cache, result), value in sorted(self.counters().items()):
            if value:
                registry.inc("pf_dcache_total", {"cache": cache, "result": result}, value=value)
        registry.inc("pf_dcache_entries", {"cache": "dentry"}, value=len(self.dentries))
        registry.inc("pf_dcache_entries", {"cache": "walk"}, value=len(self.walks))
        return registry

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<Dcache {} dentries={} walks={}>".format(
            "on" if self.enabled else "off", len(self.dentries), len(self.walks)
        )
