"""The filesystem tree: directories, links, and namespace mutation.

All operations here work on *inodes*, not paths; path-to-inode translation
lives in :mod:`repro.vfs.namei`.  This split mirrors the kernel's
dentry/inode separation and keeps every namespace mutation a single,
atomic dictionary operation — races arise only from the *sequencing* of
syscalls, never from half-applied mutations, which is the property real
kernels provide.
"""

from __future__ import annotations

from repro import errors
from repro.vfs.inode import FileType, InodeTable


class FileSystem:
    """A single-device filesystem with a root directory."""

    def __init__(self, device=0, clock=None, root_label="root_t"):
        self.device = device
        self.inodes = InodeTable(device=device, clock=clock)
        self.root = self.inodes.alloc(FileType.DIR, uid=0, gid=0, mode=0o755, label=root_label)
        self.inodes.link_added(self.root)  # "/" references itself
        self._clock = clock
        #: Mount-table generation: bumped by every (re)mount-style
        #: namespace change.  Part of the resource-context cache's
        #: validity tuple — a mount can place any object under new
        #: ancestry, so every cached access answer is suspect after one.
        self.mount_generation = 0
        #: Namespace generation: bumped by every mutation that can
        #: change what a pathname resolves to (create / link / unlink /
        #: rmdir / rename / symlink / relabel).  The walk-replay cache
        #: (:mod:`repro.vfs.dcache`) stamps every memoized resolution
        #: with this counter, so a namespace mutation anywhere drops
        #: every cached walk — the precise analogue of the dentry
        #: cache's per-entry invalidation, at whole-resolution grain.
        self.ns_gen = 0
        #: Optional :class:`repro.vfs.dcache.Dcache` receiving precise
        #: per-entry invalidations from the mutation paths below.
        self.dcache = None

    def attach_dcache(self, dcache):
        """Wire a :class:`repro.vfs.dcache.Dcache` into the mutation hooks.

        Every namespace mutation below then invalidates exactly the
        dentry entries it obsoletes (and the remount hook clears the
        caches wholesale).  Returns the dcache for chaining.
        """
        self.dcache = dcache
        return dcache

    def _namespace_changed(self, dir_inode, name):
        """One directory entry changed: bump the stamp, drop the dentry."""
        self.ns_gen += 1
        dcache = self.dcache
        if dcache is not None:
            dcache.dentry_invalidate(dir_inode.ino, name)

    # ------------------------------------------------------------------
    # directory-level primitives
    # ------------------------------------------------------------------

    def lookup(self, dir_inode, name):
        """Return the child inode of ``dir_inode`` named ``name``."""
        if not dir_inode.is_dir:
            raise errors.ENOTDIR("lookup in non-directory inode {}".format(dir_inode.ino))
        if name == ".":
            return dir_inode
        try:
            ino = dir_inode.children[name]
        except KeyError:
            raise errors.ENOENT("no entry {!r} in inode {}".format(name, dir_inode.ino))
        return self.inodes.get(ino)

    def exists(self, dir_inode, name):
        return dir_inode.is_dir and name in dir_inode.children

    def list_dir(self, dir_inode):
        """Return the entry names of a directory, sorted for determinism."""
        if not dir_inode.is_dir:
            raise errors.ENOTDIR("listdir on non-directory")
        return sorted(dir_inode.children)

    # ------------------------------------------------------------------
    # creation
    # ------------------------------------------------------------------

    def create(self, dir_inode, name, itype, uid=0, gid=0, mode=0o644, label=None, exclusive=True):
        """Create a child of ``dir_inode`` and return its inode.

        When ``label`` is omitted the child inherits the parent directory's
        label, approximating SELinux type inheritance for unconfined
        creates.
        """
        self._check_name(name)
        if not dir_inode.is_dir:
            raise errors.ENOTDIR("create in non-directory")
        if name in dir_inode.children:
            if exclusive:
                raise errors.EEXIST("entry {!r} already exists".format(name))
            return self.inodes.get(dir_inode.children[name])
        if label is None:
            label = dir_inode.label
        inode = self.inodes.alloc(itype, uid=uid, gid=gid, mode=mode, label=label)
        dir_inode.children[name] = inode.ino
        self._namespace_changed(dir_inode, name)
        self.inodes.link_added(inode)
        if itype is FileType.DIR:
            # "." and ".." are implicit; a directory's nlink starts at 2
            # in real filesystems but we only track entry references.
            pass
        self._touch(dir_inode)
        return inode

    def symlink(self, dir_inode, name, target, uid=0, gid=0, label=None):
        """Create a symbolic link whose body is the string ``target``."""
        inode = self.create(dir_inode, name, FileType.LNK, uid=uid, gid=gid, mode=0o777, label=label)
        inode.symlink_target = target
        return inode

    def hardlink(self, dir_inode, name, target_inode):
        """Create a second directory entry for an existing inode."""
        self._check_name(name)
        if not dir_inode.is_dir:
            raise errors.ENOTDIR("link in non-directory")
        if name in dir_inode.children:
            raise errors.EEXIST("entry {!r} already exists".format(name))
        if target_inode.is_dir:
            raise errors.EPERM("hard links to directories are not permitted")
        dir_inode.children[name] = target_inode.ino
        self._namespace_changed(dir_inode, name)
        self.inodes.link_added(target_inode)
        self._touch(dir_inode)
        return target_inode

    # ------------------------------------------------------------------
    # removal and rename
    # ------------------------------------------------------------------

    def unlink(self, dir_inode, name):
        """Remove a non-directory entry; the inode may be recycled."""
        child = self.lookup(dir_inode, name)
        if child.is_dir:
            raise errors.EISDIR("unlink on a directory; use rmdir")
        del dir_inode.children[name]
        self._namespace_changed(dir_inode, name)
        child.bump_meta()
        self.inodes.link_removed(child)
        self._touch(dir_inode)
        return child

    def rmdir(self, dir_inode, name):
        child = self.lookup(dir_inode, name)
        if not child.is_dir:
            raise errors.ENOTDIR("rmdir on a non-directory")
        if child.children:
            raise errors.ENOTEMPTY("directory {!r} not empty".format(name))
        del dir_inode.children[name]
        self._namespace_changed(dir_inode, name)
        child.bump_meta()
        self.inodes.link_removed(child)
        self._touch(dir_inode)
        return child

    def rename(self, src_dir, src_name, dst_dir, dst_name):
        """Atomically move an entry, replacing any existing target.

        Atomic replacement is what makes symlink-swap TOCTTOU attacks a
        single adversary step.  POSIX corner cases honoured: renaming an
        entry onto itself (or onto a hard link of the same inode) is a
        successful no-op, and a directory may not be moved into its own
        subtree.
        """
        self._check_name(dst_name)
        child = self.lookup(src_dir, src_name)
        if dst_name in dst_dir.children and dst_dir.children[dst_name] == child.ino:
            return child  # same object (same entry or a hard link): no-op
        if child.is_dir and self._in_subtree(child, dst_dir):
            raise errors.EINVAL("cannot move a directory into its own subtree")
        if dst_name in dst_dir.children:
            existing = self.inodes.get(dst_dir.children[dst_name])
            if existing.is_dir and existing.children:
                raise errors.ENOTEMPTY("rename target directory not empty")
            del dst_dir.children[dst_name]
            existing.bump_meta()
            self.inodes.link_removed(existing)
        del src_dir.children[src_name]
        dst_dir.children[dst_name] = child.ino
        self._namespace_changed(src_dir, src_name)
        self._namespace_changed(dst_dir, dst_name)
        child.bump_meta()
        self._touch(src_dir)
        self._touch(dst_dir)
        return child

    def _in_subtree(self, root_inode, candidate):
        """True when ``candidate`` is ``root_inode`` or below it."""
        stack = [root_inode]
        seen = set()
        while stack:
            node = stack.pop()
            if node is candidate:
                return True
            if node.ino in seen or not node.is_dir:
                continue
            seen.add(node.ino)
            for ino in node.children.values():
                stack.append(self.inodes.get(ino))
        return False

    # ------------------------------------------------------------------
    # security-metadata mutation (setattr-style)
    # ------------------------------------------------------------------
    #
    # These are the canonical mutation points for inode security
    # metadata.  Each bumps the inode's ``meta_gen`` so any cached
    # conclusion about who may access the object (the engine's
    # resource-context cache) is invalidated on next use.  Callers that
    # mutate ``mode``/``uid``/``label`` directly bypass invalidation —
    # the syscall layer and the kernel route through these.

    def chmod(self, inode, mode):
        """Replace the permission bits of ``inode`` (mode & 07777)."""
        inode.mode = (inode.mode & ~0o7777) | (mode & 0o7777)
        inode.bump_meta()
        self._touch(inode)
        return inode

    def chown(self, inode, uid, gid=None):
        """Change the owner (and optionally group) of ``inode``."""
        inode.uid = uid
        if gid is not None:
            inode.gid = gid
        inode.bump_meta()
        self._touch(inode)
        return inode

    def relabel(self, inode, label):
        """Replace the MAC label of ``inode`` (setfattr/restorecon).

        Also bumps :attr:`ns_gen`: a relabel cannot change what a name
        resolves *to*, but the walk-replay cache drops its memoized
        resolutions anyway — the conservative reading of "cache the
        walk, never the verdict" is that any security-metadata change
        forces the next resolution cold.
        """
        inode.label = label
        inode.bump_meta()
        self.ns_gen += 1
        self._touch(inode)
        return inode

    def remount(self):
        """Record a mount-table change (mount/umount/bind).

        The reproduction has no true mount namespace; what matters for
        the engine is the *signal*: bumping ``mount_generation``
        invalidates every cached resource-context answer at once (and
        clears the dentry/walk caches — a mount can place any object
        under new ancestry).
        """
        self.mount_generation += 1
        if self.dcache is not None:
            self.dcache.clear()
        return self.mount_generation

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _check_name(name):
        if not name or name in (".", "..") or "/" in name:
            raise errors.EINVAL("invalid entry name {!r}".format(name))
        if len(name) > 255:
            raise errors.ENAMETOOLONG(name[:32] + "...")

    def _touch(self, inode):
        if self._clock is not None:
            inode.mtime = self._clock.now()
