"""Open file descriptions and open flags."""

from __future__ import annotations

import enum

from repro import errors
from repro.vfs.inode import FileType


class OpenFlags(enum.IntFlag):
    """Subset of ``open(2)`` flags the simulation honours."""

    O_RDONLY = 0x0
    O_WRONLY = 0x1
    O_RDWR = 0x2
    O_CREAT = 0x40
    O_EXCL = 0x80
    O_TRUNC = 0x200
    O_APPEND = 0x400
    O_NOFOLLOW = 0x20000
    O_DIRECTORY = 0x10000

    @property
    def wants_write(self):
        return bool(self & (OpenFlags.O_WRONLY | OpenFlags.O_RDWR))

    @property
    def wants_read(self):
        return not bool(self & OpenFlags.O_WRONLY)


class OpenFile:
    """An open file description, shared by dup'ed descriptors.

    Holding an :class:`OpenFile` pins the inode's number (the inode table
    will not recycle it until the last open closes), matching real-kernel
    semantics that the ``open_race`` defence relies on.
    """

    def __init__(self, inode, flags, path, inode_table):
        self.inode = inode
        self.flags = OpenFlags(flags)
        self.path = path
        self.offset = 0
        self.closed = False
        #: Descriptor references sharing this description (fork/dup).
        self.refs = 1
        self._table = inode_table
        inode_table.opened(inode)

    def dup(self):
        """Add a descriptor reference (fork inheritance, dup)."""
        self.refs += 1
        return self

    def read(self, size=None):
        if self.closed:
            raise errors.EBADF("read on closed file")
        if not self.flags.wants_read:
            raise errors.EBADF("file not open for reading")
        if self.inode.itype is FileType.DIR:
            raise errors.EISDIR("read on a directory")
        data = self.inode.data[self.offset:]
        if size is not None:
            data = data[:size]
        self.offset += len(data)
        return data

    def write(self, data):
        if self.closed:
            raise errors.EBADF("write on closed file")
        if not self.flags.wants_write:
            raise errors.EBADF("file not open for writing")
        if isinstance(data, str):
            data = data.encode("utf-8")
        if self.flags & OpenFlags.O_APPEND:
            self.offset = len(self.inode.data)
        before = self.inode.data[: self.offset]
        pad = b"\x00" * (self.offset - len(before))
        self.inode.data = before + pad + data + self.inode.data[self.offset + len(data):]
        self.offset += len(data)
        return len(data)

    def close(self):
        if self.closed:
            return
        self.refs -= 1
        if self.refs <= 0:
            self.closed = True
            self._table.closed(self.inode)

    def __repr__(self):  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return "<OpenFile {} ino={} {}>".format(self.path, self.inode.ino, state)
