"""User call stacks and binary mappings.

An *entrypoint* in the paper is "the program counter of a function call
instruction on the process's call stack", stored **relative to the binary
load base** so the same rule works under ASLR.  We model:

- :class:`BinaryImage` — a mapped program or library with a randomized
  load base;
- :class:`Frame` — one stack frame with an absolute return PC;
- :class:`UserStack` — the (untrusted!) user stack, including hooks to
  forge frames or truncate unwind information, so the firewall's
  defensive unwinding (paper §4.4: ``copy_from_user``, frame caps) is
  exercised by tests.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro import errors

#: Alignment for randomized load bases.
_BASE_ALIGN = 0x1000


class BinaryImage:
    """A mapped executable or shared object.

    Attributes:
        path: filesystem path of the binary (rule ``-p`` operand).
        base: randomized load address.
        size: size of the mapping; PCs outside ``[base, base+size)`` do
            not belong to this image.
        interpreter: language name for interpreted programs ("php",
            "python", "bash") or ``None`` for native binaries.
    """

    def __init__(self, path, base=None, size=0x1000000, rng=None, interpreter=None):
        if base is None:
            rng = rng or random.Random(hash(path) & 0xFFFFFFFF)
            base = rng.randrange(0x400000, 0x7F0000000, _BASE_ALIGN)
        self.path = path
        self.base = base
        self.size = size
        self.interpreter = interpreter

    def contains(self, pc):
        return self.base <= pc < self.base + self.size

    def rel(self, pc):
        """Translate an absolute PC to a base-relative entrypoint offset."""
        if not self.contains(pc):
            raise errors.EFAULT("pc {:#x} outside {}".format(pc, self.path))
        return pc - self.base

    def abs(self, offset):
        """Translate a base-relative offset to an absolute PC."""
        if not 0 <= offset < self.size:
            raise errors.EFAULT("offset {:#x} outside {}".format(offset, self.path))
        return self.base + offset

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<BinaryImage {} base={:#x}>".format(self.path, self.base)


class Frame:
    """One call-stack frame.

    Attributes:
        pc: absolute program counter of the call site.
        image: the :class:`BinaryImage` containing ``pc`` (``None`` for a
            forged frame pointing nowhere).
        function: symbolic function name, for logs and interpreter
            backtraces.
    """

    __slots__ = ("pc", "image", "function")

    def __init__(self, pc, image=None, function=""):
        self.pc = pc
        self.image = image
        self.function = function

    def entrypoint(self):
        """Return ``(binary_path, relative_pc)`` or ``None`` if unmapped."""
        if self.image is None or not self.image.contains(self.pc):
            return None
        return (self.image.path, self.image.rel(self.pc))

    def __repr__(self):  # pragma: no cover - debugging aid
        where = self.image.path if self.image else "?"
        return "<Frame {}+{:#x} {}>".format(where, self.pc - (self.image.base if self.image else 0), self.function)


class UserStack:
    """The process's call stack, as seen (untrusted) by the kernel.

    ``push``/``pop`` are used by simulated programs as they call and
    return; the firewall unwinds via :meth:`unwind`, which enforces a
    frame cap and validates frame pointers, aborting cleanly on forged
    stacks (which, per the paper, only removes the forger's own
    protection).
    """

    #: Paper §4.4: "sets an upper limit on the number of stack frames".
    MAX_UNWIND_FRAMES = 64

    def __init__(self):
        self._frames = []  # type: List[Frame]
        #: When set, unwinding raises EFAULT at this depth, simulating an
        #: invalid frame pointer mid-stack.
        self.corrupt_below = None  # type: Optional[int]
        #: When set, unwinding loops forever (infinite stack DoS); the
        #: frame cap must stop it.
        self.infinite = False

    def push(self, pc, image=None, function=""):
        frame = Frame(pc, image=image, function=function)
        self._frames.append(frame)
        return frame

    def pop(self):
        if not self._frames:
            raise errors.EFAULT("pop on empty user stack")
        return self._frames.pop()

    @property
    def depth(self):
        return len(self._frames)

    def top(self):
        return self._frames[-1] if self._frames else None

    def frames(self):
        """All frames, innermost last (no validation — program's view)."""
        return list(self._frames)

    def unwind(self, max_frames=None):
        """Defensively unwind, innermost first.

        Returns a list of :class:`Frame`.  Honours the frame cap (DoS
        guard) and raises :class:`repro.errors.EFAULT` when a corrupted
        frame is hit, which callers must treat as "no context available"
        rather than a fatal error.
        """
        cap = max_frames or self.MAX_UNWIND_FRAMES
        out = []
        source = list(reversed(self._frames))
        i = 0
        while True:
            if self.infinite and len(out) >= cap:
                return out
            if i >= len(source):
                if self.infinite:
                    # Recycle frames to simulate a looping unwind.
                    i = 0
                    if not source:
                        return out
                    continue
                return out
            if len(out) >= cap:
                return out
            if self.corrupt_below is not None and i >= self.corrupt_below:
                raise errors.EFAULT("corrupted frame at depth {}".format(i))
            out.append(source[i])
            i += 1
