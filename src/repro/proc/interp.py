"""Interpreter (script-level) backtraces.

Paper §4.4 adapts each interpreter's backtrace code to run in the
kernel (11 lines for PHP, 59 for Bash), because for interpreted
programs the *binary* entrypoint is always the same opcode handler —
`/usr/bin/php5` + ``0x27ad2c`` fires for **every** include in **every**
script.  Script-level frames let rules distinguish the scripts and
lines actually requesting the resource.

Like the native stack, the script stack lives in (untrusted) process
memory: it supports the same corruption/DoS injection hooks, and the
kernel-side collector must degrade to "no context" rather than fail.
"""

from __future__ import annotations

from typing import List, Optional

from repro import errors


class ScriptFrame:
    """One interpreter-level frame.

    Attributes:
        path: script file path (e.g. a .php file).
        line: 1-based line number of the call site.
        function: script-level function name, for logs.
    """

    __slots__ = ("path", "line", "function")

    def __init__(self, path, line, function=""):
        self.path = path
        self.line = int(line)
        self.function = function

    def entrypoint(self):
        return (self.path, self.line)

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<ScriptFrame {}:{} {}>".format(self.path, self.line, self.function)


class InterpreterStack:
    """The script-level call stack of an interpreted program."""

    #: Same defensive cap as the native unwinder.
    MAX_UNWIND_FRAMES = 64

    def __init__(self, language=""):
        #: Interpreter language ("php", "python", "bash"), for audit.
        self.language = language
        self._frames = []  # type: List[ScriptFrame]
        #: Injection hooks mirroring :class:`repro.proc.stack.UserStack`.
        self.corrupt_below = None  # type: Optional[int]
        self.infinite = False

    def push(self, path, line, function=""):
        frame = ScriptFrame(path, line, function=function)
        self._frames.append(frame)
        return frame

    def pop(self):
        if not self._frames:
            raise errors.EFAULT("pop on empty script stack")
        return self._frames.pop()

    @property
    def depth(self):
        return len(self._frames)

    def top(self):
        return self._frames[-1] if self._frames else None

    def unwind(self, max_frames=None):
        """Defensive unwind, innermost first (see UserStack.unwind)."""
        cap = max_frames or self.MAX_UNWIND_FRAMES
        out = []
        source = list(reversed(self._frames))
        i = 0
        while True:
            if i >= len(source):
                if self.infinite and source:
                    i = 0
                else:
                    return out
            if len(out) >= cap:
                return out
            if self.corrupt_below is not None and i >= self.corrupt_below:
                raise errors.EFAULT("corrupted script frame at depth {}".format(i))
            out.append(source[i])
            i += 1
