"""Signal numbers, dispositions, and per-process signal state.

Models exactly what the paper's signal-race rules (R9-R12) need:

- per-signal handlers (a handler is an entrypoint in the program);
- a blocked mask;
- whether the process is *currently executing* a handler (entered on
  delivery, left on ``sigreturn``) — the race window the paper closes is
  delivering a second handled signal while a non-reentrant handler runs.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

SIGHUP = 1
SIGINT = 2
SIGKILL = 9
SIGSEGV = 11
SIGALRM = 14
SIGTERM = 15
SIGCHLD = 17
SIGSTOP = 19
SIGUSR1 = 10
SIGUSR2 = 12

#: Signals that can be neither caught nor blocked.
UNBLOCKABLE_SIGNALS = frozenset({SIGKILL, SIGSTOP})

SIGNAL_NAMES = {
    SIGHUP: "SIGHUP",
    SIGINT: "SIGINT",
    SIGKILL: "SIGKILL",
    SIGUSR1: "SIGUSR1",
    SIGSEGV: "SIGSEGV",
    SIGUSR2: "SIGUSR2",
    SIGALRM: "SIGALRM",
    SIGTERM: "SIGTERM",
    SIGCHLD: "SIGCHLD",
    SIGSTOP: "SIGSTOP",
}


class SignalDisposition:
    """What a process asked to happen for one signal.

    Attributes:
        handler_pc: absolute PC of the handler function (``None`` means
            default disposition).
        handler: optional Python callable run by the simulation when the
            handler executes (lets scenario code model handler bodies).
        sa_mask: signals additionally blocked while the handler runs.
    """

    __slots__ = ("handler_pc", "handler", "sa_mask")

    def __init__(self, handler_pc=None, handler=None, sa_mask=frozenset()):
        self.handler_pc = handler_pc
        self.handler = handler
        self.sa_mask = frozenset(sa_mask)

    @property
    def is_handled(self):
        return self.handler_pc is not None or self.handler is not None


class SignalState:
    """Per-process signal bookkeeping."""

    def __init__(self):
        self.dispositions = {}  # type: Dict[int, SignalDisposition]
        self.blocked = set()  # type: Set[int]
        #: Depth of nested handler execution (>0 means "in a handler").
        self.handler_depth = 0
        #: Signal currently being handled (innermost), for audit.
        self.current_signal = None  # type: Optional[int]
        #: Signals delivered while blocked, waiting for unblock.
        self.pending = []

    def disposition(self, signum):
        return self.dispositions.get(signum, SignalDisposition())

    def set_handler(self, signum, handler_pc=None, handler=None, sa_mask=frozenset()):
        self.dispositions[signum] = SignalDisposition(handler_pc, handler, sa_mask)

    def is_blocked(self, signum):
        if signum in UNBLOCKABLE_SIGNALS:
            return False
        return signum in self.blocked

    def block(self, signums):
        self.blocked.update(s for s in signums if s not in UNBLOCKABLE_SIGNALS)

    def unblock(self, signums):
        self.blocked.difference_update(signums)

    def enter_handler(self, signum):
        self.handler_depth += 1
        self.current_signal = signum
        self.block(self.disposition(signum).sa_mask)

    def leave_handler(self):
        if self.handler_depth > 0:
            self.handler_depth -= 1
        if self.handler_depth == 0:
            self.current_signal = None

    @property
    def in_handler(self):
        return self.handler_depth > 0
