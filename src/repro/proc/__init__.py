"""Process substrate: tasks, credentials, user stacks, and signals.

The pieces of ``struct task_struct`` that the Process Firewall consumes
live here: credentials (for setuid semantics and adversary computation),
the user call stack (for entrypoint context), the binary mapping with an
ASLR load base (entrypoints are stored base-relative, paper §5.2), the
per-task firewall state dictionary (the ``STATE`` match/target backing
store, §5.1), and signal-handling state (for signal-race rules R9-R12).
"""

from repro.proc.stack import BinaryImage, Frame, UserStack
from repro.proc.process import Credentials, Process
from repro.proc.signals import (
    SIGALRM,
    SIGCHLD,
    SIGHUP,
    SIGINT,
    SIGKILL,
    SIGSEGV,
    SIGSTOP,
    SIGTERM,
    SIGUSR1,
    SIGUSR2,
    SignalDisposition,
    SignalState,
    UNBLOCKABLE_SIGNALS,
)

__all__ = [
    "BinaryImage",
    "Frame",
    "UserStack",
    "Credentials",
    "Process",
    "SignalDisposition",
    "SignalState",
    "UNBLOCKABLE_SIGNALS",
    "SIGHUP",
    "SIGINT",
    "SIGKILL",
    "SIGSEGV",
    "SIGALRM",
    "SIGTERM",
    "SIGCHLD",
    "SIGUSR1",
    "SIGUSR2",
    "SIGSTOP",
]
