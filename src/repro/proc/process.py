"""The process model (``struct task_struct`` equivalent).

Carries everything the firewall's context modules read: credentials,
the SELinux subject label, the mapped binary and user stack, the launch
environment (argv/envp — used by the OS-distributor consistency analysis
of §6.3.2), and the per-task firewall extensions the paper adds to
``task_struct``: the ``STATE`` dictionary and the rule-traversal state
that makes the engine reentrant without disabling interrupts (§5.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro import errors
from repro.deprecation import warn_once
from repro.firewall.procstate import CowMap, ProcState
from repro.proc.signals import SignalState
from repro.proc.stack import BinaryImage, UserStack

#: Soft cap on per-process descriptors, like RLIMIT_NOFILE.
MAX_FDS = 1024


class Credentials:
    """DAC credentials, with real/effective split for setuid semantics."""

    __slots__ = ("uid", "euid", "gid", "egid")

    def __init__(self, uid=0, gid=0, euid=None, egid=None):
        self.uid = uid
        self.gid = gid
        self.euid = uid if euid is None else euid
        self.egid = gid if egid is None else egid

    @property
    def is_setuid(self):
        """True when effective and real identity differ (Figure 1b line 1)."""
        return self.uid != self.euid or self.gid != self.egid

    def copy(self):
        return Credentials(self.uid, self.gid, self.euid, self.egid)

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<Credentials uid={} euid={} gid={} egid={}>".format(self.uid, self.euid, self.gid, self.egid)


class Process:
    """A simulated process."""

    def __init__(
        self,
        pid,
        comm,
        creds=None,
        label="unconfined_t",
        binary=None,
        cwd=None,
        env=None,
        argv=None,
        ppid=0,
    ):
        self.pid = pid
        self.ppid = ppid
        self.comm = comm
        self.creds = creds or Credentials()
        #: SELinux subject label (process type, e.g. ``httpd_t``).
        self.label = label
        self.binary = binary  # type: Optional[BinaryImage]
        #: All images mapped into the process (binary + libraries).
        self.images = [binary] if binary else []  # type: List[BinaryImage]
        self.stack = UserStack()
        self.signals = SignalState()
        self.cwd = cwd  # directory inode
        #: Script-level backtrace for interpreted programs (see
        #: :mod:`repro.proc.interp`); None for native binaries.
        self.script_stack = None
        self.env = dict(env or {})
        self.argv = list(argv or [comm])
        self.fds = {}  # type: Dict[int, object]
        self._next_fd = 3  # 0-2 reserved for std streams
        self.alive = True
        self.exit_code = None

        # ---- Process Firewall task_struct extensions (paper §5.1) ----
        #: The fork-shareable state bundle: the STATE dictionary, the
        #: negative-decision cache, and the per-syscall context cache,
        #: all behind the copy-on-write substrate
        #: (:class:`repro.firewall.procstate.ProcState`).  ``fork``
        #: shares it structurally; ``execve`` resets it.
        self.pf = ProcState()
        #: Per-process rule-traversal state (chain-jump stack), so the
        #: engine is reentrant and the task can be scheduled out mid-walk.
        #: Always empty at syscall boundaries, hence not fork-inherited.
        self.pf_traversal = []

    # ------------------------------------------------------------------
    # firewall state views (historical attribute names)
    # ------------------------------------------------------------------

    @property
    def pf_state(self):
        """The STATE match/target backing map (a fork-shared CowMap).

        Deprecated (warns once per interpreter): read ``proc.pf.state``.
        """
        warn_once("Process.pf_state", "proc.pf.state")
        return self.pf.state

    @pf_state.setter
    def pf_state(self, mapping):
        warn_once("Process.pf_state", "proc.pf.state")
        self.pf.state = mapping if isinstance(mapping, CowMap) else CowMap(mapping)

    @property
    def pf_context_cache(self):
        """Per-syscall context cache, ``(syscall_seq, values)`` or None.

        Deprecated (warns once per interpreter): read
        ``proc.pf.context_cache``.
        """
        warn_once("Process.pf_context_cache", "proc.pf.context_cache")
        return self.pf.context_cache

    @pf_context_cache.setter
    def pf_context_cache(self, value):
        warn_once("Process.pf_context_cache", "proc.pf.context_cache")
        self.pf.context_cache = value

    @property
    def pf_decision_cache(self):
        """Negative-decision cache as ``(stamp, entries)`` or None.

        Deprecated (warns once per interpreter): use
        ``proc.pf.decision_cache`` (or the ``decision_probe`` /
        ``decision_writable`` protocol).
        """
        warn_once("Process.pf_decision_cache", "proc.pf.decision_cache")
        return self.pf.decision_cache

    @pf_decision_cache.setter
    def pf_decision_cache(self, value):
        warn_once("Process.pf_decision_cache", "proc.pf.decision_cache")
        self.pf.decision_cache = value

    # ------------------------------------------------------------------
    # descriptor table
    # ------------------------------------------------------------------

    def install_fd(self, open_file):
        if len(self.fds) >= MAX_FDS:
            raise errors.EMFILE("fd table full")
        fd = self._next_fd
        self._next_fd += 1
        self.fds[fd] = open_file
        return fd

    def get_fd(self, fd):
        try:
            return self.fds[fd]
        except KeyError:
            raise errors.EBADF("fd {}".format(fd))

    def drop_fd(self, fd):
        try:
            return self.fds.pop(fd)
        except KeyError:
            raise errors.EBADF("fd {}".format(fd))

    # ------------------------------------------------------------------
    # images and stacks
    # ------------------------------------------------------------------

    def map_image(self, image):
        """Map a shared object into the address space."""
        self.images.append(image)
        return image

    def image_for_pc(self, pc):
        """Find the image containing an absolute PC, or ``None``."""
        for image in self.images:
            if image is not None and image.contains(pc):
                return image
        return None

    def call(self, image, offset, function=""):
        """Push a frame for a call site at ``image`` + ``offset``."""
        return self.stack.push(image.abs(offset), image=image, function=function)

    def ret(self):
        return self.stack.pop()

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<Process pid={} comm={} label={}>".format(self.pid, self.comm, self.label)
