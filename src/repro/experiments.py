"""One-shot evaluation runner: regenerate every table and figure.

``python -m repro.experiments`` reproduces the paper's evaluation
without pytest — the same computations the benchmark suite runs,
printed in paper order.  Individual experiments can be selected::

    python -m repro.experiments                    # everything
    python -m repro.experiments table4 table8      # a subset
    python -m repro.experiments --quick            # small iteration counts

(The benchmark suite remains the precision path; this runner trades
statistical care for a single command.)
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.tables import format_table, overhead_pct


def run_table1():
    from repro.attacks.taxonomy import CVE_SHARE, table1_rows

    rows = [(c.name, c.cwe, c.cve_pre2007, c.cve_2007_2012) for c in table1_rows()]
    rows.append(("% Total CVEs", "-", "{:.2%}".format(CVE_SHARE["<2007"]), "{:.2%}".format(CVE_SHARE["2007-12"])))
    return format_table(["Attack Class", "CWE", "CVE <2007", "CVE 2007-12"], rows, title="Table 1")


def run_table4(quick=False):
    from repro.attacks.exploits import run_security_evaluation

    rows = run_security_evaluation()
    return format_table(
        ["#", "Program", "Reference", "Stock?", "Blocked?", "Benign?"],
        [
            (r["id"], r["program"], r["reference"],
             "exploits" if r["succeeds_unprotected"] else "no",
             "yes" if r["blocked_protected"] else "NO",
             "yes" if r["benign_ok"] else "NO")
            for r in rows
        ],
        title="Table 4 / Section 6.1 (security evaluation)",
    )


def run_figure4(quick=False):
    from repro.workloads.openbench import FIGURE4_PATH_LENGTHS, run_figure4 as grid, syscall_counts

    iterations = 60 if quick else 300
    timings = grid(iterations=iterations)
    counts = syscall_counts()
    rows = []
    for variant in timings:
        for n in FIGURE4_PATH_LENGTHS:
            rows.append((variant, n, timings[variant][n], counts[variant][n]))
    return format_table(["variant", "n", "us/call", "syscalls"], rows, title="Figure 4 (open variants)")


def run_figure5(quick=False):
    from repro.workloads.webbench import figure5_sweep

    rows = figure5_sweep(requests=60 if quick else 250)
    return format_table(
        ["c", "n", "program req/s", "PF req/s", "improvement %"],
        [(r["clients"], r["path_length"], r["program_rps"], r["pf_rps"], r["pf_improvement_pct"]) for r in rows],
        title="Figure 5 (SymLinksIfOwnerMatch)",
    )


def run_table6(quick=False):
    from repro.workloads.lmbench import LMBENCH_OPS, run_table6 as grid

    results = grid(iterations=150 if quick else 800)
    columns = ["DISABLED", "BASE", "FULL", "CONCACHE", "LAZYCON", "EPTSPC", "COMPILED", "JITTED", "TABLED", "TRACED"]
    rows = []
    for op in LMBENCH_OPS:
        base = results[op]["DISABLED"]
        rows.append(
            tuple([op] + ["{:.2f} ({:+.0f}%)".format(results[op][c], overhead_pct(base, results[op][c])) for c in columns])
        )
    return format_table(["syscall"] + columns, rows, title="Table 6 (lmbench, us)")


def run_table7(quick=False):
    from repro.workloads.macro import run_table7 as grid

    rows_data = grid(
        build_files=20 if quick else 60,
        boot_services=8 if quick else 24,
        web_requests=60 if quick else 300,
    )
    rows = []
    for name, values in rows_data.items():
        base = values["Without PF"]
        rows.append(
            (name, base,
             "{:.4f} ({:+.0f}%)".format(values["PF Base"], overhead_pct(base, values["PF Base"])),
             "{:.4f} ({:+.0f}%)".format(values["PF Full"], overhead_pct(base, values["PF Full"])))
        )
    return format_table(["Benchmark", "Without PF", "PF Base", "PF Full"], rows, title="Table 7 (macrobenchmarks)")


def run_table8(quick=False):
    from repro.rulegen.classify import threshold_sweep, zero_fp_threshold
    from repro.rulegen.synth import synthesize_trace

    records = synthesize_trace(scale=0.1 if quick else 1.0)
    rows = [
        (r["threshold"], r["high_only"], r["low_only"], r["both"], r["rules_produced"], r["false_positives"])
        for r in threshold_sweep(records)
    ]
    table = format_table(
        ["threshold", "high", "low", "both", "rules", "false positives"], rows, title="Table 8 (rule generation)"
    )
    return table + "\nzero-false-positive threshold: {}".format(zero_fp_threshold(records))


def run_baseline_matrix(quick=False):
    from repro.baselines.compare import comparison_matrix

    rows = comparison_matrix()
    return format_table(
        ["defense", "attack succeeds", "benign sharing ok", "benign rotation ok"],
        [(d, str(a), str(s), str(r)) for d, a, s, r in rows],
        title="Baseline comparison (section 2.2)",
    )


def run_service_experiment(quick=False):
    """Steady-state service summary (beyond the paper: §6.3 sustained).

    A small closed-loop run through :func:`repro.service.run_service`
    at 1 and 2 inline workers — throughput, p50/p99 mediation latency,
    and drop counts over a fixed-seed generated session stream.  The
    statistically careful sweep lives in ``benchmarks/bench_service.py``.
    """
    from repro.service import run_service
    from repro.workloads.generators import generate_stream

    sessions = 20 if quick else 80
    specs = generate_stream(sessions, seed=0x5EA5)
    rows = []
    for workers in (1, 2):
        result = run_service(specs, workers=workers, processes=False)
        latency = result["latency"]
        rows.append((
            workers,
            result["counters"]["completed"],
            result["drops"],
            "{:.0f}".format(result["throughput"]["mediations_per_cpu_s"]),
            "{:.1f}".format(latency["p50"] * 1e6 if latency["p50"] else 0),
            "{:.1f}".format(latency["p99"] * 1e6 if latency["p99"] else 0),
        ))
    return format_table(
        ["workers", "sessions", "drops", "med/cpu-s", "p50 us", "p99 us"],
        rows,
        title="Service (closed-loop, generated sessions; inline workers)",
    )


EXPERIMENTS = {
    "table1": lambda quick: run_table1(),
    "table4": run_table4,
    "fig4": run_figure4,
    "fig5": run_figure5,
    "table6": run_table6,
    "table7": run_table7,
    "table8": run_table8,
    "baselines": run_baseline_matrix,
    "service": run_service_experiment,
}

#: Paper presentation order (the beyond-paper service summary last).
DEFAULT_ORDER = [
    "table1", "table4", "fig4", "fig5", "table6", "table7", "table8",
    "baselines", "service",
]


def main(argv=None):
    parser = argparse.ArgumentParser(prog="repro.experiments", description="Regenerate the paper's evaluation")
    parser.add_argument("experiments", nargs="*", choices=DEFAULT_ORDER, default=[],
                        help="subset to run (default: all)")
    parser.add_argument("--quick", action="store_true", help="small iteration counts")
    args = parser.parse_args(argv)
    selected = args.experiments or DEFAULT_ORDER
    for name in selected:
        print(EXPERIMENTS[name](args.quick))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
