"""The system-call API of the simulated kernel.

:class:`repro.syscalls.api.SyscallAPI` exposes the calls the paper's
programs and attacks use.  Every call:

1. ticks the logical clock and emits a ``SYSCALL_BEGIN`` operation (the
   firewall's ``syscallbegin`` chain — rule R12 hooks ``sigreturn``
   here);
2. resolves pathnames component-by-component, emitting one mediated
   operation per directory search and per symlink traversal;
3. passes the final resource access through DAC, the LSM/MAC modules,
   and finally the Process Firewall.
"""

from repro.syscalls.api import SyscallAPI

__all__ = ["SyscallAPI"]
